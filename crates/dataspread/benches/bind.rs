//! Binding-layer sync throughput: how fast the hybrid data-model layer
//! (paper §2.1 TOM/ROM/COM) keeps a table-bound region and its backing
//! table consistent at 100k rows.
//!
//! Run with `cargo bench -p dataspread --bench bind`. Arms:
//!
//! * `sheet_to_table/edit` — one bound-cell edit: routed `UPDATE`-one-
//!   attribute DML plus the single-cell mirror write (the interactive
//!   keystroke path; must NOT pay O(region)).
//! * `table_to_sheet/insert` — one SQL `INSERT` followed by the post-
//!   statement sync: a full region diff against the grown table (the bulk
//!   propagation path; pays O(region) per statement today — the derived
//!   cells/s figure is the sync scan rate).
//! * `table_to_sheet/noop` — the post-statement sync when nothing changed
//!   (version-counter early-out; should be ~free).
//!
//! Each arm also prints a `BENCH_JSON` line (machine-readable results, see
//! `dataspread_testkit::report_json`).

use std::time::Duration;

use dataspread::{BindModel, Workbook};
use dataspread_testkit::{bench, black_box, report_json, Rng};
use dataspread_types::{CellAddr, Value};

const TARGET: Duration = Duration::from_millis(200);
const ROWS: usize = 100_000;

fn workbook_with_bound_table() -> Workbook {
    let mut wb = Workbook::new();
    wb.execute("CREATE TABLE big (a INT, b INT)").unwrap();
    {
        let mut t = wb.catalog_mut().get_mut("big").unwrap();
        for i in 0..ROWS as i64 {
            t.insert(vec![Value::Int(i), Value::Int(i * 10)]).unwrap();
        }
    }
    let s = wb.current_sheet();
    wb.bind_table(s, CellAddr::new(0, 0), "big", BindModel::Rom)
        .unwrap();
    wb
}

fn main() {
    println!("bind: two-way sync over a {ROWS}-row ROM-bound region");
    let mut wb = workbook_with_bound_table();
    let s = wb.current_sheet();

    // Interactive path: a bound-cell edit is routed DML + one mirror write.
    let mut rng = Rng::new(0xB17D);
    let mut next = 0i64;
    let m = bench("bind/sheet_to_table/edit", TARGET, || {
        let row = rng.index(ROWS) as u32;
        let col = rng.u32_in(0, 2);
        next += 1;
        black_box(
            wb.set_value(s, CellAddr::new(row, col), Value::Int(next))
                .unwrap(),
        );
    });
    report_json("bind/sheet_to_table/edit", ROWS, &m);

    // Bulk propagation: INSERT + full-region diff refresh.
    let m = bench("bind/table_to_sheet/insert", TARGET, || {
        next += 1;
        wb.execute(&format!("INSERT INTO big VALUES ({next}, {next})"))
            .unwrap();
    });
    let rows_now = wb.catalog().get("big").unwrap().row_count();
    let cells_per_iter = (rows_now * 2) as f64;
    println!(
        "    region diff rate: {:.1}M cells/s over {rows_now} rows",
        cells_per_iter / m.per_iter_ns() * 1e3
    );
    report_json("bind/table_to_sheet/insert", ROWS, &m);

    // The early-out: sync with an unchanged table is a version compare.
    let m = bench("bind/table_to_sheet/noop", TARGET, || {
        wb.sync_bindings().unwrap();
    });
    report_json("bind/table_to_sheet/noop", ROWS, &m);
}
