//! Experiment C-commit: durable-commit cost and VFS-indirection overhead.
//!
//! Run with `cargo bench -p dataspread --bench commit`. The storage layer
//! routes every syscall through the `Vfs`/`VfsFile` trait objects so fault
//! suites can inject failures; this bench checks that the indirection is
//! free next to the fsync it wraps. Arms:
//!
//! 1. **pwrite+fsync, std** — positioned write + `sync_data` straight on
//!    `std::fs::File`: the floor any durable commit pays.
//! 2. **pwrite+fsync, vfs** — the same syscalls through `Box<dyn VfsFile>`
//!    (`OsVfs`). The ratio to arm 1 *is* the indirection overhead; the bar
//!    is ≤1.05x (dynamic dispatch next to an fsync is noise).
//! 3. **wal autocommit, os** — one `WalWriter::log` per iteration against
//!    the real filesystem: framing + CRC + group-commit machinery + fsync.
//! 4. **wal autocommit, memory** — the same against a quiet in-memory
//!    `FaultVfs`: the WAL's CPU cost with the disk removed.
//! 5. **workbook autocommit** — a full engine-level durable insert
//!    (table mutate + WAL log + group commit).

use std::sync::Arc;
use std::time::Duration;

use dataspread::Workbook;
use dataspread_relstore::vfs::{os_vfs, FaultPlan, FaultVfs, Vfs};
use dataspread_relstore::wal::{WalOp, WalWriter};
use dataspread_testkit::{bench, black_box, report_json};
use dataspread_types::Value;

const TARGET: Duration = Duration::from_millis(400);
/// Payload comparable to one framed WAL autocommit record.
const PAYLOAD: [u8; 64] = [0xA5; 64];

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let p = std::env::temp_dir().join(format!("dsp-bench-commit-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).unwrap();
    p
}

fn op(i: i64) -> WalOp {
    WalOp::Insert {
        table: "t".into(),
        key: i as u64,
        pos: i as u64,
        row: vec![Value::Int(i), Value::Int(i * 10)],
    }
}

#[cfg(unix)]
fn bench_pwrite_fsync_std(dir: &std::path::Path) -> f64 {
    use std::os::unix::fs::FileExt;
    let file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(true)
        .open(dir.join("std.bin"))
        .unwrap();
    let mut offset = 0u64;
    let m = bench("commit/pwrite_fsync_std", TARGET, || {
        file.write_all_at(&PAYLOAD, offset).unwrap();
        file.sync_data().unwrap();
        offset += PAYLOAD.len() as u64;
    });
    report_json("commit/pwrite_fsync_std", 1, &m);
    m.per_iter_ns()
}

#[cfg(not(unix))]
fn bench_pwrite_fsync_std(_dir: &std::path::Path) -> f64 {
    println!("commit/pwrite_fsync_std: skipped (no positioned file I/O on this platform)");
    0.0
}

fn bench_pwrite_fsync_vfs(dir: &std::path::Path) -> f64 {
    let vfs = os_vfs();
    let file = vfs.create(&dir.join("vfs.bin")).unwrap();
    let mut offset = 0u64;
    let m = bench("commit/pwrite_fsync_vfs", TARGET, || {
        file.write_all_at(offset, &PAYLOAD).unwrap();
        file.sync().unwrap();
        offset += PAYLOAD.len() as u64;
    });
    report_json("commit/pwrite_fsync_vfs", 1, &m);
    m.per_iter_ns()
}

fn bench_wal_autocommit(name: &str, vfs: Arc<dyn Vfs>, dir: &std::path::Path) {
    vfs.create_dir_all(dir).unwrap();
    let w = WalWriter::create_with(&vfs, dir.join("wal.dsp"), 1).unwrap();
    let mut i = 0i64;
    let m = bench(name, TARGET, || {
        w.log(op(i)).unwrap();
        i += 1;
    });
    report_json(name, 1, &m);
}

fn bench_workbook_autocommit(dir: &std::path::Path) {
    let mut wb = Workbook::new();
    wb.execute("CREATE TABLE t (id INT, v INT)").unwrap();
    wb.save(dir).unwrap();
    let mut i = 0i64;
    let m = bench("commit/workbook_autocommit", TARGET, || {
        let mut t = wb.catalog_mut().get_mut("t").unwrap();
        black_box(t.insert(vec![Value::Int(i), Value::Int(i * 10)]).unwrap());
        i += 1;
    });
    report_json("commit/workbook_autocommit", 1, &m);
    // One coherent registry dump so the perf numbers travel with their
    // counter context (wal_commits, fsyncs, pool traffic).
    println!("METRICS_JSON {}", wb.metrics_json());
}

fn main() {
    println!(
        "== durable commit micro-bench (payload {} B) ==",
        PAYLOAD.len()
    );
    let dir = tmp_dir("arms");

    let std_ns = bench_pwrite_fsync_std(&dir);
    let vfs_ns = bench_pwrite_fsync_vfs(&dir);
    if std_ns > 0.0 {
        let ratio = vfs_ns / std_ns;
        println!("summary: vfs/std fsync ratio {ratio:.3}x (bar: <=1.05x)");
        println!(
            "BENCH_JSON {{\"bench\":\"commit/vfs_overhead\",\"rows\":1,\"ns_per_iter\":{:.1},\"iters\":1,\"ratio\":{ratio:.3}}}",
            vfs_ns - std_ns
        );
    }

    bench_wal_autocommit("commit/wal_autocommit_os", os_vfs(), &dir.join("wal-os"));
    let mem: Arc<dyn Vfs> = Arc::new(FaultVfs::new(FaultPlan::quiet()));
    bench_wal_autocommit(
        "commit/wal_autocommit_mem",
        mem,
        std::path::Path::new("/bench-wal"),
    );
    bench_workbook_autocommit(&dir.join("wb"));

    let _ = std::fs::remove_dir_all(&dir);
}
