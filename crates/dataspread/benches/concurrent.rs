//! Experiment C-conc: the concurrent engine under parallel load.
//!
//! Run with `cargo bench -p dataspread --bench concurrent`. Three sections:
//!
//! 1. **Scan scaling** — N reader threads (1/2/4/8) scan snapshots of a
//!    1M-row table concurrently. Each iteration is one full-table snapshot
//!    scan; `ns_per_iter` is wall time divided by *aggregate* completed
//!    scans, so perfect scaling halves it per thread doubling — on a host
//!    with cores to scale onto (the `cpus` field in the summary line). On a
//!    single-core host the signal is instead that aggregate throughput
//!    stays ~flat as readers are added: snapshot scans share no lock, so
//!    extra readers time-slice without convoying.
//! 2. **HTAP mix** — 4 snapshot readers over the hot table while 2 shard
//!    writers append to disjoint tables; both sides report throughput.
//! 3. **Group commit** — 8 concurrent auto-committing writers against a
//!    durable store; reports commits, fsyncs, and the commits/fsync batch
//!    factor (bar: ≥4).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use dataspread::{SharedWorkbook, Workbook};
use dataspread_testkit::{black_box, report_json, Measurement};
use dataspread_types::Value;

const SCAN_ROWS: usize = 1_000_000;
const TARGET: Duration = Duration::from_millis(400);
/// A single 1M-row scan takes hundreds of ms; give the scaling arms enough
/// wall time to complete several aggregate iterations per thread count.
const SCAN_TARGET: Duration = Duration::from_millis(2_000);

fn build_shared(scan_rows: usize) -> SharedWorkbook {
    let mut wb = Workbook::new();
    wb.execute_script(
        "CREATE TABLE big (id INT, v INT);
         CREATE TABLE w0 (id INT, v INT);
         CREATE TABLE w1 (id INT, v INT);",
    )
    .unwrap();
    {
        let mut t = wb.catalog_mut().get_mut("big").unwrap();
        let mut batch = Vec::with_capacity(10_000);
        for i in 0..scan_rows as i64 {
            batch.push(vec![Value::Int(i), Value::Int(i * 10)]);
            if batch.len() == 10_000 {
                t.insert_many(std::mem::take(&mut batch)).unwrap();
            }
        }
        if !batch.is_empty() {
            t.insert_many(batch).unwrap();
        }
    }
    SharedWorkbook::new(wb)
}

/// One full scan of the snapshot: sum the value column.
fn scan_once(shared: &SharedWorkbook) -> i64 {
    let snap = shared.read(|s| s.table_snapshot("big").unwrap());
    let mut sum = 0i64;
    for r in snap.into_iter_sparse(Some(&[1])) {
        if let Value::Int(v) = r.unwrap().1[1] {
            sum += v;
        }
    }
    sum
}

/// N threads scan concurrently for `TARGET`; returns (aggregate scans, wall).
fn parallel_scans(shared: &SharedWorkbook, threads: usize) -> Measurement {
    let stop = Arc::new(AtomicBool::new(false));
    let total = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let sh = shared.clone();
            let stop = Arc::clone(&stop);
            let total = Arc::clone(&total);
            thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    black_box(scan_once(&sh));
                    total.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    thread::sleep(SCAN_TARGET);
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    Measurement {
        iters: total.load(Ordering::Relaxed).max(1),
        total: start.elapsed(),
    }
}

fn section_scan_scaling(shared: &SharedWorkbook) -> (f64, f64) {
    println!("-- scan scaling: N snapshot readers over {SCAN_ROWS} rows --");
    let mut base = 0.0;
    let mut at4 = 0.0;
    for threads in [1usize, 2, 4, 8] {
        let m = parallel_scans(shared, threads);
        let scans_per_sec = m.iters as f64 / m.total.as_secs_f64();
        println!(
            "  {threads} reader(s): {scans_per_sec:.1} scans/s aggregate ({:.1} ms/scan effective)",
            m.per_iter_ns() / 1e6
        );
        report_json(&format!("concurrent_scan/t{threads}"), SCAN_ROWS, &m);
        if threads == 1 {
            base = scans_per_sec;
        }
        if threads == 4 {
            at4 = scans_per_sec;
        }
    }
    (base, at4)
}

fn section_htap(shared: &SharedWorkbook) {
    println!("-- HTAP mix: 4 snapshot readers + 2 disjoint shard writers --");
    let stop = Arc::new(AtomicBool::new(false));
    let scans = Arc::new(AtomicU64::new(0));
    let writes = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let mut handles = Vec::new();
    for _ in 0..4 {
        let sh = shared.clone();
        let stop = Arc::clone(&stop);
        let scans = Arc::clone(&scans);
        handles.push(thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                black_box(scan_once(&sh));
                scans.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }
    for w in 0..2i64 {
        let sh = shared.clone();
        let stop = Arc::clone(&stop);
        let writes = Arc::clone(&writes);
        let table = if w == 0 { "w0" } else { "w1" };
        handles.push(thread::spawn(move || {
            let mut i = 0i64;
            while !stop.load(Ordering::Relaxed) {
                sh.with_table_mut(table, |t| t.insert(vec![Value::Int(i), Value::Int(i * 10)]))
                    .unwrap();
                writes.fetch_add(1, Ordering::Relaxed);
                i += 1;
            }
        }));
    }
    thread::sleep(TARGET);
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    let wall = start.elapsed();
    let scan_m = Measurement {
        iters: scans.load(Ordering::Relaxed).max(1),
        total: wall,
    };
    let write_m = Measurement {
        iters: writes.load(Ordering::Relaxed).max(1),
        total: wall,
    };
    println!(
        "  readers: {:.1} scans/s; writers: {:.0} inserts/s (neither side starves)",
        scan_m.iters as f64 / wall.as_secs_f64(),
        write_m.iters as f64 / wall.as_secs_f64()
    );
    report_json("concurrent_htap/read", SCAN_ROWS, &scan_m);
    report_json("concurrent_htap/write", write_m.iters as usize, &write_m);
}

fn section_group_commit() {
    println!("-- group commit: 8 auto-committing writers on disjoint shards --");
    let dir = std::env::temp_dir().join(format!("dsp-bench-gc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    const WRITERS: i64 = 8;
    const OPS: i64 = 250;
    let mut wb = Workbook::new();
    for w in 0..WRITERS {
        wb.execute(&format!("CREATE TABLE gc{w} (id INT, v INT)"))
            .unwrap();
    }
    wb.save(&dir).unwrap();
    let shared = SharedWorkbook::new(wb);

    let start = Instant::now();
    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let sh = shared.clone();
            // Disjoint shards: the only thing these writers contend on is
            // the shared WAL — exactly the group-commit scenario.
            let table = format!("gc{w}");
            thread::spawn(move || {
                for seq in 0..OPS {
                    let id = w * 1_000_000 + seq;
                    sh.with_table_mut(&table, |t| {
                        t.insert(vec![Value::Int(id), Value::Int(id * 10)])
                    })
                    .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let wall = start.elapsed();
    let wb = shared.try_into_inner().expect("last handle");
    let stats = wb.group_commit_stats().unwrap();
    let batch = stats.commits as f64 / stats.fsyncs.max(1) as f64;
    let m = Measurement {
        iters: (WRITERS * OPS) as u64,
        total: wall,
    };
    println!(
        "  {} commits over {} fsyncs -> {batch:.1} commits/fsync ({:.0} durable ops/s)",
        stats.commits,
        stats.fsyncs,
        m.iters as f64 / wall.as_secs_f64()
    );
    report_json("concurrent_group_commit/ops", m.iters as usize, &m);
    println!(
        "BENCH_JSON {{\"bench\":\"concurrent_group_commit/batch\",\"rows\":{},\"ns_per_iter\":{:.1},\"iters\":{},\"commits\":{},\"fsyncs\":{},\"commits_per_fsync\":{batch:.2}}}",
        m.iters,
        m.per_iter_ns(),
        m.iters,
        stats.commits,
        stats.fsyncs,
    );
    drop(wb);
    let _ = std::fs::remove_dir_all(&dir);
}

fn main() {
    let cpus = thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("== concurrent engine benchmarks ({cpus} cpu(s)) ==");
    let shared = build_shared(SCAN_ROWS);
    let (base, at4) = section_scan_scaling(&shared);
    section_htap(&shared);
    section_group_commit();
    let speedup = at4 / base;
    println!("summary: 4-thread scan speedup {speedup:.2}x over 1 thread on {cpus} cpu(s)");
    println!(
        "BENCH_JSON {{\"bench\":\"concurrent_scan/speedup_t4\",\"rows\":{SCAN_ROWS},\"ns_per_iter\":{:.1},\"iters\":1,\"speedup_t4\":{speedup:.2},\"cpus\":{cpus}}}",
        1e9 / base.max(1e-9)
    );
}
