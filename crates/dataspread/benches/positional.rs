//! Experiment C3: positional insert / windowed fetch, counted B-tree vs. the
//! dense rownum baseline.
//!
//! Run with `cargo bench -p dataspread --bench positional`. The harness is
//! the workspace's own wall-clock kit (no registry access in CI —
//! substitution #4 in `DESIGN.md`); numbers are ns/iter, and the summary
//! prints the dense/counted ratio so the asymptotic gap is visible at a
//! glance.

use std::time::Duration;

use dataspread::posindex::{CountedBtree, DenseIndex, PositionalIndex, RowKey};
use dataspread_testkit::{bench, black_box, Rng};

const TARGET: Duration = Duration::from_millis(150);
const WINDOW: usize = 64;

fn loaded<I: PositionalIndex>(mut empty: I, n: usize) -> I {
    for k in 0..n as RowKey {
        empty.push(k).unwrap();
    }
    empty
}

fn bench_insert_remove<I: PositionalIndex>(name: &str, make: impl Fn() -> I, n: usize) -> f64 {
    // Insert at a pseudo-random position then remove it again, so the index
    // size stays n across iterations and we measure steady-state edits.
    let mut idx = loaded(make(), n);
    let mut rng = Rng::new(0xC3);
    let mut next_key: RowKey = n as RowKey;
    let m = bench(&format!("{name}/positional_insert/{n}"), TARGET, || {
        let pos = rng.index(n + 1);
        idx.insert_at(pos, next_key).unwrap();
        idx.remove_at(pos).unwrap();
        next_key += 1;
    });
    m.per_iter_ns()
}

fn bench_window<I: PositionalIndex>(name: &str, make: impl Fn() -> I, n: usize) -> f64 {
    let idx = loaded(make(), n);
    let mut rng = Rng::new(0xC3_C3);
    let m = bench(&format!("{name}/window_fetch_{WINDOW}/{n}"), TARGET, || {
        let pos = rng.index(n - WINDOW);
        black_box(idx.range(pos, WINDOW));
    });
    m.per_iter_ns()
}

fn main() {
    println!("C3: positional operations, CountedBtree vs DenseIndex");
    for n in [1_000usize, 10_000, 100_000] {
        let counted = bench_insert_remove("counted_btree", CountedBtree::new, n);
        let dense = bench_insert_remove("dense_rownum", DenseIndex::new, n);
        println!("  -> insert@{n}: dense/counted = {:.1}x", dense / counted);

        let counted_w = bench_window("counted_btree", CountedBtree::new, n);
        let dense_w = bench_window("dense_rownum", DenseIndex::new, n);
        println!(
            "  -> window@{n}: counted/dense = {:.1}x",
            counted_w / dense_w
        );
    }
}
