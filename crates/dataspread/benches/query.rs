//! Experiment C-join: the streaming executor's hash operators vs. their
//! reference arms — equi-join and GROUP BY at 1k/10k/50k rows.
//!
//! Run with `cargo bench -p dataspread --bench query`. Each arm reports
//! ns/iter plus derived rows/sec (input rows of the larger side over the
//! per-iteration time) and the blocks touched per iteration (one coherent
//! `PoolStats::snapshot()` per phase, not four racing atomic loads); the
//! summary prints the nested-loop/hash ratio. The nested-loop join arm is
//! skipped at 50k rows — 2.5·10⁹ row comparisons is the point the hash
//! join exists to avoid.
//!
//! A final durability section saves the 10k workbook into a real store
//! directory and reports *measured* I/O (`PageFileStats`: frames and bytes
//! physically written, fsyncs) next to the modeled buffer-pool counters —
//! the boundary `docs/STORAGE.md` makes real.

use std::time::Duration;

use dataspread::relstore::PoolSnapshot;
use dataspread::{ExecOptions, Workbook};
use dataspread_testkit::{bench, black_box, report_json, Rng};
use dataspread_types::Value;

const TARGET: Duration = Duration::from_millis(300);
/// Past this size the nested-loop arm is too slow to even measure once.
const NESTED_LIMIT: usize = 10_000;

const JOIN: &str = "SELECT COUNT(*) FROM l JOIN r ON l.k = r.k";
const GROUP: &str = "SELECT k, COUNT(*), SUM(v) FROM l GROUP BY k";

/// Two n-row tables with ~n/10 distinct integer keys, so the join fans out
/// roughly 10× per probe and GROUP BY forms real groups.
fn workbook(n: usize) -> Workbook {
    let mut wb = Workbook::new();
    wb.execute_script(
        "CREATE TABLE l (k INT, v INT);
         CREATE TABLE r (k INT, w INT);",
    )
    .unwrap();
    let keys = (n / 10).max(1) as u64;
    let mut rng = Rng::new(0xC0_1A);
    for table in ["l", "r"] {
        let mut t = wb.catalog_mut().get_mut(table).unwrap();
        for _ in 0..n {
            t.insert(vec![
                Value::Int(rng.below(keys) as i64),
                Value::Int(rng.below(100) as i64),
            ])
            .unwrap();
        }
    }
    wb
}

/// Combined pool counters of every bench table, as one coherent copy each.
fn pools(wb: &Workbook) -> PoolSnapshot {
    let mut sum = PoolSnapshot {
        hits: 0,
        misses: 0,
        evictions: 0,
        dirty_writebacks: 0,
        write_back_errors: 0,
    };
    for name in wb.catalog().table_names() {
        let s = wb.catalog().get(&name).unwrap().pool().stats().snapshot();
        sum.hits += s.hits;
        sum.misses += s.misses;
        sum.evictions += s.evictions;
        sum.dirty_writebacks += s.dirty_writebacks;
        sum.write_back_errors += s.write_back_errors;
    }
    sum
}

fn arm(wb: &mut Workbook, label: &str, sql: &str, n: usize, options: ExecOptions) -> f64 {
    wb.set_exec_options(options);
    let before = pools(wb);
    let m = bench(&format!("{label}/{n}"), TARGET, || {
        black_box(wb.query(sql).unwrap());
    });
    let after = pools(wb);
    let ns = m.per_iter_ns();
    println!(
        "    {label}/{n}: {:.0} rows/sec, {:.0} blocks touched/iter",
        n as f64 / (ns * 1e-9),
        (after.blocks_touched() - before.blocks_touched()) as f64 / m.iters as f64
    );
    report_json(&format!("{label}/{n}"), n, &m);
    ns
}

/// Experiment C-order: a 3-table join chain with skewed cardinalities.
///
/// `big1 ⋈ big2` on a 100-distinct key explodes to ~n²/100 rows; the 50-row
/// `small` table joins `big1` on a near-unique key and cuts the result to a
/// few hundred. Syntactic order pays for the explosion; the cost-based
/// order joins `small` first. The ratio is the headline BENCH_JSON number.
fn skew_join(n: usize) {
    let mut wb = Workbook::new();
    wb.execute_script(
        "CREATE TABLE big1 (j INT, a INT);
         CREATE TABLE big2 (j INT, b INT);
         CREATE TABLE small (k INT, c INT);",
    )
    .unwrap();
    let mut rng = Rng::new(0x0000_DE12);
    {
        let mut t = wb.catalog_mut().get_mut("big1").unwrap();
        for i in 0..n {
            t.insert(vec![
                Value::Int(rng.below(100) as i64),
                Value::Int(i as i64),
            ])
            .unwrap();
        }
    }
    {
        let mut t = wb.catalog_mut().get_mut("big2").unwrap();
        for _ in 0..n {
            t.insert(vec![
                Value::Int(rng.below(100) as i64),
                Value::Int(rng.below(1000) as i64),
            ])
            .unwrap();
        }
    }
    {
        let mut t = wb.catalog_mut().get_mut("small").unwrap();
        for _ in 0..50 {
            t.insert(vec![
                Value::Int(rng.below(n as u64) as i64),
                Value::Int(rng.below(10) as i64),
            ])
            .unwrap();
        }
    }
    wb.execute("ANALYZE").unwrap();

    const SQL: &str = "SELECT COUNT(*) \
         FROM big1 JOIN big2 ON big1.j = big2.j \
         JOIN small ON big1.a = small.k";
    let syntactic = ExecOptions {
        cost_based: false,
        ..ExecOptions::default()
    };
    let s = arm(&mut wb, "join3/syntactic", SQL, n, syntactic);
    let c = arm(&mut wb, "join3/cost_based", SQL, n, ExecOptions::default());
    let ratio = s / c;
    println!("  -> join3@{n}: syntactic/cost_based = {ratio:.1}x");
    println!(
        "BENCH_JSON {{\"bench\":\"join3/order_ratio\",\"rows\":{n},\"ns_per_iter\":{c:.1},\"iters\":1,\"syntactic_over_cost\":{ratio:.2}}}"
    );
}

/// Durability: checkpoint the workbook into a real store and report the
/// physically written frames/bytes next to the modeled pool counters.
fn durability_report(wb: &mut Workbook, n: usize) {
    let dir = std::env::temp_dir().join(format!("dsp-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let m = bench(&format!("durability/checkpoint/{n}"), TARGET, || {
        wb.save(&dir).unwrap();
    });
    let modeled = wb.catalog().get("l").unwrap().pool().stats().snapshot();
    // The freshly attached store's counters cover exactly the last save.
    let store = dataspread::relstore::PageFile::open(dir.join("data.dsp")).unwrap();
    println!(
        "    real I/O per checkpoint: {} frames on disk ({} KiB page file), modeled pool writebacks so far: {}",
        store.frame_count(),
        std::fs::metadata(dir.join("data.dsp")).map(|md| md.len() / 1024).unwrap_or(0),
        modeled.dirty_writebacks,
    );
    println!(
        "    checkpoint: {:.2} ms/iter over {} iters",
        m.per_iter_ns() / 1e6,
        m.iters
    );
    let _ = std::fs::remove_dir_all(&dir);
}

fn main() {
    println!("C-join: equi-join + GROUP BY, hash vs reference arms");
    let hash = ExecOptions::default();
    let nested = ExecOptions {
        hash_join: false,
        hash_aggregation: false,
        predicate_pushdown: false,
        cost_based: false,
    };
    for n in [1_000usize, 10_000, 50_000] {
        let mut wb = workbook(n);

        let h = arm(&mut wb, "join/hash", JOIN, n, hash);
        if n <= NESTED_LIMIT {
            let nl = arm(&mut wb, "join/nested_loop", JOIN, n, nested);
            println!("  -> join@{n}: nested/hash = {:.1}x", nl / h);
        } else {
            println!("  -> join@{n}: nested-loop arm skipped (quadratic)");
        }

        let ha = arm(&mut wb, "group_by/hash", GROUP, n, hash);
        let la = arm(&mut wb, "group_by/linear", GROUP, n, nested);
        println!("  -> group_by@{n}: linear/hash = {:.1}x", la / ha);

        if n == 10_000 {
            durability_report(&mut wb, n);
            // Registry dump for the reference size: executor row counters
            // and the I/O the durability section just paid.
            println!("METRICS_JSON {}", wb.metrics_json());
        }
    }

    println!("C-order: 3-table skewed chain, syntactic vs cost-based join order");
    skew_join(10_000);
}
