//! Experiment C-join: the streaming executor's hash operators vs. their
//! reference arms — equi-join and GROUP BY at 1k/10k/50k rows.
//!
//! Run with `cargo bench -p dataspread --bench query`. Each arm reports
//! ns/iter plus derived rows/sec (input rows of the larger side over the
//! per-iteration time); the summary prints the nested-loop/hash ratio. The
//! nested-loop join arm is skipped at 50k rows — 2.5·10⁹ row comparisons is
//! the point the hash join exists to avoid.

use std::time::Duration;

use dataspread::{ExecOptions, Workbook};
use dataspread_testkit::{bench, black_box, Rng};
use dataspread_types::Value;

const TARGET: Duration = Duration::from_millis(300);
/// Past this size the nested-loop arm is too slow to even measure once.
const NESTED_LIMIT: usize = 10_000;

const JOIN: &str = "SELECT COUNT(*) FROM l JOIN r ON l.k = r.k";
const GROUP: &str = "SELECT k, COUNT(*), SUM(v) FROM l GROUP BY k";

/// Two n-row tables with ~n/10 distinct integer keys, so the join fans out
/// roughly 10× per probe and GROUP BY forms real groups.
fn workbook(n: usize) -> Workbook {
    let mut wb = Workbook::new();
    wb.execute_script(
        "CREATE TABLE l (k INT, v INT);
         CREATE TABLE r (k INT, w INT);",
    )
    .unwrap();
    let keys = (n / 10).max(1) as u64;
    let mut rng = Rng::new(0xC0_1A);
    for table in ["l", "r"] {
        let t = wb.catalog_mut().get_mut(table).unwrap();
        for _ in 0..n {
            t.insert(vec![
                Value::Int(rng.below(keys) as i64),
                Value::Int(rng.below(100) as i64),
            ])
            .unwrap();
        }
    }
    wb
}

fn arm(wb: &mut Workbook, label: &str, sql: &str, n: usize, options: ExecOptions) -> f64 {
    wb.set_exec_options(options);
    let m = bench(&format!("{label}/{n}"), TARGET, || {
        black_box(wb.query(sql).unwrap());
    });
    let ns = m.per_iter_ns();
    println!("    {label}/{n}: {:.0} rows/sec", n as f64 / (ns * 1e-9));
    ns
}

fn main() {
    println!("C-join: equi-join + GROUP BY, hash vs reference arms");
    let hash = ExecOptions::default();
    let nested = ExecOptions {
        hash_join: false,
        hash_aggregation: false,
        predicate_pushdown: false,
    };
    for n in [1_000usize, 10_000, 50_000] {
        let mut wb = workbook(n);

        let h = arm(&mut wb, "join/hash", JOIN, n, hash);
        if n <= NESTED_LIMIT {
            let nl = arm(&mut wb, "join/nested_loop", JOIN, n, nested);
            println!("  -> join@{n}: nested/hash = {:.1}x", nl / h);
        } else {
            println!("  -> join@{n}: nested-loop arm skipped (quadratic)");
        }

        let ha = arm(&mut wb, "group_by/hash", GROUP, n, hash);
        let la = arm(&mut wb, "group_by/linear", GROUP, n, nested);
        println!("  -> group_by@{n}: linear/hash = {:.1}x", la / ha);
    }
}
