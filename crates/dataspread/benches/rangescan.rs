//! Experiment C5: range scans over the three interface-storage layouts
//! (tiled / proximity-block / naive per-cell).
//!
//! Run with `cargo bench -p dataspread --bench rangescan`. Besides wall
//! time, each arm reports the block-touch counters the stores keep — the
//! paper's "disk blocks" accounting.

use std::time::Duration;

use dataspread::gridstore::block::BlockConfig;
use dataspread::gridstore::{BlockGrid, CellStore, NaiveGrid, TileConfig, TiledGrid};
use dataspread::types::{CellAddr, Range};
use dataspread_testkit::{bench, black_box, Rng};

const TARGET: Duration = Duration::from_millis(150);
/// Sheet extent: SIDE × SIDE cells, ~60% dense (spreadsheets are sparse).
const SIDE: u32 = 512;
const WINDOW: u32 = 40;

fn populate<S: CellStore<i64>>(store: &mut S, rng: &mut Rng) -> usize {
    let mut n = 0;
    for r in 0..SIDE {
        for c in 0..SIDE {
            if rng.below(10) < 6 {
                store.set(CellAddr::new(r, c), (r * SIDE + c) as i64);
                n += 1;
            }
        }
    }
    n
}

fn bench_store<S: CellStore<i64>>(name: &str, mut store: S) {
    let mut rng = Rng::new(0xC5);
    let cells = populate(&mut store, &mut rng);
    store.stats().reset();
    let mut scan_rng = Rng::new(0xC5_C5);
    bench(
        &format!("{name}/window_scan_{WINDOW}x{WINDOW}"),
        TARGET,
        || {
            let r0 = scan_rng.u32_in(0, SIDE - WINDOW);
            let c0 = scan_rng.u32_in(0, SIDE - WINDOW);
            let range = Range::from_bounds(r0, c0, r0 + WINDOW - 1, c0 + WINDOW - 1);
            let mut sum = 0i64;
            store.for_each_in_range(range, &mut |_, v| sum += *v);
            black_box(sum);
        },
    );
    let reads = store.stats().blocks_read();
    let scanned = store.stats().cells_scanned();
    println!(
        "  {name}: {cells} cells in {} blocks; blocks_read={reads} cells_scanned={scanned}",
        store.block_count()
    );
}

fn main() {
    println!("C5: {WINDOW}x{WINDOW} window scans over a {SIDE}x{SIDE} sheet");
    bench_store("tiled", TiledGrid::new(TileConfig::default()));
    bench_store("block", BlockGrid::new(BlockConfig::default()));
    bench_store("naive", NaiveGrid::new());
}
