//! End-to-end demo of the engine through the public API: grid edits, SQL
//! with live positional references, import/export, and positional DML.
//!
//! Run with `cargo run -p dataspread --example demo`.

use dataspread::{BindModel, StoreKind, Workbook};
use dataspread_types::{CellAddr, Range, Value};

fn a(s: &str) -> CellAddr {
    CellAddr::parse_a1(s).unwrap()
}

fn main() {
    let mut wb = Workbook::with_store(StoreKind::Tiled);
    let sheet = wb.current_sheet();

    // A grade book typed straight onto the grid.
    wb.set_region(
        sheet,
        a("A1"),
        &[
            vec![Value::text("id"), Value::text("name"), Value::text("score")],
            vec![Value::Int(1), Value::text("ada"), Value::Int(91)],
            vec![Value::Int(2), Value::text("alan"), Value::Int(87)],
            vec![Value::Int(3), Value::text("grace"), Value::Int(95)],
        ],
    )
    .unwrap();
    let n = wb
        .import_region(sheet, Range::parse_a1("A1:C4").unwrap(), "students", true)
        .unwrap();
    println!("imported {n} rows into `students`");

    // The cutoff lives in a cell; SQL reads it live.
    wb.set_input(sheet, a("E1"), "90").unwrap();
    let (cols, rows) = wb
        .query("SELECT name, score FROM students WHERE score > RANGEVALUE(E1) ORDER BY score DESC")
        .unwrap();
    println!("\n> SELECT name, score WHERE score > RANGEVALUE(E1)   -- E1 = 90");
    println!("{cols:?}");
    for r in &rows {
        println!("{r:?}");
    }

    // Edit the cell, same query, new answer.
    wb.set_input(sheet, a("E1"), "94").unwrap();
    let (_, rows) = wb
        .query("SELECT name FROM students WHERE score > RANGEVALUE(E1)")
        .unwrap();
    println!("\nafter E1 := 94 -> {rows:?}");

    // Positional DML: insert displayed-at-position-1, O(log n).
    wb.insert_tuple_at(
        "students",
        1,
        vec![Value::Int(99), Value::text("edsger"), Value::Int(88)],
    )
    .unwrap();
    println!("\nwindow rows 0..4 after positional insert at 1:");
    for (key, row) in wb.fetch_window("students", 0, 4).unwrap() {
        println!("  key {key}: {row:?}");
    }

    // Aggregation + a RANGETABLE join against a second region.
    wb.set_region(
        sheet,
        a("G1"),
        &[
            vec![Value::text("id"), Value::text("bonus")],
            vec![Value::Int(1), Value::Int(4)],
            vec![Value::Int(3), Value::Int(2)],
        ],
    )
    .unwrap();
    let (_, rows) = wb
        .query(
            "SELECT name, score + bonus AS total
             FROM students NATURAL JOIN RANGETABLE(G1:H3) ORDER BY total DESC",
        )
        .unwrap();
    println!("\njoin with RANGETABLE(G1:H3): {rows:?}");

    let (_, rows) = wb
        .query("SELECT COUNT(*), AVG(score) FROM students")
        .unwrap();
    println!("COUNT/AVG: {rows:?}");

    // Export back to a fresh sheet.
    let out = wb.add_sheet("Report").unwrap();
    let covered = wb.export_table("students", out, a("A1"), true).unwrap();
    println!("\nexported `students` to Report!{covered}");

    // Formulas: typed like a spreadsheet, recomputed incrementally, and
    // visible to SQL through RANGEVALUE.
    let e1 = wb.set_input(out, a("E1"), "=SUM(C2:C5)").unwrap();
    let e2 = wb.set_input(out, a("E2"), "=E1/4 & \" avg\"").unwrap();
    let src1 = wb.formula_text(out, a("E1")).unwrap().to_string();
    let src2 = wb.formula_text(out, a("E2")).unwrap().to_string();
    println!("\nReport!E1 {src1} = {e1}   E2 {src2} = {e2}");
    wb.set_input(out, a("C2"), "100").unwrap(); // edit a precedent
    println!("after C2 := 100 -> E1 = {}", wb.cell(out, a("E1")));
    wb.set_input(out, a("F1"), "=F2").unwrap();
    wb.set_input(out, a("F2"), "=F1").unwrap();
    println!("cyclic F1=F2, F2=F1 -> {}", wb.cell(out, a("F1")));

    // Hybrid data models (paper §2.1): bind a region to a table — the grid
    // and the relation become two views of one store.
    let live = wb.add_sheet("Live").unwrap();
    wb.bind_table(live, a("A1"), "students", BindModel::Tom)
        .unwrap();
    wb.set_input(live, a("F1"), "=SUM(C2:C20)").unwrap();
    println!(
        "
bound `students` at Live!A1 (TOM); =SUM over the score column = {}",
        wb.cell(live, a("F1"))
    );
    // Grid -> table: a bound-cell edit is UPDATE DML.
    wb.set_input(live, a("C2"), "99").unwrap();
    let (_, rows) = wb
        .query("SELECT name FROM students WHERE score = 99")
        .unwrap();
    println!("Live!C2 := 99 -> SELECT ... WHERE score = 99: {rows:?}");
    // Table -> grid: SQL INSERT grows the region, the SUM recomputes.
    wb.execute("INSERT INTO students VALUES (7, 'barbara', 90)")
        .unwrap();
    println!(
        "INSERT -> region grew to row {}, SUM = {}  (VLOOKUP 7 -> {})",
        wb.binding_rect(wb.binding_ids()[0]).unwrap().end.row + 1,
        wb.cell(live, a("F1")),
        wb.set_input(live, a("F2"), "=VLOOKUP(7,A2:C20,2,FALSE)")
            .unwrap(),
    );

    // Error surfaces, as a user would hit them.
    for bad in [
        "SELECT nope FROM students",
        "SELECT * FROM missing",
        "SELECT name FROM students LIMIT -1",
        "INSERT INTO students VALUES (1)",
        "SELECT RANGEVALUE(ZZZ)",
    ] {
        println!("\n> {bad}\n  !! {}", wb.execute(bad).unwrap_err());
    }
}
