//! Durability demo: save → kill the process → reopen → query.
//!
//! Run it twice:
//!
//! ```sh
//! cargo run -q -p dataspread --example persist   # session 1: builds + saves
//! cargo run -q -p dataspread --example persist   # session 2: recovers + verifies
//! ```
//!
//! Session 1 checkpoints a workbook into `$TMPDIR/dataspread-persist-demo`,
//! then runs more DML that is durable through the WAL alone, and exits
//! without another save — the "crash". Session 2 reopens the store: the
//! checkpoint loads, the committed WAL tail replays, and the queries see
//! everything. See `docs/STORAGE.md` for the formats.

use dataspread::Workbook;
use dataspread_types::{CellAddr, Value};

fn main() {
    let dir = std::env::temp_dir().join("dataspread-persist-demo");
    if !dir.exists() {
        // ---- session 1: build, save, then WAL-only DML ------------------
        let mut wb = Workbook::new();
        let sheet = wb.current_sheet();
        wb.set_input(sheet, CellAddr::parse_a1("B1").unwrap(), "90")
            .unwrap();
        wb.execute("CREATE TABLE students (id INT PRIMARY KEY, name TEXT, score REAL)")
            .unwrap();
        wb.execute("INSERT INTO students VALUES (1, 'ada', 91.5), (2, 'alan', 87.0)")
            .unwrap();
        wb.save(&dir).unwrap();
        println!("checkpointed into {}", dir.display());

        // Durable via the WAL only — no further checkpoint before "crash".
        wb.execute("INSERT INTO students VALUES (3, 'grace', 95.25)")
            .unwrap();
        wb.execute("UPDATE students SET score = 99.0 WHERE id = 2")
            .unwrap();
        println!("logged 2 more statements through the WAL; exiting without save");
        println!("run me again to recover");
    } else {
        // ---- session 2: recover and verify ------------------------------
        let mut wb = Workbook::open(&dir).unwrap();
        let (_, rows) = wb
            .query("SELECT name, score FROM students WHERE score > RANGEVALUE(B1) ORDER BY name")
            .unwrap();
        println!("recovered; students above the B1 cutoff:");
        for row in &rows {
            println!("  {row:?}");
        }
        assert_eq!(
            rows,
            vec![
                vec![Value::text("ada"), Value::Float(91.5)],
                vec![Value::text("alan"), Value::Float(99.0)],
                vec![Value::text("grace"), Value::Float(95.25)],
            ],
            "checkpoint + WAL replay must restore all three statements"
        );
        println!("recovery verified; removing {}", dir.display());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
