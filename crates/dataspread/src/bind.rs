//! Table-bound sheet regions: the paper's §2.1 hybrid data models
//! (TOM/ROM/COM) as live two-way bindings.
//!
//! A binding attaches a rectangular sheet region to a catalog table so the
//! grid and the relation are two views of one store:
//!
//! * **sheet → table**: typing into a bound cell becomes WAL-logged DML on
//!   the backing table ([`dataspread_relstore::Table::update_cell`]);
//!   editing a TOM header cell
//!   renames the column; structural row/column edits *inside* the region
//!   become positional inserts/deletes (O(log n) via the table's counted
//!   B-tree) or schema changes instead of breaking the mapping.
//! * **table → sheet**: SQL DML/DDL against a bound table re-renders the
//!   region (diffed cell by cell, so untouched cells cost nothing
//!   downstream) and invalidates dependent formulas through `calc`, so
//!   `=SUM` over a bound region recomputes after an `INSERT`.
//!
//! The durable metadata ([`BindingMeta`]) lives in `relstore::binding`;
//! bindings ride checkpoints as a workbook-meta section and the WAL as
//! [`WalOp::BindCreate`]/[`WalOp::BindDrop`] records, so they survive
//! `save`/`open` and crash recovery. The *mirror cells* a binding renders
//! are never sheet-WAL-logged — they are derivable, and recovery re-renders
//! every binding from the recovered tables.
//!
//! Conflict rules (see `docs/BINDING.md` for the full matrix):
//!
//! * a bound cell cannot hold a formula — formula input into a binding is
//!   rejected;
//! * a bound region owns its rectangle: when it grows (table `INSERT`,
//!   `ADD COLUMN`) it overwrites the cells it grows over;
//! * deleting a TOM binding's header row drops the binding and clears the
//!   surviving mirror rows (the table keeps its non-overlapped rows);
//! * dropping the backing table (or its last displayed column) detaches the
//!   binding, freezing the last rendered values as plain literal cells
//!   (WAL-logged so the freeze is durable).

use dataspread_relstore::wal::WalOp;
use dataspread_relstore::RowKey;
use dataspread_types::{col_to_letters, CellAddr, DataType, DsError, DsResult, Range, Value};

pub use dataspread_relstore::{BindModel, BindingMeta};

use crate::workbook::{SheetId, Workbook};

/// One live binding: the durable metadata plus the engine-side refresh
/// bookkeeping.
#[derive(Debug)]
pub(crate) struct Binding {
    pub meta: BindingMeta,
    /// The rectangle the last refresh rendered; cells in it but outside the
    /// current extent are cleared on the next refresh (region shrink).
    /// `None` right after a structural grid edit — the grid already moved
    /// the mirror cells, so there is nothing stale to clear.
    pub last_rect: Option<Range>,
    /// The backing table's [`Table::version`] the mirror last matched;
    /// refresh is skipped while it is unchanged.
    ///
    /// [`Table::version`]: dataspread_relstore::Table::version
    pub seen_version: u64,
}

impl Binding {
    /// The rectangle this binding's mirror cells currently occupy — what
    /// the checkpoint records so recovery can shrink-clear (falls back to
    /// the live extent right after a structural edit reset `last_rect`).
    pub(crate) fn rendered_rect(&self, wb: &Workbook) -> Option<Range> {
        self.last_rect.or_else(|| wb.meta_rect(&self.meta))
    }
}

/// The workbook's binding registry.
#[derive(Debug, Default)]
pub(crate) struct BindingRegistry {
    pub bindings: Vec<Binding>,
    /// Next binding id (ids are never reused).
    pub next_id: u64,
}

impl BindingRegistry {
    /// Adopt a binding (live creation or WAL/checkpoint replay), keeping
    /// `next_id` ahead of every id ever issued.
    pub fn register(&mut self, meta: BindingMeta) {
        self.next_id = self.next_id.max(meta.id + 1);
        self.bindings.push(Binding {
            meta,
            last_rect: None,
            seen_version: u64::MAX, // force the first refresh
        });
    }

    pub fn remove(&mut self, id: u64) -> Option<Binding> {
        let i = self.bindings.iter().position(|b| b.meta.id == id)?;
        Some(self.bindings.remove(i))
    }

    pub fn index_of(&self, id: u64) -> Option<usize> {
        self.bindings.iter().position(|b| b.meta.id == id)
    }

    /// `ADD COLUMN` on `table`: full-width models (TOM/ROM) gain the new
    /// column at their right edge; COM projections are unchanged. `except`
    /// skips the binding that is splicing the column at an explicit display
    /// position itself.
    pub fn on_column_added(&mut self, table: &str, idx: u32, except: Option<u64>) {
        for b in &mut self.bindings {
            if b.meta.table.eq_ignore_ascii_case(table)
                && Some(b.meta.id) != except
                && b.meta.model != BindModel::Com
                && !b.meta.cols.contains(&idx)
            {
                b.meta.cols.push(idx);
            }
        }
    }

    /// `DROP COLUMN` at schema index `idx` on `table`: every binding stops
    /// displaying it and later indices shift down. Returns the ids of
    /// bindings left with no columns — the caller detaches those.
    pub fn on_column_dropped(&mut self, table: &str, idx: u32) -> Vec<u64> {
        let mut emptied = Vec::new();
        for b in &mut self.bindings {
            if !b.meta.table.eq_ignore_ascii_case(table) {
                continue;
            }
            b.meta.cols.retain(|&c| c != idx);
            for c in &mut b.meta.cols {
                if *c > idx {
                    *c -= 1;
                }
            }
            if b.meta.cols.is_empty() {
                emptied.push(b.meta.id);
            }
        }
        emptied
    }
}

/// Deferred per-binding actions computed against pre-edit coordinates (a
/// structural edit plan). Keyed by binding id — bindings can be removed
/// while the plan is applied.
pub(crate) struct RowDeletePlan {
    id: u64,
    /// Table rows (by key) the deleted span covered.
    doomed: Vec<RowKey>,
    /// Drop the binding (its header row was deleted).
    unbind: bool,
    /// New anchor row (rows deleted above shifted it up).
    new_row: u32,
    /// Pre-edit rectangle (for clearing survivors when unbinding).
    rect: Option<Range>,
}

pub(crate) struct ColDeletePlan {
    id: u64,
    /// Schema column names to drop from the table (TOM/ROM partial overlap).
    drop_names: Vec<String>,
    /// Display slots to remove from `meta.cols` (COM partial overlap),
    /// in descending order.
    drop_slots: Vec<usize>,
    /// Drop the binding (the span covered its whole width).
    unbind: bool,
    /// New anchor column.
    new_col: u32,
}

impl Workbook {
    // ---- creation / removal ---------------------------------------------

    /// Bind a table to the region anchored at `at` on `sheet`, rendering it
    /// immediately. [`BindModel::Tom`] renders a header row of column names
    /// above the rows; [`BindModel::Rom`] renders the bare row set in
    /// positional order. For a column subset use
    /// [`Workbook::bind_table_cols`]. Returns the binding id.
    pub fn bind_table(
        &mut self,
        sheet: SheetId,
        at: CellAddr,
        table: &str,
        model: BindModel,
    ) -> DsResult<u64> {
        if model == BindModel::Com {
            return Err(DsError::Interface(
                "COM bindings select columns; use bind_table_cols".into(),
            ));
        }
        let width = self.catalog.get(table)?.schema().width();
        let cols: Vec<u32> = (0..width as u32).collect();
        self.bind_with_cols(sheet, at, table, model, cols)
    }

    /// Bind selected columns of a table ([`BindModel::Com`]): the region
    /// displays `col_names` in the given order, headerless.
    pub fn bind_table_cols(
        &mut self,
        sheet: SheetId,
        at: CellAddr,
        table: &str,
        col_names: &[&str],
    ) -> DsResult<u64> {
        let t = self.catalog.get(table)?;
        let mut cols = Vec::with_capacity(col_names.len());
        for n in col_names {
            let i = t
                .schema()
                .index_of(n)
                .ok_or_else(|| DsError::ColumnNotFound((*n).to_string()))?;
            if cols.contains(&(i as u32)) {
                return Err(DsError::Interface(format!("column `{n}` listed twice")));
            }
            cols.push(i as u32);
        }
        drop(t);
        self.bind_with_cols(sheet, at, table, BindModel::Com, cols)
    }

    fn bind_with_cols(
        &mut self,
        sheet: SheetId,
        at: CellAddr,
        table: &str,
        model: BindModel,
        cols: Vec<u32>,
    ) -> DsResult<u64> {
        self.ensure_writable()?;
        if cols.is_empty() {
            return Err(DsError::Interface(
                "a binding needs at least one column".into(),
            ));
        }
        let t = self.catalog.get(table)?;
        let table = t.name().to_string(); // canonical casing
        drop(t);
        let sheet_name = self.sheets[sheet.0].name().to_string();
        let meta = BindingMeta {
            id: self.bindings.next_id,
            sheet: sheet_name,
            table,
            row: at.row,
            col: at.col,
            model,
            cols,
        };
        // Reject overlap with another binding's current rectangle (regions
        // that later grow into each other are a documented hazard, not an
        // error).
        if let Some(rect) = self.meta_rect(&meta) {
            for b in &self.bindings.bindings {
                if b.meta
                    .sheet
                    .eq_ignore_ascii_case(self.sheets[sheet.0].name())
                {
                    if let Some(other) = self.meta_rect(&b.meta) {
                        if rect.intersects(&other) {
                            return Err(DsError::Interface(format!(
                                "region {} overlaps binding {}",
                                rect.to_a1(),
                                b.meta.id
                            )));
                        }
                    }
                }
            }
        }
        if let Some(store) = &self.store {
            store.wal.log(WalOp::BindCreate { meta: meta.clone() })?;
        }
        let id = meta.id;
        self.bindings.register(meta);
        let i = self.bindings.bindings.len() - 1;
        self.refresh_binding_slot(i, true)?;
        self.flush_grid();
        Ok(id)
    }

    /// Remove a binding, freezing the region's current values as plain
    /// literal cells (WAL-logged when durable, so the freeze survives a
    /// crash). The backing table is untouched.
    pub fn unbind(&mut self, id: u64) -> DsResult<()> {
        self.ensure_writable()?;
        let i = self
            .bindings
            .index_of(id)
            .ok_or_else(|| DsError::Interface(format!("no binding {id}")))?;
        self.detach_binding_keep_values(i)
    }

    /// Every binding id, in creation order.
    pub fn binding_ids(&self) -> Vec<u64> {
        self.bindings.bindings.iter().map(|b| b.meta.id).collect()
    }

    /// The durable metadata of a binding.
    pub fn binding_meta(&self, id: u64) -> Option<BindingMeta> {
        self.bindings
            .index_of(id)
            .map(|i| self.bindings.bindings[i].meta.clone())
    }

    /// The rectangle a binding currently covers (`None` for a headerless
    /// binding over an empty table, or when the table is gone).
    pub fn binding_rect(&self, id: u64) -> Option<Range> {
        let i = self.bindings.index_of(id)?;
        self.meta_rect(&self.bindings.bindings[i].meta)
    }

    /// The binding whose region contains `addr` on `sheet`, if any.
    pub fn binding_at(&self, sheet: SheetId, addr: CellAddr) -> Option<u64> {
        self.binding_index_at(sheet, addr)
            .map(|i| self.bindings.bindings[i].meta.id)
    }

    // ---- geometry --------------------------------------------------------

    /// The rectangle `meta` currently covers, derived live from the backing
    /// table (height = header + row count, width = displayed columns).
    pub(crate) fn meta_rect(&self, meta: &BindingMeta) -> Option<Range> {
        let t = self.catalog.get(&meta.table).ok()?;
        let height = t.row_count() as u32 + meta.model.has_header() as u32;
        let width = meta.cols.len() as u32;
        if height == 0 || width == 0 {
            return None;
        }
        Some(Range::from_bounds(
            meta.row,
            meta.col,
            meta.row + height - 1,
            meta.col + width - 1,
        ))
    }

    pub(crate) fn binding_index_at(&self, sheet: SheetId, addr: CellAddr) -> Option<usize> {
        let name = self.sheets[sheet.0].name();
        self.bindings.bindings.iter().position(|b| {
            b.meta.sheet.eq_ignore_ascii_case(name)
                && self.meta_rect(&b.meta).is_some_and(|r| r.contains(addr))
        })
    }

    fn sheet_index(&self, name: &str) -> Option<usize> {
        self.by_name.get(&name.to_ascii_lowercase()).copied()
    }

    // ---- sheet → table: routed cell edits --------------------------------

    /// Write one value into a bound cell: a data cell becomes
    /// `UPDATE`-one-attribute DML on the backing table (WAL-logged, schema-
    /// conformed — the grid then displays the conformed value); a TOM header
    /// cell renames the column. Returns the previously displayed value.
    /// The caller flushes the grid.
    pub(crate) fn bound_set_value(
        &mut self,
        bi: usize,
        sheet: SheetId,
        addr: CellAddr,
        v: Value,
    ) -> DsResult<Value> {
        let meta = self.bindings.bindings[bi].meta.clone();
        let old = self.sheets[sheet.0].value(addr);
        let slot = (addr.col - meta.col) as usize;
        let ci = meta.cols[slot] as usize;
        if meta.model.has_header() && addr.row == meta.row {
            // Header edit = RENAME COLUMN.
            let new_name = match &v {
                Value::Text(s) if !s.trim().is_empty() => s.trim().to_string(),
                _ => {
                    return Err(DsError::Interface(
                        "a bound header cell needs a non-empty text name".into(),
                    ))
                }
            };
            let mut t = self.catalog.get_mut(&meta.table)?;
            let old_name = t.schema().column(ci).name.clone();
            if !old_name.eq_ignore_ascii_case(&new_name) {
                t.rename_column(&old_name, &new_name)?;
            }
            drop(t);
            self.refresh_binding_slot(bi, true)?;
            // A rename is DDL: schema changes persist via checkpoint.
            if self.store.is_some() {
                self.checkpoint()?;
            }
            return Ok(old);
        }
        let pos = (addr.row - meta.row) as usize - meta.model.has_header() as usize;
        let mut t = self.catalog.get_mut(&meta.table)?;
        let key = t.key_at(pos).ok_or_else(|| {
            DsError::Interface(format!("bound row {pos} is gone from `{}`", meta.table))
        })?;
        t.update_cell(key, ci, v)?;
        // Fast path: the edit touched exactly one cell — mirror the
        // conformed value directly instead of re-rendering the region.
        let conformed = t.get_row_project(key, &[ci])?.swap_remove(0);
        let version = t.version();
        drop(t);
        self.sheets[sheet.0].write_bound(addr, conformed);
        let own_id = self.bindings.bindings[bi].meta.id;
        self.bindings.bindings[bi].seen_version = version;
        // Sibling bindings displaying the same table saw the DML too:
        // their versions are now behind, so a diff refresh renders the
        // edit there (no-cost when the table has a single binding).
        for id in self.binding_ids() {
            if id == own_id {
                continue;
            }
            if let Some(j) = self.bindings.index_of(id) {
                if self.bindings.bindings[j]
                    .meta
                    .table
                    .eq_ignore_ascii_case(&meta.table)
                {
                    self.refresh_binding_slot(j, false)?;
                }
            }
        }
        Ok(old)
    }

    // ---- structural edits over bindings ----------------------------------

    /// Row insertion on a sheet: bindings anchored at or below `at` shift
    /// down; an insertion *inside* a binding's data rows becomes `count`
    /// positional inserts of empty tuples (O(log n) each). Called after the
    /// grid op; `validate_insert_rows` ran before it.
    pub(crate) fn bindings_after_insert_rows(
        &mut self,
        sheet: usize,
        at: u32,
        count: u32,
    ) -> DsResult<()> {
        let name = self.sheets[sheet].name().to_string();
        // One grid-row insert maps to ONE positional insert per backing
        // table, even when several bindings of that table contain the edit
        // — the first (oldest) containing binding translates, siblings
        // just re-render.
        let mut translated: std::collections::HashSet<String> = std::collections::HashSet::new();
        for id in self.binding_ids() {
            let Some(i) = self.bindings.index_of(id) else {
                continue;
            };
            let meta = self.bindings.bindings[i].meta.clone();
            if !meta.sheet.eq_ignore_ascii_case(&name) {
                continue;
            }
            let mut t = match self.catalog.get_mut(&meta.table) {
                Ok(t) => t,
                Err(_) => continue, // vanished table: sync_bindings detaches
            };
            let data_start = meta.row + meta.model.has_header() as u32;
            let data_end = data_start + t.row_count() as u32;
            if at <= meta.row {
                self.bindings.bindings[i].meta.row += count;
            } else if at >= data_start
                && at < data_end
                && translated.insert(meta.table.to_ascii_lowercase())
            {
                let pos = (at - data_start) as usize;
                let width = t.schema().width();
                for _ in 0..count {
                    t.insert_at(pos, vec![Value::Empty; width])?;
                }
            }
            self.bindings.bindings[i].last_rect = None;
        }
        self.refresh_sheet_bindings(sheet)
    }

    /// Pre-validate a row insertion: an insertion inside a binding needs the
    /// backing schema to accept an all-NULL tuple (`NOT NULL` columns make
    /// the structural edit fail *before* the grid is touched).
    pub(crate) fn validate_insert_rows(&self, sheet: usize, at: u32) -> DsResult<()> {
        let name = self.sheets[sheet].name();
        for b in &self.bindings.bindings {
            if !b.meta.sheet.eq_ignore_ascii_case(name) {
                continue;
            }
            let Ok(t) = self.catalog.get(&b.meta.table) else {
                continue;
            };
            let data_start = b.meta.row + b.meta.model.has_header() as u32;
            let data_end = data_start + t.row_count() as u32;
            if at > b.meta.row && at >= data_start && at < data_end {
                t.schema()
                    .conform_row(vec![Value::Empty; t.schema().width()])
                    .map_err(|e| {
                        DsError::Interface(format!(
                            "cannot insert rows inside binding {}: {e}",
                            b.meta.id
                        ))
                    })?;
            }
        }
        Ok(())
    }

    /// Plan a row deletion against pre-edit coordinates: which table rows
    /// the span covers, whether the binding dies with its header, and where
    /// the anchor lands.
    pub(crate) fn plan_delete_rows(&self, sheet: usize, at: u32, count: u32) -> Vec<RowsPlan> {
        let name = self.sheets[sheet].name();
        let span_end = at.saturating_add(count);
        let mut plans = Vec::new();
        for b in &self.bindings.bindings {
            if !b.meta.sheet.eq_ignore_ascii_case(name) {
                continue;
            }
            let Ok(t) = self.catalog.get(&b.meta.table) else {
                continue;
            };
            let header = b.meta.model.has_header();
            let data_start = b.meta.row + header as u32;
            let data_end = data_start + t.row_count() as u32;
            let lo = at.max(data_start);
            let hi = span_end.min(data_end);
            let doomed = if lo < hi {
                ((lo - data_start) as usize..(hi - data_start) as usize)
                    .filter_map(|p| t.key_at(p))
                    .collect()
            } else {
                Vec::new()
            };
            let unbind = header && b.meta.row >= at && b.meta.row < span_end;
            let deleted_above = span_end.min(b.meta.row).saturating_sub(at.min(b.meta.row));
            plans.push(RowsPlan {
                inner: RowDeletePlan {
                    id: b.meta.id,
                    doomed,
                    unbind,
                    new_row: b.meta.row - deleted_above,
                    rect: self.meta_rect(&b.meta),
                },
                span: (at, count),
            });
        }
        plans
    }

    /// Apply a row-deletion plan after the grid op: positional deletes on
    /// the backing tables, anchor shifts, and header-loss unbinds (which
    /// clear the surviving mirror rows — deleting the header deletes the
    /// bound *view*; non-overlapped rows stay in the table).
    pub(crate) fn apply_delete_rows_plan(
        &mut self,
        sheet: usize,
        plans: Vec<RowsPlan>,
    ) -> DsResult<()> {
        for plan in plans {
            let RowDeletePlan {
                id,
                doomed,
                unbind,
                new_row,
                rect,
            } = plan.inner;
            let (at, count) = plan.span;
            let Some(i) = self.bindings.index_of(id) else {
                continue;
            };
            let table = self.bindings.bindings[i].meta.table.clone();
            if let Ok(mut t) = self.catalog.get_mut(&table) {
                for key in doomed {
                    // Two bindings of one table can doom the same key;
                    // delete it once.
                    if t.position_of(key).is_some() {
                        t.delete_row(key)?;
                    }
                }
            }
            if unbind {
                // Clear what survived the grid delete: pre-edit rect rows
                // outside the span, at their post-shift positions.
                if let Some(r) = rect {
                    let width = r.width();
                    for row in r.start.row..=r.end.row {
                        if row >= at && row < at + count {
                            continue; // deleted by the grid op
                        }
                        let new_r = if row >= at + count { row - count } else { row };
                        for dc in 0..width {
                            let addr = CellAddr::new(new_r, r.start.col + dc);
                            if !self.sheets[sheet].value(addr).is_empty() {
                                self.sheets[sheet].write_bound(addr, Value::Empty);
                            }
                        }
                    }
                }
                self.drop_binding_logged(id)?;
            } else {
                let b = &mut self.bindings.bindings[i];
                b.meta.row = new_row;
                b.last_rect = None;
            }
        }
        self.refresh_sheet_bindings(sheet)
    }

    /// Column insertion: bindings anchored at or right of `at` shift; an
    /// insertion *inside* a binding's columns becomes `ADD COLUMN` on the
    /// backing table (typed [`DataType::Any`], lazily defaulted — zero data
    /// pages touched under the hybrid layout), spliced into the display
    /// order at the inserted position. Schema changes checkpoint when the
    /// workbook is durable.
    pub(crate) fn bindings_after_insert_cols(
        &mut self,
        sheet: usize,
        at: u32,
        count: u32,
    ) -> DsResult<()> {
        let name = self.sheets[sheet].name().to_string();
        let mut schema_changed = false;
        // As with row inserts: one grid-column insert adds columns to a
        // backing table once, through the first containing binding.
        let mut translated: std::collections::HashSet<String> = std::collections::HashSet::new();
        for id in self.binding_ids() {
            let Some(i) = self.bindings.index_of(id) else {
                continue;
            };
            let meta = self.bindings.bindings[i].meta.clone();
            if !meta.sheet.eq_ignore_ascii_case(&name) {
                continue;
            }
            let width = meta.cols.len() as u32;
            if at <= meta.col {
                self.bindings.bindings[i].meta.col += count;
            } else if at < meta.col + width && translated.insert(meta.table.to_ascii_lowercase()) {
                if self.catalog.get(&meta.table).is_err() {
                    continue;
                }
                for k in 0..count {
                    let idx = {
                        let mut t = self.catalog.get_mut(&meta.table)?;
                        let col_name = fresh_column_name(t.schema(), at + k);
                        t.add_column(
                            dataspread_relstore::ColumnDef::new(col_name, DataType::Any),
                            Value::Empty,
                        )?;
                        (t.schema().width() - 1) as u32
                    };
                    self.bindings.bindings[i]
                        .meta
                        .cols
                        .insert((at - meta.col + k) as usize, idx);
                    // Sibling full-width bindings gain it at their edge.
                    self.bindings
                        .on_column_added(&meta.table, idx, Some(meta.id));
                    schema_changed = true;
                }
            }
            self.bindings.bindings[i].last_rect = None;
        }
        self.refresh_sheet_bindings(sheet)?;
        if schema_changed && self.store.is_some() {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Plan a column deletion: which table columns the span covers per
    /// binding, full-cover unbinds, and anchor shifts.
    pub(crate) fn plan_delete_cols(&self, sheet: usize, at: u32, count: u32) -> Vec<ColDeletePlan> {
        let name = self.sheets[sheet].name();
        let span_end = at.saturating_add(count);
        let mut plans = Vec::new();
        for b in &self.bindings.bindings {
            if !b.meta.sheet.eq_ignore_ascii_case(name) {
                continue;
            }
            let Ok(t) = self.catalog.get(&b.meta.table) else {
                continue;
            };
            let width = b.meta.cols.len() as u32;
            let lo = at.max(b.meta.col);
            let hi = span_end.min(b.meta.col + width);
            let deleted_left = span_end.min(b.meta.col).saturating_sub(at.min(b.meta.col));
            if lo >= hi {
                plans.push(ColDeletePlan {
                    id: b.meta.id,
                    drop_names: Vec::new(),
                    drop_slots: Vec::new(),
                    unbind: false,
                    new_col: b.meta.col - deleted_left,
                });
                continue;
            }
            if lo == b.meta.col && hi == b.meta.col + width {
                // The whole region is going away: detach, keep the table.
                plans.push(ColDeletePlan {
                    id: b.meta.id,
                    drop_names: Vec::new(),
                    drop_slots: Vec::new(),
                    unbind: true,
                    new_col: b.meta.col,
                });
                continue;
            }
            let slots: Vec<usize> = ((lo - b.meta.col) as usize..(hi - b.meta.col) as usize)
                .rev()
                .collect();
            let (drop_names, drop_slots) = if b.meta.model == BindModel::Com {
                // A COM binding is a projection: deleting a display column
                // narrows the view, the table keeps the data.
                (Vec::new(), slots)
            } else {
                (
                    slots
                        .iter()
                        .map(|&s| t.schema().column(b.meta.cols[s] as usize).name.clone())
                        .collect(),
                    Vec::new(),
                )
            };
            plans.push(ColDeletePlan {
                id: b.meta.id,
                drop_names,
                drop_slots,
                unbind: false,
                new_col: b.meta.col - deleted_left,
            });
        }
        plans
    }

    /// Apply a column-deletion plan after the grid op: TOM/ROM overlaps drop
    /// the table columns (`DROP COLUMN`), COM overlaps narrow the
    /// projection, full covers detach. Schema changes checkpoint when
    /// durable.
    pub(crate) fn apply_delete_cols_plan(
        &mut self,
        sheet: usize,
        plans: Vec<ColDeletePlan>,
    ) -> DsResult<()> {
        let mut schema_changed = false;
        for plan in plans {
            let Some(i) = self.bindings.index_of(plan.id) else {
                continue;
            };
            if plan.unbind {
                // The grid op already deleted the region's cells.
                self.drop_binding_logged(plan.id)?;
                continue;
            }
            let table = self.bindings.bindings[i].meta.table.clone();
            for name in &plan.drop_names {
                let idx = {
                    let mut t = self.catalog.get_mut(&table)?;
                    let idx = t
                        .schema()
                        .index_of(name)
                        .ok_or_else(|| DsError::ColumnNotFound(name.clone()))?
                        as u32;
                    t.drop_column(name)?;
                    idx
                };
                let emptied = self.bindings.on_column_dropped(&table, idx);
                for id in emptied {
                    // A sibling binding lost its last column: its cells
                    // were NOT touched by this sheet's grid op — clear them.
                    self.detach_binding_clear(id)?;
                }
                schema_changed = true;
            }
            if let Some(i) = self.bindings.index_of(plan.id) {
                let b = &mut self.bindings.bindings[i];
                for &s in &plan.drop_slots {
                    b.meta.cols.remove(s);
                }
                b.meta.col = plan.new_col;
                b.last_rect = None;
                if b.meta.cols.is_empty() {
                    let id = b.meta.id;
                    self.drop_binding_logged(id)?;
                }
            }
        }
        self.refresh_sheet_bindings(sheet)?;
        if schema_changed && self.store.is_some() {
            self.checkpoint()?;
        }
        Ok(())
    }

    // ---- table → sheet: refresh ------------------------------------------

    /// Fold table-side changes into the grid: detach bindings whose table
    /// vanished (freezing their last rendered values), then re-render every
    /// binding whose table version or extent changed. The post-statement
    /// hook of [`Workbook::execute`] and every binding entry point funnel
    /// through here.
    pub fn sync_bindings(&mut self) -> DsResult<()> {
        // Pass 1: tables that no longer exist.
        let orphaned: Vec<u64> = self
            .bindings
            .bindings
            .iter()
            .filter(|b| self.catalog.get(&b.meta.table).is_err())
            .map(|b| b.meta.id)
            .collect();
        for id in orphaned {
            if let Some(i) = self.bindings.index_of(id) {
                self.detach_binding_keep_values(i)?;
            }
        }
        // Pass 2: refresh what changed. Iterate by id — a refresh can
        // detach a binding with stale metadata, shifting indices.
        for id in self.binding_ids() {
            if let Some(i) = self.bindings.index_of(id) {
                self.refresh_binding_slot(i, false)?;
            }
        }
        Ok(())
    }

    /// Refresh every binding on one sheet (structural-edit epilogue).
    fn refresh_sheet_bindings(&mut self, sheet: usize) -> DsResult<()> {
        let name = self.sheets[sheet].name().to_string();
        for id in self.binding_ids() {
            if let Some(i) = self.bindings.index_of(id) {
                if self.bindings.bindings[i]
                    .meta
                    .sheet
                    .eq_ignore_ascii_case(&name)
                {
                    self.refresh_binding_slot(i, true)?;
                }
            }
        }
        Ok(())
    }

    /// Re-render one binding: diff the backing table into the region's
    /// cells (only genuinely changed cells are written and marked dirty, so
    /// formula invalidation stays incremental), clear cells the region
    /// shrank away from, and record the matched table version. Skips
    /// entirely when the table version and extent are unchanged (unless
    /// `force`).
    pub(crate) fn refresh_binding_slot(&mut self, i: usize, force: bool) -> DsResult<()> {
        let (meta, last_rect, seen) = {
            let b = &self.bindings.bindings[i];
            (b.meta.clone(), b.last_rect, b.seen_version)
        };
        let Some(sheet_idx) = self.sheet_index(&meta.sheet) else {
            return Err(DsError::Interface(format!(
                "binding {} names unknown sheet `{}`",
                meta.id, meta.sheet
            )));
        };
        // Stale column indices (e.g. direct catalog DDL bypassed the hooks):
        // treat as an orphaned binding rather than panicking.
        let stale = {
            let t = self.catalog.get(&meta.table)?;
            meta.cols.iter().any(|&c| c as usize >= t.schema().width())
        };
        if stale {
            return self.detach_binding_keep_values(i);
        }
        let t = self.catalog.get(&meta.table)?;
        let version = t.version();
        let header = meta.model.has_header();
        let height = t.row_count() as u32 + header as u32;
        let width = meta.cols.len() as u32;
        let rect = if height == 0 {
            None
        } else {
            Some(Range::from_bounds(
                meta.row,
                meta.col,
                meta.row + height - 1,
                meta.col + width - 1,
            ))
        };
        if !force && version == seen && rect == last_rect {
            return Ok(());
        }
        self.obs.bind_refreshes.bump();
        let mut diffed: u64 = 0;
        let cols: Vec<usize> = meta.cols.iter().map(|&c| c as usize).collect();
        let sheet = &mut self.sheets[sheet_idx];
        if header {
            for (slot, &ci) in cols.iter().enumerate() {
                let addr = CellAddr::new(meta.row, meta.col + slot as u32);
                let v = Value::text(t.schema().column(ci).name.clone());
                if sheet.value(addr) != v {
                    sheet.write_bound(addr, v);
                    diffed += 1;
                }
            }
        }
        let data_start = meta.row + header as u32;
        for (pos, item) in t.iter_rows_sparse(Some(&cols)).enumerate() {
            let (_, row) = item?;
            for (slot, &ci) in cols.iter().enumerate() {
                let addr = CellAddr::new(data_start + pos as u32, meta.col + slot as u32);
                let v = &row[ci];
                if &sheet.value(addr) != v {
                    sheet.write_bound(addr, v.clone());
                    diffed += 1;
                }
            }
        }
        // Shrink: clear cells the previous render covered but this one
        // does not.
        if let Some(old) = last_rect {
            for addr in old.iter_cells() {
                if rect.is_none_or(|r| !r.contains(addr)) && !sheet.value(addr).is_empty() {
                    sheet.write_bound(addr, Value::Empty);
                    diffed += 1;
                }
            }
        }
        self.obs.bind_cells_diffed.add(diffed);
        let b = &mut self.bindings.bindings[i];
        b.last_rect = rect;
        b.seen_version = version;
        Ok(())
    }

    // ---- detach ----------------------------------------------------------

    /// Detach a binding and clear its last rendered cells (used when the
    /// view's source is gone — e.g. its last displayed column was dropped —
    /// and no grid op already removed the cells).
    pub(crate) fn detach_binding_clear(&mut self, id: u64) -> DsResult<()> {
        if let Some(i) = self.bindings.index_of(id) {
            let meta = self.bindings.bindings[i].meta.clone();
            let rect = self.bindings.bindings[i]
                .last_rect
                .or_else(|| self.meta_rect(&meta));
            if let (Some(rect), Some(si)) = (rect, self.sheet_index(&meta.sheet)) {
                for addr in rect.iter_cells() {
                    if !self.sheets[si].value(addr).is_empty() {
                        self.sheets[si].write_bound(addr, Value::Empty);
                    }
                }
            }
        }
        self.drop_binding_logged(id)
    }

    /// Drop a binding's registration and WAL-log the drop. The region's
    /// cells are left exactly as they are.
    fn drop_binding_logged(&mut self, id: u64) -> DsResult<()> {
        if self.bindings.remove(id).is_some() {
            if let Some(store) = &self.store {
                store.wal.log(WalOp::BindDrop { id })?;
            }
        }
        Ok(())
    }

    /// Detach a binding, freezing the last rendered values as plain literal
    /// cells. Mirror cells are never sheet-WAL-logged (they are derivable
    /// while the binding lives), so the freeze re-logs them as ordinary
    /// cell writes — after a crash, recovery sees literal cells instead of
    /// a binding.
    fn detach_binding_keep_values(&mut self, i: usize) -> DsResult<()> {
        let id = self.bindings.bindings[i].meta.id;
        let meta = self.bindings.bindings[i].meta.clone();
        let rect = self
            .meta_rect(&meta)
            .or(self.bindings.bindings[i].last_rect);
        if let (Some(rect), Some(sheet_idx)) = (rect, self.sheet_index(&meta.sheet)) {
            let matrix = self.sheets[sheet_idx].region(rect);
            // `set_region` WAL-logs every cell as a literal write (one
            // transaction); the values do not change, only their provenance.
            self.sheets[sheet_idx].set_region(rect.start, &matrix)?;
        }
        self.drop_binding_logged(id)
    }
}

/// Plan wrapper pairing a binding's row-deletion actions with the edit span.
pub(crate) struct RowsPlan {
    inner: RowDeletePlan,
    span: (u32, u32),
}

/// A fresh, schema-unique column name for a column inserted through the
/// grid: the display column's letters (lower-cased), suffixed on collision.
fn fresh_column_name(schema: &dataspread_relstore::Schema, display_col: u32) -> String {
    let base = col_to_letters(display_col).to_ascii_lowercase();
    let mut name = base.clone();
    let mut suffix = 2;
    while schema.index_of(&name).is_some() {
        name = format!("{base}_{suffix}");
        suffix += 1;
    }
    name
}
