//! Cross-sheet dependency tracking and incremental recomputation.
//!
//! The paper's front half: formula cells over ranges, recomputed
//! *incrementally* — an edit re-evaluates only the formulas downstream of
//! the changed cells, in topological order, never the unrelated ones (the
//! HTAP argument: interactive latency must not pay for workbook size).
//!
//! The sheets record edits (`Sheet::take_pending`); the
//! workbook folds them in lazily, on the next read or eagerly at the end of
//! each workbook-level edit:
//!
//! 1. **Structural edits** (insert/delete rows/cols) first rewrite the
//!    references of *other* sheets' formulas pointing at the edited sheet
//!    (the edited sheet already rewrote its own), then trigger a full
//!    recompute — structure changes are rare and invalidate broadly.
//! 2. **Cell edits** seed a dirty set; the affected formulas are found by
//!    range containment against each formula's precedents, closed
//!    transitively, topologically ordered (Kahn), and re-evaluated. Cells
//!    left unordered sit on a reference cycle (or feed from one) and are
//!    poisoned with `#CYCLE!`.
//!
//! [`CalcStats`] is a view over the workbook's metrics registry
//! (`calc_passes` / `calc_cells_dirtied` / `calc_cells_recomputed`, see
//! `docs/OBSERVABILITY.md`); tests use it to pin the "unrelated cells
//! are not recomputed" property, not just final values.

use std::collections::{HashMap, HashSet, VecDeque};

use dataspread_formula::{CellProvider, GridOp};
use dataspread_types::{CellAddr, CellError, Range, SheetRef, Value};

use crate::sheet::Sheet;
use crate::workbook::Workbook;

/// Recomputation counters (cumulative over the workbook's lifetime).
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct CalcStats {
    /// Formula cells evaluated or poisoned with `#CYCLE!`.
    pub cells_recomputed: u64,
    /// Recalculation passes run (each flush of pending edits is one pass).
    pub passes: u64,
}

/// A formula cell's identity: (sheet index, position).
type CellId = (usize, CellAddr);

/// Cross-sheet cell resolution over the workbook's cached values.
pub(crate) struct WbCells<'a> {
    sheets: &'a [Sheet],
    by_name: &'a HashMap<String, usize>,
    home: usize,
}

impl CellProvider for WbCells<'_> {
    fn cell_value(&self, sheet: &SheetRef, addr: CellAddr) -> Result<Value, CellError> {
        let idx = match sheet {
            SheetRef::Current => self.home,
            SheetRef::Named(n) => *self
                .by_name
                .get(&n.to_ascii_lowercase())
                .ok_or(CellError::Ref)?,
        };
        Ok(self.sheets[idx].value(addr))
    }
}

impl Workbook {
    /// Resolve a formula's sheet qualifier to a sheet index; `None` when the
    /// named sheet does not exist (the reference evaluates to `#REF!`).
    fn resolve_sheet(&self, home: usize, s: &SheetRef) -> Option<usize> {
        match s {
            SheetRef::Current => Some(home),
            SheetRef::Named(n) => self.by_name.get(&n.to_ascii_lowercase()).copied(),
        }
    }

    /// Every formula cell in the workbook with its resolved precedents.
    fn formula_graph(&self) -> Vec<(CellId, Vec<(usize, Range)>)> {
        let mut out = Vec::new();
        for (i, sheet) in self.sheets.iter().enumerate() {
            for addr in sheet.formula_addrs() {
                let precs = match sheet.formula_ast(addr) {
                    Some(ast) => ast
                        .precedents()
                        .into_iter()
                        .filter_map(|(s, r)| self.resolve_sheet(i, &s).map(|si| (si, r)))
                        .collect(),
                    // Unparseable formulas display #NAME? and read nothing.
                    None => Vec::new(),
                };
                out.push(((i, addr), precs));
            }
        }
        out
    }

    /// Fold every sheet's pending edits into the dependency graph and
    /// recompute what they invalidate. Cheap no-op when nothing is pending.
    /// Called by every workbook-level read and at the end of every
    /// workbook-level edit, so direct `sheet_mut` edits are folded in no
    /// later than the next workbook operation.
    pub(crate) fn flush_grid(&mut self) {
        if self.sheets.iter().all(|s| !s.has_pending()) {
            return;
        }
        let mut dirty: Vec<CellId> = Vec::new();
        let mut structural: Vec<(u64, usize, GridOp)> = Vec::new();
        for i in 0..self.sheets.len() {
            let pending = self.sheets[i].take_pending();
            dirty.extend(pending.cells.into_iter().map(|a| (i, a)));
            structural.extend(pending.ops.into_iter().map(|(seq, op)| (seq, i, op)));
        }
        self.obs.calc_cells_dirtied.add(dirty.len() as u64);
        // Structural edits: the edited sheet rewrote its own references when
        // the edit happened; rewrite the references other sheets hold into
        // it, in edit-clock order. The per-formula stamp check inside
        // `adjust_foreign_refs` keeps temporal correctness when a batch
        // interleaves edits and formula writes (raw `sheet_mut` usage, WAL
        // replay): a formula typed after an edit already uses post-edit
        // coordinates and must not be shifted again.
        structural.sort_by_key(|&(seq, _, _)| seq);
        for &(seq, i, op) in &structural {
            let name = self.sheets[i].name().to_string();
            for j in 0..self.sheets.len() {
                if j != i {
                    self.sheets[j].adjust_foreign_refs(op, seq, &name);
                }
            }
        }
        if !structural.is_empty() {
            self.recompute_all();
        } else {
            self.recompute_after(&dirty);
        }
    }

    /// Re-evaluate every formula in the workbook (topological order, cycles
    /// poisoned). Used after structural edits, sheet creation, and recovery.
    pub(crate) fn recompute_all(&mut self) {
        let graph = self.formula_graph();
        let work: HashSet<CellId> = graph.iter().map(|(id, _)| *id).collect();
        self.recompute_set(graph, work);
    }

    /// Incremental pass: re-evaluate exactly the formulas downstream of the
    /// edited positions.
    fn recompute_after(&mut self, dirty: &[CellId]) {
        if dirty.is_empty() {
            return;
        }
        let graph = self.formula_graph();
        // Seed: edited cells that are themselves formulas must re-evaluate.
        let formula_ids: HashSet<CellId> = graph.iter().map(|(id, _)| *id).collect();
        let mut positions: HashSet<CellId> = dirty.iter().copied().collect();
        let mut work: HashSet<CellId> = dirty
            .iter()
            .copied()
            .filter(|id| formula_ids.contains(id))
            .collect();
        // Transitive closure: a formula joins the work set when any of its
        // precedent ranges contains a changed position (original edits or
        // formulas already scheduled).
        loop {
            let mut grew = false;
            for (id, precs) in &graph {
                if work.contains(id) {
                    continue;
                }
                let hit = precs.iter().any(|(si, range)| {
                    positions
                        .iter()
                        .any(|(pi, pa)| pi == si && range.contains(*pa))
                });
                if hit {
                    work.insert(*id);
                    positions.insert(*id);
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        if !work.is_empty() {
            self.recompute_set(graph, work);
        }
    }

    /// Evaluate the formulas in `work` in dependency order; whatever Kahn's
    /// algorithm cannot order is on (or downstream of) a cycle → `#CYCLE!`.
    fn recompute_set(&mut self, graph: Vec<(CellId, Vec<(usize, Range)>)>, work: HashSet<CellId>) {
        self.obs.calc_passes.bump();
        let prec_of: HashMap<CellId, &Vec<(usize, Range)>> = graph
            .iter()
            .filter(|(id, _)| work.contains(id))
            .map(|(id, p)| (*id, p))
            .collect();
        // Deterministic member order keeps evaluation order (and therefore
        // tie-breaks) stable across runs.
        let mut members: Vec<CellId> = work.iter().copied().collect();
        members.sort();
        // Edge g → f when f's precedents contain g (both in the work set).
        // A self-loop (`=A1` in A1) counts like any other cycle edge.
        let mut indegree: HashMap<CellId, usize> = members.iter().map(|id| (*id, 0)).collect();
        let mut dependents: HashMap<CellId, Vec<CellId>> = HashMap::new();
        for &f in &members {
            for (si, range) in prec_of.get(&f).copied().into_iter().flatten() {
                for &g in &members {
                    if g.0 == *si && range.contains(g.1) {
                        *indegree.get_mut(&f).expect("member") += 1;
                        dependents.entry(g).or_default().push(f);
                    }
                }
            }
        }
        let mut queue: VecDeque<CellId> = members
            .iter()
            .copied()
            .filter(|id| indegree[id] == 0)
            .collect();
        let mut done: HashSet<CellId> = HashSet::new();
        // Topological level per cell: roots sit at level 1, a dependent sits
        // one past its deepest evaluated precedent. The max over the pass is
        // the critical-path depth the `calc_topo_depth` gauge reports.
        let mut level: HashMap<CellId, u64> = queue.iter().map(|id| (*id, 1)).collect();
        let mut max_level: u64 = if queue.is_empty() { 0 } else { 1 };
        while let Some(id) = queue.pop_front() {
            if !done.insert(id) {
                continue;
            }
            self.eval_formula_cell(id);
            let lvl = level.get(&id).copied().unwrap_or(1);
            max_level = max_level.max(lvl);
            if let Some(deps) = dependents.get(&id) {
                // Clone: decrementing counts while iterating the edge list.
                for d in deps.clone() {
                    let slot = level.entry(d).or_insert(0);
                    *slot = (*slot).max(lvl + 1);
                    let slot = indegree.get_mut(&d).expect("member");
                    *slot -= 1;
                    if *slot == 0 {
                        queue.push_back(d);
                    }
                }
            }
        }
        self.obs.calc_topo_depth.set(max_level as i64);
        // Leftovers are cyclic (or fed by a cycle): poison them.
        for id in members {
            if !done.contains(&id) {
                self.sheets[id.0].set_cached(id.1, Value::Error(CellError::Cycle));
                self.obs.calc_cells_recomputed.bump();
            }
        }
    }

    /// Evaluate one formula cell against the workbook and cache the result.
    fn eval_formula_cell(&mut self, (i, addr): CellId) {
        let v = match self.sheets[i].formula_ast(addr) {
            Some(ast) => {
                let provider = WbCells {
                    sheets: &self.sheets,
                    by_name: &self.by_name,
                    home: i,
                };
                ast.eval(&provider)
            }
            None => return, // formula removed mid-pass; nothing to do
        };
        self.sheets[i].set_cached(addr, v);
        self.obs.calc_cells_recomputed.bump();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workbook;

    fn a(s: &str) -> CellAddr {
        CellAddr::parse_a1(s).unwrap()
    }

    #[test]
    fn formula_evaluates_and_tracks_edits() {
        let mut wb = Workbook::new();
        let s = wb.current_sheet();
        wb.set_input(s, a("A1"), "2").unwrap();
        wb.set_input(s, a("A2"), "3").unwrap();
        let v = wb.set_input(s, a("B1"), "=SUM(A1:A2)*10").unwrap();
        assert_eq!(v, Value::Int(50));
        // Editing a precedent recomputes the dependent.
        wb.set_input(s, a("A1"), "5").unwrap();
        assert_eq!(wb.cell(s, a("B1")), Value::Int(80));
        // Clearing a precedent recomputes too.
        wb.set_value(s, a("A2"), Value::Empty).unwrap();
        assert_eq!(wb.cell(s, a("B1")), Value::Int(50));
    }

    #[test]
    fn chained_formulas_recompute_in_topological_order() {
        let mut wb = Workbook::new();
        let s = wb.current_sheet();
        wb.set_input(s, a("A1"), "1").unwrap();
        wb.set_input(s, a("B1"), "=A1+1").unwrap();
        wb.set_input(s, a("C1"), "=B1+1").unwrap();
        wb.set_input(s, a("D1"), "=C1+B1").unwrap();
        assert_eq!(wb.cell(s, a("D1")), Value::Int(5));
        wb.set_input(s, a("A1"), "10").unwrap();
        assert_eq!(wb.cell(s, a("B1")), Value::Int(11));
        assert_eq!(wb.cell(s, a("C1")), Value::Int(12));
        assert_eq!(wb.cell(s, a("D1")), Value::Int(23));
    }

    #[test]
    fn unrelated_formulas_are_not_recomputed() {
        let mut wb = Workbook::new();
        let s = wb.current_sheet();
        wb.set_input(s, a("A1"), "1").unwrap();
        wb.set_input(s, a("Z1"), "100").unwrap();
        wb.set_input(s, a("B1"), "=A1*2").unwrap();
        wb.set_input(s, a("Y1"), "=Z1*2").unwrap();
        let before = wb.calc_stats().cells_recomputed;
        // Touch only A1: exactly one formula (B1) may re-evaluate.
        wb.set_input(s, a("A1"), "7").unwrap();
        let recomputed = wb.calc_stats().cells_recomputed - before;
        assert_eq!(recomputed, 1, "only the dependent formula re-evaluates");
        assert_eq!(wb.cell(s, a("B1")), Value::Int(14));
        assert_eq!(wb.cell(s, a("Y1")), Value::Int(200));
    }

    #[test]
    fn cycles_are_poisoned_not_hung() {
        let mut wb = Workbook::new();
        let s = wb.current_sheet();
        wb.set_input(s, a("A1"), "=B1+1").unwrap();
        wb.set_input(s, a("B1"), "=A1+1").unwrap();
        assert_eq!(wb.cell(s, a("A1")), Value::Error(CellError::Cycle));
        assert_eq!(wb.cell(s, a("B1")), Value::Error(CellError::Cycle));
        // Self-reference is the smallest cycle.
        wb.set_input(s, a("C1"), "=C1").unwrap();
        assert_eq!(wb.cell(s, a("C1")), Value::Error(CellError::Cycle));
        // Breaking the cycle heals both cells.
        wb.set_input(s, a("B1"), "1").unwrap();
        assert_eq!(wb.cell(s, a("A1")), Value::Int(2));
    }

    #[test]
    fn cross_sheet_dependencies_recompute() {
        let mut wb = Workbook::new();
        let data = wb.add_sheet("Data").unwrap();
        let s = wb.current_sheet();
        wb.set_input(data, a("A1"), "21").unwrap();
        wb.set_input(s, a("A1"), "=Data!A1*2").unwrap();
        assert_eq!(wb.cell(s, a("A1")), Value::Int(42));
        wb.set_input(data, a("A1"), "50").unwrap();
        assert_eq!(wb.cell(s, a("A1")), Value::Int(100));
        // A reference to a sheet that does not exist is #REF!.
        wb.set_input(s, a("B1"), "=Nope!A1").unwrap();
        assert_eq!(wb.cell(s, a("B1")), Value::Error(CellError::Ref));
        // Creating the sheet heals it.
        let nope = wb.add_sheet("Nope").unwrap();
        wb.set_input(nope, a("A1"), "9").unwrap();
        assert_eq!(wb.cell(s, a("B1")), Value::Int(9));
    }

    #[test]
    fn structural_edits_shift_references_across_sheets() {
        let mut wb = Workbook::new();
        let data = wb.add_sheet("Data").unwrap();
        let s = wb.current_sheet();
        wb.set_input(data, a("A5"), "7").unwrap();
        wb.set_input(s, a("A1"), "=Data!A5").unwrap();
        assert_eq!(wb.cell(s, a("A1")), Value::Int(7));
        // Insert rows above the referenced cell on Data: the foreign
        // reference follows the data.
        wb.insert_rows(data, 0, 3).unwrap();
        assert_eq!(wb.formula_text(s, a("A1")), Some("=Data!A8"));
        assert_eq!(wb.cell(s, a("A1")), Value::Int(7));
        // Delete the referenced row: #REF!.
        wb.delete_rows(data, 7, 1).unwrap();
        assert_eq!(wb.cell(s, a("A1")), Value::Error(CellError::Ref));
    }

    #[test]
    fn delete_rows_shrinks_ranges_and_recomputes() {
        let mut wb = Workbook::new();
        let s = wb.current_sheet();
        for r in 1..=5 {
            wb.set_input(s, a(&format!("A{r}")), "10").unwrap();
        }
        wb.set_input(s, a("C1"), "=SUM(A1:A5)").unwrap();
        assert_eq!(wb.cell(s, a("C1")), Value::Int(50));
        wb.delete_rows(s, 1, 2).unwrap();
        assert_eq!(wb.formula_text(s, a("C1")), Some("=SUM(A1:A3)"));
        assert_eq!(wb.cell(s, a("C1")), Value::Int(30));
        wb.insert_cols(s, 0, 1).unwrap();
        assert_eq!(wb.formula_text(s, a("D1")), Some("=SUM(B1:B3)"));
        assert_eq!(wb.cell(s, a("D1")), Value::Int(30));
    }

    #[test]
    fn later_formulas_are_not_double_shifted_by_batched_structural_edits() {
        // Raw `sheet_mut` edits batch into one flush. A formula typed AFTER
        // a structural edit already uses post-edit coordinates; the deferred
        // foreign-reference rewrite must leave it alone (edit-clock stamps).
        let mut wb = Workbook::new();
        let data = wb.add_sheet("Data").unwrap();
        let s = wb.current_sheet();
        wb.set_input(data, a("A5"), "9").unwrap();
        // Pending batch: structural edit, THEN a formula using post-shift
        // coordinates (A5 moved to A6).
        wb.sheet_mut(data).insert_rows(0, 1).unwrap();
        wb.sheet_mut(s).set_input(a("B1"), "=Data!A6").unwrap();
        assert_eq!(wb.cell(s, a("B1")), Value::Int(9));
        assert_eq!(wb.formula_text(s, a("B1")), Some("=Data!A6"));
        // The reverse order in one batch still shifts the older formula.
        wb.sheet_mut(s).set_input(a("B2"), "=Data!A6").unwrap();
        wb.sheet_mut(data).insert_rows(0, 1).unwrap();
        assert_eq!(wb.cell(s, a("B2")), Value::Int(9));
        assert_eq!(wb.formula_text(s, a("B2")), Some("=Data!A7"));
    }

    #[test]
    fn direct_sheet_edits_fold_in_on_next_read() {
        let mut wb = Workbook::new();
        let s = wb.current_sheet();
        wb.set_input(s, a("A1"), "4").unwrap();
        wb.set_input(s, a("B1"), "=A1*3").unwrap();
        // Raw sheet access (the escape hatch): no immediate recompute…
        wb.sheet_mut(s).set_input(a("A1"), "10").unwrap();
        // …but any workbook-level read folds it in.
        assert_eq!(wb.cell(s, a("B1")), Value::Int(30));
    }

    #[test]
    fn formula_results_visible_to_sql() {
        let mut wb = Workbook::new();
        let s = wb.current_sheet();
        wb.set_input(s, a("A1"), "40").unwrap();
        wb.set_input(s, a("B1"), "=A1+2").unwrap();
        let (_, rows) = wb.query("SELECT RANGEVALUE(B1)").unwrap();
        assert_eq!(rows, vec![vec![Value::Int(42)]]);
        // Via RANGETABLE too.
        wb.set_input(s, a("A2"), "=A1/2").unwrap();
        let (_, rows) = wb.query("SELECT SUM(a) FROM RANGETABLE(A1:A2)").unwrap();
        assert_eq!(rows, vec![vec![Value::Int(60)]]);
        // And stale caches are flushed even when the edit bypassed the
        // workbook API.
        wb.sheet_mut(s).set_input(a("A1"), "100").unwrap();
        let (_, rows) = wb.query("SELECT RANGEVALUE(B1)").unwrap();
        assert_eq!(rows, vec![vec![Value::Int(102)]]);
    }

    #[test]
    fn error_propagation_through_dependents() {
        let mut wb = Workbook::new();
        let s = wb.current_sheet();
        wb.set_input(s, a("A1"), "1").unwrap();
        wb.set_input(s, a("B1"), "=A1/0").unwrap();
        wb.set_input(s, a("C1"), "=B1+1").unwrap();
        assert_eq!(wb.cell(s, a("B1")), Value::Error(CellError::Div0));
        assert_eq!(wb.cell(s, a("C1")), Value::Error(CellError::Div0));
        // IF can shield dependents from the error.
        wb.set_input(s, a("D1"), "=IF(A1>0,A1,B1)").unwrap();
        assert_eq!(wb.cell(s, a("D1")), Value::Int(1));
    }
}
