//! The concurrent engine: snapshot-isolated parallel reads and sharded
//! parallel writes over one shared workbook.
//!
//! Three access tiers, cheapest first (protocol details and the full lock
//! discipline: `docs/CONCURRENCY.md`):
//!
//! 1. **[`WorkbookSnapshot`]** — an owned, immutable copy-on-write image of
//!    every table. Taking one costs O(#pages) `Arc` clones per table; using
//!    one costs nothing in locks. Scans over it never block and are never
//!    blocked.
//! 2. **[`ReadSession`]** — a borrowed `&Workbook` view that runs `SELECT`s
//!    against the live catalog. Each table scan plans against a
//!    [`TableSnapshot`] taken at plan time, so the query holds a table's
//!    read lock only for the snapshot clone, not for the scan.
//! 3. **[`SharedWorkbook`]** — `Arc<RwLock<Workbook>>` for multi-threaded
//!    engines. Readers share the workbook read lock; whole-workbook edits
//!    (sheet input, SQL DML/DDL — anything that may touch the
//!    workbook-global formula graph or bindings) take the write lock; and
//!    [`SharedWorkbook::with_table_mut`] threads DML to *one* table through
//!    the workbook **read** lock plus that table's shard write lock, so
//!    writers to disjoint tables run in parallel and each logged operation
//!    rides the WAL's group commit.
//!
//! Snapshot semantics: a snapshot (tier 1, or the per-scan snapshots of
//! tier 2) observes exactly the operations that completed before it was
//! taken — never a torn row, never an uncommitted in-progress write,
//! because the snapshot clone itself runs under the table's read lock which
//! excludes the writer holding the shard exclusively.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use dataspread_relstore::{GroupCommitStats, Table, TableSnapshot};
use dataspread_sql::ast::Statement;
use dataspread_sql::parser::parse_statement;
use dataspread_types::{DsError, DsResult, Value};

use crate::engine::QueryResult;
use crate::exec::{run_select, ExecCtx};
use crate::workbook::Workbook;

// ---- tier 2: the borrowed read session ---------------------------------

/// A `&self`-based query handle over a workbook: runs `SELECT` statements
/// (and takes snapshots) without `&mut Workbook`.
///
/// Because every public mutating entry point of [`Workbook`] folds pending
/// formula recomputation before returning, a workbook *at rest* — one no
/// thread is currently mutating — always shows computed values, so a read
/// session needs no flush of its own. `RANGEVALUE`/`RANGETABLE` resolve
/// against that at-rest grid.
pub struct ReadSession<'a> {
    wb: &'a Workbook,
}

impl Workbook {
    /// Open a read-only query session. See [`ReadSession`].
    pub fn read_session(&self) -> ReadSession<'_> {
        ReadSession { wb: self }
    }

    /// Group-commit counters of the attached WAL (commits vs fsyncs), or
    /// `None` when the workbook has no durable store.
    pub fn group_commit_stats(&self) -> Option<GroupCommitStats> {
        self.store.as_ref().map(|s| s.wal.group_commit_stats())
    }

    /// An owned consistent image of every catalog table. See
    /// [`WorkbookSnapshot`].
    pub fn snapshot(&self) -> WorkbookSnapshot {
        self.read_session().snapshot()
    }
}

impl ReadSession<'_> {
    /// Run one `SELECT` and return `(column names, rows)`. Any other
    /// statement kind is rejected — mutation goes through `&mut Workbook`
    /// (or [`SharedWorkbook::with_table_mut`]).
    pub fn query(&self, sql: &str) -> DsResult<(Vec<String>, Vec<Vec<Value>>)> {
        let stmt = parse_statement(sql)?;
        let sel = match stmt {
            Statement::Select(sel) => sel,
            other => {
                let kind = match other {
                    Statement::Select(_) => unreachable!(),
                    Statement::Insert { .. } => "INSERT",
                    Statement::Update { .. } => "UPDATE",
                    Statement::Delete { .. } => "DELETE",
                    Statement::CreateTable { .. } => "CREATE TABLE",
                    Statement::DropTable { .. } => "DROP TABLE",
                    _ => "a non-SELECT statement",
                };
                return Err(DsError::Sql(format!(
                    "read session accepts SELECT only, got {kind}"
                )));
            }
        };
        let resolver = self.wb.sheet_ctx();
        let ctx = ExecCtx {
            catalog: self.wb.catalog(),
            resolver: &resolver,
            options: self.wb.exec_options(),
            metrics: self.wb.obs.exec.clone(),
        };
        run_select(&ctx, &sel)
    }

    /// Like [`ReadSession::query`], shaped as a [`QueryResult`].
    pub fn execute(&self, sql: &str) -> DsResult<QueryResult> {
        let (columns, rows) = self.query(sql)?;
        Ok(QueryResult::Rows { columns, rows })
    }

    /// A consistent snapshot of one table.
    pub fn table_snapshot(&self, table: &str) -> DsResult<TableSnapshot> {
        self.wb.catalog().snapshot_of(table)
    }

    /// A consistent per-table image of the whole catalog. Tables are
    /// snapshot one at a time (each under its own read lock); the set is
    /// point-in-time per table, not across tables.
    pub fn snapshot(&self) -> WorkbookSnapshot {
        let catalog = self.wb.catalog();
        let mut tables = HashMap::new();
        for name in catalog.table_names() {
            if let Ok(snap) = catalog.snapshot_of(&name) {
                tables.insert(name.to_ascii_lowercase(), snap);
            }
        }
        WorkbookSnapshot { tables }
    }
}

// ---- tier 1: the owned snapshot ----------------------------------------

/// An owned, immutable image of a workbook's tables: every lookup and scan
/// runs without taking any lock, isolated from all later writes.
///
/// Cheap by construction — pages are copy-on-write ([`TableSnapshot`]), so
/// the snapshot shares page memory with the live tables until a writer
/// actually changes a shared page.
#[derive(Clone, Debug)]
pub struct WorkbookSnapshot {
    /// Keyed by lower-cased table name (SQL identifiers are
    /// case-insensitive).
    tables: HashMap<String, TableSnapshot>,
}

impl WorkbookSnapshot {
    /// The snapshot of one table, by (case-insensitive) name.
    pub fn table(&self, name: &str) -> DsResult<&TableSnapshot> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| DsError::TableNotFound(name.to_string()))
    }

    /// Table names, sorted for deterministic output.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.values().map(|t| t.name().to_string()).collect();
        names.sort();
        names
    }

    /// Number of tables captured.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when no tables were captured.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

// ---- tier 3: the shared workbook ---------------------------------------

/// A workbook behind `Arc<RwLock<..>>`: clone handles freely across
/// threads.
///
/// Lock layering (top to bottom; see `docs/CONCURRENCY.md`):
///
/// * the **workbook lock** — read-shared by queries and by
///   [`SharedWorkbook::with_table_mut`], write-exclusive for whole-workbook
///   edits ([`SharedWorkbook::write`]);
/// * each table's **shard lock** — what actually serializes writers of one
///   table, which is exactly what lets writers of *different* tables run
///   in parallel under the shared workbook read lock.
///
/// Poisoning is absorbed (`into_inner`): a panicking writer may leave a
/// half-applied *logical* edit, but never a torn page — page mutation goes
/// through `&mut` methods that complete or panic before publishing.
#[derive(Clone, Debug)]
pub struct SharedWorkbook {
    inner: Arc<RwLock<Workbook>>,
}

impl SharedWorkbook {
    /// Wrap a workbook for shared use.
    pub fn new(wb: Workbook) -> Self {
        SharedWorkbook {
            inner: Arc::new(RwLock::new(wb)),
        }
    }

    /// Run `f` under the workbook read lock with a [`ReadSession`].
    /// Concurrent callers proceed in parallel; whole-workbook writers wait.
    pub fn read<R>(&self, f: impl FnOnce(&ReadSession<'_>) -> R) -> R {
        let g = self.inner.read().unwrap_or_else(|e| e.into_inner());
        f(&g.read_session())
    }

    /// Run `f` under the workbook **write** lock — the path for sheet
    /// edits, SQL DML/DDL through [`Workbook::execute`], save/checkpoint:
    /// anything that may touch the workbook-global formula graph, the
    /// bindings, or the sheet grid.
    pub fn write<R>(&self, f: impl FnOnce(&mut Workbook) -> R) -> R {
        let mut g = self.inner.write().unwrap_or_else(|e| e.into_inner());
        f(&mut g)
    }

    /// Parallel-write fast path: run `f` on one table under the workbook
    /// *read* lock plus that table's shard write lock. DML to disjoint
    /// tables proceeds concurrently, and with a durable store attached each
    /// logged operation auto-commits through the WAL's group commit (N
    /// concurrent committers, ~1 fsync per batch).
    ///
    /// This is the HTAP path for tables **not** bound to sheet regions: it
    /// bypasses binding re-sync and formula recompute (there is no sheet
    /// state to update). Use [`SharedWorkbook::write`] +
    /// [`Workbook::execute`] for bound tables.
    ///
    /// Deadlock discipline: `f` must not touch the catalog or any other
    /// shard — it owns exactly one shard lock for its duration.
    pub fn with_table_mut<R>(
        &self,
        table: &str,
        f: impl FnOnce(&mut Table) -> DsResult<R>,
    ) -> DsResult<R> {
        let g = self.inner.read().unwrap_or_else(|e| e.into_inner());
        // Reject before taking the shard lock: once the engine is read-only
        // every write path must fail without mutating in-memory state.
        g.ensure_writable()?;
        let mut t = g.catalog().get_mut(table)?;
        f(&mut t)
    }

    /// The engine's current health, under the workbook read lock. Health is
    /// derived from the attached WAL's poison state, so every clone of this
    /// handle observes a degradation the instant it happens.
    pub fn health(&self) -> crate::workbook::EngineHealth {
        let g = self.inner.read().unwrap_or_else(|e| e.into_inner());
        g.health()
    }

    /// Take a [`WorkbookSnapshot`] under the workbook read lock.
    pub fn snapshot(&self) -> WorkbookSnapshot {
        self.read(|s| s.snapshot())
    }

    /// Convenience: one `SELECT` under the read lock.
    pub fn query(&self, sql: &str) -> DsResult<(Vec<String>, Vec<Vec<Value>>)> {
        self.read(|s| s.query(sql))
    }

    /// Recover the owned workbook if this is the last handle; otherwise
    /// hand the shared handle back.
    pub fn try_into_inner(self) -> Result<Workbook, SharedWorkbook> {
        match Arc::try_unwrap(self.inner) {
            Ok(lock) => Ok(lock.into_inner().unwrap_or_else(|e| e.into_inner())),
            Err(inner) => Err(SharedWorkbook { inner }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn seeded() -> Workbook {
        let mut wb = Workbook::new();
        wb.execute("CREATE TABLE t (id INT, v INT)").unwrap();
        wb.execute("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)")
            .unwrap();
        wb
    }

    #[test]
    fn read_session_selects_without_mut() {
        let wb = seeded();
        let s = wb.read_session();
        let (cols, rows) = s.query("SELECT v FROM t WHERE id >= 2").unwrap();
        assert_eq!(cols, vec!["v"]);
        assert_eq!(rows, vec![vec![Value::Int(20)], vec![Value::Int(30)]]);
    }

    #[test]
    fn read_session_rejects_dml() {
        let wb = seeded();
        let err = wb.read_session().query("DELETE FROM t").unwrap_err();
        assert!(matches!(err, DsError::Sql(_)), "{err:?}");
    }

    #[test]
    fn workbook_snapshot_is_isolated() {
        let mut wb = seeded();
        let snap = wb.snapshot();
        wb.execute("INSERT INTO t VALUES (4, 40)").unwrap();
        wb.execute("CREATE TABLE u (x INT)").unwrap();
        assert_eq!(snap.table("t").unwrap().row_count(), 3, "pre-insert image");
        assert!(snap.table("u").is_err(), "created after the snapshot");
        assert_eq!(snap.table_names(), vec!["t"]);
        assert_eq!(wb.catalog().get("t").unwrap().row_count(), 4);
    }

    #[test]
    fn shared_parallel_disjoint_writes_and_reads() {
        let mut wb = Workbook::new();
        wb.execute("CREATE TABLE a (id INT)").unwrap();
        wb.execute("CREATE TABLE b (id INT)").unwrap();
        let shared = SharedWorkbook::new(wb);
        let writers: Vec<_> = ["a", "b"]
            .into_iter()
            .map(|name| {
                let sh = shared.clone();
                thread::spawn(move || {
                    for i in 0..100 {
                        sh.with_table_mut(name, |t| t.insert(vec![Value::Int(i)]))
                            .unwrap();
                    }
                })
            })
            .collect();
        let reader = {
            let sh = shared.clone();
            thread::spawn(move || {
                // Row counts only ever grow; a snapshot never sees a torn row.
                let mut last = 0;
                loop {
                    let n = sh.snapshot().table("a").unwrap().row_count();
                    assert!(n >= last);
                    last = n;
                    if n == 100 {
                        break;
                    }
                }
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        reader.join().unwrap();
        let wb = shared.try_into_inner().expect("last handle");
        assert_eq!(wb.catalog().get("a").unwrap().row_count(), 100);
        assert_eq!(wb.catalog().get("b").unwrap().row_count(), 100);
    }
}
