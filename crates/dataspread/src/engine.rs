//! The SQL executor: evaluates parsed statements against the catalog, with
//! positional references resolved from the live workbook.
//!
//! This is the query-processing half the `dataspread_sql` crate deliberately
//! leaves out: the front end parses and binds; this module plans nothing
//! (every query runs as scan → filter → group → project → order, joins as
//! nested loops) but implements the full statement surface the parser
//! accepts: `SELECT` (joins, aggregation, `DISTINCT`, `ORDER BY`,
//! `LIMIT`/`OFFSET`, subqueries, `RANGETABLE`), the three DML families, and
//! DDL including the paper's cheap `ALTER TABLE` path.

use std::cmp::Ordering;
use std::collections::HashMap;

use dataspread_relstore::{Catalog, ColumnDef, RowKey, Schema};
use dataspread_sql::ast::{
    AlterAction, Expr, InsertSource, JoinConstraint, JoinKind, OrderItem, SelectItem, SelectStmt,
    Statement, TableExpr,
};
use dataspread_sql::expr::{agg_key, bind, eval, sql_compare, truth, AggContext, BExpr, ColInfo};
use dataspread_sql::resolver::SheetResolver;
use dataspread_types::{DsError, DsResult, Value};

/// Outcome of one executed statement.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryResult {
    /// A result set (`SELECT`).
    Rows {
        columns: Vec<String>,
        rows: Vec<Vec<Value>>,
    },
    /// Row count touched by DML.
    Affected(usize),
    /// A DDL statement completed.
    Ddl,
}

impl QueryResult {
    /// The result set, if this was a query.
    pub fn rows(&self) -> Option<(&[String], &[Vec<Value>])> {
        match self {
            QueryResult::Rows { columns, rows } => Some((columns, rows)),
            _ => None,
        }
    }

    /// The affected-row count, if this was DML.
    pub fn affected(&self) -> Option<usize> {
        match self {
            QueryResult::Affected(n) => Some(*n),
            _ => None,
        }
    }
}

/// Execute one statement.
pub(crate) fn execute(
    catalog: &mut Catalog,
    resolver: &dyn SheetResolver,
    stmt: Statement,
) -> DsResult<QueryResult> {
    match stmt {
        Statement::Select(sel) => {
            let (columns, rows) = run_select(catalog, resolver, &sel)?;
            Ok(QueryResult::Rows { columns, rows })
        }
        Statement::Insert {
            table,
            columns,
            source,
        } => run_insert(catalog, resolver, &table, columns.as_deref(), &source),
        Statement::Update {
            table,
            sets,
            filter,
        } => run_update(catalog, resolver, &table, &sets, filter.as_ref()),
        Statement::Delete { table, filter } => {
            run_delete(catalog, resolver, &table, filter.as_ref())
        }
        Statement::CreateTable {
            name,
            columns,
            if_not_exists,
        } => {
            if if_not_exists && catalog.contains(&name) {
                return Ok(QueryResult::Ddl);
            }
            let mut defs = Vec::with_capacity(columns.len());
            let mut pkey: Vec<String> = Vec::new();
            for spec in columns {
                let mut def = ColumnDef::new(spec.name.clone(), spec.dtype);
                if spec.not_null {
                    def = def.not_null();
                }
                if spec.primary_key {
                    pkey.push(spec.name);
                }
                defs.push(def);
            }
            let mut schema = Schema::new(defs)?;
            if !pkey.is_empty() {
                let names: Vec<&str> = pkey.iter().map(String::as_str).collect();
                schema = schema.with_pkey(&names)?;
            }
            catalog.create_table(&name, schema)?;
            Ok(QueryResult::Ddl)
        }
        Statement::DropTable { name, if_exists } => {
            if if_exists && !catalog.contains(&name) {
                return Ok(QueryResult::Ddl);
            }
            catalog.drop_table(&name)?;
            Ok(QueryResult::Ddl)
        }
        Statement::AlterTable { name, action } => {
            match action {
                AlterAction::AddColumn { spec, default } => {
                    let default = match default {
                        Some(e) => eval_standalone(&e, resolver)?,
                        None => Value::Empty,
                    };
                    let mut def = ColumnDef::new(spec.name, spec.dtype);
                    if spec.not_null {
                        def = def.not_null();
                    }
                    if spec.primary_key {
                        return Err(DsError::Sql(
                            "ADD COLUMN cannot introduce a primary key".into(),
                        ));
                    }
                    catalog.get_mut(&name)?.add_column(def, default)?;
                }
                AlterAction::DropColumn(col) => {
                    catalog.get_mut(&name)?.drop_column(&col)?;
                }
                AlterAction::RenameColumn { from, to } => {
                    catalog.get_mut(&name)?.rename_column(&from, &to)?;
                }
            }
            Ok(QueryResult::Ddl)
        }
    }
}

/// Evaluate an expression with no row context (DEFAULTs, LIMIT, VALUES).
fn eval_standalone(e: &Expr, resolver: &dyn SheetResolver) -> DsResult<Value> {
    let b = bind(e, &[], None, resolver)?;
    eval(&b, &[], &[])
}

// ---- relations -----------------------------------------------------------

/// An intermediate relation: column metadata plus materialized rows.
struct Relation {
    cols: Vec<ColInfo>,
    rows: Vec<Vec<Value>>,
}

fn table_relation(
    catalog: &Catalog,
    resolver: &dyn SheetResolver,
    te: &TableExpr,
) -> DsResult<Relation> {
    match te {
        TableExpr::Named { name, alias } => {
            let t = catalog.get(name)?;
            let q = alias.as_deref().unwrap_or(name);
            let cols = t
                .schema()
                .columns()
                .iter()
                .map(|c| ColInfo::new(Some(q), c.name.clone()))
                .collect();
            let rows = t.scan()?.into_iter().map(|(_, r)| r).collect();
            Ok(Relation { cols, rows })
        }
        TableExpr::RangeTable { range, alias } => {
            let (names, rows) = resolver.range_table(range)?;
            let cols = names
                .into_iter()
                .map(|n| ColInfo::new(alias.as_deref(), n))
                .collect();
            Ok(Relation { cols, rows })
        }
        TableExpr::Subquery { query, alias } => {
            let (names, rows) = run_select(catalog, resolver, query)?;
            let cols = names
                .into_iter()
                .map(|n| ColInfo::new(Some(alias.as_str()), n))
                .collect();
            Ok(Relation { cols, rows })
        }
        TableExpr::Join {
            left,
            right,
            kind,
            constraint,
        } => {
            let l = table_relation(catalog, resolver, left)?;
            let r = table_relation(catalog, resolver, right)?;
            join(l, r, *kind, constraint, resolver)
        }
    }
}

/// Nested-loop join. `Natural` equi-joins on all same-named columns and
/// merges them; `On` evaluates the predicate over the concatenated row.
fn join(
    left: Relation,
    right: Relation,
    kind: JoinKind,
    constraint: &JoinConstraint,
    resolver: &dyn SheetResolver,
) -> DsResult<Relation> {
    if let JoinConstraint::Natural = constraint {
        // Pairs of (left idx, right idx) sharing a name.
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for (li, lc) in left.cols.iter().enumerate() {
            if let Some(ri) = right
                .cols
                .iter()
                .position(|rc| rc.name.eq_ignore_ascii_case(&lc.name))
            {
                pairs.push((li, ri));
            }
        }
        let keep_right: Vec<usize> = (0..right.cols.len())
            .filter(|ri| !pairs.iter().any(|(_, p)| p == ri))
            .collect();
        let mut cols = left.cols.clone();
        cols.extend(keep_right.iter().map(|&ri| right.cols[ri].clone()));
        let mut rows = Vec::new();
        for lrow in &left.rows {
            let mut matched = false;
            for rrow in &right.rows {
                let ok = pairs.iter().try_fold(true, |acc, &(li, ri)| {
                    Ok::<bool, DsError>(
                        acc && sql_compare(&lrow[li], &rrow[ri])? == Some(Ordering::Equal),
                    )
                })?;
                if ok {
                    matched = true;
                    let mut out = lrow.clone();
                    out.extend(keep_right.iter().map(|&ri| rrow[ri].clone()));
                    rows.push(out);
                }
            }
            if !matched && kind == JoinKind::Left {
                let mut out = lrow.clone();
                out.extend(std::iter::repeat_n(Value::Empty, keep_right.len()));
                rows.push(out);
            }
        }
        return Ok(Relation { cols, rows });
    }

    let mut cols = left.cols.clone();
    cols.extend(right.cols.iter().cloned());
    let pred = match constraint {
        JoinConstraint::On(e) => Some(bind(e, &cols, None, resolver)?),
        JoinConstraint::None => None,
        JoinConstraint::Natural => unreachable!("handled above"),
    };
    let right_width = right.cols.len();
    let mut rows = Vec::new();
    for lrow in &left.rows {
        let mut matched = false;
        for rrow in &right.rows {
            let mut combined = lrow.clone();
            combined.extend(rrow.iter().cloned());
            let ok = match &pred {
                Some(p) => truth(&eval(p, &combined, &[])?)? == Some(true),
                None => true,
            };
            if ok {
                matched = true;
                rows.push(combined);
            }
        }
        if !matched && kind == JoinKind::Left {
            let mut out = lrow.clone();
            out.extend(std::iter::repeat_n(Value::Empty, right_width));
            rows.push(out);
        }
    }
    Ok(Relation { cols, rows })
}

// ---- SELECT --------------------------------------------------------------

fn run_select(
    catalog: &Catalog,
    resolver: &dyn SheetResolver,
    sel: &SelectStmt,
) -> DsResult<(Vec<String>, Vec<Vec<Value>>)> {
    let source = match &sel.from {
        Some(te) => table_relation(catalog, resolver, te)?,
        // `SELECT 1+1`: one anonymous row, no columns.
        None => Relation {
            cols: Vec::new(),
            rows: vec![Vec::new()],
        },
    };

    // WHERE.
    let mut rows = source.rows;
    if let Some(f) = &sel.filter {
        let p = bind(f, &source.cols, None, resolver)?;
        let mut kept = Vec::with_capacity(rows.len());
        for r in rows {
            if truth(&eval(&p, &r, &[])?)? == Some(true) {
                kept.push(r);
            }
        }
        rows = kept;
    }

    // Aggregate discovery across projection, HAVING, and ORDER BY.
    let mut agg_exprs: Vec<Expr> = Vec::new();
    let mut slots: HashMap<String, usize> = HashMap::new();
    for item in &sel.projection {
        if let SelectItem::Expr { expr, .. } = item {
            collect_aggregates(expr, &mut agg_exprs, &mut slots);
        }
    }
    if let Some(h) = &sel.having {
        collect_aggregates(h, &mut agg_exprs, &mut slots);
    }
    for oi in &sel.order_by {
        collect_aggregates(&oi.expr, &mut agg_exprs, &mut slots);
    }
    let grouped = !sel.group_by.is_empty() || !agg_exprs.is_empty() || sel.having.is_some();

    // Evaluation contexts: (representative row, aggregate slot values).
    let contexts: Vec<(Vec<Value>, Vec<Value>)> = if grouped {
        let key_exprs: Vec<BExpr> = sel
            .group_by
            .iter()
            .map(|e| bind(e, &source.cols, None, resolver))
            .collect::<DsResult<_>>()?;
        let mut groups: Vec<(Vec<Value>, Vec<Vec<Value>>)> = Vec::new();
        for r in rows {
            let key: Vec<Value> = key_exprs
                .iter()
                .map(|e| eval(e, &r, &[]))
                .collect::<DsResult<_>>()?;
            match groups.iter_mut().find(|(k, _)| vals_eq(k, &key)) {
                Some((_, members)) => members.push(r),
                None => groups.push((key, vec![r])),
            }
        }
        // A global aggregate over zero rows still produces one group
        // (COUNT(*) = 0); a grouped query over zero rows produces none.
        if groups.is_empty() && sel.group_by.is_empty() {
            groups.push((Vec::new(), Vec::new()));
        }
        let specs: Vec<AggSpec> = agg_exprs
            .iter()
            .map(|e| AggSpec::compile(e, &source.cols, resolver))
            .collect::<DsResult<_>>()?;
        let mut ctxs = Vec::with_capacity(groups.len());
        for (_, members) in groups {
            let aggs: Vec<Value> = specs
                .iter()
                .map(|s| s.compute(&members))
                .collect::<DsResult<_>>()?;
            let rep = members
                .into_iter()
                .next()
                .unwrap_or_else(|| vec![Value::Empty; source.cols.len()]);
            ctxs.push((rep, aggs));
        }
        ctxs
    } else {
        rows.into_iter().map(|r| (r, Vec::new())).collect()
    };

    let agg_ctx = AggContext { slots };
    let agg_ref = if grouped { Some(&agg_ctx) } else { None };

    // HAVING.
    let mut contexts = contexts;
    if let Some(h) = &sel.having {
        let p = bind(h, &source.cols, agg_ref, resolver)?;
        let mut kept = Vec::with_capacity(contexts.len());
        for (r, a) in contexts {
            if truth(&eval(&p, &r, &a)?)? == Some(true) {
                kept.push((r, a));
            }
        }
        contexts = kept;
    }

    // Projection expansion.
    let mut proj: Vec<(BExpr, String)> = Vec::new();
    for item in &sel.projection {
        match item {
            SelectItem::Wildcard => {
                if grouped {
                    return Err(DsError::Sql(
                        "SELECT * is not valid with GROUP BY or aggregates".into(),
                    ));
                }
                if source.cols.is_empty() {
                    return Err(DsError::Sql("SELECT * requires a FROM clause".into()));
                }
                for (i, c) in source.cols.iter().enumerate() {
                    proj.push((BExpr::Col(i), c.name.clone()));
                }
            }
            SelectItem::QualifiedWildcard(t) => {
                if grouped {
                    return Err(DsError::Sql(
                        "SELECT t.* is not valid with GROUP BY or aggregates".into(),
                    ));
                }
                let tq = t.to_ascii_lowercase();
                let before = proj.len();
                for (i, c) in source.cols.iter().enumerate() {
                    if c.qualifier.as_deref() == Some(tq.as_str()) {
                        proj.push((BExpr::Col(i), c.name.clone()));
                    }
                }
                if proj.len() == before {
                    return Err(DsError::Sql(format!("unknown table alias `{t}`")));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let b = bind(expr, &source.cols, agg_ref, resolver)?;
                let name = alias.clone().unwrap_or_else(|| expr_label(expr));
                proj.push((b, name));
            }
        }
    }

    // ORDER BY keys: output ordinal, output alias, or source expression.
    enum SortSrc {
        Output(usize),
        Ctx(BExpr),
    }
    let mut order: Vec<(SortSrc, bool)> = Vec::with_capacity(sel.order_by.len());
    for OrderItem { expr, asc } in &sel.order_by {
        let src = match expr {
            Expr::Literal(Value::Int(k)) => {
                let i = *k;
                if i < 1 || i as usize > proj.len() {
                    return Err(DsError::Sql(format!(
                        "ORDER BY position {i} is out of range (1..={})",
                        proj.len()
                    )));
                }
                SortSrc::Output(i as usize - 1)
            }
            Expr::Column { table: None, name } => {
                let matches: Vec<usize> = proj
                    .iter()
                    .enumerate()
                    .filter(|(_, (_, n))| n.eq_ignore_ascii_case(name))
                    .map(|(i, _)| i)
                    .collect();
                match matches.as_slice() {
                    [one] => SortSrc::Output(*one),
                    [] => SortSrc::Ctx(bind(expr, &source.cols, agg_ref, resolver)?),
                    _ => {
                        return Err(DsError::Sql(format!(
                            "ORDER BY column `{name}` is ambiguous"
                        )))
                    }
                }
            }
            e => SortSrc::Ctx(bind(e, &source.cols, agg_ref, resolver)?),
        };
        order.push((src, *asc));
    }

    // Produce output rows with their sort keys.
    let mut out: Vec<(Vec<Value>, Vec<Value>)> = Vec::with_capacity(contexts.len());
    for (r, a) in &contexts {
        let vals: Vec<Value> = proj
            .iter()
            .map(|(b, _)| eval(b, r, a))
            .collect::<DsResult<_>>()?;
        let keys: Vec<Value> = order
            .iter()
            .map(|(src, _)| match src {
                SortSrc::Output(i) => Ok(vals[*i].clone()),
                SortSrc::Ctx(b) => eval(b, r, a),
            })
            .collect::<DsResult<_>>()?;
        out.push((vals, keys));
    }

    // DISTINCT keeps the first occurrence of each projected row.
    if sel.distinct {
        let mut seen: Vec<Vec<Value>> = Vec::new();
        out.retain(|(vals, _)| {
            if seen.iter().any(|s| vals_eq(s, vals)) {
                false
            } else {
                seen.push(vals.clone());
                true
            }
        });
    }

    if !order.is_empty() {
        out.sort_by(|(_, ka), (_, kb)| {
            for (i, (_, asc)) in order.iter().enumerate() {
                let ord = ka[i].total_cmp(&kb[i]);
                let ord = if *asc { ord } else { ord.reverse() };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
    }

    // OFFSET / LIMIT.
    let offset = match &sel.offset {
        Some(e) => count_arg(e, resolver, "OFFSET")?,
        None => 0,
    };
    let limit = match &sel.limit {
        Some(e) => Some(count_arg(e, resolver, "LIMIT")?),
        None => None,
    };
    let rows: Vec<Vec<Value>> = out
        .into_iter()
        .map(|(vals, _)| vals)
        .skip(offset)
        .take(limit.unwrap_or(usize::MAX))
        .collect();

    Ok((proj.into_iter().map(|(_, n)| n).collect(), rows))
}

fn count_arg(e: &Expr, resolver: &dyn SheetResolver, what: &str) -> DsResult<usize> {
    let v = eval_standalone(e, resolver)?;
    let n = v
        .coerce_i64()
        .map_err(|_| DsError::Sql(format!("{what} must be an integer, got {v:?}")))?;
    if n < 0 {
        return Err(DsError::Sql(format!("{what} must be non-negative")));
    }
    Ok(n as usize)
}

/// Componentwise SQL equality for group keys and DISTINCT (NULL groups with
/// NULL).
fn vals_eq(a: &[Value], b: &[Value]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.sql_eq(y))
}

/// Gather distinct aggregate calls (structural identity) in encounter order.
fn collect_aggregates(e: &Expr, list: &mut Vec<Expr>, slots: &mut HashMap<String, usize>) {
    if e.is_aggregate_call() {
        if let std::collections::hash_map::Entry::Vacant(slot) = slots.entry(agg_key(e)) {
            slot.insert(list.len());
            list.push(e.clone());
        }
        return; // aggregates do not nest
    }
    match e {
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Cast { expr, .. } => {
            collect_aggregates(expr, list, slots)
        }
        Expr::Binary { left, right, .. } => {
            collect_aggregates(left, list, slots);
            collect_aggregates(right, list, slots);
        }
        Expr::InList {
            expr, list: items, ..
        } => {
            collect_aggregates(expr, list, slots);
            for it in items {
                collect_aggregates(it, list, slots);
            }
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_aggregates(expr, list, slots);
            collect_aggregates(low, list, slots);
            collect_aggregates(high, list, slots);
        }
        Expr::Like { expr, pattern, .. } => {
            collect_aggregates(expr, list, slots);
            collect_aggregates(pattern, list, slots);
        }
        Expr::Case {
            operand,
            branches,
            else_,
        } => {
            if let Some(o) = operand {
                collect_aggregates(o, list, slots);
            }
            for (w, t) in branches {
                collect_aggregates(w, list, slots);
                collect_aggregates(t, list, slots);
            }
            if let Some(e2) = else_ {
                collect_aggregates(e2, list, slots);
            }
        }
        Expr::Function { args, .. } => {
            for a in args {
                collect_aggregates(a, list, slots);
            }
        }
        Expr::Literal(_) | Expr::Column { .. } | Expr::RangeValue(_) => {}
    }
}

/// One compiled aggregate call.
struct AggSpec {
    name: String,
    arg: Option<BExpr>,
    distinct: bool,
    star: bool,
}

impl AggSpec {
    fn compile(e: &Expr, cols: &[ColInfo], resolver: &dyn SheetResolver) -> DsResult<AggSpec> {
        let Expr::Function {
            name,
            args,
            distinct,
            star,
        } = e
        else {
            unreachable!("collect_aggregates only gathers function calls");
        };
        let uname = name.to_ascii_uppercase();
        if *star {
            if uname != "COUNT" {
                return Err(DsError::Sql(format!("{uname}(*) is not valid")));
            }
            return Ok(AggSpec {
                name: uname,
                arg: None,
                distinct: false,
                star: true,
            });
        }
        if args.len() != 1 {
            return Err(DsError::Sql(format!("{uname} takes exactly one argument")));
        }
        if args[0].contains_aggregate() {
            return Err(DsError::Sql("aggregate calls cannot nest".into()));
        }
        let arg = bind(&args[0], cols, None, resolver)?;
        Ok(AggSpec {
            name: uname,
            arg: Some(arg),
            distinct: *distinct,
            star: false,
        })
    }

    fn compute(&self, rows: &[Vec<Value>]) -> DsResult<Value> {
        if self.star {
            return Ok(Value::Int(rows.len() as i64));
        }
        let arg = self
            .arg
            .as_ref()
            .expect("non-star aggregate has an argument");
        // SQL semantics: NULL inputs are ignored by every aggregate.
        let mut vals = Vec::with_capacity(rows.len());
        for r in rows {
            let v = eval(arg, r, &[])?;
            if !v.is_empty() {
                vals.push(v);
            }
        }
        if self.distinct {
            let mut ded: Vec<Value> = Vec::new();
            for v in vals {
                if !ded.iter().any(|w| w.sql_eq(&v)) {
                    ded.push(v);
                }
            }
            vals = ded;
        }
        match self.name.as_str() {
            "COUNT" => Ok(Value::Int(vals.len() as i64)),
            "SUM" | "AVG" => {
                if vals.is_empty() {
                    return Ok(Value::Empty);
                }
                let mut int_sum: i64 = 0;
                let mut f_sum: f64 = 0.0;
                let mut is_float = false;
                for v in &vals {
                    match v {
                        Value::Int(i) => {
                            if is_float {
                                f_sum += *i as f64;
                            } else {
                                match int_sum.checked_add(*i) {
                                    Some(s) => int_sum = s,
                                    None => {
                                        is_float = true;
                                        f_sum = int_sum as f64 + *i as f64;
                                    }
                                }
                            }
                        }
                        Value::Float(f) => {
                            if !is_float {
                                is_float = true;
                                f_sum = int_sum as f64;
                            }
                            f_sum += f;
                        }
                        other => {
                            return Err(DsError::Sql(format!(
                                "{} over non-numeric value {other:?}",
                                self.name
                            )))
                        }
                    }
                }
                if self.name == "AVG" {
                    let total = if is_float { f_sum } else { int_sum as f64 };
                    Ok(Value::Float(total / vals.len() as f64))
                } else if is_float {
                    Ok(Value::Float(f_sum))
                } else {
                    Ok(Value::Int(int_sum))
                }
            }
            "MIN" | "MAX" => {
                let want_less = self.name == "MIN";
                let mut best: Option<Value> = None;
                for v in vals {
                    best = Some(match best {
                        None => v,
                        Some(b) => match sql_compare(&v, &b)? {
                            Some(Ordering::Less) if want_less => v,
                            Some(Ordering::Greater) if !want_less => v,
                            _ => b,
                        },
                    });
                }
                Ok(best.unwrap_or(Value::Empty))
            }
            other => Err(DsError::Sql(format!("unknown aggregate `{other}`"))),
        }
    }
}

/// A readable output-column label for an unaliased projection.
fn expr_label(e: &Expr) -> String {
    match e {
        Expr::Column { name, .. } => name.clone(),
        Expr::Function {
            name, star: true, ..
        } => format!("{}(*)", name.to_ascii_lowercase()),
        Expr::Function { name, .. } => name.to_ascii_lowercase(),
        Expr::RangeValue(r) => format!("rangevalue({r})"),
        Expr::Cast { expr, .. } => expr_label(expr),
        Expr::Literal(v) => v.display_string(),
        _ => "expr".to_string(),
    }
}

// ---- DML -----------------------------------------------------------------

fn run_insert(
    catalog: &mut Catalog,
    resolver: &dyn SheetResolver,
    table: &str,
    columns: Option<&[String]>,
    source: &InsertSource,
) -> DsResult<QueryResult> {
    // Materialize the input first: an INSERT ... SELECT reads the catalog
    // immutably before the write borrow starts.
    let input: Vec<Vec<Value>> = match source {
        InsertSource::Values(tuples) => tuples
            .iter()
            .map(|t| t.iter().map(|e| eval_standalone(e, resolver)).collect())
            .collect::<DsResult<_>>()?,
        InsertSource::Select(sel) => run_select(catalog, resolver, sel)?.1,
    };
    let t = catalog.get_mut(table)?;
    let width = t.schema().width();
    let positions: Option<Vec<usize>> = match columns {
        Some(names) => {
            let mut idx = Vec::with_capacity(names.len());
            for n in names {
                let i = t
                    .schema()
                    .index_of(n)
                    .ok_or_else(|| DsError::ColumnNotFound(n.clone()))?;
                if idx.contains(&i) {
                    return Err(DsError::Sql(format!("column `{n}` listed twice")));
                }
                idx.push(i);
            }
            Some(idx)
        }
        None => None,
    };
    let mut n = 0;
    for vals in input {
        let row = match &positions {
            Some(idx) => {
                if vals.len() != idx.len() {
                    return Err(DsError::Sql(format!(
                        "INSERT has {} values for {} columns",
                        vals.len(),
                        idx.len()
                    )));
                }
                let mut row = vec![Value::Empty; width];
                for (&i, v) in idx.iter().zip(vals) {
                    row[i] = v;
                }
                row
            }
            None => {
                if vals.len() != width {
                    return Err(DsError::Sql(format!(
                        "INSERT has {} values, table has {width} columns",
                        vals.len()
                    )));
                }
                vals
            }
        };
        t.insert(row)?;
        n += 1;
    }
    Ok(QueryResult::Affected(n))
}

fn run_update(
    catalog: &mut Catalog,
    resolver: &dyn SheetResolver,
    table: &str,
    sets: &[(String, Expr)],
    filter: Option<&Expr>,
) -> DsResult<QueryResult> {
    // Plan against the immutable table, then apply.
    let updates: Vec<(RowKey, Vec<Value>)> = {
        let t = catalog.get(table)?;
        let cols: Vec<ColInfo> = t
            .schema()
            .columns()
            .iter()
            .map(|c| ColInfo::new(Some(table), c.name.clone()))
            .collect();
        let mut plan: Vec<(usize, BExpr)> = Vec::with_capacity(sets.len());
        for (name, e) in sets {
            let i = t
                .schema()
                .index_of(name)
                .ok_or_else(|| DsError::ColumnNotFound(name.clone()))?;
            if plan.iter().any(|(j, _)| *j == i) {
                return Err(DsError::Sql(format!("column `{name}` assigned twice")));
            }
            plan.push((i, bind(e, &cols, None, resolver)?));
        }
        let pred = match filter {
            Some(f) => Some(bind(f, &cols, None, resolver)?),
            None => None,
        };
        let mut updates = Vec::new();
        for (key, row) in t.scan()? {
            let hit = match &pred {
                Some(p) => truth(&eval(p, &row, &[])?)? == Some(true),
                None => true,
            };
            if hit {
                let mut new_row = row.clone();
                for (i, b) in &plan {
                    // SQL semantics: every SET expression sees the OLD row.
                    new_row[*i] = eval(b, &row, &[])?;
                }
                updates.push((key, new_row));
            }
        }
        updates
    };
    let t = catalog.get_mut(table)?;
    let n = updates.len();
    for (key, row) in updates {
        t.update_row(key, row)?;
    }
    Ok(QueryResult::Affected(n))
}

fn run_delete(
    catalog: &mut Catalog,
    resolver: &dyn SheetResolver,
    table: &str,
    filter: Option<&Expr>,
) -> DsResult<QueryResult> {
    let doomed: Vec<RowKey> = {
        let t = catalog.get(table)?;
        let cols: Vec<ColInfo> = t
            .schema()
            .columns()
            .iter()
            .map(|c| ColInfo::new(Some(table), c.name.clone()))
            .collect();
        let pred = match filter {
            Some(f) => Some(bind(f, &cols, None, resolver)?),
            None => None,
        };
        let mut doomed = Vec::new();
        for (key, row) in t.scan()? {
            let hit = match &pred {
                Some(p) => truth(&eval(p, &row, &[])?)? == Some(true),
                None => true,
            };
            if hit {
                doomed.push(key);
            }
        }
        doomed
    };
    let t = catalog.get_mut(table)?;
    let n = doomed.len();
    for key in doomed {
        t.delete_row(key)?;
    }
    Ok(QueryResult::Affected(n))
}
