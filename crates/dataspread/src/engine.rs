//! Statement execution: dispatches parsed statements against the catalog,
//! with positional references resolved from the live workbook.
//!
//! `SELECT` runs through the streaming operator pipeline in [`crate::exec`]
//! (planning, pushdown, hash joins, hash aggregation); this module keeps the
//! statement surface around it — the three DML families (streaming their
//! table scans) and DDL including the paper's cheap `ALTER TABLE` path.

use dataspread_relstore::{Catalog, ColumnDef, RowKey, Schema};
use dataspread_sql::ast::{AlterAction, Expr, InsertSource, Statement};
use dataspread_sql::expr::{bind, eval, truth, BExpr, ColInfo};
use dataspread_sql::resolver::SheetResolver;
use dataspread_types::{DsError, DsResult, Value};

use crate::exec::{
    analyze_select, eval_standalone, explain_select, run_select, ExecCtx, ExecMetrics, ExecOptions,
};

/// Outcome of one executed statement.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryResult {
    /// A result set (`SELECT`).
    Rows {
        columns: Vec<String>,
        rows: Vec<Vec<Value>>,
    },
    /// Row count touched by DML.
    Affected(usize),
    /// A DDL statement completed.
    Ddl,
}

impl QueryResult {
    /// The result set, if this was a query.
    pub fn rows(&self) -> Option<(&[String], &[Vec<Value>])> {
        match self {
            QueryResult::Rows { columns, rows } => Some((columns, rows)),
            _ => None,
        }
    }

    /// The affected-row count, if this was DML.
    pub fn affected(&self) -> Option<usize> {
        match self {
            QueryResult::Affected(n) => Some(*n),
            _ => None,
        }
    }
}

/// Execute one statement.
pub(crate) fn execute(
    catalog: &mut Catalog,
    resolver: &dyn SheetResolver,
    stmt: Statement,
    options: ExecOptions,
    metrics: &ExecMetrics,
) -> DsResult<QueryResult> {
    match stmt {
        Statement::Select(sel) => {
            let ctx = ExecCtx {
                catalog,
                resolver,
                options,
                metrics: metrics.clone(),
            };
            let (columns, rows) = run_select(&ctx, &sel)?;
            Ok(QueryResult::Rows { columns, rows })
        }
        Statement::Explain(sel) => {
            let ctx = ExecCtx {
                catalog,
                resolver,
                options,
                metrics: metrics.clone(),
            };
            let rows = explain_select(&ctx, &sel)?
                .into_iter()
                .map(|line| vec![Value::Text(line)])
                .collect();
            Ok(QueryResult::Rows {
                columns: vec!["plan".to_string()],
                rows,
            })
        }
        Statement::ExplainAnalyze(sel) => {
            let ctx = ExecCtx {
                catalog,
                resolver,
                options,
                metrics: metrics.clone(),
            };
            let (lines, _) = analyze_select(&ctx, &sel)?;
            Ok(QueryResult::Rows {
                columns: vec!["plan".to_string()],
                rows: lines.into_iter().map(|l| vec![Value::Text(l)]).collect(),
            })
        }
        Statement::Analyze { table } => {
            match table {
                Some(name) => catalog.get_mut(&name)?.analyze()?,
                None => {
                    for name in catalog.table_names() {
                        catalog.get_mut(&name)?.analyze()?;
                    }
                }
            }
            Ok(QueryResult::Ddl)
        }
        Statement::Insert {
            table,
            columns,
            source,
        } => run_insert(
            catalog,
            resolver,
            options,
            metrics,
            &table,
            columns.as_deref(),
            &source,
        ),
        Statement::Update {
            table,
            sets,
            filter,
        } => run_update(catalog, resolver, &table, &sets, filter.as_ref()),
        Statement::Delete { table, filter } => {
            run_delete(catalog, resolver, &table, filter.as_ref())
        }
        Statement::CreateTable {
            name,
            columns,
            if_not_exists,
        } => {
            if if_not_exists && catalog.contains(&name) {
                return Ok(QueryResult::Ddl);
            }
            let mut defs = Vec::with_capacity(columns.len());
            let mut pkey: Vec<String> = Vec::new();
            for spec in columns {
                let mut def = ColumnDef::new(spec.name.clone(), spec.dtype);
                if spec.not_null {
                    def = def.not_null();
                }
                if spec.primary_key {
                    pkey.push(spec.name);
                }
                defs.push(def);
            }
            let mut schema = Schema::new(defs)?;
            if !pkey.is_empty() {
                let names: Vec<&str> = pkey.iter().map(String::as_str).collect();
                schema = schema.with_pkey(&names)?;
            }
            catalog.create_table(&name, schema)?;
            Ok(QueryResult::Ddl)
        }
        Statement::DropTable { name, if_exists } => {
            if if_exists && !catalog.contains(&name) {
                return Ok(QueryResult::Ddl);
            }
            catalog.drop_table(&name)?;
            Ok(QueryResult::Ddl)
        }
        Statement::AlterTable { name, action } => {
            match action {
                AlterAction::AddColumn { spec, default } => {
                    let default = match default {
                        Some(e) => eval_standalone(&e, resolver)?,
                        None => Value::Empty,
                    };
                    let mut def = ColumnDef::new(spec.name, spec.dtype);
                    if spec.not_null {
                        def = def.not_null();
                    }
                    if spec.primary_key {
                        return Err(DsError::Sql(
                            "ADD COLUMN cannot introduce a primary key".into(),
                        ));
                    }
                    catalog.get_mut(&name)?.add_column(def, default)?;
                }
                AlterAction::DropColumn(col) => {
                    catalog.get_mut(&name)?.drop_column(&col)?;
                }
                AlterAction::RenameColumn { from, to } => {
                    catalog.get_mut(&name)?.rename_column(&from, &to)?;
                }
            }
            Ok(QueryResult::Ddl)
        }
    }
}

// ---- DML -----------------------------------------------------------------

fn run_insert(
    catalog: &mut Catalog,
    resolver: &dyn SheetResolver,
    options: ExecOptions,
    metrics: &ExecMetrics,
    table: &str,
    columns: Option<&[String]>,
    source: &InsertSource,
) -> DsResult<QueryResult> {
    // Materialize the input first: an INSERT ... SELECT reads the catalog
    // immutably before the write borrow starts.
    let input: Vec<Vec<Value>> = match source {
        InsertSource::Values(tuples) => tuples
            .iter()
            .map(|t| t.iter().map(|e| eval_standalone(e, resolver)).collect())
            .collect::<DsResult<_>>()?,
        InsertSource::Select(sel) => {
            let ctx = ExecCtx {
                catalog,
                resolver,
                options,
                metrics: metrics.clone(),
            };
            run_select(&ctx, sel)?.1
        }
    };
    let mut t = catalog.get_mut(table)?;
    let width = t.schema().width();
    let positions: Option<Vec<usize>> = match columns {
        Some(names) => {
            let mut idx = Vec::with_capacity(names.len());
            for n in names {
                let i = t
                    .schema()
                    .index_of(n)
                    .ok_or_else(|| DsError::ColumnNotFound(n.clone()))?;
                if idx.contains(&i) {
                    return Err(DsError::Sql(format!("column `{n}` listed twice")));
                }
                idx.push(i);
            }
            Some(idx)
        }
        None => None,
    };
    let mut n = 0;
    for vals in input {
        let row = match &positions {
            Some(idx) => {
                if vals.len() != idx.len() {
                    return Err(DsError::Sql(format!(
                        "INSERT has {} values for {} columns",
                        vals.len(),
                        idx.len()
                    )));
                }
                let mut row = vec![Value::Empty; width];
                for (&i, v) in idx.iter().zip(vals) {
                    row[i] = v;
                }
                row
            }
            None => {
                if vals.len() != width {
                    return Err(DsError::Sql(format!(
                        "INSERT has {} values, table has {width} columns",
                        vals.len()
                    )));
                }
                vals
            }
        };
        t.insert(row)?;
        n += 1;
    }
    Ok(QueryResult::Affected(n))
}

fn run_update(
    catalog: &mut Catalog,
    resolver: &dyn SheetResolver,
    table: &str,
    sets: &[(String, Expr)],
    filter: Option<&Expr>,
) -> DsResult<QueryResult> {
    // Plan against the immutable table (streaming the scan), then apply.
    let updates: Vec<(RowKey, Vec<Value>)> = {
        let t = catalog.get(table)?;
        let cols: Vec<ColInfo> = t
            .schema()
            .columns()
            .iter()
            .map(|c| ColInfo::new(Some(table), c.name.clone()))
            .collect();
        let mut plan: Vec<(usize, BExpr)> = Vec::with_capacity(sets.len());
        for (name, e) in sets {
            let i = t
                .schema()
                .index_of(name)
                .ok_or_else(|| DsError::ColumnNotFound(name.clone()))?;
            if plan.iter().any(|(j, _)| *j == i) {
                return Err(DsError::Sql(format!("column `{name}` assigned twice")));
            }
            plan.push((i, bind(e, &cols, None, resolver)?));
        }
        let pred = match filter {
            Some(f) => Some(bind(f, &cols, None, resolver)?),
            None => None,
        };
        let mut updates = Vec::new();
        for item in t.iter_rows() {
            let (key, row) = item?;
            let hit = match &pred {
                Some(p) => truth(&eval(p, &row, &[])?)? == Some(true),
                None => true,
            };
            if hit {
                let mut new_row = row.clone();
                for (i, b) in &plan {
                    // SQL semantics: every SET expression sees the OLD row.
                    new_row[*i] = eval(b, &row, &[])?;
                }
                updates.push((key, new_row));
            }
        }
        updates
    };
    let mut t = catalog.get_mut(table)?;
    let n = updates.len();
    for (key, row) in updates {
        t.update_row(key, row)?;
    }
    Ok(QueryResult::Affected(n))
}

fn run_delete(
    catalog: &mut Catalog,
    resolver: &dyn SheetResolver,
    table: &str,
    filter: Option<&Expr>,
) -> DsResult<QueryResult> {
    let doomed: Vec<RowKey> = {
        let t = catalog.get(table)?;
        let cols: Vec<ColInfo> = t
            .schema()
            .columns()
            .iter()
            .map(|c| ColInfo::new(Some(table), c.name.clone()))
            .collect();
        let pred = match filter {
            Some(f) => Some(bind(f, &cols, None, resolver)?),
            None => None,
        };
        let mut doomed = Vec::new();
        for item in t.iter_rows() {
            let (key, row) = item?;
            let hit = match &pred {
                Some(p) => truth(&eval(p, &row, &[])?)? == Some(true),
                None => true,
            };
            if hit {
                doomed.push(key);
            }
        }
        doomed
    };
    let mut t = catalog.get_mut(table)?;
    let n = doomed.len();
    for key in doomed {
        t.delete_row(key)?;
    }
    Ok(QueryResult::Affected(n))
}
