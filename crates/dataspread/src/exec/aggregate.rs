//! The aggregation operator: hash GROUP BY over streaming accumulators.
//!
//! Groups are located in O(1) via the normalized
//! [`HKey`](dataspread_sql::planner::HKey) of the evaluated key tuple
//! (mirroring `Value::sql_eq`, so NULL groups with NULL exactly as the
//! previous linear search did). Each group keeps its first member row as the
//! representative (what `GROUP BY` expressions evaluate against in the
//! projection) plus one incremental accumulator per aggregate call — member
//! rows are never materialized. `DISTINCT` aggregates dedup through an
//! `HKey` set instead of the old O(n²) linear scan.
//!
//! The linear-search arm survives behind
//! [`ExecOptions::hash_aggregation`](super::ExecOptions) as the reference
//! implementation the property suite compares against.

use std::cmp::Ordering;
use std::collections::{HashMap, HashSet};

use dataspread_sql::ast::Expr;
use dataspread_sql::expr::{agg_key, bind, eval, sql_compare, BExpr, ColInfo};
use dataspread_sql::planner::{collect_cols, HKey};
use dataspread_sql::resolver::SheetResolver;
use dataspread_types::{DsError, DsResult, Value};

use super::RowStream;

/// Componentwise SQL equality for group keys (NULL groups with NULL).
pub(crate) fn vals_eq(a: &[Value], b: &[Value]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.sql_eq(y))
}

/// Gather distinct aggregate calls (structural identity) in encounter order.
pub(crate) fn collect_aggregates(
    e: &Expr,
    list: &mut Vec<Expr>,
    slots: &mut HashMap<String, usize>,
) {
    if e.is_aggregate_call() {
        if let std::collections::hash_map::Entry::Vacant(slot) = slots.entry(agg_key(e)) {
            slot.insert(list.len());
            list.push(e.clone());
        }
        return; // aggregates do not nest
    }
    match e {
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Cast { expr, .. } => {
            collect_aggregates(expr, list, slots)
        }
        Expr::Binary { left, right, .. } => {
            collect_aggregates(left, list, slots);
            collect_aggregates(right, list, slots);
        }
        Expr::InList {
            expr, list: items, ..
        } => {
            collect_aggregates(expr, list, slots);
            for it in items {
                collect_aggregates(it, list, slots);
            }
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_aggregates(expr, list, slots);
            collect_aggregates(low, list, slots);
            collect_aggregates(high, list, slots);
        }
        Expr::Like { expr, pattern, .. } => {
            collect_aggregates(expr, list, slots);
            collect_aggregates(pattern, list, slots);
        }
        Expr::Case {
            operand,
            branches,
            else_,
        } => {
            if let Some(o) = operand {
                collect_aggregates(o, list, slots);
            }
            for (w, t) in branches {
                collect_aggregates(w, list, slots);
                collect_aggregates(t, list, slots);
            }
            if let Some(e2) = else_ {
                collect_aggregates(e2, list, slots);
            }
        }
        Expr::Function { args, .. } => {
            for a in args {
                collect_aggregates(a, list, slots);
            }
        }
        Expr::Literal(_) | Expr::Column { .. } | Expr::RangeValue(_) => {}
    }
}

/// One compiled aggregate call.
pub(crate) struct AggSpec {
    name: String,
    arg: Option<BExpr>,
    distinct: bool,
    star: bool,
}

impl AggSpec {
    pub(crate) fn compile(
        e: &Expr,
        cols: &[ColInfo],
        resolver: &dyn SheetResolver,
    ) -> DsResult<AggSpec> {
        let Expr::Function {
            name,
            args,
            distinct,
            star,
        } = e
        else {
            unreachable!("collect_aggregates only gathers function calls");
        };
        let uname = name.to_ascii_uppercase();
        if *star {
            if uname != "COUNT" {
                return Err(DsError::Sql(format!("{uname}(*) is not valid")));
            }
            return Ok(AggSpec {
                name: uname,
                arg: None,
                distinct: false,
                star: true,
            });
        }
        if args.len() != 1 {
            return Err(DsError::Sql(format!("{uname} takes exactly one argument")));
        }
        if args[0].contains_aggregate() {
            return Err(DsError::Sql("aggregate calls cannot nest".into()));
        }
        let arg = bind(&args[0], cols, None, resolver)?;
        Ok(AggSpec {
            name: uname,
            arg: Some(arg),
            distinct: *distinct,
            star: false,
        })
    }

    /// Columns the aggregate's argument reads (for scan pruning).
    pub(crate) fn collect_cols(&self, out: &mut std::collections::HashSet<usize>) {
        if let Some(arg) = &self.arg {
            collect_cols(arg, out);
        }
    }

    fn new_acc(&self) -> DsResult<Acc> {
        if self.star {
            return Ok(Acc::CountStar(0));
        }
        if self.distinct {
            return Ok(Acc::Distinct {
                seen: HashSet::new(),
                vals: Vec::new(),
            });
        }
        plain_acc(&self.name)
    }

    /// Feed one member row into the accumulator.
    fn update(&self, acc: &mut Acc, row: &[Value]) -> DsResult<()> {
        if let Acc::CountStar(n) = acc {
            *n += 1;
            return Ok(());
        }
        let arg = self
            .arg
            .as_ref()
            .expect("non-star aggregate has an argument");
        let v = eval(arg, row, &[])?;
        // SQL semantics: NULL inputs are ignored by every aggregate.
        if v.is_empty() {
            return Ok(());
        }
        if let Acc::Distinct { seen, vals } = acc {
            if seen.insert(HKey::of(&v)) {
                vals.push(v);
            }
            return Ok(());
        }
        push_value(acc, v, &self.name)
    }

    /// Close the accumulator into the aggregate's value.
    fn finish(&self, acc: Acc) -> DsResult<Value> {
        finalize(&self.name, acc)
    }
}

/// Incremental aggregate state.
enum Acc {
    CountStar(i64),
    Count(i64),
    Sum {
        int_sum: i64,
        f_sum: f64,
        is_float: bool,
        n: usize,
    },
    MinMax {
        best: Option<Value>,
        want_less: bool,
    },
    /// `DISTINCT` aggregates keep the deduplicated inputs and reduce at the
    /// end.
    Distinct {
        seen: HashSet<HKey>,
        vals: Vec<Value>,
    },
}

/// Integer summing with overflow spill to float (matching the previous
/// executor's semantics exactly).
fn sum_push(
    v: &Value,
    int_sum: &mut i64,
    f_sum: &mut f64,
    is_float: &mut bool,
    name: &str,
) -> DsResult<()> {
    match v {
        Value::Int(i) => {
            if *is_float {
                *f_sum += *i as f64;
            } else {
                match int_sum.checked_add(*i) {
                    Some(s) => *int_sum = s,
                    None => {
                        *is_float = true;
                        *f_sum = *int_sum as f64 + *i as f64;
                    }
                }
            }
        }
        Value::Float(f) => {
            if !*is_float {
                *is_float = true;
                *f_sum = *int_sum as f64;
            }
            *f_sum += f;
        }
        other => {
            return Err(DsError::Sql(format!(
                "{name} over non-numeric value {other:?}"
            )))
        }
    }
    Ok(())
}

/// Fresh non-distinct accumulator for an aggregate name.
fn plain_acc(name: &str) -> DsResult<Acc> {
    Ok(match name {
        "COUNT" => Acc::Count(0),
        "SUM" | "AVG" => Acc::Sum {
            int_sum: 0,
            f_sum: 0.0,
            is_float: false,
            n: 0,
        },
        "MIN" => Acc::MinMax {
            best: None,
            want_less: true,
        },
        "MAX" => Acc::MinMax {
            best: None,
            want_less: false,
        },
        other => return Err(DsError::Sql(format!("unknown aggregate `{other}`"))),
    })
}

/// Feed one non-NULL input value into a non-distinct accumulator — the one
/// copy of each aggregate's per-value semantics (the `DISTINCT` path replays
/// its deduplicated values through this at finalization).
fn push_value(acc: &mut Acc, v: Value, name: &str) -> DsResult<()> {
    match acc {
        Acc::CountStar(_) | Acc::Distinct { .. } => {
            unreachable!("callers handle star/distinct accumulators")
        }
        Acc::Count(n) => *n += 1,
        Acc::Sum {
            int_sum,
            f_sum,
            is_float,
            n,
        } => {
            sum_push(&v, int_sum, f_sum, is_float, name)?;
            *n += 1;
        }
        Acc::MinMax { best, want_less } => {
            let want_less = *want_less;
            *best = Some(match best.take() {
                None => v,
                Some(b) => match sql_compare(&v, &b)? {
                    Some(Ordering::Less) if want_less => v,
                    Some(Ordering::Greater) if !want_less => v,
                    _ => b,
                },
            });
        }
    }
    Ok(())
}

/// Close an accumulator into the aggregate's value.
fn finalize(name: &str, acc: Acc) -> DsResult<Value> {
    Ok(match acc {
        Acc::CountStar(n) | Acc::Count(n) => Value::Int(n),
        Acc::Sum {
            int_sum,
            f_sum,
            is_float,
            n,
        } => {
            if n == 0 {
                Value::Empty
            } else if name == "AVG" {
                let total = if is_float { f_sum } else { int_sum as f64 };
                Value::Float(total / n as f64)
            } else if is_float {
                Value::Float(f_sum)
            } else {
                Value::Int(int_sum)
            }
        }
        Acc::MinMax { best, .. } => best.unwrap_or(Value::Empty),
        Acc::Distinct { vals, .. } => {
            let mut acc = plain_acc(name)?;
            for v in vals {
                push_value(&mut acc, v, name)?;
            }
            finalize(name, acc)?
        }
    })
}

struct Group {
    rep: Vec<Value>,
    accs: Vec<Acc>,
}

/// Consume the input stream into evaluation contexts
/// `(representative row, aggregate slot values)`, one per group in
/// first-encounter order. A global aggregate over zero rows still produces
/// one group (`COUNT(*) = 0`); a grouped query over zero rows produces none.
pub(crate) fn aggregate(
    stream: RowStream<'_>,
    key_exprs: &[BExpr],
    specs: &[AggSpec],
    width: usize,
    hash: bool,
) -> DsResult<Vec<(Vec<Value>, Vec<Value>)>> {
    let mut groups: Vec<Group> = Vec::new();
    let mut index: HashMap<Vec<HKey>, usize> = HashMap::new();
    let mut linear_keys: Vec<Vec<Value>> = Vec::new();
    for row in stream {
        let row = row?;
        let kv: Vec<Value> = key_exprs
            .iter()
            .map(|e| eval(e, &row, &[]))
            .collect::<DsResult<_>>()?;
        let slot = if hash {
            match index.entry(HKey::of_row(&kv)) {
                std::collections::hash_map::Entry::Occupied(e) => Some(*e.get()),
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(groups.len());
                    None
                }
            }
        } else {
            linear_keys.iter().position(|k| vals_eq(k, &kv))
        };
        let gi = match slot {
            Some(gi) => gi,
            None => {
                if !hash {
                    linear_keys.push(kv);
                }
                groups.push(Group {
                    rep: row.clone(),
                    accs: specs
                        .iter()
                        .map(AggSpec::new_acc)
                        .collect::<DsResult<_>>()?,
                });
                groups.len() - 1
            }
        };
        let g = &mut groups[gi];
        for (spec, acc) in specs.iter().zip(&mut g.accs) {
            spec.update(acc, &row)?;
        }
    }
    if groups.is_empty() && key_exprs.is_empty() {
        groups.push(Group {
            rep: vec![Value::Empty; width],
            accs: specs
                .iter()
                .map(AggSpec::new_acc)
                .collect::<DsResult<_>>()?,
        });
    }
    groups
        .into_iter()
        .map(|g| {
            let aggs: Vec<Value> = specs
                .iter()
                .zip(g.accs)
                .map(|(s, a)| s.finish(a))
                .collect::<DsResult<_>>()?;
            Ok((g.rep, aggs))
        })
        .collect()
}
