//! Cost-based join ordering over the optimizer statistics of `relstore`.
//!
//! [`estimate`] walks a plan bottom-up, combining table cardinalities with
//! the per-column NDV/min-max summaries captured in each
//! [`TableSnapshot`](dataspread_relstore::TableSnapshot) to predict output
//! cardinalities (equality selects `1/ndv`, an equi-join keeps
//! `|L|·|R| / max(ndv_l, ndv_r)` rows, ranges keep a third).
//!
//! [`optimize`] uses those estimates to reorder *inner equi-join chains*:
//! every maximal run of inner/cross joins (identity emit) is flattened into
//! its leaf relations plus a global conjunct pool, a greedy pass joins the
//! cheapest connected pair first and then accretes the relation that keeps
//! the intermediate result smallest, and the chain is rebuilt left-deep with
//! the *smaller* input on the right — the build side of the hash join. A
//! final emit permutation on the root restores the syntactic column order,
//! so reordering is invisible to everything downstream of the planner.
//!
//! `LEFT JOIN` and `NATURAL JOIN` nodes are never reordered across (their
//! emit/null semantics pin them in place), but the pass recurses into their
//! inputs.

use std::collections::{BTreeSet, HashMap};

use dataspread_sql::ast::{BinOp, JoinKind};
use dataspread_sql::expr::BExpr;
use dataspread_sql::planner::{cols_of, extract_equi_keys, remap_cols};
use dataspread_types::Value;

use super::planner::{JoinPlan, Plan, Strategy};

/// Default selectivity for predicates the estimator cannot decompose.
const SEL_DEFAULT: f64 = 1.0 / 3.0;
/// Fallback equality selectivity when no NDV is available.
const SEL_EQ_DEFAULT: f64 = 0.1;

// ---- cardinality estimation ----------------------------------------------

/// Estimated shape of a (sub)plan's output.
pub(crate) struct Est {
    /// Expected row count after this node's filters.
    pub(crate) rows: f64,
    /// Per output column: expected distinct count, capped at `rows`.
    pub(crate) ndv: Vec<f64>,
}

/// Estimate a plan node bottom-up from snapshot statistics.
pub(crate) fn estimate(plan: &Plan) -> Est {
    match plan {
        Plan::Dual => Est {
            rows: 1.0,
            ndv: Vec::new(),
        },
        Plan::TableScan { snap, filters, .. } => {
            let base = snap.row_count() as f64;
            let width = snap.schema().width();
            let mut ndv: Vec<f64> = (0..width)
                .map(|i| match snap.col_summary(i) {
                    Some(s) if s.ndv > 0.0 => s.ndv.min(base.max(1.0)),
                    _ => base.max(1.0),
                })
                .collect();
            let rows = apply_filters(base, filters, |c| {
                let s = snap.col_summary(c)?;
                let nulls = if base > 0.0 {
                    s.nulls as f64 / base
                } else {
                    0.0
                };
                Some((s.ndv.max(1.0), nulls.min(1.0)))
            });
            cap_ndv(&mut ndv, rows);
            Est { rows, ndv }
        }
        Plan::RangeScan {
            a1, width, filters, ..
        } => {
            let base = a1_height(a1) as f64;
            let rows = apply_filters(base, filters, |_| None);
            let mut ndv = vec![base.max(1.0); *width];
            cap_ndv(&mut ndv, rows);
            Est { rows, ndv }
        }
        Plan::Derived {
            rows,
            width,
            filters,
        } => {
            let base = rows.len() as f64;
            let est_rows = apply_filters(base, filters, |_| None);
            let mut ndv = vec![base.max(1.0); *width];
            cap_ndv(&mut ndv, est_rows);
            Est {
                rows: est_rows,
                ndv,
            }
        }
        Plan::Join(j) => {
            let l = estimate(&j.left);
            let r = estimate(&j.right);
            let mut sel = 1.0;
            match &j.strategy {
                Strategy::Hash {
                    left_keys,
                    right_keys,
                    residual,
                } => {
                    for (lk, rk) in left_keys.iter().zip(right_keys) {
                        let d = ndv_of(lk, &l).max(ndv_of(rk, &r)).max(1.0);
                        sel /= d;
                    }
                    sel *= SEL_DEFAULT.powi(residual.len() as i32);
                }
                Strategy::NestedLoop { pred } => {
                    sel *= SEL_DEFAULT.powi(pred.len() as i32);
                }
            }
            sel *= SEL_DEFAULT.powi(j.filters.len() as i32);
            let mut rows = l.rows * r.rows * sel;
            if j.kind == JoinKind::Left {
                // Preserved side: every left row survives.
                rows = rows.max(l.rows);
            }
            let concat: Vec<f64> = l.ndv.iter().chain(r.ndv.iter()).copied().collect();
            let mut ndv: Vec<f64> = match &j.emit {
                None => concat,
                Some(m) => m.iter().map(|&i| concat[i]).collect(),
            };
            cap_ndv(&mut ndv, rows);
            Est { rows, ndv }
        }
    }
}

/// NDV of a join-key expression over one input: a bare column uses its
/// summary, anything composite falls back to the input's cardinality.
fn ndv_of(key: &BExpr, input: &Est) -> f64 {
    match key {
        BExpr::Col(c) => input.ndv.get(*c).copied().unwrap_or(input.rows),
        _ => input.rows.max(1.0),
    }
}

fn cap_ndv(ndv: &mut [f64], rows: f64) {
    let cap = rows.max(1.0);
    for d in ndv {
        *d = d.min(cap);
    }
}

/// Multiply `base` by the selectivity of each conjunct. `col_info` maps a
/// column to `(ndv, null_fraction)` when statistics are available.
fn apply_filters(
    base: f64,
    filters: &[BExpr],
    col_info: impl Fn(usize) -> Option<(f64, f64)>,
) -> f64 {
    let mut rows = base;
    for f in filters {
        rows *= selectivity(f, &col_info);
    }
    rows
}

fn selectivity(pred: &BExpr, col_info: &impl Fn(usize) -> Option<(f64, f64)>) -> f64 {
    match pred {
        BExpr::Binary { left, op, right } => match op {
            BinOp::Eq => eq_selectivity(left, right, col_info),
            BinOp::NotEq => 1.0 - eq_selectivity(left, right, col_info),
            BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => SEL_DEFAULT,
            BinOp::And => selectivity(left, col_info) * selectivity(right, col_info),
            BinOp::Or => {
                let (a, b) = (selectivity(left, col_info), selectivity(right, col_info));
                (a + b - a * b).min(1.0)
            }
            _ => SEL_DEFAULT,
        },
        BExpr::IsNull { expr, negated } => {
            let frac = match expr.as_ref() {
                BExpr::Col(c) => col_info(*c).map_or(SEL_EQ_DEFAULT, |(_, nulls)| nulls),
                _ => SEL_EQ_DEFAULT,
            };
            if *negated {
                1.0 - frac
            } else {
                frac
            }
        }
        BExpr::InList {
            expr,
            list,
            negated,
        } => {
            let one = eq_selectivity(expr, &BExpr::Literal(Value::Empty), col_info);
            let sel = (one * list.len() as f64).min(1.0);
            if *negated {
                1.0 - sel
            } else {
                sel
            }
        }
        BExpr::Between { negated, .. } => {
            if *negated {
                0.75
            } else {
                0.25
            }
        }
        BExpr::Like { negated, .. } => {
            if *negated {
                0.75
            } else {
                0.25
            }
        }
        _ => SEL_DEFAULT,
    }
}

fn eq_selectivity(a: &BExpr, b: &BExpr, col_info: &impl Fn(usize) -> Option<(f64, f64)>) -> f64 {
    let col = match (a, b) {
        (BExpr::Col(c), BExpr::Literal(_)) | (BExpr::Literal(_), BExpr::Col(c)) => Some(*c),
        (BExpr::Col(c), _) | (_, BExpr::Col(c)) => Some(*c),
        _ => None,
    };
    col.and_then(col_info)
        .map_or(SEL_EQ_DEFAULT, |(ndv, _)| 1.0 / ndv.max(1.0))
}

/// Rows spanned by an A1 range literal (`"A1:D100"` → 100); single cells are
/// one row, unparsable ranges assume a small default.
fn a1_height(a1: &str) -> usize {
    let range = a1.rsplit('!').next().unwrap_or(a1);
    let row_of = |part: &str| -> Option<i64> {
        let digits: String = part.chars().filter(char::is_ascii_digit).collect();
        digits.parse().ok()
    };
    match range.split_once(':') {
        Some((lo, hi)) => match (row_of(lo), row_of(hi)) {
            (Some(a), Some(b)) => ((a - b).unsigned_abs() as usize) + 1,
            _ => 100,
        },
        None => 1,
    }
}

// ---- join reordering ------------------------------------------------------

/// Reorder every inner equi-join chain in `plan` by estimated cardinality.
/// `width` is the node's output width (needed because `Derived` leaves do
/// not record theirs).
pub(crate) fn optimize(plan: &mut Plan, width: usize) {
    let Plan::Join(j) = plan else { return };
    if !reorderable(j) {
        // A pinned join (LEFT / NATURAL): recurse into its inputs only.
        let (lw, rw) = (j.left_width, j.right_width);
        optimize(&mut j.left, lw);
        optimize(&mut j.right, rw);
        return;
    }
    let chain = std::mem::replace(plan, Plan::Dual);
    *plan = reorder_chain(chain, width);
}

/// Inner/cross joins with identity emit can be flattened and reordered
/// freely; LEFT JOIN pins its operand order and NATURAL merges columns.
fn reorderable(j: &JoinPlan) -> bool {
    j.emit.is_none() && j.kind != JoinKind::Left
}

/// One relation of a flattened join chain, remembering which global
/// (syntactic concat) columns it produces.
struct Leaf {
    plan: Plan,
    start: usize,
    width: usize,
}

/// Flatten a reorderable join subtree into leaves plus a conjunct pool in
/// global (whole-chain concat) coordinates.
fn flatten(plan: Plan, width: usize, start: usize, leaves: &mut Vec<Leaf>, conjs: &mut Vec<BExpr>) {
    match plan {
        Plan::Join(j) if reorderable(&j) => {
            let JoinPlan {
                left,
                right,
                left_width,
                strategy,
                filters,
                ..
            } = *j;
            match strategy {
                Strategy::Hash {
                    left_keys,
                    right_keys,
                    residual,
                } => {
                    for (lk, rk) in left_keys.into_iter().zip(right_keys) {
                        conjs.push(BExpr::Binary {
                            left: Box::new(remap_cols(&lk, &|i| i + start)),
                            op: BinOp::Eq,
                            right: Box::new(remap_cols(&rk, &|i| i + start + left_width)),
                        });
                    }
                    conjs.extend(residual.iter().map(|r| remap_cols(r, &|i| i + start)));
                }
                Strategy::NestedLoop { pred } => {
                    conjs.extend(pred.iter().map(|p| remap_cols(p, &|i| i + start)));
                }
            }
            // Identity emit: post-join filters are already concat-relative.
            conjs.extend(filters.iter().map(|f| remap_cols(f, &|i| i + start)));
            flatten(left, left_width, start, leaves, conjs);
            flatten(right, width - left_width, start + left_width, leaves, conjs);
        }
        mut other => {
            optimize(&mut other, width);
            leaves.push(Leaf {
                plan: other,
                start,
                width,
            });
        }
    }
}

/// One side of an equi conjunct: its leaf, plus the bare column when the
/// side is a plain column reference (which lets NDV drive the estimate).
type EquiSide = (usize, Option<usize>);

/// A conjunct's footprint over the chain's leaves.
struct ConjInfo {
    leaves: BTreeSet<usize>,
    /// `Some((l, r))` when this is `a = b` with each side on one distinct
    /// leaf — the equi edges that make join orders "connected".
    equi: Option<(EquiSide, EquiSide)>,
}

fn classify(conj: &BExpr, leaf_of: &impl Fn(usize) -> usize) -> ConjInfo {
    let leaves: BTreeSet<usize> = cols_of(conj).into_iter().map(leaf_of).collect();
    let equi = match conj {
        BExpr::Binary {
            left,
            op: BinOp::Eq,
            right,
        } => {
            let side = |e: &BExpr| -> Option<(usize, Option<usize>)> {
                let cols = cols_of(e);
                let ls: BTreeSet<usize> = cols.iter().map(|&c| leaf_of(c)).collect();
                match ls.len() {
                    1 => {
                        let leaf = *ls.iter().next().unwrap();
                        let col = match e {
                            BExpr::Col(c) => Some(*c),
                            _ => None,
                        };
                        Some((leaf, col))
                    }
                    _ => None,
                }
            };
            match (side(left), side(right)) {
                (Some(a), Some(b)) if a.0 != b.0 => Some((a, b)),
                _ => None,
            }
        }
        _ => None,
    };
    ConjInfo { leaves, equi }
}

/// Greedy state while accreting the join order.
struct Greedy<'a> {
    ests: &'a [Est],
    leaves: &'a [Leaf],
    conjs: &'a [ConjInfo],
    used: Vec<bool>,
    chosen: BTreeSet<usize>,
    rows: f64,
    /// Global column → current distinct estimate, for chosen leaves.
    ndv: HashMap<usize, f64>,
}

impl Greedy<'_> {
    fn leaf_rows(&self, li: usize) -> f64 {
        self.ests[li].rows
    }

    /// NDV of an equi endpoint, reading the running map for chosen leaves
    /// and the leaf estimate for the incoming one.
    fn endpoint_ndv(&self, (leaf, col): (usize, Option<usize>), incoming_rows: f64) -> f64 {
        match col {
            Some(g) => {
                if let Some(&d) = self.ndv.get(&g) {
                    d
                } else {
                    let l = &self.leaves[leaf];
                    let est = &self.ests[leaf];
                    // Checked like `ndv_of`: a leaf whose estimate carries
                    // fewer NDV slots than its logical width falls back to
                    // its cardinality.
                    est.ndv.get(g - l.start).copied().unwrap_or(est.rows)
                }
            }
            None => {
                if self.chosen.contains(&leaf) {
                    self.rows.max(1.0)
                } else {
                    incoming_rows.max(1.0)
                }
            }
        }
    }

    /// Estimated cardinality of joining the current set with leaf `cand`,
    /// plus whether any equi conjunct connects them and which conjuncts
    /// would be consumed.
    fn probe(&self, cand: usize) -> (f64, bool, Vec<usize>) {
        let mut rows = self.rows * self.leaf_rows(cand);
        let mut connected = false;
        let mut consumed = Vec::new();
        for (ci, info) in self.conjs.iter().enumerate() {
            if self.used[ci] || info.leaves.is_empty() || !info.leaves.contains(&cand) {
                continue;
            }
            if !info
                .leaves
                .iter()
                .all(|l| *l == cand || self.chosen.contains(l))
            {
                continue;
            }
            consumed.push(ci);
            match &info.equi {
                Some((a, b)) if info.leaves.len() > 1 => {
                    connected = true;
                    let d = self
                        .endpoint_ndv(*a, self.leaf_rows(cand))
                        .max(self.endpoint_ndv(*b, self.leaf_rows(cand)))
                        .max(1.0);
                    rows /= d;
                }
                _ => rows *= SEL_DEFAULT,
            }
        }
        (rows, connected, consumed)
    }

    fn admit(&mut self, cand: usize, rows: f64, consumed: &[usize]) {
        for &ci in consumed {
            self.used[ci] = true;
        }
        self.chosen.insert(cand);
        self.rows = rows;
        let leaf = &self.leaves[cand];
        for (off, &d) in self.ests[cand].ndv.iter().enumerate() {
            self.ndv.insert(leaf.start + off, d);
        }
        let cap = self.rows.max(1.0);
        for d in self.ndv.values_mut() {
            *d = d.min(cap);
        }
    }
}

/// Pick the join order: cheapest connected pair first, then repeatedly the
/// relation that keeps the intermediate smallest (connected candidates
/// preferred — cross products only as a last resort). Within the first
/// pair the larger relation streams (left) and the smaller builds (right).
fn greedy_order(leaves: &[Leaf], ests: &[Est], conjs: &[ConjInfo]) -> Vec<usize> {
    let n = leaves.len();
    let mut g = Greedy {
        ests,
        leaves,
        conjs,
        used: vec![false; conjs.len()],
        chosen: BTreeSet::new(),
        rows: 1.0,
        ndv: HashMap::new(),
    };

    // Seed: the cheapest pair, equi-connected pairs strictly preferred.
    // `probe` against a single admitted leaf evaluates the pair's joint
    // conjuncts.
    // Ranking key: equi-connected first, then estimated rows, then leaf
    // indexes as the deterministic tie-break.
    type SeedKey = (bool, f64, usize, usize);
    let mut best: Option<(SeedKey, usize, usize)> = None;
    for i in 0..n {
        let mut trial = Greedy {
            ests,
            leaves,
            conjs,
            used: vec![false; conjs.len()],
            chosen: BTreeSet::new(),
            rows: 1.0,
            ndv: HashMap::new(),
        };
        trial.admit(i, ests[i].rows, &[]);
        for j in (0..n).filter(|&j| j != i) {
            let (rows, connected, _) = trial.probe(j);
            let key = (!connected, rows, i.min(j), i.max(j));
            if best.as_ref().is_none_or(|(bk, _, _)| key < *bk) {
                best = Some((key, i, j));
            }
        }
    }
    let (_, a, b) = best.expect("chain has at least two leaves");
    // Larger streams on the left, smaller builds on the right.
    let (first, second) = if ests[a].rows >= ests[b].rows {
        (a, b)
    } else {
        (b, a)
    };
    g.admit(first, ests[first].rows, &[]);
    let (rows, _, consumed) = g.probe(second);
    g.admit(second, rows, &consumed);

    let mut order = vec![first, second];
    while order.len() < n {
        let mut best: Option<((bool, f64, usize), usize)> = None;
        for cand in (0..n).filter(|c| !g.chosen.contains(c)) {
            let (rows, connected, _) = g.probe(cand);
            let key = (!connected, rows, cand);
            if best.as_ref().is_none_or(|(bk, _)| key < *bk) {
                best = Some((key, cand));
            }
        }
        let (_, cand) = best.expect("unchosen leaf remains");
        let (rows, _, consumed) = g.probe(cand);
        g.admit(cand, rows, &consumed);
        order.push(cand);
    }
    order
}

/// Flatten, order, and rebuild one chain left-deep, restoring the original
/// output column order with a root emit permutation.
fn reorder_chain(plan: Plan, width: usize) -> Plan {
    let mut leaves = Vec::new();
    let mut pool = Vec::new();
    flatten(plan, width, 0, &mut leaves, &mut pool);
    debug_assert!(leaves.len() >= 2, "a join root flattens to >=2 leaves");

    let ranges: Vec<(usize, usize)> = leaves.iter().map(|l| (l.start, l.width)).collect();
    let leaf_of = |g: usize| -> usize {
        ranges
            .iter()
            .position(|&(s, w)| g >= s && g < s + w)
            .expect("column within chain")
    };
    let infos: Vec<ConjInfo> = pool.iter().map(|c| classify(c, &leaf_of)).collect();
    let ests: Vec<Est> = leaves.iter().map(|l| estimate(&l.plan)).collect();
    let order = greedy_order(&leaves, &ests, &infos);

    // Column-free conjuncts (e.g. `ON 1 = 1`) apply at the root.
    let mut consts = Vec::new();
    let mut pending: Vec<BExpr> = Vec::new();
    for (c, info) in pool.into_iter().zip(&infos) {
        if info.leaves.is_empty() {
            consts.push(c);
        } else {
            pending.push(c);
        }
    }

    let mut slots: Vec<Option<Leaf>> = leaves.into_iter().map(Some).collect();
    let first = slots[order[0]].take().expect("leaf taken once");
    let mut cur = first.plan;
    let mut cur_cols: Vec<usize> = (first.start..first.start + first.width).collect();

    for &oi in &order[1..] {
        let leaf = slots[oi].take().expect("leaf taken once");
        // Hash joins build on the right: stream whichever input is larger.
        let swap = ests[oi].rows > estimate(&cur).rows;
        let (left, right, left_cols, right_cols) = if swap {
            let leaf_cols: Vec<usize> = (leaf.start..leaf.start + leaf.width).collect();
            (leaf.plan, cur, leaf_cols, cur_cols)
        } else {
            let leaf_cols: Vec<usize> = (leaf.start..leaf.start + leaf.width).collect();
            (cur, leaf.plan, cur_cols, leaf_cols)
        };
        let lw = left_cols.len();
        let rw = right_cols.len();
        let mut concat = left_cols;
        concat.extend(right_cols);
        let pos: HashMap<usize, usize> = concat.iter().enumerate().map(|(p, &g)| (g, p)).collect();

        let (ready, rest): (Vec<BExpr>, Vec<BExpr>) = pending
            .into_iter()
            .partition(|c| cols_of(c).iter().all(|g| pos.contains_key(g)));
        pending = rest;
        let local: Vec<BExpr> = ready.iter().map(|c| remap_cols(c, &|g| pos[&g])).collect();
        let keys = extract_equi_keys(local, lw);
        let strategy = if keys.left.is_empty() {
            Strategy::NestedLoop {
                pred: keys.residual,
            }
        } else {
            Strategy::Hash {
                left_keys: keys.left,
                right_keys: keys.right,
                residual: keys.residual,
            }
        };
        cur = Plan::Join(Box::new(JoinPlan {
            left,
            right,
            left_width: lw,
            right_width: rw,
            kind: JoinKind::Inner,
            strategy,
            emit: None,
            filters: Vec::new(),
        }));
        cur_cols = concat;
    }
    debug_assert!(
        pending.is_empty(),
        "every conjunct lands once all leaves join"
    );

    let pos: HashMap<usize, usize> = cur_cols.iter().enumerate().map(|(p, &g)| (g, p)).collect();
    let perm: Vec<usize> = (0..width).map(|g| pos[&g]).collect();
    if let Plan::Join(j) = &mut cur {
        // Root filters are the column-free leftovers, unaffected by emit.
        j.filters.extend(consts);
        if perm.iter().enumerate().any(|(i, &p)| i != p) {
            j.emit = Some(perm);
        }
    }
    cur
}
