//! `EXPLAIN` rendering: the prepared physical plan as a stable text tree.
//!
//! The output is deliberately terse and deterministic — one line per
//! operator, two-space indentation for join inputs, cardinality estimates
//! from [`cost::estimate`] — so the golden suite can pin plan *shapes*
//! (which join strategy, which build side, how far filters sank) without
//! being brittle about expression formatting.

use super::cost;
use super::planner::{Plan, Strategy, Used};
use super::Prepared;
use dataspread_sql::ast::JoinKind;

/// Render the shaping stages (top) and the plan tree (bottom) as one line
/// per row of `EXPLAIN` output.
pub(crate) fn render(
    p: &Prepared,
    distinct: bool,
    offset: usize,
    limit: Option<usize>,
) -> Vec<String> {
    render_with_marks(p, distinct, offset, limit).0
}

/// [`render`], also returning the output index of every plan-node line in
/// pre-order (self, left, right) — the same order `planner::build`
/// allocates node meters, so `EXPLAIN ANALYZE` can pair them by position.
pub(crate) fn render_with_marks(
    p: &Prepared,
    distinct: bool,
    offset: usize,
    limit: Option<usize>,
) -> (Vec<String>, Vec<usize>) {
    let mut out = Vec::new();
    let names: Vec<&str> = p.proj.iter().map(|(_, n)| n.as_str()).collect();
    out.push(format!("project: {}", names.join(", ")));
    if distinct {
        out.push("distinct".to_string());
    }
    if !p.order.is_empty() {
        out.push(format!("sort: {} keys", p.order.len()));
    }
    match (limit, offset) {
        (Some(l), 0) => out.push(format!("limit: {l}")),
        (Some(l), o) => out.push(format!("limit: {l} offset: {o}")),
        (None, o) if o > 0 => out.push(format!("offset: {o}")),
        _ => {}
    }
    if p.grouped {
        let mut line = format!(
            "aggregate: {} groups, {} aggregates",
            p.key_exprs.len(),
            p.specs.len()
        );
        if p.having.is_some() {
            line.push_str(", having");
        }
        out.push(line);
    }
    if !p.top_filters.is_empty() {
        out.push(format!("filter: {} predicates", p.top_filters.len()));
    }
    let mut marks = Vec::new();
    node(&p.plan, 0, &mut out, &mut marks);
    (out, marks)
}

fn est_of(plan: &Plan) -> u64 {
    let rows = cost::estimate(plan).rows;
    rows.round().clamp(0.0, u64::MAX as f64) as u64
}

fn node(plan: &Plan, depth: usize, out: &mut Vec<String>, marks: &mut Vec<usize>) {
    marks.push(out.len());
    let pad = "  ".repeat(depth);
    match plan {
        Plan::Dual => out.push(format!("{pad}dual")),
        Plan::TableScan {
            snap,
            filters,
            used,
        } => {
            let mut line = format!("{pad}scan {} rows={}", snap.name(), snap.row_count());
            if !filters.is_empty() {
                line.push_str(&format!(" filters={} est~{}", filters.len(), est_of(plan)));
            }
            if let Used::Cols(set) = used {
                line.push_str(&format!(" cols={}/{}", set.len(), snap.schema().width()));
            }
            out.push(line);
        }
        Plan::RangeScan {
            a1,
            width,
            filters,
            used,
        } => {
            let mut line = format!("{pad}range-scan {a1}");
            if !filters.is_empty() {
                line.push_str(&format!(" filters={}", filters.len()));
            }
            if let Used::Cols(set) = used {
                line.push_str(&format!(" cols={}/{width}", set.len()));
            }
            out.push(line);
        }
        Plan::Derived { rows, filters, .. } => {
            let mut line = format!("{pad}derived rows={}", rows.len());
            if !filters.is_empty() {
                line.push_str(&format!(" filters={}", filters.len()));
            }
            out.push(line);
        }
        Plan::Join(j) => {
            let prefix = if j.kind == JoinKind::Left {
                "left-"
            } else {
                ""
            };
            let mut line = match &j.strategy {
                Strategy::Hash {
                    left_keys,
                    residual,
                    ..
                } => {
                    let mut l = format!("{pad}{prefix}hash-join keys={}", left_keys.len());
                    if !residual.is_empty() {
                        l.push_str(&format!(" residual={}", residual.len()));
                    }
                    l
                }
                Strategy::NestedLoop { pred } => {
                    let mut l = format!("{pad}{prefix}nested-loop-join");
                    if !pred.is_empty() {
                        l.push_str(&format!(" pred={}", pred.len()));
                    }
                    l
                }
            };
            if !j.filters.is_empty() {
                line.push_str(&format!(" filters={}", j.filters.len()));
            }
            line.push_str(&format!(" est~{}", est_of(plan)));
            out.push(line);
            node(&j.left, depth + 1, out, marks);
            node(&j.right, depth + 1, out, marks);
        }
    }
}
