//! Join operators: build/probe hash join and the nested-loop fallback.
//!
//! Both stream the **left** input and materialize the right (the build
//! side), and both emit matches for a given left row in right-scan order —
//! so hash and nested-loop runs of the same query produce *identical* row
//! sequences, which the equivalence property suite checks directly.
//!
//! Hash matching is two-staged: the normalized
//! [`join_key`](dataspread_sql::planner::join_key) buckets candidates (any
//! `sql_compare`-equal pair is guaranteed to share a bucket), then every
//! candidate is re-verified with `sql_compare`, which also gives NULL keys
//! their never-match semantics. One caveat against the nested-loop arm:
//! comparing *incomparable* types (`ON a.text_col = b.int_col`) is a type
//! error under nested loops, while hash buckets simply never pair them.

use std::collections::HashMap;
use std::rc::Rc;

use dataspread_sql::expr::{eval, sql_compare, BExpr};
use dataspread_sql::planner::{join_key_row, HKey};
use dataspread_types::{DsResult, Value};

use super::{passes, RowStream};

/// Build/probe hash join over equi-key tuples.
pub(crate) struct HashJoin<'a> {
    pub left: RowStream<'a>,
    pub right: RowStream<'a>,
    /// Key expressions over the left input's columns.
    pub left_keys: Vec<BExpr>,
    /// Key expressions over the right input's columns.
    pub right_keys: Vec<BExpr>,
    /// Non-key `ON` conjuncts over the concatenated row.
    pub residual: Vec<BExpr>,
    pub left_join: bool,
    pub right_width: usize,
    /// Output projection as concat indices (`None` = identity).
    pub emit: Option<Vec<usize>>,
}

impl<'a> HashJoin<'a> {
    /// Consume the right stream into the hash table and return the
    /// streaming probe iterator.
    pub(crate) fn into_stream(self) -> DsResult<RowStream<'a>> {
        let HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            residual,
            left_join,
            right_width,
            emit,
        } = self;
        let mut rows: Vec<Vec<Value>> = Vec::new();
        let mut key_vals: Vec<Vec<Value>> = Vec::new();
        let mut building: HashMap<Vec<HKey>, Vec<usize>> = HashMap::new();
        for r in right {
            let r = r?;
            let kv: Vec<Value> = right_keys
                .iter()
                .map(|k| eval(k, &r, &[]))
                .collect::<DsResult<_>>()?;
            // A NULL key component can never equi-match: such rows are
            // unreachable, so they are not even stored.
            if let Some(hk) = join_key_row(&kv) {
                building.entry(hk).or_default().push(rows.len());
                rows.push(r);
                key_vals.push(kv);
            }
        }
        // Freeze buckets behind Rc so each probe borrows its candidate list
        // without cloning it.
        let buckets = building
            .into_iter()
            .map(|(k, v)| (k, Rc::from(v)))
            .collect();
        Ok(Box::new(HashJoinIter {
            left,
            left_keys,
            rows,
            key_vals,
            buckets,
            residual,
            left_join,
            right_width,
            emit,
            probe: None,
        }))
    }
}

struct HashJoinIter<'a> {
    left: RowStream<'a>,
    left_keys: Vec<BExpr>,
    rows: Vec<Vec<Value>>,
    key_vals: Vec<Vec<Value>>,
    buckets: HashMap<Vec<HKey>, Rc<[usize]>>,
    residual: Vec<BExpr>,
    left_join: bool,
    right_width: usize,
    emit: Option<Vec<usize>>,
    probe: Option<HashProbe>,
}

/// Hash-probe cursor: one left row and its candidate bucket.
struct HashProbe {
    lrow: Vec<Value>,
    /// Evaluated left key values.
    key_vals: Vec<Value>,
    /// The matched bucket's right-row indices (`None`: no bucket).
    cands: Option<Rc<[usize]>>,
    pos: usize,
    matched: bool,
}

impl HashJoinIter<'_> {
    /// Does candidate `ri` really match the probe keys and residual? Emits
    /// the output row if so.
    fn try_match(&self, probe: &HashProbe, ri: usize) -> DsResult<Option<Vec<Value>>> {
        for (lv, rv) in probe.key_vals.iter().zip(&self.key_vals[ri]) {
            if sql_compare(lv, rv)? != Some(std::cmp::Ordering::Equal) {
                return Ok(None);
            }
        }
        let combined = concat(&probe.lrow, Some(&self.rows[ri]), self.right_width);
        if !self.residual.is_empty() && !passes(&self.residual, &combined)? {
            return Ok(None);
        }
        Ok(Some(project(&self.emit, combined)))
    }
}

impl Iterator for HashJoinIter<'_> {
    type Item = DsResult<Vec<Value>>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(mut probe) = self.probe.take() {
                while let Some(&ri) = probe.cands.as_deref().and_then(|c| c.get(probe.pos)) {
                    probe.pos += 1;
                    match self.try_match(&probe, ri) {
                        Err(e) => return Some(Err(e)),
                        Ok(Some(out)) => {
                            probe.matched = true;
                            self.probe = Some(probe);
                            return Some(Ok(out));
                        }
                        Ok(None) => {}
                    }
                }
                if self.left_join && !probe.matched {
                    let combined = concat(&probe.lrow, None, self.right_width);
                    return Some(Ok(project(&self.emit, combined)));
                }
                continue;
            }
            match self.left.next()? {
                Err(e) => return Some(Err(e)),
                Ok(lrow) => {
                    let kv: DsResult<Vec<Value>> =
                        self.left_keys.iter().map(|k| eval(k, &lrow, &[])).collect();
                    let kv = match kv {
                        Err(e) => return Some(Err(e)),
                        Ok(kv) => kv,
                    };
                    let cands = join_key_row(&kv).and_then(|hk| self.buckets.get(&hk).cloned());
                    self.probe = Some(HashProbe {
                        lrow,
                        key_vals: kv,
                        cands,
                        pos: 0,
                        matched: false,
                    });
                }
            }
        }
    }
}

/// Nested loops: the fallback for non-equi constraints, and the reference
/// arm the hash join is verified against.
pub(crate) struct NestedLoopJoin<'a> {
    pub left: RowStream<'a>,
    pub right: RowStream<'a>,
    /// Conjunctive predicate over the concatenated row (empty = cross).
    pub pred: Vec<BExpr>,
    pub left_join: bool,
    pub right_width: usize,
    /// Output projection as concat indices (`None` = identity).
    pub emit: Option<Vec<usize>>,
}

impl<'a> NestedLoopJoin<'a> {
    pub(crate) fn into_stream(self) -> DsResult<RowStream<'a>> {
        let NestedLoopJoin {
            left,
            right,
            pred,
            left_join,
            right_width,
            emit,
        } = self;
        let rows = right.collect::<DsResult<Vec<_>>>()?;
        Ok(Box::new(NestedLoopIter {
            left,
            rows,
            pred,
            left_join,
            right_width,
            emit,
            probe: None,
        }))
    }
}

struct NestedLoopIter<'a> {
    left: RowStream<'a>,
    rows: Vec<Vec<Value>>,
    pred: Vec<BExpr>,
    left_join: bool,
    right_width: usize,
    emit: Option<Vec<usize>>,
    probe: Option<NestedProbe>,
}

/// Nested-loop cursor: one left row and the next right index to try.
struct NestedProbe {
    lrow: Vec<Value>,
    ri: usize,
    matched: bool,
}

impl Iterator for NestedLoopIter<'_> {
    type Item = DsResult<Vec<Value>>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(mut probe) = self.probe.take() {
                while probe.ri < self.rows.len() {
                    let ri = probe.ri;
                    probe.ri += 1;
                    let combined = concat(&probe.lrow, Some(&self.rows[ri]), self.right_width);
                    match passes(&self.pred, &combined) {
                        Err(e) => return Some(Err(e)),
                        Ok(true) => {
                            probe.matched = true;
                            self.probe = Some(probe);
                            return Some(Ok(project(&self.emit, combined)));
                        }
                        Ok(false) => {}
                    }
                }
                if self.left_join && !probe.matched {
                    let combined = concat(&probe.lrow, None, self.right_width);
                    return Some(Ok(project(&self.emit, combined)));
                }
                continue;
            }
            match self.left.next()? {
                Err(e) => return Some(Err(e)),
                Ok(lrow) => {
                    self.probe = Some(NestedProbe {
                        lrow,
                        ri: 0,
                        matched: false,
                    });
                }
            }
        }
    }
}

/// `lrow ++ rrow`, null-extending the right side when unmatched.
fn concat(lrow: &[Value], rrow: Option<&[Value]>, right_width: usize) -> Vec<Value> {
    let mut out = Vec::with_capacity(lrow.len() + right_width);
    out.extend_from_slice(lrow);
    match rrow {
        Some(r) => out.extend_from_slice(r),
        None => out.extend(std::iter::repeat_n(Value::Empty, right_width)),
    }
    out
}

/// Apply the output projection (dropping `NATURAL`-merged duplicates).
fn project(emit: &Option<Vec<usize>>, combined: Vec<Value>) -> Vec<Value> {
    match emit {
        None => combined,
        Some(m) => m.iter().map(|&i| combined[i].clone()).collect(),
    }
}
