//! The streaming `SELECT` executor: plan → operator pipeline → output.
//!
//! PR 1's executor materialized every intermediate relation and joined by
//! nested loops — a 10k×10k equi-join cost 10⁸ row comparisons. This module
//! replaces it with a small operator pipeline:
//!
//! ```text
//!   FROM tree ──► Plan (planner.rs)        WHERE ──► conjuncts
//!                   │  ▲                              │
//!                   │  └── predicate pushdown ────────┘
//!                   ▼
//!   scan ─► filter ─► join (hash / nested-loop) ─► filter
//!                   ▼
//!   aggregate (hash GROUP BY) ─► HAVING ─► project ─► DISTINCT ─► sort ─► limit
//! ```
//!
//! * **Streaming scans** (`scan.rs`) — tables stream through
//!   `Table::iter_rows_sparse`, reading only the attribute groups the query
//!   touches; `RANGETABLE` regions are read column-bounded through
//!   `SheetResolver::range_table_pruned`, so grid scans touch fewer blocks.
//! * **Predicate pushdown** (`planner.rs`) — the `WHERE` conjunction is
//!   split and every single-side term sinks below the joins into its scan
//!   (left-join outer semantics respected).
//! * **Hash joins** (`join.rs`) — equi-join keys extracted from `ON` /
//!   `NATURAL` constraints drive a build/probe hash join with `sql_compare`
//!   verification; non-equi predicates fall back to nested loops. Output
//!   order is identical to the nested-loop order, which the equivalence
//!   property suite exploits.
//! * **Hash aggregation** (`aggregate.rs`) and **hash DISTINCT**
//!   (`output.rs`) — group lookup and dedup are O(1) per row via the
//!   normalized [`dataspread_sql::planner::HKey`].
//!
//! Every operator choice is switchable through [`ExecOptions`] so benches
//! and property tests can run both arms against identical inputs.

pub(crate) mod aggregate;
pub(crate) mod cost;
pub(crate) mod explain;
pub(crate) mod join;
pub(crate) mod output;
pub(crate) mod planner;
pub(crate) mod scan;

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

use dataspread_obs::Counter;
use dataspread_relstore::Catalog;
use dataspread_sql::ast::{Expr, SelectItem, SelectStmt};
use dataspread_sql::expr::{bind, eval, truth, AggContext, BExpr};
use dataspread_sql::planner::{collect_cols, split_conjuncts};
use dataspread_sql::resolver::SheetResolver;
use dataspread_types::{DsError, DsResult, Value};

use aggregate::{collect_aggregates, AggSpec};
use planner::{NodeMeter, Plan, Used};
use scan::FilterIter;

/// Executor strategy switches. All default to on; benches and the
/// equivalence property suites flip individual arms off to compare the
/// optimized operators against their reference implementations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecOptions {
    /// Build/probe hash joins for equi-join constraints (off: nested loops
    /// everywhere).
    pub hash_join: bool,
    /// Hash-table GROUP BY (off: linear group search).
    pub hash_aggregation: bool,
    /// Push single-table WHERE/ON conjuncts below joins into the scans.
    pub predicate_pushdown: bool,
    /// Reorder inner equi-join chains by estimated cardinality (NDV/row
    /// statistics) and pick the smaller input as the hash build side (off:
    /// joins run in syntactic order).
    pub cost_based: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            hash_join: true,
            hash_aggregation: true,
            predicate_pushdown: true,
            cost_based: true,
        }
    }
}

/// Per-operator executor counters. Handles are `Arc`-backed
/// ([`dataspread_obs::Counter`]); a workbook clones its set into every
/// [`ExecCtx`] it builds, so query work lands in the workbook's metrics
/// registry. `Default` gives standalone (unregistered) counters for tests.
#[derive(Clone, Debug, Default)]
pub(crate) struct ExecMetrics {
    /// SELECT statements executed.
    pub queries: Counter,
    /// Rows produced by leaf scans (table and range scans), pre-filter.
    pub rows_scanned: Counter,
    /// Rows returned to the client.
    pub rows_output: Counter,
    /// Rows materialized into join build sides.
    pub join_build_rows: Counter,
    /// Rows streamed through join probe sides.
    pub join_probe_rows: Counter,
}

/// Everything a query needs to run: the catalog, the live-sheet resolver,
/// the strategy switches, and the counters that observe it.
pub(crate) struct ExecCtx<'a> {
    pub catalog: &'a Catalog,
    pub resolver: &'a dyn SheetResolver,
    pub options: ExecOptions,
    pub metrics: ExecMetrics,
}

/// A stream of rows flowing through the operator pipeline. Errors surface
/// in-band so operators stay composable.
pub(crate) type RowStream<'a> = Box<dyn Iterator<Item = DsResult<Vec<Value>>> + 'a>;

/// Evaluate an expression with no row context (DEFAULTs, LIMIT, VALUES).
pub(crate) fn eval_standalone(e: &Expr, resolver: &dyn SheetResolver) -> DsResult<Value> {
    let b = bind(e, &[], None, resolver)?;
    eval(&b, &[], &[])
}

/// Evaluate a LIMIT/OFFSET argument to a non-negative count.
pub(crate) fn count_arg(e: &Expr, resolver: &dyn SheetResolver, what: &str) -> DsResult<usize> {
    let v = eval_standalone(e, resolver)?;
    let n = v
        .coerce_i64()
        .map_err(|_| DsError::Sql(format!("{what} must be an integer, got {v:?}")))?;
    if n < 0 {
        return Err(DsError::Sql(format!("{what} must be non-negative")));
    }
    Ok(n as usize)
}

/// Do all filter conjuncts hold (`truth == Some(true)`) for `row`?
pub(crate) fn passes(preds: &[BExpr], row: &[Value]) -> DsResult<bool> {
    for p in preds {
        if truth(&eval(p, row, &[])?)? != Some(true) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// A `SELECT` planned up to (but not including) stream construction:
/// everything `run_select` needs to execute, and everything `EXPLAIN`
/// needs to render.
pub(crate) struct Prepared {
    pub(crate) plan: Plan,
    pub(crate) width: usize,
    pub(crate) top_filters: Vec<BExpr>,
    pub(crate) key_exprs: Vec<BExpr>,
    pub(crate) specs: Vec<AggSpec>,
    pub(crate) grouped: bool,
    pub(crate) having: Option<BExpr>,
    pub(crate) proj: Vec<(BExpr, String)>,
    pub(crate) order: Vec<(output::SortSrc, bool)>,
}

/// Plan one `SELECT`: FROM tree, predicate pushdown, the hash-key upgrade,
/// cost-based join reordering, binding, and used-column marking.
pub(crate) fn prepare_select(ctx: &ExecCtx<'_>, sel: &SelectStmt) -> DsResult<Prepared> {
    // FROM tree → plan + output schema. `SELECT 1+1` runs over one
    // anonymous empty row.
    let (mut plan, cols) = match &sel.from {
        Some(te) => planner::plan_from(ctx, te)?,
        None => (Plan::Dual, Vec::new()),
    };

    // WHERE: bind against the full schema (preserving ambiguity errors),
    // split the conjunction, sink what we can below the joins.
    let mut top_filters: Vec<BExpr> = Vec::new();
    if let Some(f) = &sel.filter {
        let bound = bind(f, &cols, None, ctx.resolver)?;
        for c in split_conjuncts(bound) {
            let mut refs = HashSet::new();
            collect_cols(&c, &mut refs);
            if ctx.options.predicate_pushdown && !refs.is_empty() && !matches!(plan, Plan::Dual) {
                plan.absorb_filter(c);
            } else {
                top_filters.push(c);
            }
        }
    }
    // Equi conjuncts that landed in an inner join's post-filter (e.g.
    // `CROSS JOIN … WHERE l.v = r.w`) become hash keys.
    if ctx.options.hash_join {
        plan.upgrade_hash_joins();
    }
    // With keys in place, reorder inner join chains by estimated
    // cardinality: smallest intermediate first, smaller input building.
    if ctx.options.hash_join && ctx.options.cost_based {
        cost::optimize(&mut plan, cols.len());
    }

    // Aggregate discovery across projection, HAVING, and ORDER BY.
    let mut agg_exprs: Vec<Expr> = Vec::new();
    let mut slots = std::collections::HashMap::new();
    for item in &sel.projection {
        if let SelectItem::Expr { expr, .. } = item {
            collect_aggregates(expr, &mut agg_exprs, &mut slots);
        }
    }
    if let Some(h) = &sel.having {
        collect_aggregates(h, &mut agg_exprs, &mut slots);
    }
    for oi in &sel.order_by {
        collect_aggregates(&oi.expr, &mut agg_exprs, &mut slots);
    }
    let grouped = !sel.group_by.is_empty() || !agg_exprs.is_empty() || sel.having.is_some();

    let key_exprs: Vec<BExpr> = sel
        .group_by
        .iter()
        .map(|e| bind(e, &cols, None, ctx.resolver))
        .collect::<DsResult<_>>()?;
    let specs: Vec<AggSpec> = agg_exprs
        .iter()
        .map(|e| AggSpec::compile(e, &cols, ctx.resolver))
        .collect::<DsResult<_>>()?;

    let agg_ctx = AggContext { slots };
    let agg_ref = if grouped { Some(&agg_ctx) } else { None };

    // Bind HAVING, projection, and ORDER BY *before* building streams so
    // used-column marking sees every reference.
    let having = match &sel.having {
        Some(h) => Some(bind(h, &cols, agg_ref, ctx.resolver)?),
        None => None,
    };
    let proj = output::build_projection(sel, &cols, agg_ref, ctx.resolver, grouped)?;
    let order = output::build_order(sel, &proj, &cols, agg_ref, ctx.resolver)?;

    // Used-column analysis → scans read only what the query touches.
    let wildcard = sel
        .projection
        .iter()
        .any(|i| !matches!(i, SelectItem::Expr { .. }));
    let used = if wildcard {
        Used::All
    } else {
        let mut set = HashSet::new();
        for e in top_filters
            .iter()
            .chain(&key_exprs)
            .chain(having.iter())
            .chain(proj.iter().map(|(b, _)| b))
        {
            collect_cols(e, &mut set);
        }
        for (src, _) in &order {
            if let output::SortSrc::Ctx(b) = src {
                collect_cols(b, &mut set);
            }
        }
        for s in &specs {
            s.collect_cols(&mut set);
        }
        Used::Cols(set)
    };
    plan.mark_used(used);

    Ok(Prepared {
        plan,
        width: cols.len(),
        top_filters,
        key_exprs,
        specs,
        grouped,
        having,
        proj,
        order,
    })
}

/// Run one `SELECT` to completion.
pub(crate) fn run_select(
    ctx: &ExecCtx<'_>,
    sel: &SelectStmt,
) -> DsResult<(Vec<String>, Vec<Vec<Value>>)> {
    let prepared = prepare_select(ctx, sel)?;
    execute_prepared(ctx, sel, prepared, None)
}

/// Execute an already-prepared `SELECT`. With `meters`, every plan node's
/// stream is wrapped to record actual rows, loops, and wall time (the
/// `EXPLAIN ANALYZE` path); without, the pipeline runs unwrapped.
fn execute_prepared(
    ctx: &ExecCtx<'_>,
    sel: &SelectStmt,
    prepared: Prepared,
    meters: Option<&mut Vec<Arc<NodeMeter>>>,
) -> DsResult<(Vec<String>, Vec<Vec<Value>>)> {
    let Prepared {
        plan,
        width,
        top_filters,
        key_exprs,
        specs,
        grouped,
        having,
        proj,
        order,
    } = prepared;
    ctx.metrics.queries.bump();

    // Build the pipeline.
    let mut stream = planner::build(plan, ctx, meters)?;
    if !top_filters.is_empty() {
        stream = Box::new(FilterIter::new(stream, top_filters));
    }

    // LIMIT/OFFSET evaluate up front so simple queries can stop pulling
    // rows as soon as the window is full.
    let offset = match &sel.offset {
        Some(e) => count_arg(e, ctx.resolver, "OFFSET")?,
        None => 0,
    };
    let limit = match &sel.limit {
        Some(e) => Some(count_arg(e, ctx.resolver, "LIMIT")?),
        None => None,
    };

    // Evaluation contexts: (representative row, aggregate slot values).
    let mut contexts: Vec<(Vec<Value>, Vec<Value>)> = if grouped {
        aggregate::aggregate(
            stream,
            &key_exprs,
            &specs,
            width,
            ctx.options.hash_aggregation,
        )?
    } else {
        // Streaming early exit: with no ordering, dedup, or grouping, only
        // the first OFFSET+LIMIT rows can reach the output.
        let bound = match (limit, order.is_empty(), sel.distinct) {
            (Some(l), true, false) => offset.saturating_add(l),
            _ => usize::MAX,
        };
        let mut out = Vec::new();
        for row in stream {
            if out.len() >= bound {
                break;
            }
            out.push((row?, Vec::new()));
        }
        out
    };

    // HAVING.
    if let Some(h) = &having {
        let mut kept = Vec::with_capacity(contexts.len());
        for (r, a) in contexts {
            if truth(&eval(h, &r, &a)?)? == Some(true) {
                kept.push((r, a));
            }
        }
        contexts = kept;
    }

    let rows = output::finish(contexts, &proj, &order, sel.distinct, offset, limit)?;
    ctx.metrics.rows_output.add(rows.len() as u64);
    Ok((proj.into_iter().map(|(_, n)| n).collect(), rows))
}

/// Plan one `SELECT` and render the chosen physical plan as text lines
/// (`EXPLAIN`). The outer plan is not executed, but planning materializes
/// `FROM` subqueries (they are `Derived` leaves), so an expensive derived
/// table still runs under `EXPLAIN`.
pub(crate) fn explain_select(ctx: &ExecCtx<'_>, sel: &SelectStmt) -> DsResult<Vec<String>> {
    let prepared = prepare_select(ctx, sel)?;
    let offset = match &sel.offset {
        Some(e) => count_arg(e, ctx.resolver, "OFFSET")?,
        None => 0,
    };
    let limit = match &sel.limit {
        Some(e) => Some(count_arg(e, ctx.resolver, "LIMIT")?),
        None => None,
    };
    Ok(explain::render(&prepared, sel.distinct, offset, limit))
}

/// `EXPLAIN ANALYZE`: plan, render the `EXPLAIN` tree, *execute* the plan
/// with per-node meters, then annotate each node line with its actual
/// rows/loops/wall-time next to the estimates. Returns the annotated lines
/// plus the executed result set so callers can cross-check actual row
/// counts against the equivalent `SELECT`.
pub(crate) fn analyze_select(
    ctx: &ExecCtx<'_>,
    sel: &SelectStmt,
) -> DsResult<(Vec<String>, Vec<Vec<Value>>)> {
    let prepared = prepare_select(ctx, sel)?;
    let offset = match &sel.offset {
        Some(e) => count_arg(e, ctx.resolver, "OFFSET")?,
        None => 0,
    };
    let limit = match &sel.limit {
        Some(e) => Some(count_arg(e, ctx.resolver, "LIMIT")?),
        None => None,
    };
    // Skeleton first: rendering borrows the plan, execution consumes it.
    // `render_with_marks` visits nodes in the same pre-order as
    // `planner::build` allocates meters, so marks[i] pairs with meters[i].
    let (mut lines, marks) = explain::render_with_marks(&prepared, sel.distinct, offset, limit);
    let mut meters: Vec<Arc<NodeMeter>> = Vec::new();
    let started = Instant::now();
    let (_, rows) = execute_prepared(ctx, sel, prepared, Some(&mut meters))?;
    let total_ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    debug_assert_eq!(marks.len(), meters.len());
    for (mark, meter) in marks.iter().zip(&meters) {
        lines[*mark].push_str(&format!(
            " (actual rows={} loops={} time={})",
            meter.rows(),
            meter.loops(),
            fmt_ms(meter.ns()),
        ));
    }
    // The top shaping line gets the statement-level actuals.
    if let Some(first) = lines.first_mut() {
        first.push_str(&format!(
            " (actual rows={} time={})",
            rows.len(),
            fmt_ms(total_ns),
        ));
    }
    Ok((lines, rows))
}

/// Milliseconds with three decimals, the `EXPLAIN ANALYZE` time unit.
fn fmt_ms(ns: u64) -> String {
    format!("{:.3}ms", ns as f64 / 1_000_000.0)
}
