//! Output shaping: projection expansion, `ORDER BY` resolution, hash
//! `DISTINCT`, sorting, and `LIMIT`/`OFFSET`.

use std::cmp::Ordering;
use std::collections::HashSet;

use dataspread_sql::ast::{Expr, OrderItem, SelectItem, SelectStmt};
use dataspread_sql::expr::{bind, eval, AggContext, BExpr, ColInfo};
use dataspread_sql::planner::HKey;
use dataspread_sql::resolver::SheetResolver;
use dataspread_types::{DsError, DsResult, Value};

/// Expand the projection into `(bound expression, output name)` pairs.
pub(crate) fn build_projection(
    sel: &SelectStmt,
    cols: &[ColInfo],
    agg_ref: Option<&AggContext>,
    resolver: &dyn SheetResolver,
    grouped: bool,
) -> DsResult<Vec<(BExpr, String)>> {
    let mut proj: Vec<(BExpr, String)> = Vec::new();
    for item in &sel.projection {
        match item {
            SelectItem::Wildcard => {
                if grouped {
                    return Err(DsError::Sql(
                        "SELECT * is not valid with GROUP BY or aggregates".into(),
                    ));
                }
                if cols.is_empty() {
                    return Err(DsError::Sql("SELECT * requires a FROM clause".into()));
                }
                for (i, c) in cols.iter().enumerate() {
                    proj.push((BExpr::Col(i), c.name.clone()));
                }
            }
            SelectItem::QualifiedWildcard(t) => {
                if grouped {
                    return Err(DsError::Sql(
                        "SELECT t.* is not valid with GROUP BY or aggregates".into(),
                    ));
                }
                let tq = t.to_ascii_lowercase();
                let before = proj.len();
                for (i, c) in cols.iter().enumerate() {
                    if c.qualifier.as_deref() == Some(tq.as_str()) {
                        proj.push((BExpr::Col(i), c.name.clone()));
                    }
                }
                if proj.len() == before {
                    return Err(DsError::Sql(format!("unknown table alias `{t}`")));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let b = bind(expr, cols, agg_ref, resolver)?;
                let name = alias.clone().unwrap_or_else(|| expr_label(expr));
                proj.push((b, name));
            }
        }
    }
    Ok(proj)
}

/// Where an `ORDER BY` key comes from: a projected output column, or an
/// expression over the evaluation context.
pub(crate) enum SortSrc {
    Output(usize),
    Ctx(BExpr),
}

/// Resolve `ORDER BY` items against output ordinals, output aliases, or the
/// source relation.
pub(crate) fn build_order(
    sel: &SelectStmt,
    proj: &[(BExpr, String)],
    cols: &[ColInfo],
    agg_ref: Option<&AggContext>,
    resolver: &dyn SheetResolver,
) -> DsResult<Vec<(SortSrc, bool)>> {
    let mut order: Vec<(SortSrc, bool)> = Vec::with_capacity(sel.order_by.len());
    for OrderItem { expr, asc } in &sel.order_by {
        let src = match expr {
            Expr::Literal(Value::Int(k)) => {
                let i = *k;
                if i < 1 || i as usize > proj.len() {
                    return Err(DsError::Sql(format!(
                        "ORDER BY position {i} is out of range (1..={})",
                        proj.len()
                    )));
                }
                SortSrc::Output(i as usize - 1)
            }
            Expr::Column { table: None, name } => {
                let matches: Vec<usize> = proj
                    .iter()
                    .enumerate()
                    .filter(|(_, (_, n))| n.eq_ignore_ascii_case(name))
                    .map(|(i, _)| i)
                    .collect();
                match matches.as_slice() {
                    [one] => SortSrc::Output(*one),
                    [] => SortSrc::Ctx(bind(expr, cols, agg_ref, resolver)?),
                    _ => {
                        return Err(DsError::Sql(format!(
                            "ORDER BY column `{name}` is ambiguous"
                        )))
                    }
                }
            }
            e => SortSrc::Ctx(bind(e, cols, agg_ref, resolver)?),
        };
        order.push((src, *asc));
    }
    Ok(order)
}

/// Project every context, then apply `DISTINCT`, the sort, and the
/// `OFFSET`/`LIMIT` window.
pub(crate) fn finish(
    contexts: Vec<(Vec<Value>, Vec<Value>)>,
    proj: &[(BExpr, String)],
    order: &[(SortSrc, bool)],
    distinct: bool,
    offset: usize,
    limit: Option<usize>,
) -> DsResult<Vec<Vec<Value>>> {
    // Output rows with their sort keys.
    let mut out: Vec<(Vec<Value>, Vec<Value>)> = Vec::with_capacity(contexts.len());
    for (r, a) in &contexts {
        let vals: Vec<Value> = proj
            .iter()
            .map(|(b, _)| eval(b, r, a))
            .collect::<DsResult<_>>()?;
        let keys: Vec<Value> = order
            .iter()
            .map(|(src, _)| match src {
                SortSrc::Output(i) => Ok(vals[*i].clone()),
                SortSrc::Ctx(b) => eval(b, r, a),
            })
            .collect::<DsResult<_>>()?;
        out.push((vals, keys));
    }

    // DISTINCT keeps the first occurrence of each projected row — O(1) per
    // row through the normalized key (the previous executor's linear `seen`
    // scan was O(n²)).
    if distinct {
        let mut seen: HashSet<Vec<HKey>> = HashSet::with_capacity(out.len());
        out.retain(|(vals, _)| seen.insert(HKey::of_row(vals)));
    }

    if !order.is_empty() {
        out.sort_by(|(_, ka), (_, kb)| {
            for (i, (_, asc)) in order.iter().enumerate() {
                let ord = ka[i].total_cmp(&kb[i]);
                let ord = if *asc { ord } else { ord.reverse() };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
    }

    Ok(out
        .into_iter()
        .map(|(vals, _)| vals)
        .skip(offset)
        .take(limit.unwrap_or(usize::MAX))
        .collect())
}

/// A readable output-column label for an unaliased projection.
pub(crate) fn expr_label(e: &Expr) -> String {
    match e {
        Expr::Column { name, .. } => name.clone(),
        Expr::Function {
            name, star: true, ..
        } => format!("{}(*)", name.to_ascii_lowercase()),
        Expr::Function { name, .. } => name.to_ascii_lowercase(),
        Expr::RangeValue(r) => format!("rangevalue({r})"),
        Expr::Cast { expr, .. } => expr_label(expr),
        Expr::Literal(v) => v.display_string(),
        _ => "expr".to_string(),
    }
}
