//! FROM-tree planning: leaf scans, join strategy selection, predicate
//! pushdown, and used-column marking.
//!
//! The plan is a thin tree mirroring the `FROM` clause. Planning is three
//! passes over it:
//!
//! 1. [`plan_from`] builds the tree bottom-up, computing each node's output
//!    schema and choosing a join strategy — hash build/probe when the
//!    constraint yields equi-keys ([`extract_equi_keys`]), nested loops
//!    otherwise. `ON` conjuncts that reference a single side sink into that
//!    side here (for `LEFT JOIN`, only right-side terms — left-side `ON`
//!    terms gate matching, they don't filter the preserved side).
//! 2. [`Plan::absorb_filter`] sinks `WHERE` conjuncts: a term whose columns
//!    all come from one join input descends into it (never into the
//!    null-supplying side of a `LEFT JOIN`, whose columns the term would see
//!    null-extended).
//! 3. [`Plan::mark_used`] pushes the set of referenced columns down to the
//!    leaves, so table scans skip unused attribute groups and `RANGETABLE`
//!    scans read a column-bounded window of the grid.
//!
//! [`build`] then turns the tree into the streaming operator pipeline.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use dataspread_relstore::TableSnapshot;
use dataspread_sql::ast::{JoinConstraint, JoinKind, TableExpr};
use dataspread_sql::expr::{bind, ColInfo};
use dataspread_sql::planner::{cols_of, extract_equi_keys, remap_cols, split_conjuncts};
use dataspread_sql::BExpr;
use dataspread_types::{DsError, DsResult, Value};

use super::join::{HashJoin, NestedLoopJoin};
use super::scan::{range_scan, table_scan, FilterIter};
use super::{run_select, ExecCtx, RowStream};

/// Which join input a column comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) enum Side {
    Left,
    Right,
}

/// Column set a subtree must materialize. `All` short-circuits tracking
/// (e.g. `SELECT *`).
pub(crate) enum Used {
    All,
    Cols(HashSet<usize>),
}

impl Used {
    fn insert(&mut self, i: usize) {
        if let Used::Cols(s) = self {
            s.insert(i);
        }
    }
}

/// One node of the FROM-tree plan. Every node carries `filters` applied to
/// its *output* rows — for leaves that is the pushed-down scan filter, for
/// joins the post-join leftovers that could not sink further.
pub(crate) enum Plan {
    /// `SELECT` without `FROM`: one anonymous empty row.
    Dual,
    /// Leaf scan over an owned [`TableSnapshot`] taken at plan time: every
    /// `SELECT` reads a consistent per-table snapshot and never blocks (or
    /// is blocked by) writers for the duration of the scan.
    TableScan {
        snap: TableSnapshot,
        filters: Vec<BExpr>,
        used: Used,
    },
    RangeScan {
        a1: String,
        width: usize,
        filters: Vec<BExpr>,
        used: Used,
    },
    /// Subquery in `FROM`, already evaluated. `width` is the logical column
    /// count, which `rows` cannot reveal when the subquery returned nothing.
    Derived {
        rows: Vec<Vec<Value>>,
        width: usize,
        filters: Vec<BExpr>,
    },
    Join(Box<JoinPlan>),
}

pub(crate) struct JoinPlan {
    pub(crate) left: Plan,
    pub(crate) right: Plan,
    pub(crate) left_width: usize,
    pub(crate) right_width: usize,
    pub(crate) kind: JoinKind,
    pub(crate) strategy: Strategy,
    /// Output columns as concat (`left ++ right`) indices; `None` is the
    /// identity (only `NATURAL` joins merge columns away).
    pub(crate) emit: Option<Vec<usize>>,
    /// Post-join filters, output-relative.
    pub(crate) filters: Vec<BExpr>,
}

pub(crate) enum Strategy {
    /// Build/probe hash join on `sql_compare`-equality of the key tuples.
    Hash {
        /// Key expressions over the left input's columns.
        left_keys: Vec<BExpr>,
        /// Key expressions over the right input's columns.
        right_keys: Vec<BExpr>,
        /// Remaining `ON` conjuncts, concat-relative.
        residual: Vec<BExpr>,
    },
    /// Nested loops with an optional conjunctive predicate, concat-relative.
    NestedLoop { pred: Vec<BExpr> },
}

// ---- pass 1: tree construction -------------------------------------------

/// Plan a FROM tree, returning the plan and its output schema.
pub(crate) fn plan_from(ctx: &ExecCtx<'_>, te: &TableExpr) -> DsResult<(Plan, Vec<ColInfo>)> {
    match te {
        TableExpr::Named { name, alias } => {
            // Take the snapshot under a briefly-held read lock; the scan
            // itself runs lock-free against the snapshot.
            let snap = ctx.catalog.get(name)?.snapshot();
            let q = alias.as_deref().unwrap_or(name);
            let cols = snap
                .schema()
                .columns()
                .iter()
                .map(|c| ColInfo::new(Some(q), c.name.clone()))
                .collect();
            Ok((
                Plan::TableScan {
                    snap,
                    filters: Vec::new(),
                    used: Used::Cols(HashSet::new()),
                },
                cols,
            ))
        }
        TableExpr::RangeTable { range, alias } => {
            let names = ctx.resolver.range_table_names(range)?;
            let cols: Vec<ColInfo> = names
                .into_iter()
                .map(|n| ColInfo::new(alias.as_deref(), n))
                .collect();
            Ok((
                Plan::RangeScan {
                    a1: range.clone(),
                    width: cols.len(),
                    filters: Vec::new(),
                    used: Used::Cols(HashSet::new()),
                },
                cols,
            ))
        }
        TableExpr::Subquery { query, alias } => {
            let (names, rows) = run_select(ctx, query)?;
            let cols: Vec<ColInfo> = names
                .into_iter()
                .map(|n| ColInfo::new(Some(alias.as_str()), n))
                .collect();
            Ok((
                Plan::Derived {
                    rows,
                    width: cols.len(),
                    filters: Vec::new(),
                },
                cols,
            ))
        }
        TableExpr::Join {
            left,
            right,
            kind,
            constraint,
        } => plan_join(ctx, left, right, *kind, constraint),
    }
}

fn plan_join(
    ctx: &ExecCtx<'_>,
    left: &TableExpr,
    right: &TableExpr,
    kind: JoinKind,
    constraint: &JoinConstraint,
) -> DsResult<(Plan, Vec<ColInfo>)> {
    let (mut lp, lcols) = plan_from(ctx, left)?;
    let (mut rp, rcols) = plan_from(ctx, right)?;
    let lw = lcols.len();

    let (strategy, emit, cols) = match constraint {
        JoinConstraint::Natural => {
            let pairs = natural_pairs(&lcols, &rcols)?;
            let keep_right: Vec<usize> = (0..rcols.len())
                .filter(|ri| !pairs.iter().any(|(_, p)| p == ri))
                .collect();
            let mut cols = lcols.clone();
            cols.extend(keep_right.iter().map(|&ri| rcols[ri].clone()));
            let emit: Vec<usize> = (0..lw)
                .chain(keep_right.iter().map(|&ri| lw + ri))
                .collect();
            let strategy = if pairs.is_empty() {
                // No shared columns: NATURAL degenerates to a cross join.
                Strategy::NestedLoop { pred: Vec::new() }
            } else if ctx.options.hash_join {
                Strategy::Hash {
                    left_keys: pairs.iter().map(|&(li, _)| BExpr::Col(li)).collect(),
                    right_keys: pairs.iter().map(|&(_, ri)| BExpr::Col(ri)).collect(),
                    residual: Vec::new(),
                }
            } else {
                Strategy::NestedLoop {
                    pred: pairs
                        .iter()
                        .map(|&(li, ri)| BExpr::Binary {
                            left: Box::new(BExpr::Col(li)),
                            op: dataspread_sql::ast::BinOp::Eq,
                            right: Box::new(BExpr::Col(lw + ri)),
                        })
                        .collect(),
                }
            };
            (strategy, Some(emit), cols)
        }
        JoinConstraint::On(e) => {
            let mut concat = lcols.clone();
            concat.extend(rcols.iter().cloned());
            let bound = bind(e, &concat, None, ctx.resolver)?;
            let mut conjuncts = split_conjuncts(bound);
            if ctx.options.predicate_pushdown {
                // Single-side ON terms sink into their input. For LEFT
                // JOIN, left-side terms must stay: they gate matching, not
                // the preserved rows.
                conjuncts.retain(|c| {
                    let refs = cols_of(c);
                    if refs.is_empty() {
                        return true;
                    }
                    let all_left = refs.iter().all(|&i| i < lw);
                    let all_right = refs.iter().all(|&i| i >= lw);
                    if all_left && kind != JoinKind::Left {
                        lp.absorb_filter(c.clone());
                        false
                    } else if all_right {
                        rp.absorb_filter(remap_cols(c, &|i| i - lw));
                        false
                    } else {
                        true
                    }
                });
            }
            let strategy = if ctx.options.hash_join {
                let keys = extract_equi_keys(conjuncts, lw);
                if keys.left.is_empty() {
                    Strategy::NestedLoop {
                        pred: keys.residual,
                    }
                } else {
                    Strategy::Hash {
                        left_keys: keys.left,
                        right_keys: keys.right,
                        residual: keys.residual,
                    }
                }
            } else {
                Strategy::NestedLoop { pred: conjuncts }
            };
            (strategy, None, concat)
        }
        JoinConstraint::None => {
            let mut concat = lcols.clone();
            concat.extend(rcols.iter().cloned());
            (Strategy::NestedLoop { pred: Vec::new() }, None, concat)
        }
    };

    Ok((
        Plan::Join(Box::new(JoinPlan {
            left: lp,
            right: rp,
            left_width: lw,
            right_width: rcols.len(),
            kind,
            strategy,
            emit,
            filters: Vec::new(),
        })),
        cols,
    ))
}

/// The (left, right) column pairs a `NATURAL JOIN` equi-joins on. A shared
/// name appearing more than once on either side is an error — the previous
/// executor silently joined on the first right-hand match.
fn natural_pairs(lcols: &[ColInfo], rcols: &[ColInfo]) -> DsResult<Vec<(usize, usize)>> {
    let mut pairs = Vec::new();
    for (li, lc) in lcols.iter().enumerate() {
        let matches: Vec<usize> = rcols
            .iter()
            .enumerate()
            .filter(|(_, rc)| rc.name.eq_ignore_ascii_case(&lc.name))
            .map(|(ri, _)| ri)
            .collect();
        match matches.as_slice() {
            [] => {}
            [ri] => {
                if lcols
                    .iter()
                    .enumerate()
                    .any(|(lj, lc2)| lj != li && lc2.name.eq_ignore_ascii_case(&lc.name))
                {
                    return Err(DsError::Sql(format!(
                        "NATURAL JOIN: column `{}` appears more than once on the left side",
                        lc.name
                    )));
                }
                pairs.push((li, *ri));
            }
            _ => {
                return Err(DsError::Sql(format!(
                    "NATURAL JOIN: column `{}` appears more than once on the right side",
                    lc.name
                )))
            }
        }
    }
    Ok(pairs)
}

// ---- pass 2: WHERE pushdown ----------------------------------------------

impl Plan {
    /// Install `pred` — bound against this node's output columns and
    /// referencing at least one of them — as deep in the tree as it can
    /// legally go. Always succeeds: the fallback is this node's own output
    /// filter.
    pub(crate) fn absorb_filter(&mut self, pred: BExpr) {
        match self {
            Plan::Dual => unreachable!("Dual has no columns to filter on"),
            Plan::TableScan { filters, .. }
            | Plan::RangeScan { filters, .. }
            | Plan::Derived { filters, .. } => filters.push(pred),
            Plan::Join(j) => {
                let refs = cols_of(&pred);
                let sides: HashSet<Side> = refs.iter().map(|&i| j.child_of(i).0).collect();
                if sides.len() == 1 {
                    let side = *sides.iter().next().unwrap();
                    // A WHERE term on the null-supplying side of a LEFT
                    // JOIN sees null-extended rows; it cannot sink.
                    let legal = side == Side::Left || j.kind != JoinKind::Left;
                    if legal {
                        let j: &mut JoinPlan = j;
                        let remapped = remap_cols(&pred, &|i| j.child_of(i).1);
                        match side {
                            Side::Left => j.left.absorb_filter(remapped),
                            Side::Right => j.right.absorb_filter(remapped),
                        }
                        return;
                    }
                }
                j.filters.push(pred);
            }
        }
    }

    /// After `WHERE` pushdown, equi conjuncts may be sitting in an inner
    /// join's post-filter (`CROSS JOIN … WHERE l.v = r.w`, or leftovers a
    /// child couldn't absorb). For inner/cross joins a post-filter is
    /// equivalent to a join predicate, so fold the filters in and
    /// re-extract hash keys — never for `LEFT JOIN`, where post-filters see
    /// null-extended rows.
    pub(crate) fn upgrade_hash_joins(&mut self) {
        let Plan::Join(j) = self else { return };
        j.left.upgrade_hash_joins();
        j.right.upgrade_hash_joins();
        if j.kind == JoinKind::Left {
            return;
        }
        // Everything below is concat-relative: post-filters come home
        // through the emit map, strategy conjuncts already are.
        let folded: Vec<BExpr> = std::mem::take(&mut j.filters)
            .iter()
            .map(|f| match &j.emit {
                None => f.clone(),
                Some(m) => remap_cols(f, &|i| m[i]),
            })
            .collect();
        let strategy =
            std::mem::replace(&mut j.strategy, Strategy::NestedLoop { pred: Vec::new() });
        let (mut left_keys, mut right_keys, mut conjuncts) = match strategy {
            Strategy::Hash {
                left_keys,
                right_keys,
                residual,
            } => (left_keys, right_keys, residual),
            Strategy::NestedLoop { pred } => (Vec::new(), Vec::new(), pred),
        };
        conjuncts.extend(folded);
        let keys = extract_equi_keys(conjuncts, j.left_width);
        left_keys.extend(keys.left);
        right_keys.extend(keys.right);
        j.strategy = if left_keys.is_empty() {
            Strategy::NestedLoop {
                pred: keys.residual,
            }
        } else {
            Strategy::Hash {
                left_keys,
                right_keys,
                residual: keys.residual,
            }
        };
    }

    // ---- pass 3: used-column marking -------------------------------------

    /// Record which of this node's output columns the query reads, and
    /// recurse. Filter and join-key columns are added on the way down.
    pub(crate) fn mark_used(&mut self, incoming: Used) {
        match self {
            Plan::Dual | Plan::Derived { .. } => {}
            Plan::TableScan { filters, used, .. } | Plan::RangeScan { filters, used, .. } => {
                let mut u = incoming;
                for f in filters.iter() {
                    for i in cols_of(f) {
                        u.insert(i);
                    }
                }
                *used = u;
            }
            Plan::Join(j) => {
                let (mut lu, mut ru) = match &incoming {
                    Used::All => (Used::All, Used::All),
                    Used::Cols(set) => {
                        let mut lu = HashSet::new();
                        let mut ru = HashSet::new();
                        for &i in set {
                            match j.child_of(i) {
                                (Side::Left, c) => lu.insert(c),
                                (Side::Right, c) => ru.insert(c),
                            };
                        }
                        (Used::Cols(lu), Used::Cols(ru))
                    }
                };
                for f in &j.filters {
                    for i in cols_of(f) {
                        let (side, c) = j.child_of(i);
                        match side {
                            Side::Left => lu.insert(c),
                            Side::Right => ru.insert(c),
                        }
                    }
                }
                let mut concat_refs = HashSet::new();
                match &j.strategy {
                    Strategy::Hash {
                        left_keys,
                        right_keys,
                        residual,
                    } => {
                        for k in left_keys {
                            for i in cols_of(k) {
                                lu.insert(i);
                            }
                        }
                        for k in right_keys {
                            for i in cols_of(k) {
                                ru.insert(i);
                            }
                        }
                        for r in residual {
                            concat_refs.extend(cols_of(r));
                        }
                    }
                    Strategy::NestedLoop { pred } => {
                        for p in pred {
                            concat_refs.extend(cols_of(p));
                        }
                    }
                }
                for i in concat_refs {
                    if i < j.left_width {
                        lu.insert(i);
                    } else {
                        ru.insert(i - j.left_width);
                    }
                }
                j.left.mark_used(lu);
                j.right.mark_used(ru);
            }
        }
    }
}

impl JoinPlan {
    /// Which child, and which of its columns, output column `i` comes from.
    fn child_of(&self, i: usize) -> (Side, usize) {
        let concat = match &self.emit {
            None => i,
            Some(m) => m[i],
        };
        if concat < self.left_width {
            (Side::Left, concat)
        } else {
            (Side::Right, concat - self.left_width)
        }
    }
}

// ---- stream construction -------------------------------------------------

/// Actuals for one plan node under `EXPLAIN ANALYZE`: rows emitted, times
/// the stream was started, and wall nanoseconds spent inside the node
/// (inclusive of its children, PostgreSQL-style).
#[derive(Debug, Default)]
pub(crate) struct NodeMeter {
    rows: AtomicU64,
    loops: AtomicU64,
    ns: AtomicU64,
}

impl NodeMeter {
    /// Rows this node emitted.
    pub(crate) fn rows(&self) -> u64 {
        self.rows.load(Ordering::Relaxed)
    }
    /// Times the node's stream was started (always 1 in this executor —
    /// kept for plan-format fidelity with rescanning executors).
    pub(crate) fn loops(&self) -> u64 {
        self.loops.load(Ordering::Relaxed)
    }
    /// Wall nanoseconds spent pulling from this node, children included.
    pub(crate) fn ns(&self) -> u64 {
        self.ns.load(Ordering::Relaxed)
    }
}

/// Wraps a node's output stream, timing every `next()` and counting rows.
/// Only constructed under `EXPLAIN ANALYZE`; normal execution never pays
/// the per-row clock reads.
struct MeterIter<'a> {
    inner: RowStream<'a>,
    meter: Arc<NodeMeter>,
    started: bool,
}

impl Iterator for MeterIter<'_> {
    type Item = DsResult<Vec<Value>>;

    fn next(&mut self) -> Option<Self::Item> {
        if !self.started {
            self.started = true;
            self.meter.loops.fetch_add(1, Ordering::Relaxed);
        }
        let start = Instant::now();
        let item = self.inner.next();
        self.meter
            .ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        if matches!(item, Some(Ok(_))) {
            self.meter.rows.fetch_add(1, Ordering::Relaxed);
        }
        item
    }
}

/// Turn a plan into its operator pipeline.
///
/// With `meters` (the `EXPLAIN ANALYZE` path), each node's post-filter
/// stream is wrapped in a [`MeterIter`] and its meter pushed in *pre-order*
/// (self, left, right) — the same order `explain::render` emits node lines,
/// which is what lets the annotator pair meters with lines by index.
pub(crate) fn build<'a>(
    plan: Plan,
    ctx: &ExecCtx<'a>,
    mut meters: Option<&mut Vec<Arc<NodeMeter>>>,
) -> DsResult<RowStream<'a>> {
    let meter = meters.as_mut().map(|v| {
        let m = Arc::new(NodeMeter::default());
        v.push(Arc::clone(&m));
        m
    });
    let stream = match plan {
        Plan::Dual => Box::new(std::iter::once(Ok(Vec::new()))) as RowStream<'a>,
        Plan::TableScan {
            snap,
            filters,
            used,
        } => {
            let scan = counted(table_scan(snap, &used), &ctx.metrics.rows_scanned);
            filtered(scan, filters)
        }
        Plan::RangeScan {
            a1,
            width,
            filters,
            used,
        } => {
            let scan = counted(
                range_scan(ctx.resolver, &a1, width, &used)?,
                &ctx.metrics.rows_scanned,
            );
            filtered(scan, filters)
        }
        Plan::Derived { rows, filters, .. } => {
            filtered(Box::new(rows.into_iter().map(Ok)), filters)
        }
        Plan::Join(j) => {
            let JoinPlan {
                left,
                right,
                left_width: _,
                right_width,
                kind,
                strategy,
                emit,
                filters,
            } = *j;
            // Left streams through the probe side; right is materialized
            // as the build side (both strategies consume right first).
            let lstream = counted(
                build(left, ctx, meters.as_deref_mut())?,
                &ctx.metrics.join_probe_rows,
            );
            let rstream = counted(
                build(right, ctx, meters)?,
                &ctx.metrics.join_build_rows,
            );
            let left_join = kind == JoinKind::Left;
            let joined = match strategy {
                Strategy::Hash {
                    left_keys,
                    right_keys,
                    residual,
                } => HashJoin {
                    left: lstream,
                    right: rstream,
                    left_keys,
                    right_keys,
                    residual,
                    left_join,
                    right_width,
                    emit,
                }
                .into_stream()?,
                Strategy::NestedLoop { pred } => NestedLoopJoin {
                    left: lstream,
                    right: rstream,
                    pred,
                    left_join,
                    right_width,
                    emit,
                }
                .into_stream()?,
            };
            filtered(joined, filters)
        }
    };
    Ok(match meter {
        Some(m) => Box::new(MeterIter {
            inner: stream,
            meter: m,
            started: false,
        }),
        None => stream,
    })
}

/// Counts Ok rows through a stream into a shared counter. The tally is
/// kept in a local `u64` and folded in once on drop, so the hot path pays
/// a plain increment instead of per-row atomic traffic.
struct CountedStream<'a> {
    inner: RowStream<'a>,
    n: u64,
    counter: dataspread_obs::Counter,
}

impl Drop for CountedStream<'_> {
    fn drop(&mut self) {
        self.counter.add(self.n);
    }
}

impl Iterator for CountedStream<'_> {
    type Item = DsResult<Vec<Value>>;

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        let item = self.inner.next();
        if matches!(item, Some(Ok(_))) {
            self.n += 1;
        }
        item
    }
}

fn counted<'a>(inner: RowStream<'a>, counter: &dataspread_obs::Counter) -> RowStream<'a> {
    Box::new(CountedStream {
        inner,
        n: 0,
        counter: counter.clone(),
    })
}

fn filtered(stream: RowStream<'_>, filters: Vec<BExpr>) -> RowStream<'_> {
    if filters.is_empty() {
        stream
    } else {
        Box::new(FilterIter::new(stream, filters))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecOptions;
    use dataspread_relstore::{Catalog, ColumnDef, Schema};
    use dataspread_sql::ast::Statement;
    use dataspread_sql::parser::parse_statement;
    use dataspread_sql::resolver::NoSheet;
    use dataspread_types::DataType;

    /// Plan one SELECT's FROM tree, run WHERE pushdown + the hash upgrade,
    /// and hand the join root to `check`.
    fn plan_and_upgrade(sql: &str, check: impl FnOnce(&JoinPlan)) {
        let mut catalog = Catalog::new();
        catalog
            .create_table(
                "l",
                Schema::new(vec![ColumnDef::new("v", DataType::Int)]).unwrap(),
            )
            .unwrap();
        catalog
            .create_table(
                "r",
                Schema::new(vec![ColumnDef::new("w", DataType::Int)]).unwrap(),
            )
            .unwrap();
        let Statement::Select(sel) = parse_statement(sql).unwrap() else {
            panic!("not a select");
        };
        let ctx = ExecCtx {
            catalog: &catalog,
            resolver: &NoSheet,
            options: ExecOptions::default(),
            metrics: Default::default(),
        };
        let (mut plan, cols) = plan_from(&ctx, sel.from.as_ref().unwrap()).unwrap();
        if let Some(f) = &sel.filter {
            let bound = bind(f, &cols, None, &NoSheet).unwrap();
            for c in split_conjuncts(bound) {
                plan.absorb_filter(c);
            }
        }
        plan.upgrade_hash_joins();
        let Plan::Join(j) = &plan else {
            panic!("expected a join root");
        };
        check(j);
    }

    #[test]
    fn where_equi_over_cross_join_upgrades_to_hash() {
        plan_and_upgrade("SELECT * FROM l CROSS JOIN r WHERE l.v = r.w", |j| {
            assert!(
                matches!(&j.strategy, Strategy::Hash { left_keys, .. } if left_keys.len() == 1),
                "equi WHERE over a cross join must become a hash join"
            );
            assert!(j.filters.is_empty(), "the conjunct moved into the keys");
        });
    }

    #[test]
    fn left_join_post_filter_is_never_folded_into_keys() {
        plan_and_upgrade(
            "SELECT * FROM l LEFT JOIN r ON l.v < r.w WHERE l.v = r.w",
            |j| {
                assert!(
                    matches!(&j.strategy, Strategy::NestedLoop { .. }),
                    "non-equi LEFT JOIN stays nested-loop"
                );
                assert_eq!(
                    j.filters.len(),
                    1,
                    "the WHERE equi term must stay a post-join filter"
                );
            },
        );
    }
}
