//! Leaf operators: streaming scans and the filter adapter.

use dataspread_relstore::TableSnapshot;
use dataspread_sql::expr::BExpr;
use dataspread_sql::resolver::SheetResolver;
use dataspread_types::{DsResult, Value};

use super::planner::Used;
use super::{passes, RowStream};

/// Stream a table snapshot in presentation order. With a concrete
/// used-column set the scan reads only the attribute groups covering it
/// (unused slots come back [`Value::Empty`], so column indices stay valid
/// upstream). The iterator owns the snapshot, so the stream is `'static`:
/// the query runs entirely against the plan-time state, off the lock.
pub(crate) fn table_scan(snap: TableSnapshot, used: &Used) -> RowStream<'static> {
    let it = match used {
        Used::All => snap.into_iter_sparse(None),
        Used::Cols(set) => {
            let cols: Vec<usize> = set.iter().copied().collect();
            snap.into_iter_sparse(Some(&cols))
        }
    };
    Box::new(it.map(|r| r.map(|(_, row)| row)))
}

/// Read a `RANGETABLE` region, bounded to the used columns when the
/// resolver can prune (the live-sheet resolver narrows the rectangle handed
/// to `CellStore::for_each_in_range`, touching fewer grid blocks).
pub(crate) fn range_scan<'a>(
    resolver: &'a dyn SheetResolver,
    a1: &str,
    width: usize,
    used: &Used,
) -> DsResult<RowStream<'a>> {
    let rows = match used {
        Used::All => resolver.range_table(a1)?.1,
        Used::Cols(set) => {
            let mut cols: Vec<usize> = set.iter().copied().filter(|&c| c < width).collect();
            cols.sort_unstable();
            resolver.range_table_pruned(a1, &cols)?
        }
    };
    Ok(Box::new(rows.into_iter().map(Ok)))
}

/// The filter operator: forwards rows for which every conjunct is true.
pub(crate) struct FilterIter<'a> {
    input: RowStream<'a>,
    preds: Vec<BExpr>,
}

impl<'a> FilterIter<'a> {
    pub(crate) fn new(input: RowStream<'a>, preds: Vec<BExpr>) -> Self {
        FilterIter { input, preds }
    }
}

impl Iterator for FilterIter<'_> {
    type Item = DsResult<Vec<Value>>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            match self.input.next()? {
                Err(e) => return Some(Err(e)),
                Ok(row) => match passes(&self.preds, &row) {
                    Err(e) => return Some(Err(e)),
                    Ok(true) => return Some(Ok(row)),
                    Ok(false) => {}
                },
            }
        }
    }
}
