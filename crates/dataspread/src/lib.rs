//! The DataSpread engine: one object that *unifies databases and
//! spreadsheets* (Bendre et al., PVLDB 8(12), 2015).
//!
//! The five foundation crates each own one layer; this crate is the glue the
//! paper calls the system:
//!
//! ```text
//!            ┌────────────────────────────────────────────┐
//!            │              Workbook (this crate)         │
//!            │  SQL executor · positional DML · sync      │
//!            └──────┬──────────────────────┬──────────────┘
//!      interface side                      relational side
//!   ┌───────────────┴───────────┐   ┌──────┴───────────────────┐
//!   │ Sheet: CellStore (grid-   │   │ Catalog/Table (relstore) │
//!   │ store) + RowMapping (pos- │   │ ordered by CountedBtree  │
//!   │ index) for stable rows    │   │ (posindex)               │
//!   └───────────────────────────┘   └──────────────────────────┘
//!                 shared vocabulary: dataspread_types
//!                 SQL front end:     dataspread_sql
//! ```
//!
//! What the engine adds:
//!
//! * [`Workbook`] / [`Sheet`] — sheets hold schemaless interface data in a
//!   pluggable cell store ([`StoreKind`]), with stable row identity through
//!   structural edits.
//! * Formulas — `=SUM(A1:B2)` cells ([`Workbook::set_input`]) parsed by
//!   `dataspread_formula`, tracked in a cross-sheet dependency graph, and
//!   recomputed *incrementally* in topological order ([`crate::calc`]);
//!   cycles display `#CYCLE!`, references broken by row/column deletion
//!   display `#REF!`.
//! * [`Workbook::execute`] — a SQL executor over the catalog (`SELECT` with
//!   joins/aggregates/ordering, DML, DDL) in which `RANGEVALUE('B1')` and
//!   `RANGETABLE('A1:C10')` read the *live* grid — formula results
//!   included.
//! * [`Workbook::import_region`] / [`Workbook::export_table`] — the two-way
//!   boundary crossing, with automatic schema inference (paper §2.2).
//! * Positional DML — [`Workbook::insert_tuple_at`] and
//!   [`Workbook::fetch_window`] route through the counted B-tree, making
//!   "insert a row between rows k and k+1" O(log n); [`TableView`] exposes
//!   the same operations over either index for the paper's C3 comparison.
//!
//! ## Quick start
//!
//! ```
//! use dataspread::{QueryResult, Workbook};
//! use dataspread_types::{CellAddr, Value};
//!
//! let a = |s: &str| CellAddr::parse_a1(s).unwrap();
//! let mut wb = Workbook::new();
//! let sheet = wb.current_sheet();
//!
//! // Formula cells recompute incrementally when their inputs change.
//! wb.set_input(sheet, a("A1"), "10").unwrap();
//! wb.set_input(sheet, a("A2"), "20").unwrap();
//! assert_eq!(wb.set_input(sheet, a("B1"), "=SUM(A1:A2)").unwrap(), Value::Int(30));
//! wb.set_input(sheet, a("A1"), "15").unwrap();
//! assert_eq!(wb.cell(sheet, a("B1")), Value::Int(35));
//!
//! wb.execute("CREATE TABLE ages (name TEXT, age INT)").unwrap();
//! wb.execute("INSERT INTO ages VALUES ('ada', 36), ('alan', 41), ('grace', 29)").unwrap();
//!
//! // SQL that reads the live sheet: the formula cell holds the cutoff.
//! let (_, rows) = wb
//!     .query("SELECT name FROM ages WHERE age > RANGEVALUE(B1) ORDER BY name")
//!     .unwrap();
//! assert_eq!(rows, vec![vec![Value::text("ada")], vec![Value::text("alan")]]);
//!
//! // The paper's signature operation: positional insert, O(log n).
//! wb.insert_tuple_at("ages", 1, vec![Value::text("edsger"), Value::Int(35)]).unwrap();
//! let window = wb.fetch_window("ages", 0, 2).unwrap();
//! assert_eq!(window[1].1[0], Value::text("edsger"));
//! ```

pub mod bind;
pub mod calc;
pub mod concurrent;
pub mod engine;
pub mod exec;
pub(crate) mod metrics;
pub mod persist;
pub mod sheet;
pub mod view;
pub mod workbook;

pub use bind::{BindModel, BindingMeta};
pub use calc::CalcStats;
pub use concurrent::{ReadSession, SharedWorkbook, WorkbookSnapshot};
pub use engine::QueryResult;
pub use exec::ExecOptions;
pub use sheet::{Sheet, StoreKind};
pub use view::TableView;
pub use workbook::{EngineHealth, SheetId, Workbook};

// Re-export the layer crates so downstream users need only one dependency.
pub use dataspread_formula as formula;
pub use dataspread_gridstore as gridstore;
pub use dataspread_obs as obs;
pub use dataspread_posindex as posindex;
pub use dataspread_relstore as relstore;
pub use dataspread_sql as sql;
pub use dataspread_types as types;

#[cfg(test)]
mod tests {
    use super::*;
    use dataspread_types::{CellAddr, Value};

    fn a(s: &str) -> CellAddr {
        CellAddr::parse_a1(s).unwrap()
    }

    fn setup() -> Workbook {
        let mut wb = Workbook::new();
        wb.execute_script(
            "CREATE TABLE students (id INT PRIMARY KEY, name TEXT NOT NULL, score REAL);
             INSERT INTO students VALUES (1, 'ada', 91.5), (2, 'alan', 87.0), (3, 'grace', 95.25);",
        )
        .unwrap();
        wb
    }

    #[test]
    fn select_project_filter_order() {
        let mut wb = setup();
        let (cols, rows) = wb
            .query("SELECT name, score FROM students WHERE score >= 90 ORDER BY score DESC")
            .unwrap();
        assert_eq!(cols, vec!["name", "score"]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], Value::text("grace"));
        assert_eq!(rows[1][0], Value::text("ada"));
    }

    #[test]
    fn select_without_from() {
        let mut wb = Workbook::new();
        let (_, rows) = wb.query("SELECT 1 + 2 * 3, 'x' || 'y'").unwrap();
        assert_eq!(rows, vec![vec![Value::Int(7), Value::text("xy")]]);
    }

    #[test]
    fn aggregates_and_group_by() {
        let mut wb = Workbook::new();
        wb.execute_script(
            "CREATE TABLE t (dept TEXT, score INT);
             INSERT INTO t VALUES ('a', 10), ('a', 20), ('b', 30), ('b', NULL);",
        )
        .unwrap();
        let (cols, rows) = wb
            .query(
                "SELECT dept, COUNT(*), COUNT(score), SUM(score), AVG(score)
                 FROM t GROUP BY dept ORDER BY dept",
            )
            .unwrap();
        assert_eq!(cols[0], "dept");
        assert_eq!(
            rows[0],
            vec![
                Value::text("a"),
                Value::Int(2),
                Value::Int(2),
                Value::Int(30),
                Value::Float(15.0)
            ]
        );
        assert_eq!(
            rows[1],
            vec![
                Value::text("b"),
                Value::Int(2),
                Value::Int(1),
                Value::Int(30),
                Value::Float(30.0)
            ]
        );
    }

    #[test]
    fn global_aggregate_over_empty_table() {
        let mut wb = Workbook::new();
        wb.execute("CREATE TABLE e (x INT)").unwrap();
        let (_, rows) = wb.query("SELECT COUNT(*), SUM(x), MIN(x) FROM e").unwrap();
        assert_eq!(rows, vec![vec![Value::Int(0), Value::Empty, Value::Empty]]);
    }

    #[test]
    fn having_filters_groups() {
        let mut wb = Workbook::new();
        wb.execute_script(
            "CREATE TABLE t (g INT, v INT);
             INSERT INTO t VALUES (1, 5), (1, 5), (2, 7);",
        )
        .unwrap();
        let (_, rows) = wb
            .query("SELECT g FROM t GROUP BY g HAVING COUNT(*) > 1")
            .unwrap();
        assert_eq!(rows, vec![vec![Value::Int(1)]]);
    }

    #[test]
    fn distinct_and_limit_offset() {
        let mut wb = Workbook::new();
        wb.execute_script(
            "CREATE TABLE t (x INT);
             INSERT INTO t VALUES (3), (1), (3), (2), (1);",
        )
        .unwrap();
        let (_, rows) = wb.query("SELECT DISTINCT x FROM t ORDER BY x").unwrap();
        assert_eq!(
            rows,
            vec![
                vec![Value::Int(1)],
                vec![Value::Int(2)],
                vec![Value::Int(3)]
            ]
        );
        let (_, rows) = wb
            .query("SELECT x FROM t ORDER BY x LIMIT 2 OFFSET 1")
            .unwrap();
        assert_eq!(rows, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
    }

    #[test]
    fn joins_inner_left_natural() {
        let mut wb = Workbook::new();
        wb.execute_script(
            "CREATE TABLE dept (did INT, dname TEXT);
             INSERT INTO dept VALUES (1, 'eng'), (2, 'ops');
             CREATE TABLE emp (eid INT, did INT, ename TEXT);
             INSERT INTO emp VALUES (10, 1, 'ada'), (11, 1, 'alan'), (12, 3, 'zed');",
        )
        .unwrap();
        let (_, rows) = wb
            .query("SELECT ename, dname FROM emp JOIN dept ON emp.did = dept.did ORDER BY ename")
            .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], vec![Value::text("ada"), Value::text("eng")]);

        let (_, rows) = wb
            .query(
                "SELECT ename, dname FROM emp LEFT JOIN dept ON emp.did = dept.did ORDER BY ename",
            )
            .unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2], vec![Value::text("zed"), Value::Empty]);

        // NATURAL JOIN merges `did` into one column.
        let (cols, rows) = wb
            .query("SELECT * FROM emp NATURAL JOIN dept ORDER BY eid")
            .unwrap();
        assert_eq!(cols, vec!["eid", "did", "ename", "dname"]);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn subquery_in_from() {
        let mut wb = setup();
        let (_, rows) = wb
            .query(
                "SELECT n FROM (SELECT name AS n, score AS s FROM students) sub
                 WHERE s > 90 ORDER BY n",
            )
            .unwrap();
        assert_eq!(
            rows,
            vec![vec![Value::text("ada")], vec![Value::text("grace")]]
        );
    }

    #[test]
    fn insert_select_and_column_lists() {
        let mut wb = setup();
        wb.execute("CREATE TABLE honor (name TEXT, score REAL)")
            .unwrap();
        let n = wb
            .execute("INSERT INTO honor SELECT name, score FROM students WHERE score > 90")
            .unwrap();
        assert_eq!(n.affected(), Some(2));
        let n = wb
            .execute("INSERT INTO honor (name) VALUES ('manual')")
            .unwrap();
        assert_eq!(n.affected(), Some(1));
        let (_, rows) = wb
            .query("SELECT score FROM honor WHERE name = 'manual'")
            .unwrap();
        assert_eq!(rows, vec![vec![Value::Empty]]);
    }

    #[test]
    fn update_sees_old_row_and_counts() {
        let mut wb = Workbook::new();
        wb.execute_script(
            "CREATE TABLE t (a INT, b INT);
             INSERT INTO t VALUES (1, 10), (2, 20);",
        )
        .unwrap();
        // Swap via simultaneous assignment: both SETs read the old row.
        let n = wb.execute("UPDATE t SET a = b, b = a WHERE a = 1").unwrap();
        assert_eq!(n.affected(), Some(1));
        let (_, rows) = wb.query("SELECT a, b FROM t ORDER BY b").unwrap();
        assert_eq!(rows[0], vec![Value::Int(10), Value::Int(1)]);
    }

    #[test]
    fn delete_with_filter() {
        let mut wb = setup();
        let n = wb.execute("DELETE FROM students WHERE score < 90").unwrap();
        assert_eq!(n.affected(), Some(1));
        let (_, rows) = wb.query("SELECT COUNT(*) FROM students").unwrap();
        assert_eq!(rows, vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn ddl_alter_paths() {
        let mut wb = setup();
        wb.execute("ALTER TABLE students ADD COLUMN grade TEXT DEFAULT '?'")
            .unwrap();
        let (_, rows) = wb.query("SELECT grade FROM students WHERE id = 1").unwrap();
        assert_eq!(rows, vec![vec![Value::text("?")]]);
        wb.execute("ALTER TABLE students RENAME COLUMN grade TO letter")
            .unwrap();
        wb.execute("ALTER TABLE students DROP COLUMN letter")
            .unwrap();
        assert_eq!(wb.catalog().get("students").unwrap().schema().width(), 3);
        wb.execute("DROP TABLE IF EXISTS nope").unwrap();
        wb.execute("CREATE TABLE IF NOT EXISTS students (id INT)")
            .unwrap();
        assert_eq!(
            wb.catalog().get("students").unwrap().schema().width(),
            3,
            "kept original"
        );
    }

    #[test]
    fn rangevalue_reads_live_grid() {
        let mut wb = setup();
        let s = wb.current_sheet();
        wb.sheet_mut(s).set_input(a("B1"), "90").unwrap();
        let (_, rows) = wb
            .query("SELECT COUNT(*) FROM students WHERE score > RANGEVALUE(B1)")
            .unwrap();
        assert_eq!(rows, vec![vec![Value::Int(2)]]);
        // Update the cell; the same query sees the new value.
        wb.sheet_mut(s).set_input(a("B1"), "95").unwrap();
        let (_, rows) = wb
            .query("SELECT COUNT(*) FROM students WHERE score > RANGEVALUE(B1)")
            .unwrap();
        assert_eq!(rows, vec![vec![Value::Int(1)]]);
    }

    #[test]
    fn rangetable_joins_grid_with_table() {
        let mut wb = setup();
        let s = wb.current_sheet();
        wb.sheet_mut(s)
            .set_region(
                a("A1"),
                &[
                    vec![Value::text("id"), Value::text("bonus")],
                    vec![Value::Int(1), Value::Int(5)],
                    vec![Value::Int(3), Value::Int(7)],
                ],
            )
            .unwrap();
        let (_, rows) = wb
            .query("SELECT name, bonus FROM students NATURAL JOIN RANGETABLE(A1:B3) ORDER BY name")
            .unwrap();
        assert_eq!(
            rows,
            vec![
                vec![Value::text("ada"), Value::Int(5)],
                vec![Value::text("grace"), Value::Int(7)],
            ]
        );
    }

    #[test]
    fn order_by_alias_and_ordinal() {
        let mut wb = setup();
        let (_, rows) = wb
            .query("SELECT name AS n, score FROM students ORDER BY 2 DESC LIMIT 1")
            .unwrap();
        assert_eq!(rows[0][0], Value::text("grace"));
        let (_, rows) = wb
            .query("SELECT name AS n FROM students ORDER BY n")
            .unwrap();
        assert_eq!(rows[0][0], Value::text("ada"));
    }

    #[test]
    fn error_paths_are_reported() {
        let mut wb = setup();
        assert!(wb.query("SELECT nope FROM students").is_err());
        assert!(wb.query("SELECT * FROM missing").is_err());
        assert!(wb.execute("INSERT INTO students VALUES (1)").is_err());
        assert!(wb.execute("UPDATE students SET nope = 1").is_err());
        assert!(wb.query("SELECT name FROM students ORDER BY 9").is_err());
        assert!(wb.query("SELECT name FROM students LIMIT -1").is_err());
        assert!(wb.query("SELECT * FROM students GROUP BY name").is_err());
        // Duplicate pk via SQL surfaces the key violation.
        assert!(wb
            .execute("INSERT INTO students VALUES (1, 'dup', 0)")
            .is_err());
    }
}
