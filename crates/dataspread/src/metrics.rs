//! Workbook-level observability: one metrics registry + span tracer per
//! [`crate::Workbook`], with every engine counter registered under its
//! canonical [`dataspread_obs::METRICS`] name.
//!
//! The registry is *per workbook*, not process-global: tests (and a future
//! multi-tenant server) need each workbook's counters isolated. Components
//! with their own per-instance counters — the attached WAL writer, each
//! table's buffer pool — are aggregated into the snapshot at scrape time
//! instead, so their hot paths never route through a registry lookup.

use std::sync::Arc;

use dataspread_obs::{Counter, Gauge, Registry, Tracer};
use dataspread_relstore::VfsMeter;

use crate::exec::ExecMetrics;

/// The observability handles a workbook threads through its layers.
#[derive(Debug)]
pub(crate) struct WbObs {
    /// The workbook's metric registry (scraped by `Workbook::metrics_*`).
    pub registry: Arc<Registry>,
    /// Span tracer: bounded ring of completed spans, slow-op flagging.
    pub tracer: Tracer,
    /// Per-operator executor counters, cloned into every `ExecCtx`.
    pub exec: ExecMetrics,
    /// Recompute passes run.
    pub calc_passes: Counter,
    /// Cell positions marked dirty by grid edits.
    pub calc_cells_dirtied: Counter,
    /// Formula cells evaluated or cycle-poisoned.
    pub calc_cells_recomputed: Counter,
    /// Topological depth (levels) of the last recompute pass.
    pub calc_topo_depth: Gauge,
    /// Bound-region refresh passes that re-rendered a table.
    pub bind_refreshes: Counter,
    /// Sheet cells actually rewritten by binding sync diffs.
    pub bind_cells_diffed: Counter,
    /// I/O meter wrapped around the store's VFS (save/open attach it).
    pub vfs: VfsMeter,
}

impl Default for WbObs {
    fn default() -> Self {
        let registry = Arc::new(Registry::new());
        let exec = ExecMetrics {
            queries: registry.counter("exec_queries"),
            rows_scanned: registry.counter("exec_rows_scanned"),
            rows_output: registry.counter("exec_rows_output"),
            join_build_rows: registry.counter("exec_join_build_rows"),
            join_probe_rows: registry.counter("exec_join_probe_rows"),
        };
        let tracer = Tracer::new(
            256,
            registry.counter("spans_recorded"),
            registry.counter("spans_slow"),
        );
        let vfs = VfsMeter {
            reads: registry.counter("vfs_file_reads"),
            read_bytes: registry.counter("vfs_read_bytes"),
            writes: registry.counter("vfs_file_writes"),
            write_bytes: registry.counter("vfs_write_bytes"),
            fsyncs: registry.counter("vfs_fsyncs"),
            fsync_ns: registry.histogram("vfs_fsync_ns", dataspread_obs::LATENCY_NS_BOUNDS),
        };
        WbObs {
            exec,
            tracer,
            vfs,
            calc_passes: registry.counter("calc_passes"),
            calc_cells_dirtied: registry.counter("calc_cells_dirtied"),
            calc_cells_recomputed: registry.counter("calc_cells_recomputed"),
            calc_topo_depth: registry.gauge("calc_topo_depth"),
            bind_refreshes: registry.counter("bind_refreshes"),
            bind_cells_diffed: registry.counter("bind_cells_diffed"),
            registry,
        }
    }
}

impl WbObs {
    /// Adopt the [`VfsMeter`] a constructor metered its I/O through before
    /// this workbook existed (`Workbook::open_with_vfs` wraps the VFS
    /// before decoding): re-register the meter's handles under the
    /// canonical names so the pre-decode I/O stays visible.
    pub fn adopt_vfs_meter(&mut self, meter: VfsMeter) {
        self.registry
            .register_counter("vfs_file_reads", &meter.reads);
        self.registry
            .register_counter("vfs_read_bytes", &meter.read_bytes);
        self.registry
            .register_counter("vfs_file_writes", &meter.writes);
        self.registry
            .register_counter("vfs_write_bytes", &meter.write_bytes);
        self.registry.register_counter("vfs_fsyncs", &meter.fsyncs);
        self.registry
            .register_histogram("vfs_fsync_ns", &meter.fsync_ns);
        self.vfs = meter;
    }
}
