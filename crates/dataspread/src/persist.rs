//! Workbook persistence: `save` / `open` / `checkpoint` over the relstore
//! durable store.
//!
//! A workbook saves into a *store directory* holding the page file
//! (`data.dsp`) and the write-ahead log (`wal.dsp`) — formats and the
//! recovery protocol are specified in `docs/STORAGE.md`. The catalog
//! (tables, schemas, pages) is checkpointed by
//! [`dataspread_relstore::snapshot`]; this module contributes the
//! engine-level metadata riding in the snapshot's `extra_meta` stream:
//! every sheet's cells and stable row keys, the current-sheet pointer, the
//! default store kind, and the table-binding registry.
//!
//! Durability boundaries after [`Workbook::save`] attaches the store:
//!
//! * **SQL DML** (`INSERT`/`UPDATE`/`DELETE` via [`Workbook::execute`]) and
//!   positional DML ([`Workbook::insert_tuple_at`]) are WAL-logged and
//!   survive a crash.
//! * **Sheet edits** — cell writes (literals *and* formulas) and
//!   structural row/column edits — are WAL-logged at edit time as logical
//!   inputs and replayed on [`Workbook::open`], which then recomputes
//!   every formula. They survive a crash between checkpoints.
//! * **`CREATE TABLE`/`DROP TABLE`** are WAL-logged as DDL redo records;
//!   **`ALTER TABLE`**, [`Workbook::import_region`], and
//!   [`Workbook::add_sheet`] trigger an automatic checkpoint.
//! * **Bindings** ([`Workbook::bind_table`]) are WAL-logged at
//!   create/drop and checkpointed in the workbook metadata (version 3);
//!   the mirror cells they render are derivable and re-rendered from the
//!   recovered tables on [`Workbook::open`].
//! * Direct [`Workbook::catalog_mut`] DDL (e.g. `create_table`) is *not*
//!   auto-persisted — call [`Workbook::save`] or [`Workbook::checkpoint`]
//!   afterwards.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use dataspread_relstore::codec::{put_str, put_u32, put_u64, Cursor};
use dataspread_relstore::snapshot::{self, load_catalog_with, save_catalog_with, DATA_FILE};
use dataspread_relstore::vfs::{os_vfs, Vfs};
use dataspread_relstore::wal::{scan_wal_with, GridEditKind, SheetCellContent, WalOp};
use dataspread_relstore::{Catalog, MeteredVfs, PageFile, VfsMeter};
use dataspread_types::{CellAddr, DsError, DsResult};

use crate::bind::BindingRegistry;
use crate::exec::ExecOptions;
use crate::metrics::WbObs;
use crate::sheet::{Sheet, StoreKind};
use crate::workbook::Workbook;

/// Version byte of the workbook metadata stream. Version 2 added the
/// default buffer-pool capacity and per-sheet formula sections; version 3
/// added the binding section (table-bound regions); version 4 added the
/// optimizer-statistics section (per-table column sketches). Version 1–3
/// streams are still readable (they decode with defaults, no formulas, no
/// bindings, and freshly analyzed statistics respectively).
const WB_META_VERSION: u8 = 4;

/// The highest checkpoint generation evidenced on disk at `dir` — from the
/// page file or a leftover WAL, whichever is newer (0 when neither is
/// readable, i.e. a genuinely fresh store).
fn on_disk_generation(vfs: &Arc<dyn Vfs>, dir: &Path) -> u64 {
    let pf = PageFile::open_with(vfs, dir.join(DATA_FILE))
        .map(|pf| pf.generation())
        .unwrap_or(0);
    let wal = scan_wal_with(vfs, dir.join(snapshot::WAL_FILE))
        .ok()
        .flatten()
        .map(|scan| scan.generation)
        .unwrap_or(0);
    pf.max(wal)
}

pub(crate) fn encode_workbook_meta(wb: &Workbook) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.push(WB_META_VERSION);
    buf.push(match wb.default_store {
        StoreKind::Tiled => 0,
        StoreKind::Block => 1,
        StoreKind::Naive => 2,
    });
    put_u32(&mut buf, wb.current as u32);
    put_u64(&mut buf, wb.catalog.default_pool_capacity() as u64);
    put_u32(&mut buf, wb.sheets.len() as u32);
    for sheet in &wb.sheets {
        sheet.encode(&mut buf);
    }
    // Version 3: the binding section (id watermark + every binding's
    // durable metadata + the rectangle its mirror cells occupy in the
    // snapshot — recovery needs it to clear ghost rows when WAL replay
    // shrinks the backing table below the checkpointed extent).
    put_u64(&mut buf, wb.bindings.next_id);
    put_u32(&mut buf, wb.bindings.bindings.len() as u32);
    for b in &wb.bindings.bindings {
        b.meta.encode(&mut buf);
        match b.rendered_rect(wb) {
            Some(r) => {
                buf.push(1);
                put_u32(&mut buf, r.start.row);
                put_u32(&mut buf, r.start.col);
                put_u32(&mut buf, r.end.row);
                put_u32(&mut buf, r.end.col);
            }
            None => buf.push(0),
        }
    }
    // Version 4: optimizer statistics — one block per table, keyed by name.
    // On open these are only trusted for tables the WAL replay did not
    // touch; anything else is re-analyzed from the recovered rows.
    let mut names = wb.catalog.table_names();
    names.sort();
    put_u32(&mut buf, names.len() as u32);
    for name in names {
        put_str(&mut buf, &name);
        let t = wb.catalog.get(&name).expect("listed table");
        t.statistics().encode(&mut buf);
    }
    buf
}

pub(crate) fn decode_workbook_meta(meta: &[u8], catalog: Catalog) -> DsResult<Workbook> {
    let mut cur = Cursor::new(meta);
    let version = cur.u8()?;
    if version == 0 || version > WB_META_VERSION {
        return Err(DsError::Storage(format!(
            "workbook snapshot: unsupported version {version}"
        )));
    }
    let default_store = match cur.u8()? {
        0 => StoreKind::Tiled,
        1 => StoreKind::Block,
        2 => StoreKind::Naive,
        other => {
            return Err(DsError::Storage(format!(
                "workbook snapshot: bad store kind {other}"
            )))
        }
    };
    let current = cur.u32()? as usize;
    // Version 1 predates the configurable pool capacity and formula
    // sections; it decodes with the default capacity and literal-only cells.
    let pool_pages = if version >= 2 {
        (cur.u64()? as usize).max(1)
    } else {
        dataspread_relstore::table::DEFAULT_POOL_PAGES
    };
    let nsheets = cur.u32()? as usize;
    let mut sheets = Vec::with_capacity(nsheets);
    let mut by_name = std::collections::HashMap::with_capacity(nsheets);
    let clock = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(1));
    for i in 0..nsheets {
        let mut sheet = Sheet::decode(&mut cur, version >= 2)?;
        sheet.share_clock(std::sync::Arc::clone(&clock));
        by_name.insert(sheet.name().to_ascii_lowercase(), i);
        sheets.push(sheet);
    }
    // Version 3: bindings (registered with a forced first refresh — the
    // caller re-renders every region from the recovered tables).
    let mut bindings = BindingRegistry::default();
    if version >= 3 {
        let next_id = cur.u64()?;
        let nbind = cur.u32()? as usize;
        for _ in 0..nbind {
            bindings.register(dataspread_relstore::BindingMeta::decode(&mut cur)?);
            let rect = match cur.u8()? {
                0 => None,
                _ => Some(dataspread_types::Range::from_bounds(
                    cur.u32()?,
                    cur.u32()?,
                    cur.u32()?,
                    cur.u32()?,
                )),
            };
            // The rect the checkpointed mirror cells occupy: the refresh
            // after WAL replay diffs (and shrink-clears) against it.
            bindings
                .bindings
                .last_mut()
                .expect("just registered")
                .last_rect = rect;
        }
        bindings.next_id = bindings.next_id.max(next_id);
    }
    // Version 4: optimizer statistics. A checkpointed block is only valid
    // for a table the WAL replay left untouched (`version() == 0`); every
    // other table — replayed, recreated, reshaped, or from a pre-v4 stream —
    // is re-analyzed below so open() always yields exact statistics.
    let mut installed: std::collections::HashSet<String> = std::collections::HashSet::new();
    if version >= 4 {
        let nstats = cur.u32()? as usize;
        for _ in 0..nstats {
            let name = cur.str()?;
            let stats = dataspread_relstore::TableStatistics::decode(&mut cur)?;
            if let Ok(mut t) = catalog.get_mut(&name) {
                if t.version() == 0 && t.set_statistics(stats).is_ok() {
                    installed.insert(name);
                }
            }
        }
    }
    for name in catalog.table_names() {
        if !installed.contains(&name) {
            catalog.get_mut(&name)?.analyze()?;
        }
    }
    if !cur.is_empty() {
        return Err(DsError::Storage("workbook snapshot: trailing bytes".into()));
    }
    if sheets.is_empty() || current >= sheets.len() {
        return Err(DsError::Storage(
            "workbook snapshot: invalid sheet table".into(),
        ));
    }
    let mut catalog = catalog;
    catalog.set_default_pool_capacity(pool_pages);
    Ok(Workbook {
        sheets,
        by_name,
        catalog,
        current,
        default_store,
        exec_options: ExecOptions::default(),
        store: None,
        obs: WbObs::default(),
        clock,
        bindings,
    })
}

impl Workbook {
    /// Persist the whole workbook — catalog, schemas, table pages, and
    /// sheet grids — into the store directory `dir`, and attach the store
    /// so subsequent DML is WAL-logged. Calling `save` again checkpoints:
    /// the snapshot is rewritten atomically and the log is reset.
    ///
    /// ```
    /// use dataspread::Workbook;
    /// let dir = std::env::temp_dir().join(format!("dsp-doc-save-{}", std::process::id()));
    /// # let _ = std::fs::remove_dir_all(&dir);
    /// let mut wb = Workbook::new();
    /// wb.execute("CREATE TABLE t (x INT)").unwrap();
    /// wb.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
    /// wb.save(&dir).unwrap();
    /// assert!(wb.is_durable());
    /// # std::fs::remove_dir_all(&dir).unwrap();
    /// ```
    pub fn save(&mut self, dir: impl AsRef<Path>) -> DsResult<()> {
        let dir = dir.as_ref().to_path_buf();
        // Saving back into the attached directory must go through the same
        // VFS that directory was opened with (the fault suites depend on
        // this); a fresh directory defaults to the real filesystem. The
        // attached VFS is already metered (attachment wraps exactly once),
        // so only the fresh-directory arm wraps here.
        let vfs = match &self.store {
            Some(store) if store.dir == dir => Arc::clone(&store.vfs),
            _ => MeteredVfs::wrap(os_vfs(), self.obs.vfs.clone()),
        };
        self.save_inner(dir, vfs)
    }

    /// [`Workbook::save`] against an explicit [`Vfs`] — the hook the
    /// fault-injection suites use to persist through an injecting VFS.
    /// The VFS is wrapped in the workbook's I/O meter, so `vfs_*` metrics
    /// keep counting through injected faults.
    pub fn save_with_vfs(&mut self, dir: impl AsRef<Path>, vfs: Arc<dyn Vfs>) -> DsResult<()> {
        let vfs = MeteredVfs::wrap(vfs, self.obs.vfs.clone());
        self.save_inner(dir.as_ref().to_path_buf(), vfs)
    }

    fn save_inner(&mut self, dir: PathBuf, vfs: Arc<dyn Vfs>) -> DsResult<()> {
        // A read-only engine must not re-checkpoint its own directory: the
        // checkpoint would fold un-acked in-memory state into a durable
        // snapshot and attach a fresh (unpoisoned) WAL, silently clearing
        // the degradation. Saving into a *different* directory stays legal —
        // that is the salvage path (see `docs/FAULTS.md`).
        if let Some(store) = &self.store {
            if store.dir == dir {
                self.ensure_writable()?;
            }
        }
        // The generation must exceed whatever was ever written to `dir`:
        // regressing it would let a crash in the rename→WAL-reset window
        // leave a stale WAL that recovery mistakes for current (or rejects
        // as future). When this workbook is not the attached author of the
        // directory, read the watermark off the disk itself.
        let base = match &self.store {
            Some(store) if store.dir == dir => store.generation,
            _ => on_disk_generation(&vfs, &dir),
        };
        self.checkpoint_into(dir, base + 1, &vfs)
    }

    /// Reopen a workbook from a store directory: load the last checkpoint,
    /// replay the committed WAL tail (ARIES-lite redo — a torn tail is
    /// truncated) — table DML *and* sheet edits, including formula cells —
    /// recompute every formula, fold the result into a fresh checkpoint,
    /// and attach.
    ///
    /// ```
    /// use dataspread::Workbook;
    /// use dataspread_types::Value;
    /// let dir = std::env::temp_dir().join(format!("dsp-doc-open-{}", std::process::id()));
    /// # let _ = std::fs::remove_dir_all(&dir);
    /// let mut wb = Workbook::new();
    /// wb.execute("CREATE TABLE t (x INT)").unwrap();
    /// wb.save(&dir).unwrap();
    /// // Logged through the WAL, durable at statement end:
    /// wb.execute("INSERT INTO t VALUES (41), (1)").unwrap();
    /// drop(wb); // "kill" the process
    ///
    /// let mut wb = Workbook::open(&dir).unwrap();
    /// let (_, rows) = wb.query("SELECT SUM(x) FROM t").unwrap();
    /// assert_eq!(rows[0][0], Value::Int(42));
    /// # std::fs::remove_dir_all(&dir).unwrap();
    /// ```
    pub fn open(dir: impl AsRef<Path>) -> DsResult<Workbook> {
        Workbook::open_with_vfs(dir, os_vfs())
    }

    /// [`Workbook::open`] against an explicit [`Vfs`] — used by the fault
    /// suites to recover from an in-memory crash image and assert exactly
    /// the committed prefix survives.
    pub fn open_with_vfs(dir: impl AsRef<Path>, vfs: Arc<dyn Vfs>) -> DsResult<Workbook> {
        let dir = dir.as_ref().to_path_buf();
        // Meter the recovery I/O too: the workbook does not exist yet, so a
        // detached meter counts the load and is adopted into the registry
        // once the metadata decodes.
        let meter = VfsMeter::default();
        let vfs = MeteredVfs::wrap(vfs, meter.clone());
        let loaded = load_catalog_with(&vfs, &dir)?;
        let generation = loaded.generation;
        let mut wb = decode_workbook_meta(&loaded.extra_meta, loaded.catalog)?;
        wb.obs.adopt_vfs_meter(meter);
        // Replay committed engine ops — sheet edits and binding
        // create/drop — on top of the decoded state (the relational ops,
        // including CREATE/DROP TABLE DDL records, were already replayed by
        // `load_catalog`). The sheets are detached here, so replay does not
        // re-log itself; the shared edit clock stamps replayed formulas and
        // structural edits in replay order, so the flush below rewrites
        // references with the same temporal semantics as the original
        // execution.
        for op in &loaded.engine_ops {
            wb.apply_engine_op(op)?;
        }
        // Re-render every bound region from the recovered tables (mirror
        // cells are never WAL-logged — they are derivable), then fold the
        // replayed edits into one recomputation pass (snapshot caches are
        // fresh — checkpoints flush before encoding).
        wb.sync_bindings()?;
        wb.flush_grid();
        // Fold the replayed tail into a fresh checkpoint + empty WAL.
        wb.checkpoint_into(dir, generation + 1, &vfs)?;
        Ok(wb)
    }

    /// Apply one replayed engine operation — a sheet edit or a binding
    /// create/drop — to the decoded (detached) state.
    fn apply_engine_op(&mut self, op: &WalOp) -> DsResult<()> {
        let sheet = match op {
            WalOp::SheetCell { sheet, .. } | WalOp::SheetGrid { sheet, .. } => {
                self.sheet_id(sheet).map_err(|_| {
                    DsError::Storage(format!(
                        "wal recovery: sheet `{sheet}` not in the checkpoint"
                    ))
                })?
            }
            WalOp::BindCreate { meta } => {
                self.bindings.register(meta.clone());
                return Ok(());
            }
            WalOp::BindDrop { id } => {
                self.bindings.remove(*id);
                return Ok(());
            }
            _ => return Ok(()), // table ops were applied by load_catalog
        };
        let s = &mut self.sheets[sheet.0];
        match op {
            WalOp::SheetCell {
                row, col, content, ..
            } => {
                let addr = CellAddr::new(*row, *col);
                match content {
                    SheetCellContent::Value(v) => {
                        s.set_value(addr, v.clone())?;
                    }
                    SheetCellContent::Formula(src) => {
                        s.set_formula(addr, src)?;
                    }
                }
            }
            WalOp::SheetGrid {
                edit, at, count, ..
            } => match edit {
                GridEditKind::InsertRows => s.insert_rows(*at, *count)?,
                GridEditKind::DeleteRows => s.delete_rows(*at, *count)?,
                GridEditKind::InsertCols => s.insert_cols(*at, *count)?,
                GridEditKind::DeleteCols => s.delete_cols(*at, *count)?,
            },
            _ => {}
        }
        Ok(())
    }

    /// Rewrite the snapshot and reset the WAL at the attached store
    /// directory. Errors if no store is attached.
    ///
    /// Pre-rename failures (tmp snapshot write, the rename itself) roll
    /// back cleanly — the old snapshot and WAL stay authoritative — so the
    /// checkpoint is retried a few times with a short backoff before the
    /// error is surfaced. A failure *after* the rename poisons the WAL
    /// (see `docs/FAULTS.md`); the engine is read-only and retrying is
    /// pointless, so those errors return immediately.
    pub fn checkpoint(&mut self) -> DsResult<()> {
        // Same rule as `save_with_vfs`: a degraded engine never rewrites
        // the directory it is degraded on.
        self.ensure_writable()?;
        let (dir, generation, vfs) = match &self.store {
            Some(store) => (
                store.dir.clone(),
                store.generation + 1,
                Arc::clone(&store.vfs),
            ),
            None => {
                return Err(DsError::Storage(
                    "workbook has no durable store; call save(path) first".into(),
                ))
            }
        };
        let mut last = None;
        for delay_ms in [0u64, 1, 5] {
            if delay_ms > 0 {
                std::thread::sleep(std::time::Duration::from_millis(delay_ms));
            }
            match self.checkpoint_into(dir.clone(), generation, &vfs) {
                Ok(()) => return Ok(()),
                Err(e) => {
                    if e.is_read_only() || !self.health().is_healthy() {
                        return Err(e);
                    }
                    last = Some(e);
                }
            }
        }
        Err(last.expect("retry loop reported at least one error"))
    }

    fn checkpoint_into(
        &mut self,
        dir: PathBuf,
        generation: u64,
        vfs: &Arc<dyn Vfs>,
    ) -> DsResult<()> {
        // Snapshot computed values, not stale caches.
        self.flush_grid();
        let wb_meta = encode_workbook_meta(self);
        // When checkpointing the attached directory, hand the current WAL
        // to the snapshot writer: a post-rename failure must poison it so
        // stale-WAL recovery hazards surface as read-only, not corruption.
        let prev_wal = self.store.as_ref().filter(|s| s.dir == dir);
        let handle = save_catalog_with(
            vfs,
            &dir,
            &self.catalog,
            &wb_meta,
            generation,
            prev_wal.map(|s| &*s.wal),
        )?;
        handle.attach_all(&self.catalog);
        // Sheets log their grid edits through the same WAL.
        for sheet in &mut self.sheets {
            sheet.attach_wal(Arc::clone(&handle.wal));
        }
        self.store = Some(handle);
        Ok(())
    }

    /// Is a durable store attached (DML WAL-logged, checkpoints enabled)?
    pub fn is_durable(&self) -> bool {
        self.store.is_some()
    }

    /// The attached store directory, if any.
    pub fn store_dir(&self) -> Option<&Path> {
        self.store.as_ref().map(|s| s.dir.as_path())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataspread_relstore::codec::encode_value;
    use dataspread_relstore::codec::put_str;
    use dataspread_relstore::table::DEFAULT_POOL_PAGES;
    use dataspread_types::Value;

    /// Version-1 metadata streams (pre-formula, pre-pool-capacity) must
    /// still decode: stores written by the previous release stay readable.
    #[test]
    fn version_1_meta_still_decodes() {
        let mut buf = vec![1u8]; // version 1
        buf.push(0); // default_store: Tiled
        put_u32(&mut buf, 0); // current sheet
        put_u32(&mut buf, 1); // one sheet
        put_str(&mut buf, "Sheet1");
        buf.push(0); // store kind Tiled
        put_u64(&mut buf, 1); // next_row_key
        put_u64(&mut buf, 0); // no registered rows
        put_u64(&mut buf, 1); // one cell
        put_u32(&mut buf, 0);
        put_u32(&mut buf, 0);
        encode_value(&mut buf, &Value::Int(7));
        // No formula section, no pool capacity: that's the v1 layout.
        let mut wb = decode_workbook_meta(&buf, Catalog::new()).unwrap();
        let s = wb.current_sheet();
        assert_eq!(wb.cell(s, CellAddr::new(0, 0)), Value::Int(7));
        assert_eq!(wb.sheet(s).formula_count(), 0);
        assert_eq!(wb.default_pool_capacity(), DEFAULT_POOL_PAGES);
    }

    #[test]
    fn future_meta_versions_are_rejected() {
        let buf = vec![WB_META_VERSION + 1, 0u8];
        assert!(decode_workbook_meta(&buf, Catalog::new()).is_err());
    }
}
