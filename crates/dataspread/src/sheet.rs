//! A sheet: schemaless interface data plus stable row identity.
//!
//! Paper §3 (Interface Manager / Interface Storage): the sheet holds the
//! *interface data* — cells addressed by position, no schema — in a pluggable
//! [`CellStore`], and maintains a positional mapping from display rows to
//! stable row keys so edits with "locational context" can be translated into
//! keyed operations (and back).

use dataspread_gridstore::block::BlockConfig;
use dataspread_gridstore::{BlockGrid, CellStore, NaiveGrid, TileConfig, TiledGrid};
use dataspread_posindex::{RowKey, RowMapping};
use dataspread_types::{CellAddr, DsError, DsResult, Range, Value};

/// Which interface-storage layout backs a sheet (experiment `C5` arms).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum StoreKind {
    /// Fixed-extent tiles — the production default.
    #[default]
    Tiled,
    /// Proximity blocks indexed by an R-tree (paper-faithful).
    Block,
    /// One hash entry per cell (baseline).
    Naive,
}

impl StoreKind {
    fn build(self) -> Box<dyn CellStore<Value>> {
        match self {
            StoreKind::Tiled => Box::new(TiledGrid::new(TileConfig::default())),
            StoreKind::Block => Box::new(BlockGrid::new(BlockConfig::default())),
            StoreKind::Naive => Box::new(NaiveGrid::new()),
        }
    }
}

/// One sheet of a workbook.
pub struct Sheet {
    name: String,
    kind: StoreKind,
    cells: Box<dyn CellStore<Value>>,
    /// Display row → stable row key. Rows are registered lazily as they are
    /// touched; keys survive structural inserts/deletes above them.
    rows: RowMapping,
    next_row_key: RowKey,
}

impl std::fmt::Debug for Sheet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sheet")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .field("cells", &self.cells.cell_count())
            .field("rows", &self.rows.row_count())
            .finish()
    }
}

impl Sheet {
    pub fn new(name: impl Into<String>, kind: StoreKind) -> Self {
        Sheet {
            name: name.into(),
            kind,
            cells: kind.build(),
            rows: RowMapping::new(),
            next_row_key: 1,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn store_kind(&self) -> StoreKind {
        self.kind
    }

    /// Direct access to the backing store (stats, block counts).
    pub fn store(&self) -> &dyn CellStore<Value> {
        self.cells.as_ref()
    }

    // ---- cells -----------------------------------------------------------

    /// The value displayed at `addr` (empty cells read as [`Value::Empty`]).
    pub fn value(&self, addr: CellAddr) -> Value {
        self.cells.get(addr).cloned().unwrap_or(Value::Empty)
    }

    /// Write one cell. Writing `Empty` clears the cell (the stores hold only
    /// non-empty cells). Returns the previous value.
    pub fn set_value(&mut self, addr: CellAddr, v: Value) -> Value {
        let old = if v.is_empty() {
            self.cells.remove(addr)
        } else {
            self.cells.set(addr, v)
        };
        old.unwrap_or(Value::Empty)
    }

    /// Type keyboard input into a cell, with spreadsheet literal recognition.
    pub fn set_input(&mut self, addr: CellAddr, input: &str) -> Value {
        self.set_value(addr, Value::from_input(input))
    }

    /// Fill a rectangular region from a row-major matrix starting at `at`.
    pub fn set_region(&mut self, at: CellAddr, rows: &[Vec<Value>]) {
        for (dr, row) in rows.iter().enumerate() {
            for (dc, v) in row.iter().enumerate() {
                self.set_value(
                    CellAddr::new(at.row + dr as u32, at.col + dc as u32),
                    v.clone(),
                );
            }
        }
    }

    /// Dense row-major matrix of a region (empty cells as `Empty`).
    pub fn region(&self, range: Range) -> Vec<Vec<Value>> {
        let mut out = vec![vec![Value::Empty; range.width() as usize]; range.height() as usize];
        self.cells.for_each_in_range(range, &mut |a, v| {
            out[(a.row - range.start.row) as usize][(a.col - range.start.col) as usize] = v.clone();
        });
        out
    }

    pub fn cell_count(&self) -> usize {
        self.cells.cell_count()
    }

    pub fn used_bounds(&self) -> Option<Range> {
        self.cells.used_bounds()
    }

    // ---- stable row identity --------------------------------------------

    /// Number of rows currently registered in the row mapping.
    pub fn registered_rows(&self) -> usize {
        self.rows.row_count()
    }

    fn ensure_rows(&mut self, count: usize) {
        while self.rows.row_count() < count {
            let key = self.next_row_key;
            self.next_row_key += 1;
            self.rows.append(key).expect("fresh keys are unique");
        }
    }

    /// Stable key of display row `row`, registering it (and any rows above)
    /// on first touch.
    pub fn row_key(&mut self, row: u32) -> RowKey {
        self.ensure_rows(row as usize + 1);
        self.rows
            .key_for_row(row as usize)
            .expect("row just ensured")
    }

    /// Current display position of a stable row key (back-end → front-end
    /// translation), if the row still exists.
    pub fn row_of_key(&self, key: RowKey) -> Option<u32> {
        self.rows.row_for_key(key).map(|r| r as u32)
    }

    /// Stable keys for the display window `[first, first+height)`.
    pub fn row_keys_in_window(&mut self, first: u32, height: u32) -> Vec<RowKey> {
        self.ensure_rows(first as usize + height as usize);
        self.rows.keys_in_window(first as usize, height as usize)
    }

    // ---- structural edits -------------------------------------------------

    /// Insert `count` blank rows at `at`: cells shift down, stable keys of
    /// existing rows are preserved, fresh keys appear for the new rows.
    pub fn insert_rows(&mut self, at: u32, count: u32) -> DsResult<()> {
        if count == 0 {
            return Ok(());
        }
        self.cells.insert_rows(at, count);
        self.ensure_rows(at as usize);
        for i in 0..count {
            let key = self.next_row_key;
            self.next_row_key += 1;
            // `ensure_rows(at)` guarantees the position is in bounds, so every
            // inserted display row gets a fresh key.
            self.rows.insert_row((at + i) as usize, key)?;
        }
        Ok(())
    }

    /// Delete `count` rows at `at`: their cells vanish, rows below shift up,
    /// their stable keys are retired.
    pub fn delete_rows(&mut self, at: u32, count: u32) -> DsResult<()> {
        if count == 0 {
            return Ok(());
        }
        self.cells.delete_rows(at, count);
        for _ in 0..count {
            if (at as usize) < self.rows.row_count() {
                self.rows.remove_row(at as usize)?;
            }
        }
        Ok(())
    }

    pub fn insert_cols(&mut self, at: u32, count: u32) {
        self.cells.insert_cols(at, count);
    }

    pub fn delete_cols(&mut self, at: u32, count: u32) {
        self.cells.delete_cols(at, count);
    }

    /// Parse-and-validate helper used by the workbook's A1 entry points.
    pub(crate) fn parse_range(a1: &str) -> DsResult<Range> {
        Range::parse_a1(a1)
            .map_err(|_| DsError::Interface(format!("invalid range reference `{a1}`")))
    }

    // ---- persistence (checkpoint format; see docs/STORAGE.md) -------------

    /// Serialize the sheet into the workbook snapshot stream: name, store
    /// kind, the stable row keys in display order, and every non-empty cell.
    pub(crate) fn encode(&self, buf: &mut Vec<u8>) {
        use dataspread_relstore::codec::{encode_value, put_str, put_u32, put_u64};
        put_str(buf, &self.name);
        buf.push(match self.kind {
            StoreKind::Tiled => 0,
            StoreKind::Block => 1,
            StoreKind::Naive => 2,
        });
        put_u64(buf, self.next_row_key);
        let keys = self.rows.keys();
        put_u64(buf, keys.len() as u64);
        for k in keys {
            put_u64(buf, k);
        }
        let mut cells: Vec<(CellAddr, Value)> = Vec::with_capacity(self.cells.cell_count());
        if let Some(bounds) = self.cells.used_bounds() {
            self.cells
                .for_each_in_range(bounds, &mut |a, v| cells.push((a, v.clone())));
        }
        // Deterministic order for byte-stable snapshots.
        cells.sort_by_key(|(a, _)| (a.row, a.col));
        put_u64(buf, cells.len() as u64);
        for (a, v) in cells {
            put_u32(buf, a.row);
            put_u32(buf, a.col);
            encode_value(buf, &v);
        }
    }

    /// Rebuild a sheet from the snapshot stream.
    pub(crate) fn decode(cur: &mut dataspread_relstore::codec::Cursor<'_>) -> DsResult<Sheet> {
        let name = cur.str()?;
        let kind = match cur.u8()? {
            0 => StoreKind::Tiled,
            1 => StoreKind::Block,
            2 => StoreKind::Naive,
            other => {
                return Err(DsError::Storage(format!(
                    "snapshot: bad store kind {other}"
                )))
            }
        };
        let next_row_key = cur.u64()?;
        let nkeys = cur.u64()? as usize;
        let mut keys = Vec::with_capacity(nkeys);
        for _ in 0..nkeys {
            keys.push(cur.u64()?);
        }
        let mut sheet = Sheet::new(name, kind);
        sheet.rows = RowMapping::from_keys(keys)?;
        sheet.next_row_key = next_row_key;
        let ncells = cur.u64()? as usize;
        for _ in 0..ncells {
            let row = cur.u32()?;
            let col = cur.u32()?;
            let v = cur.value()?;
            sheet.cells.set(CellAddr::new(row, col), v);
        }
        Ok(sheet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> CellAddr {
        CellAddr::parse_a1(s).unwrap()
    }

    #[test]
    fn cell_round_trip_all_stores() {
        for kind in [StoreKind::Tiled, StoreKind::Block, StoreKind::Naive] {
            let mut s = Sheet::new("S", kind);
            assert_eq!(s.value(a("B2")), Value::Empty);
            s.set_input(a("B2"), "42");
            assert_eq!(s.value(a("B2")), Value::Int(42));
            s.set_value(a("B2"), Value::Empty);
            assert_eq!(s.cell_count(), 0, "{kind:?} clears on Empty write");
        }
    }

    #[test]
    fn region_round_trip() {
        let mut s = Sheet::new("S", StoreKind::Tiled);
        s.set_region(
            a("B2"),
            &[
                vec![Value::Int(1), Value::Int(2)],
                vec![Value::Int(3), Value::Empty],
            ],
        );
        let m = s.region(Range::parse_a1("B2:C3").unwrap());
        assert_eq!(m[0], vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(m[1], vec![Value::Int(3), Value::Empty]);
    }

    #[test]
    fn row_keys_survive_structural_edits() {
        let mut s = Sheet::new("S", StoreKind::Tiled);
        s.set_input(a("A1"), "top");
        s.set_input(a("A5"), "bottom");
        let k1 = s.row_key(0);
        let k5 = s.row_key(4);
        s.insert_rows(2, 3).unwrap();
        assert_eq!(s.row_of_key(k1), Some(0), "row above the edit is untouched");
        assert_eq!(s.row_of_key(k5), Some(7), "row below shifted by 3");
        assert_eq!(s.value(a("A8")), Value::text("bottom"));
        s.delete_rows(0, 1).unwrap();
        assert_eq!(s.row_of_key(k1), None, "deleted row key retired");
        assert_eq!(s.row_of_key(k5), Some(6));
    }

    #[test]
    fn encode_decode_round_trip() {
        for kind in [StoreKind::Tiled, StoreKind::Block, StoreKind::Naive] {
            let mut s = Sheet::new("Grid", kind);
            s.set_input(a("A1"), "hello");
            s.set_input(a("C7"), "3.5");
            s.set_input(a("B2"), "#REF!");
            let k0 = s.row_key(0);
            s.insert_rows(1, 2).unwrap();
            let mut buf = Vec::new();
            s.encode(&mut buf);
            let mut cur = dataspread_relstore::codec::Cursor::new(&buf);
            let back = Sheet::decode(&mut cur).unwrap();
            assert!(cur.is_empty());
            assert_eq!(back.name(), "Grid");
            assert_eq!(back.store_kind(), kind);
            // insert_rows(1, 2) shifted C7→C9 and B2→B4; A1 stayed put.
            assert_eq!(back.value(a("A1")), Value::text("hello"));
            assert_eq!(back.value(a("C9")), Value::Float(3.5));
            assert!(back.value(a("B4")).is_error());
            assert_eq!(back.value(a("C7")), Value::Empty);
            assert_eq!(back.cell_count(), s.cell_count());
            assert_eq!(back.row_of_key(k0), s.row_of_key(k0));
            assert_eq!(back.registered_rows(), s.registered_rows());
        }
    }

    #[test]
    fn window_keys_are_stable_and_distinct() {
        let mut s = Sheet::new("S", StoreKind::Block);
        let w1 = s.row_keys_in_window(10, 5);
        let w2 = s.row_keys_in_window(10, 5);
        assert_eq!(w1, w2);
        let mut sorted = w1.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
    }
}
