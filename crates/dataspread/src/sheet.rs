//! A sheet: schemaless interface data, formulas, and stable row identity.
//!
//! Paper §3 (Interface Manager / Interface Storage): the sheet holds the
//! *interface data* — cells addressed by position, no schema — in a pluggable
//! [`CellStore`], and maintains a positional mapping from display rows to
//! stable row keys so edits with "locational context" can be translated into
//! keyed operations (and back).
//!
//! Formula cells keep their parsed [`Formula`] here, next to the *cached*
//! display value in the cell store — so every read path (`RANGEVALUE`,
//! `RANGETABLE`, region scans) sees computed results with zero formula
//! awareness. Recomputation is the workbook's job: the sheet only records
//! which cells changed (`Sheet::take_pending`) and evaluates a freshly
//! typed formula once against itself. When the owning workbook is durable,
//! every cell and structural edit is WAL-logged (the logical input, not the
//! computed value) so grid edits survive a crash between checkpoints.

use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dataspread_formula::{CellProvider, Formula, GridOp};
use dataspread_gridstore::block::BlockConfig;
use dataspread_gridstore::{BlockGrid, CellStore, NaiveGrid, TileConfig, TiledGrid};
use dataspread_posindex::{RowKey, RowMapping};
use dataspread_relstore::wal::{GridEditKind, SheetCellContent, WalOp, WalWriter};
use dataspread_types::{CellAddr, CellError, DsError, DsResult, Range, SheetRef, Value};

/// Which interface-storage layout backs a sheet (experiment `C5` arms).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum StoreKind {
    /// Fixed-extent tiles — the production default.
    #[default]
    Tiled,
    /// Proximity blocks indexed by an R-tree (paper-faithful).
    Block,
    /// One hash entry per cell (baseline).
    Naive,
}

impl StoreKind {
    fn build(self) -> Box<dyn CellStore<Value> + Send + Sync> {
        match self {
            StoreKind::Tiled => Box::new(TiledGrid::new(TileConfig::default())),
            StoreKind::Block => Box::new(BlockGrid::new(BlockConfig::default())),
            StoreKind::Naive => Box::new(NaiveGrid::new()),
        }
    }
}

/// A formula cell: the original source text plus its parsed form. `ast` is
/// `None` when the source did not parse — the cell then displays `#NAME?`
/// but the text is preserved for editing and persistence.
#[derive(Clone, Debug)]
pub(crate) struct CellFormula {
    pub src: String,
    pub ast: Option<Formula>,
    /// Edit-clock tick at which the formula was (re)typed. A deferred
    /// structural-edit rewrite applies only to formulas *older* than the
    /// edit — a formula typed afterwards already uses post-edit coordinates.
    pub stamp: u64,
}

/// Edits made since the workbook last recomputed: the changed cell positions
/// and, in order, any structural edits (with their edit-clock sequence, for
/// temporal ordering against formula stamps). Consumed by the workbook's
/// recalculation pass.
#[derive(Default, Debug)]
pub(crate) struct PendingEdits {
    pub cells: HashSet<CellAddr>,
    pub ops: Vec<(u64, GridOp)>,
}

impl PendingEdits {
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty() && self.ops.is_empty()
    }
}

/// One sheet of a workbook.
pub struct Sheet {
    name: String,
    kind: StoreKind,
    cells: Box<dyn CellStore<Value> + Send + Sync>,
    /// Formula cells, keyed by position (row-major order for deterministic
    /// snapshots). The cell store holds their cached values.
    formulas: BTreeMap<CellAddr, CellFormula>,
    /// Display row → stable row key. Rows are registered lazily as they are
    /// touched; keys survive structural inserts/deletes above them.
    rows: RowMapping,
    next_row_key: RowKey,
    /// Redo log for grid edits when the owning workbook is durable.
    wal: Option<Arc<WalWriter>>,
    /// Edits not yet folded into the workbook's dependency graph.
    pending: PendingEdits,
    /// Edit clock, shared across every sheet of a workbook so formula
    /// stamps and structural-edit sequences are totally ordered workbook-
    /// wide. A lone sheet gets a private clock.
    clock: Arc<AtomicU64>,
}

impl std::fmt::Debug for Sheet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sheet")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .field("cells", &self.cells.cell_count())
            .field("formulas", &self.formulas.len())
            .field("rows", &self.rows.row_count())
            .finish()
    }
}

/// Formula resolution against a lone sheet: `Current` and the sheet's own
/// name resolve here, anything else is `#REF!`. The workbook substitutes its
/// cross-sheet provider when it recomputes.
struct LocalCells<'a>(&'a Sheet);

impl CellProvider for LocalCells<'_> {
    fn cell_value(&self, sheet: &SheetRef, addr: CellAddr) -> Result<Value, CellError> {
        match sheet {
            SheetRef::Current => Ok(self.0.value(addr)),
            SheetRef::Named(n) if n.eq_ignore_ascii_case(&self.0.name) => Ok(self.0.value(addr)),
            SheetRef::Named(_) => Err(CellError::Ref),
        }
    }
}

impl Sheet {
    pub fn new(name: impl Into<String>, kind: StoreKind) -> Self {
        Sheet {
            name: name.into(),
            kind,
            cells: kind.build(),
            formulas: BTreeMap::new(),
            rows: RowMapping::new(),
            next_row_key: 1,
            wal: None,
            pending: PendingEdits::default(),
            // Start at 1: snapshot-decoded formulas carry stamp 0 and are
            // older than every live edit.
            clock: Arc::new(AtomicU64::new(1)),
        }
    }

    /// Share the workbook's edit clock (called when the sheet joins a
    /// workbook) so stamps order across sheets.
    pub(crate) fn share_clock(&mut self, clock: Arc<AtomicU64>) {
        self.clock = clock;
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn store_kind(&self) -> StoreKind {
        self.kind
    }

    /// Direct access to the backing store (stats, block counts).
    pub fn store(&self) -> &dyn CellStore<Value> {
        self.cells.as_ref()
    }

    // ---- durability ------------------------------------------------------

    /// Attach the workbook's WAL: every subsequent cell/structural edit is
    /// logged (auto-committed) so it survives a crash between checkpoints.
    pub(crate) fn attach_wal(&mut self, wal: Arc<WalWriter>) {
        self.wal = Some(wal);
    }

    fn log_cell(&self, addr: CellAddr, content: SheetCellContent) -> DsResult<()> {
        match &self.wal {
            Some(wal) => wal.log(WalOp::SheetCell {
                sheet: self.name.clone(),
                row: addr.row,
                col: addr.col,
                content,
            }),
            None => Ok(()),
        }
    }

    fn log_grid(&self, edit: GridEditKind, at: u32, count: u32) -> DsResult<()> {
        match &self.wal {
            Some(wal) => wal.log(WalOp::SheetGrid {
                sheet: self.name.clone(),
                edit,
                at,
                count,
            }),
            None => Ok(()),
        }
    }

    // ---- cells -----------------------------------------------------------

    /// The value displayed at `addr` (empty cells read as [`Value::Empty`];
    /// formula cells read their cached computed value).
    pub fn value(&self, addr: CellAddr) -> Value {
        self.cells.get(addr).cloned().unwrap_or(Value::Empty)
    }

    /// Raw store write shared by the edit paths and the recompute path.
    fn store_write(&mut self, addr: CellAddr, v: Value) -> Value {
        let old = if v.is_empty() {
            self.cells.remove(addr)
        } else {
            self.cells.set(addr, v)
        };
        old.unwrap_or(Value::Empty)
    }

    /// Overwrite a cell's *cached* value during recomputation: no WAL record
    /// (computed values are derivable), no pending mark, the formula stays.
    pub(crate) fn set_cached(&mut self, addr: CellAddr, v: Value) {
        self.store_write(addr, v);
    }

    /// Write one mirror cell of a table-bound region: no WAL record (the
    /// binding re-renders from the recovered table), but the edit is marked
    /// pending so formulas watching the region recompute, and any formula at
    /// the address is displaced (bound cells cannot hold formulas).
    pub(crate) fn write_bound(&mut self, addr: CellAddr, v: Value) {
        self.formulas.remove(&addr);
        self.pending.cells.insert(addr);
        self.store_write(addr, v);
    }

    /// Write one literal cell. Writing `Empty` clears the cell (the stores
    /// hold only non-empty cells). Replaces any formula at `addr`. Returns
    /// the previous displayed value. Errors only on WAL I/O failure when the
    /// sheet is durable.
    pub fn set_value(&mut self, addr: CellAddr, v: Value) -> DsResult<Value> {
        self.log_cell(addr, SheetCellContent::Value(v.clone()))?;
        self.formulas.remove(&addr);
        self.pending.cells.insert(addr);
        Ok(self.store_write(addr, v))
    }

    /// Type keyboard input into a cell: `=`-prefixed input is parsed and
    /// stored as a formula (unparseable source displays `#NAME?`), anything
    /// else goes through spreadsheet literal recognition. Returns the value
    /// the cell now displays.
    ///
    /// On a lone sheet the formula is evaluated once, immediately, against
    /// this sheet (cross-sheet references read `#REF!`). Inside a workbook,
    /// use [`crate::Workbook::set_input`] — it re-evaluates through the
    /// cross-sheet dependency graph and recomputes dependents.
    pub fn set_input(&mut self, addr: CellAddr, input: &str) -> DsResult<Value> {
        if input.trim_start().starts_with('=') {
            return self.set_formula(addr, input.trim());
        }
        let v = Value::from_input(input);
        self.set_value(addr, v.clone())?;
        Ok(v)
    }

    /// Store formula source at `addr` and evaluate it once against this
    /// sheet. Returns the displayed value.
    pub fn set_formula(&mut self, addr: CellAddr, src: &str) -> DsResult<Value> {
        self.log_cell(addr, SheetCellContent::Formula(src.to_string()))?;
        let ast = Formula::parse(src).ok();
        let v = match &ast {
            Some(f) => f.eval(&LocalCells(self)),
            None => Value::Error(CellError::Name),
        };
        self.formulas.insert(
            addr,
            CellFormula {
                src: src.to_string(),
                ast,
                stamp: self.tick(),
            },
        );
        self.pending.cells.insert(addr);
        self.store_write(addr, v.clone());
        Ok(v)
    }

    /// The formula source at `addr`, if the cell holds one.
    pub fn formula_text(&self, addr: CellAddr) -> Option<&str> {
        self.formulas.get(&addr).map(|f| f.src.as_str())
    }

    /// Number of formula cells on this sheet.
    pub fn formula_count(&self) -> usize {
        self.formulas.len()
    }

    pub(crate) fn formula_ast(&self, addr: CellAddr) -> Option<&Formula> {
        self.formulas.get(&addr).and_then(|f| f.ast.as_ref())
    }

    /// Positions of every formula cell, row-major.
    pub(crate) fn formula_addrs(&self) -> Vec<CellAddr> {
        self.formulas.keys().copied().collect()
    }

    /// Take (and clear) the edits recorded since the last recomputation.
    pub(crate) fn take_pending(&mut self) -> PendingEdits {
        std::mem::take(&mut self.pending)
    }

    pub(crate) fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Fill a rectangular region from a row-major matrix starting at `at`.
    /// On a durable sheet the whole region logs as **one** WAL transaction —
    /// one fsync instead of one per cell, and replay applies the region
    /// atomically.
    pub fn set_region(&mut self, at: CellAddr, rows: &[Vec<Value>]) -> DsResult<()> {
        let wal = self.wal.clone();
        let in_txn = match &wal {
            Some(w) => {
                w.begin()?;
                true
            }
            None => false,
        };
        let result = (|| -> DsResult<()> {
            for (dr, row) in rows.iter().enumerate() {
                for (dc, v) in row.iter().enumerate() {
                    self.set_value(
                        CellAddr::new(at.row + dr as u32, at.col + dc as u32),
                        v.clone(),
                    )?;
                }
            }
            Ok(())
        })();
        if in_txn {
            let w = wal.as_ref().expect("wal present when in_txn");
            match &result {
                Ok(()) => w.commit()?,
                // Mirror `Workbook::execute`'s convention: the cells that
                // did apply are already logged — commit them so recovery
                // rebuilds exactly what memory saw. The original error
                // outranks a commit I/O error.
                Err(_) => {
                    let _ = w.commit();
                }
            }
        }
        result
    }

    /// Write a list of literal cells as **one** WAL transaction (one fsync),
    /// like [`Sheet::set_region`] but for an arbitrary cell set — the
    /// workbook batches the unbound remainder of a partially-bound region
    /// write through this.
    pub fn set_cells(&mut self, writes: &[(CellAddr, Value)]) -> DsResult<()> {
        let wal = self.wal.clone();
        let in_txn = match &wal {
            Some(w) => {
                w.begin()?;
                true
            }
            None => false,
        };
        let result = (|| -> DsResult<()> {
            for (addr, v) in writes {
                self.set_value(*addr, v.clone())?;
            }
            Ok(())
        })();
        if in_txn {
            let w = wal.as_ref().expect("wal present when in_txn");
            match &result {
                Ok(()) => w.commit()?,
                // Same convention as `set_region`: applied cells are
                // already logged — commit them so recovery rebuilds what
                // memory saw; the original error outranks commit I/O.
                Err(_) => {
                    let _ = w.commit();
                }
            }
        }
        result
    }

    /// Dense row-major matrix of a region (empty cells as `Empty`).
    pub fn region(&self, range: Range) -> Vec<Vec<Value>> {
        let mut out = vec![vec![Value::Empty; range.width() as usize]; range.height() as usize];
        self.cells.for_each_in_range(range, &mut |a, v| {
            out[(a.row - range.start.row) as usize][(a.col - range.start.col) as usize] = v.clone();
        });
        out
    }

    pub fn cell_count(&self) -> usize {
        self.cells.cell_count()
    }

    pub fn used_bounds(&self) -> Option<Range> {
        self.cells.used_bounds()
    }

    // ---- stable row identity --------------------------------------------

    /// Number of rows currently registered in the row mapping.
    pub fn registered_rows(&self) -> usize {
        self.rows.row_count()
    }

    fn ensure_rows(&mut self, count: usize) {
        while self.rows.row_count() < count {
            let key = self.next_row_key;
            self.next_row_key += 1;
            self.rows.append(key).expect("fresh keys are unique");
        }
    }

    /// Stable key of display row `row`, registering it (and any rows above)
    /// on first touch.
    pub fn row_key(&mut self, row: u32) -> RowKey {
        self.ensure_rows(row as usize + 1);
        self.rows
            .key_for_row(row as usize)
            .expect("row just ensured")
    }

    /// Current display position of a stable row key (back-end → front-end
    /// translation), if the row still exists.
    pub fn row_of_key(&self, key: RowKey) -> Option<u32> {
        self.rows.row_for_key(key).map(|r| r as u32)
    }

    /// Stable keys for the display window `[first, first+height)`.
    pub fn row_keys_in_window(&mut self, first: u32, height: u32) -> Vec<RowKey> {
        self.ensure_rows(first as usize + height as usize);
        self.rows.keys_in_window(first as usize, height as usize)
    }

    // ---- structural edits -------------------------------------------------

    /// Shift the formula cells themselves and every *self*-reference inside
    /// them (`A1` and `ThisSheet!A1` alike) for a structural edit. References
    /// from other sheets are the workbook's job at recompute time.
    fn shift_formulas(&mut self, op: GridOp) {
        let old = std::mem::take(&mut self.formulas);
        for (addr, f) in old {
            if let Some(new_addr) = op.map_addr(addr) {
                self.formulas.insert(new_addr, f);
            }
            // Formulas on deleted rows/cols vanish with their cells.
        }
        let me = self.name.clone();
        for f in self.formulas.values_mut() {
            if let Some(ast) = &mut f.ast {
                let applies = |s: &SheetRef| match s {
                    SheetRef::Current => true,
                    SheetRef::Named(n) => n.eq_ignore_ascii_case(&me),
                };
                if ast.adjust(op, &applies) {
                    // Keep the stored source in sync with the rewritten AST.
                    f.src = ast.to_string();
                }
            }
        }
        self.pending.ops.push((self.tick(), op));
    }

    /// Rewrite references this sheet's formulas hold into another (edited)
    /// sheet: only `Named` qualifiers can point at a foreign sheet. Called by
    /// the workbook when a *different* sheet has a structural edit.
    /// Only formulas typed *before* the edit (`stamp < op_seq`) are
    /// rewritten — later formulas already use post-edit coordinates.
    pub(crate) fn adjust_foreign_refs(&mut self, op: GridOp, op_seq: u64, edited: &str) {
        for f in self.formulas.values_mut() {
            if f.stamp >= op_seq {
                continue;
            }
            if let Some(ast) = &mut f.ast {
                let applies = |s: &SheetRef| matches!(s, SheetRef::Named(n) if n.eq_ignore_ascii_case(edited));
                if ast.adjust(op, &applies) {
                    f.src = ast.to_string();
                }
            }
        }
    }

    /// Insert `count` blank rows at `at`: cells shift down, stable keys of
    /// existing rows are preserved, fresh keys appear for the new rows.
    /// Formulas shift with their cells; self-references are rewritten.
    pub fn insert_rows(&mut self, at: u32, count: u32) -> DsResult<()> {
        if count == 0 {
            return Ok(());
        }
        self.log_grid(GridEditKind::InsertRows, at, count)?;
        self.cells.insert_rows(at, count);
        self.ensure_rows(at as usize);
        for i in 0..count {
            let key = self.next_row_key;
            self.next_row_key += 1;
            // `ensure_rows(at)` guarantees the position is in bounds, so every
            // inserted display row gets a fresh key.
            self.rows.insert_row((at + i) as usize, key)?;
        }
        self.shift_formulas(GridOp::InsertRows { at, count });
        Ok(())
    }

    /// Delete `count` rows at `at`: their cells vanish, rows below shift up,
    /// their stable keys are retired. Self-references into the deleted span
    /// become `#REF!`.
    pub fn delete_rows(&mut self, at: u32, count: u32) -> DsResult<()> {
        if count == 0 {
            return Ok(());
        }
        self.log_grid(GridEditKind::DeleteRows, at, count)?;
        self.cells.delete_rows(at, count);
        for _ in 0..count {
            if (at as usize) < self.rows.row_count() {
                self.rows.remove_row(at as usize)?;
            }
        }
        self.shift_formulas(GridOp::DeleteRows { at, count });
        Ok(())
    }

    /// Insert `count` blank columns at `at`.
    pub fn insert_cols(&mut self, at: u32, count: u32) -> DsResult<()> {
        if count == 0 {
            return Ok(());
        }
        self.log_grid(GridEditKind::InsertCols, at, count)?;
        self.cells.insert_cols(at, count);
        self.shift_formulas(GridOp::InsertCols { at, count });
        Ok(())
    }

    /// Delete columns `[at, at + count)`.
    pub fn delete_cols(&mut self, at: u32, count: u32) -> DsResult<()> {
        if count == 0 {
            return Ok(());
        }
        self.log_grid(GridEditKind::DeleteCols, at, count)?;
        self.cells.delete_cols(at, count);
        self.shift_formulas(GridOp::DeleteCols { at, count });
        Ok(())
    }

    /// Parse-and-validate helper used by the workbook's A1 entry points.
    pub(crate) fn parse_range(a1: &str) -> DsResult<Range> {
        Range::parse_a1(a1)
            .map_err(|_| DsError::Interface(format!("invalid range reference `{a1}`")))
    }

    // ---- persistence (checkpoint format; see docs/STORAGE.md) -------------

    /// Serialize the sheet into the workbook snapshot stream: name, store
    /// kind, the stable row keys in display order, every non-empty cell
    /// (formula cells store their cached value), and every formula source.
    pub(crate) fn encode(&self, buf: &mut Vec<u8>) {
        use dataspread_relstore::codec::{encode_value, put_str, put_u32, put_u64};
        put_str(buf, &self.name);
        buf.push(match self.kind {
            StoreKind::Tiled => 0,
            StoreKind::Block => 1,
            StoreKind::Naive => 2,
        });
        put_u64(buf, self.next_row_key);
        let keys = self.rows.keys();
        put_u64(buf, keys.len() as u64);
        for k in keys {
            put_u64(buf, k);
        }
        let mut cells: Vec<(CellAddr, Value)> = Vec::with_capacity(self.cells.cell_count());
        if let Some(bounds) = self.cells.used_bounds() {
            self.cells
                .for_each_in_range(bounds, &mut |a, v| cells.push((a, v.clone())));
        }
        // Deterministic order for byte-stable snapshots.
        cells.sort_by_key(|(a, _)| (a.row, a.col));
        put_u64(buf, cells.len() as u64);
        for (a, v) in cells {
            put_u32(buf, a.row);
            put_u32(buf, a.col);
            encode_value(buf, &v);
        }
        // Formula sources (BTreeMap iteration is already row-major).
        put_u64(buf, self.formulas.len() as u64);
        for (a, f) in &self.formulas {
            put_u32(buf, a.row);
            put_u32(buf, a.col);
            put_str(buf, &f.src);
        }
    }

    /// Rebuild a sheet from the snapshot stream. Formula sources are
    /// re-parsed (with stamp 0 — older than every live edit); cached values
    /// come back from the cell section, so no evaluation happens here (the
    /// workbook recomputes after recovery). `with_formulas` is false when
    /// decoding a version-1 stream, which predates formula sections.
    pub(crate) fn decode(
        cur: &mut dataspread_relstore::codec::Cursor<'_>,
        with_formulas: bool,
    ) -> DsResult<Sheet> {
        let name = cur.str()?;
        let kind = match cur.u8()? {
            0 => StoreKind::Tiled,
            1 => StoreKind::Block,
            2 => StoreKind::Naive,
            other => {
                return Err(DsError::Storage(format!(
                    "snapshot: bad store kind {other}"
                )))
            }
        };
        let next_row_key = cur.u64()?;
        let nkeys = cur.u64()? as usize;
        let mut keys = Vec::with_capacity(nkeys);
        for _ in 0..nkeys {
            keys.push(cur.u64()?);
        }
        let mut sheet = Sheet::new(name, kind);
        sheet.rows = RowMapping::from_keys(keys)?;
        sheet.next_row_key = next_row_key;
        let ncells = cur.u64()? as usize;
        for _ in 0..ncells {
            let row = cur.u32()?;
            let col = cur.u32()?;
            let v = cur.value()?;
            sheet.cells.set(CellAddr::new(row, col), v);
        }
        if with_formulas {
            let nformulas = cur.u64()? as usize;
            for _ in 0..nformulas {
                let row = cur.u32()?;
                let col = cur.u32()?;
                let src = cur.str()?;
                let ast = Formula::parse(&src).ok();
                sheet
                    .formulas
                    .insert(CellAddr::new(row, col), CellFormula { src, ast, stamp: 0 });
            }
        }
        Ok(sheet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> CellAddr {
        CellAddr::parse_a1(s).unwrap()
    }

    #[test]
    fn cell_round_trip_all_stores() {
        for kind in [StoreKind::Tiled, StoreKind::Block, StoreKind::Naive] {
            let mut s = Sheet::new("S", kind);
            assert_eq!(s.value(a("B2")), Value::Empty);
            s.set_input(a("B2"), "42").unwrap();
            assert_eq!(s.value(a("B2")), Value::Int(42));
            s.set_value(a("B2"), Value::Empty).unwrap();
            assert_eq!(s.cell_count(), 0, "{kind:?} clears on Empty write");
        }
    }

    #[test]
    fn formula_input_is_not_text() {
        let mut s = Sheet::new("S", StoreKind::Tiled);
        s.set_input(a("A1"), "2").unwrap();
        s.set_input(a("A2"), "3").unwrap();
        let v = s.set_input(a("A3"), "=A1+A2").unwrap();
        assert_eq!(v, Value::Int(5));
        assert_eq!(s.value(a("A3")), Value::Int(5));
        assert_eq!(s.formula_text(a("A3")), Some("=A1+A2"));
        // Unparseable formula input: #NAME?, never silent text.
        let v = s.set_input(a("A4"), "=NOPE(").unwrap();
        assert_eq!(v, Value::Error(CellError::Name));
        assert_eq!(s.formula_text(a("A4")), Some("=NOPE("));
        // Overwriting with a literal clears the formula.
        s.set_input(a("A3"), "9").unwrap();
        assert_eq!(s.formula_text(a("A3")), None);
        assert_eq!(s.value(a("A3")), Value::Int(9));
    }

    #[test]
    fn lone_sheet_resolves_own_name_only() {
        let mut s = Sheet::new("Data", StoreKind::Tiled);
        s.set_input(a("A1"), "4").unwrap();
        assert_eq!(s.set_input(a("B1"), "=Data!A1*2").unwrap(), Value::Int(8));
        assert_eq!(
            s.set_input(a("B2"), "=Other!A1").unwrap(),
            Value::Error(CellError::Ref)
        );
    }

    #[test]
    fn region_round_trip() {
        let mut s = Sheet::new("S", StoreKind::Tiled);
        s.set_region(
            a("B2"),
            &[
                vec![Value::Int(1), Value::Int(2)],
                vec![Value::Int(3), Value::Empty],
            ],
        )
        .unwrap();
        let m = s.region(Range::parse_a1("B2:C3").unwrap());
        assert_eq!(m[0], vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(m[1], vec![Value::Int(3), Value::Empty]);
    }

    #[test]
    fn row_keys_survive_structural_edits() {
        let mut s = Sheet::new("S", StoreKind::Tiled);
        s.set_input(a("A1"), "top").unwrap();
        s.set_input(a("A5"), "bottom").unwrap();
        let k1 = s.row_key(0);
        let k5 = s.row_key(4);
        s.insert_rows(2, 3).unwrap();
        assert_eq!(s.row_of_key(k1), Some(0), "row above the edit is untouched");
        assert_eq!(s.row_of_key(k5), Some(7), "row below shifted by 3");
        assert_eq!(s.value(a("A8")), Value::text("bottom"));
        s.delete_rows(0, 1).unwrap();
        assert_eq!(s.row_of_key(k1), None, "deleted row key retired");
        assert_eq!(s.row_of_key(k5), Some(6));
    }

    #[test]
    fn formulas_shift_with_structural_edits() {
        let mut s = Sheet::new("S", StoreKind::Tiled);
        s.set_input(a("A1"), "10").unwrap();
        s.set_input(a("B5"), "=A1*2").unwrap();
        s.insert_rows(2, 3).unwrap();
        // The formula cell moved from B5 to B8; its ref to A1 is unchanged.
        assert_eq!(s.formula_text(a("B5")), None);
        assert_eq!(s.formula_text(a("B8")), Some("=A1*2"));
        // Deleting row 1 breaks the reference.
        s.delete_rows(0, 1).unwrap();
        assert_eq!(s.formula_text(a("B7")), Some("=(#REF!*2)"));
        // Deleting the formula's own row drops the formula.
        s.delete_rows(6, 1).unwrap();
        assert_eq!(s.formula_count(), 0);
    }

    #[test]
    fn encode_decode_round_trip() {
        for kind in [StoreKind::Tiled, StoreKind::Block, StoreKind::Naive] {
            let mut s = Sheet::new("Grid", kind);
            s.set_input(a("A1"), "hello").unwrap();
            s.set_input(a("C7"), "3.5").unwrap();
            s.set_input(a("B2"), "#REF!").unwrap();
            s.set_input(a("D1"), "=C7+1").unwrap();
            let k0 = s.row_key(0);
            s.insert_rows(1, 2).unwrap();
            let mut buf = Vec::new();
            s.encode(&mut buf);
            let mut cur = dataspread_relstore::codec::Cursor::new(&buf);
            let back = Sheet::decode(&mut cur, true).unwrap();
            assert!(cur.is_empty());
            assert_eq!(back.name(), "Grid");
            assert_eq!(back.store_kind(), kind);
            // insert_rows(1, 2) shifted C7→C9 and B2→B4; A1/D1 stayed put.
            assert_eq!(back.value(a("A1")), Value::text("hello"));
            assert_eq!(back.value(a("C9")), Value::Float(3.5));
            assert!(back.value(a("B4")).is_error());
            assert_eq!(back.value(a("C7")), Value::Empty);
            // The formula survived with its shifted reference and cached value.
            assert_eq!(back.formula_text(a("D1")), Some("=(C9+1)"));
            assert_eq!(back.value(a("D1")), Value::Float(4.5));
            assert_eq!(back.cell_count(), s.cell_count());
            assert_eq!(back.row_of_key(k0), s.row_of_key(k0));
            assert_eq!(back.registered_rows(), s.registered_rows());
        }
    }

    #[test]
    fn window_keys_are_stable_and_distinct() {
        let mut s = Sheet::new("S", StoreKind::Block);
        let w1 = s.row_keys_in_window(10, 5);
        let w2 = s.row_keys_in_window(10, 5);
        assert_eq!(w1, w2);
        let mut sorted = w1.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
    }
}
