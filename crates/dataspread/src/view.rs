//! Table views: the interface manager's display mapping for a table region.
//!
//! Paper §3: the interface manager "maintains a mapping between a tuple's key
//! attribute and its corresponding location". A [`TableView`] is that mapping
//! for one displayed table: display row → stable [`RowKey`], generic over the
//! positional index so the counted B-tree and the dense rownum baseline can
//! be compared on the *same* operations (experiment `C3`).

use dataspread_posindex::{CountedBtree, DenseIndex, PositionalIndex, RowKey};
use dataspread_relstore::Table;
use dataspread_types::{DsError, DsResult, Value};

/// Display-order mapping over a table, parameterized by index structure.
#[derive(Debug)]
pub struct TableView<I: PositionalIndex = CountedBtree> {
    index: I,
}

impl TableView<CountedBtree> {
    /// View a table in its current presentation order, O(log n) positional
    /// operations (the DataSpread path).
    pub fn counted(table: &Table) -> DsResult<Self> {
        let keys = table.keys_in_window(0, table.row_count());
        Ok(TableView {
            index: CountedBtree::from_keys(keys)?,
        })
    }
}

impl TableView<DenseIndex> {
    /// View backed by the dense rownum baseline: O(1) lookup but O(n)
    /// positional insert/delete (the stock-RDBMS arm).
    pub fn dense(table: &Table) -> DsResult<Self> {
        let keys = table.keys_in_window(0, table.row_count());
        Ok(TableView {
            index: DenseIndex::from_keys(keys)?,
        })
    }
}

impl<I: PositionalIndex> TableView<I> {
    /// Wrap an existing index (benches build these directly).
    pub fn from_index(index: I) -> Self {
        TableView { index }
    }

    /// Number of displayed rows.
    pub fn row_count(&self) -> usize {
        self.index.len()
    }

    /// Stable key of the row displayed at `pos`.
    pub fn key_at(&self, pos: usize) -> Option<RowKey> {
        self.index.key_at(pos)
    }

    /// Display position of a stable key (back-end update → grid row).
    pub fn position_of(&self, key: RowKey) -> Option<usize> {
        self.index.position_of(key)
    }

    /// Insert `row` into `table` so it is displayed at `pos`; rows below
    /// shift down. The tuple is appended at the storage level — its display
    /// position lives only in this view's index.
    pub fn insert_row_at(
        &mut self,
        table: &mut Table,
        pos: usize,
        row: Vec<Value>,
    ) -> DsResult<RowKey> {
        if pos > self.index.len() {
            return Err(DsError::Interface(format!(
                "insert position {pos} out of bounds (view has {} rows)",
                self.index.len()
            )));
        }
        let key = table.insert(row)?;
        self.index.insert_at(pos, key)?;
        Ok(key)
    }

    /// Delete the row displayed at `pos` from both the view and the table.
    pub fn delete_row_at(&mut self, table: &mut Table, pos: usize) -> DsResult<RowKey> {
        let key = self.index.remove_at(pos)?;
        table.delete_row(key)?;
        Ok(key)
    }

    /// The displayed window `[pos, pos + count)`, materialized in display
    /// order — O(log n + count) descents through the positional index.
    pub fn window(
        &self,
        table: &Table,
        pos: usize,
        count: usize,
    ) -> DsResult<Vec<(RowKey, Vec<Value>)>> {
        let keys = self.index.range(pos, count);
        let mut out = Vec::with_capacity(keys.len());
        for k in keys {
            out.push((k, table.get_row(k)?));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataspread_relstore::{Catalog, ColumnDef, Schema};
    use dataspread_types::DataType;

    fn table_with(n: i64) -> Catalog {
        let mut c = Catalog::new();
        c.create_table(
            "t",
            Schema::new(vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("name", DataType::Text),
            ])
            .unwrap(),
        )
        .unwrap();
        let mut t = c.get_mut("t").unwrap();
        for i in 0..n {
            t.insert(vec![Value::Int(i), Value::text(format!("r{i}"))])
                .unwrap();
        }
        drop(t);
        c
    }

    #[test]
    fn counted_and_dense_views_agree() {
        let c = table_with(20);
        let mut counted = TableView::counted(&c.get("t").unwrap()).unwrap();
        // A second catalog so each view owns its table's mutations.
        let c2 = table_with(20);
        let mut dense = TableView::dense(&c2.get("t").unwrap()).unwrap();

        let mid = vec![Value::Int(99), Value::text("middle")];
        counted
            .insert_row_at(&mut c.get_mut("t").unwrap(), 10, mid.clone())
            .unwrap();
        dense
            .insert_row_at(&mut c2.get_mut("t").unwrap(), 10, mid)
            .unwrap();

        let w1 = counted.window(&c.get("t").unwrap(), 8, 5).unwrap();
        let w2 = dense.window(&c2.get("t").unwrap(), 8, 5).unwrap();
        let v1: Vec<&Vec<Value>> = w1.iter().map(|(_, r)| r).collect();
        let v2: Vec<&Vec<Value>> = w2.iter().map(|(_, r)| r).collect();
        assert_eq!(v1, v2);
        assert_eq!(v1[2][0], Value::Int(99), "inserted row displayed at 10");
    }

    #[test]
    fn delete_shifts_window() {
        let c = table_with(10);
        let mut view = TableView::counted(&c.get("t").unwrap()).unwrap();
        view.delete_row_at(&mut c.get_mut("t").unwrap(), 0).unwrap();
        assert_eq!(view.row_count(), 9);
        let w = view.window(&c.get("t").unwrap(), 0, 2).unwrap();
        assert_eq!(w[0].1[0], Value::Int(1));
        assert_eq!(c.get("t").unwrap().row_count(), 9, "table row deleted too");
    }

    #[test]
    fn out_of_bounds_insert_rejected() {
        let c = table_with(3);
        let mut view = TableView::counted(&c.get("t").unwrap()).unwrap();
        let err = view.insert_row_at(
            &mut c.get_mut("t").unwrap(),
            7,
            vec![Value::Int(9), Value::text("x")],
        );
        assert!(err.is_err());
        assert_eq!(
            c.get("t").unwrap().row_count(),
            3,
            "no phantom tuple on failure"
        );
    }
}
