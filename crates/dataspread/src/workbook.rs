//! The workbook: the engine object that unifies all five layers.
//!
//! A [`Workbook`] owns a set of [`Sheet`]s (interface data, `gridstore`) and a
//! relational [`Catalog`] (`relstore`), executes SQL against both
//! (`dataspread_sql` + [`crate::engine`]), and resolves the positional
//! constructs `RANGEVALUE`/`RANGETABLE` from the live grid — the wiring the
//! paper calls the *interface manager*.

use std::collections::HashMap;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use dataspread_relstore::{Catalog, ColumnDef, RowKey, Schema, StoreHandle};
use dataspread_sql::ast::Statement;
use dataspread_sql::parser::{parse_statement, parse_statements};
use dataspread_sql::resolver::SheetResolver;
use dataspread_types::{col_to_letters, CellAddr, DataType, DsError, DsResult, Range, Value};

use crate::bind::BindingRegistry;
use crate::calc::CalcStats;
use crate::engine::{self, QueryResult};
use crate::exec::ExecOptions;
use crate::metrics::WbObs;
use crate::sheet::{Sheet, StoreKind};

/// Handle to a sheet inside a workbook.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SheetId(pub usize);

/// Liveness of a workbook's write path (see `docs/FAULTS.md`).
///
/// A workbook degrades to `ReadOnly` when its durable store hits an
/// unrecoverable fault — a failed WAL fsync, or a checkpoint that failed
/// after its rename commit point. Reads, queries, and snapshots keep
/// working against the in-memory state; every mutation is rejected with
/// [`DsError::ReadOnly`] until the workbook is reopened from disk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineHealth {
    /// Writes are accepted.
    Healthy,
    /// The engine refuses writes; `reason` is the fault that degraded it.
    ReadOnly {
        /// The storage fault that poisoned the write path.
        reason: String,
    },
}

impl EngineHealth {
    /// True when writes are accepted.
    pub fn is_healthy(&self) -> bool {
        matches!(self, EngineHealth::Healthy)
    }
}

/// The top-level engine object.
#[derive(Debug)]
pub struct Workbook {
    pub(crate) sheets: Vec<Sheet>,
    /// Lower-cased sheet name → index.
    pub(crate) by_name: HashMap<String, usize>,
    pub(crate) catalog: Catalog,
    pub(crate) current: usize,
    pub(crate) default_store: StoreKind,
    pub(crate) exec_options: ExecOptions,
    /// Attached durable store, if any (see [`Workbook::save`]).
    pub(crate) store: Option<StoreHandle>,
    /// Metrics registry, span tracer, and every engine counter handle
    /// (see `docs/OBSERVABILITY.md`).
    pub(crate) obs: WbObs,
    /// Edit clock shared with every sheet: totally orders formula writes
    /// and structural edits workbook-wide (see `calc::Workbook::flush_grid`).
    pub(crate) clock: Arc<AtomicU64>,
    /// Table-bound sheet regions (paper §2.1 TOM/ROM/COM; see `crate::bind`).
    pub(crate) bindings: BindingRegistry,
}

impl Default for Workbook {
    fn default() -> Self {
        Workbook::new()
    }
}

impl Workbook {
    /// A workbook with one sheet (`Sheet1`) using the default tiled store.
    pub fn new() -> Self {
        Workbook::with_store(StoreKind::Tiled)
    }

    /// A workbook whose sheets use the given interface-storage layout.
    pub fn with_store(kind: StoreKind) -> Self {
        let mut wb = Workbook {
            sheets: Vec::new(),
            by_name: HashMap::new(),
            catalog: Catalog::new(),
            current: 0,
            default_store: kind,
            exec_options: ExecOptions::default(),
            store: None,
            obs: WbObs::default(),
            clock: Arc::new(AtomicU64::new(1)),
            bindings: BindingRegistry::default(),
        };
        wb.add_sheet("Sheet1")
            .expect("fresh workbook accepts a sheet");
        wb
    }

    // ---- health ----------------------------------------------------------

    /// Current write-path health. The single source of truth is the
    /// attached WAL's poison state, so every handle (including clones of
    /// [`crate::SharedWorkbook`]) observes a degradation the instant the
    /// faulting commit returns.
    pub fn health(&self) -> EngineHealth {
        match self.store.as_ref().and_then(|s| s.wal.poison_reason()) {
            Some(reason) => EngineHealth::ReadOnly { reason },
            None => EngineHealth::Healthy,
        }
    }

    /// `Err(DsError::ReadOnly)` when the workbook is degraded, else `Ok`.
    /// Mutating entry points call this *before* touching any state, so a
    /// degraded workbook never diverges from its (now frozen) disk image.
    pub fn ensure_writable(&self) -> DsResult<()> {
        match self.health() {
            EngineHealth::Healthy => Ok(()),
            EngineHealth::ReadOnly { reason } => Err(DsError::ReadOnly(reason)),
        }
    }

    // ---- sheets ----------------------------------------------------------

    pub fn add_sheet(&mut self, name: &str) -> DsResult<SheetId> {
        self.ensure_writable()?;
        if name.is_empty() {
            return Err(DsError::Interface("empty sheet name".into()));
        }
        let key = name.to_ascii_lowercase();
        if self.by_name.contains_key(&key) {
            return Err(DsError::Interface(format!("sheet `{name}` already exists")));
        }
        let mut sheet = Sheet::new(name, self.default_store);
        sheet.share_clock(Arc::clone(&self.clock));
        self.sheets.push(sheet);
        let id = self.sheets.len() - 1;
        self.by_name.insert(key, id);
        // The new name may resolve formerly broken `Name!ref` references.
        if self.sheets.iter().any(|s| s.formula_count() > 0) {
            self.flush_grid();
            self.recompute_all();
        }
        // Adding a sheet is interface DDL: checkpoint so later WAL records
        // naming this sheet always find it in the snapshot, and attach the
        // log so its edits are durable from the first keystroke.
        if self.store.is_some() {
            self.checkpoint()?;
        }
        Ok(SheetId(id))
    }

    pub fn sheet_id(&self, name: &str) -> DsResult<SheetId> {
        self.by_name
            .get(&name.to_ascii_lowercase())
            .map(|&i| SheetId(i))
            .ok_or_else(|| DsError::Interface(format!("no sheet named `{name}`")))
    }

    pub fn sheet(&self, id: SheetId) -> &Sheet {
        &self.sheets[id.0]
    }

    /// Raw mutable access to a sheet, bypassing the workbook's edit pipeline.
    ///
    /// Crate-internal on purpose: edits made through the returned `&mut
    /// Sheet` skip binding routing (a write landing on a table-bound cell
    /// will NOT become table DML) and leave formula recomputation pending
    /// until the next workbook-level operation calls `flush_grid`. External
    /// callers use the logged, recomputing APIs instead —
    /// [`Workbook::set_input`], [`Workbook::set_value`],
    /// [`Workbook::set_region`], and the structural-edit methods.
    ///
    /// Invariant for in-crate users: never write through this handle into a
    /// cell covered by a table binding, and follow batches of raw edits with
    /// `flush_grid` (every public mutating entry point already does).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn sheet_mut(&mut self, id: SheetId) -> &mut Sheet {
        &mut self.sheets[id.0]
    }

    pub fn sheet_count(&self) -> usize {
        self.sheets.len()
    }

    /// The sheet unqualified positional references resolve against.
    pub fn current_sheet(&self) -> SheetId {
        SheetId(self.current)
    }

    pub fn set_current_sheet(&mut self, id: SheetId) {
        assert!(id.0 < self.sheets.len(), "stale SheetId");
        self.current = id.0;
    }

    // ---- grid edits (formula-aware, WAL-logged, recomputed) ---------------

    /// Type input into a cell: literals are recognized, `=`-prefixed input
    /// becomes a formula evaluated through the cross-sheet dependency graph.
    /// Dependent formulas recompute incrementally before this returns; the
    /// returned value is what the cell now displays.
    pub fn set_input(&mut self, sheet: SheetId, addr: CellAddr, input: &str) -> DsResult<Value> {
        self.ensure_writable()?;
        if let Some(bi) = self.binding_index_at(sheet, addr) {
            if input.trim_start().starts_with('=') {
                return Err(DsError::Interface(
                    "a table-bound cell cannot hold a formula".into(),
                ));
            }
            self.bound_set_value(bi, sheet, addr, Value::from_input(input))?;
            self.flush_grid();
            return Ok(self.sheets[sheet.0].value(addr));
        }
        self.sheets[sheet.0].set_input(addr, input)?;
        self.flush_grid();
        Ok(self.sheets[sheet.0].value(addr))
    }

    /// Write one literal cell value (replacing any formula there) and
    /// recompute its dependents.
    pub fn set_value(&mut self, sheet: SheetId, addr: CellAddr, v: Value) -> DsResult<Value> {
        self.ensure_writable()?;
        let old = match self.binding_index_at(sheet, addr) {
            Some(bi) => self.bound_set_value(bi, sheet, addr, v)?,
            None => self.sheets[sheet.0].set_value(addr, v)?,
        };
        self.flush_grid();
        Ok(old)
    }

    /// Fill a rectangular region with literal values and recompute.
    pub fn set_region(
        &mut self,
        sheet: SheetId,
        at: CellAddr,
        rows: &[Vec<Value>],
    ) -> DsResult<()> {
        self.ensure_writable()?;
        // Fast path when no cell of the target rectangle is bound; else
        // route cell by cell so bound cells become table DML.
        let width = rows.iter().map(Vec::len).max().unwrap_or(0) as u32;
        let height = rows.len() as u32;
        let routed = width > 0
            && height > 0
            && Range::from_bounds(at.row, at.col, at.row + height - 1, at.col + width - 1)
                .iter_cells()
                .any(|a| self.binding_index_at(sheet, a).is_some());
        if routed {
            // Bound cells become table DML one by one; the unbound
            // remainder still batches into a single WAL transaction.
            let mut plain: Vec<(CellAddr, Value)> = Vec::new();
            for (dr, row) in rows.iter().enumerate() {
                for (dc, v) in row.iter().enumerate() {
                    let addr = CellAddr::new(at.row + dr as u32, at.col + dc as u32);
                    match self.binding_index_at(sheet, addr) {
                        Some(bi) => {
                            self.bound_set_value(bi, sheet, addr, v.clone())?;
                        }
                        None => plain.push((addr, v.clone())),
                    }
                }
            }
            self.sheets[sheet.0].set_cells(&plain)?;
        } else {
            self.sheets[sheet.0].set_region(at, rows)?;
        }
        self.flush_grid();
        Ok(())
    }

    /// The value a cell displays, with any pending recomputation folded in.
    pub fn cell(&mut self, sheet: SheetId, addr: CellAddr) -> Value {
        self.flush_grid();
        self.sheets[sheet.0].value(addr)
    }

    /// The formula source at a cell, if it holds one. Pending structural
    /// rewrites are folded in first, so the source shown always matches the
    /// formula that evaluates.
    pub fn formula_text(&mut self, sheet: SheetId, addr: CellAddr) -> Option<&str> {
        self.flush_grid();
        self.sheets[sheet.0].formula_text(addr)
    }

    /// Insert blank rows: cells and formulas shift, references on every
    /// sheet are rewritten, affected formulas recompute.
    pub fn insert_rows(&mut self, sheet: SheetId, at: u32, count: u32) -> DsResult<()> {
        self.ensure_writable()?;
        // Insertions inside a bound region become positional inserts of
        // empty tuples on the backing table; validate the schema accepts
        // them before the grid moves.
        self.validate_insert_rows(sheet.0, at)?;
        self.sheets[sheet.0].insert_rows(at, count)?;
        self.bindings_after_insert_rows(sheet.0, at, count)?;
        self.flush_grid();
        Ok(())
    }

    /// Delete rows: references into the span become `#REF!`, ranges shrink,
    /// affected formulas recompute.
    pub fn delete_rows(&mut self, sheet: SheetId, at: u32, count: u32) -> DsResult<()> {
        self.ensure_writable()?;
        // Deletions overlapping a bound region delete the covered tuples
        // from the backing table; plan against pre-edit coordinates.
        let plan = self.plan_delete_rows(sheet.0, at, count);
        self.sheets[sheet.0].delete_rows(at, count)?;
        self.apply_delete_rows_plan(sheet.0, plan)?;
        self.flush_grid();
        Ok(())
    }

    /// Insert blank columns (see [`Workbook::insert_rows`]).
    pub fn insert_cols(&mut self, sheet: SheetId, at: u32, count: u32) -> DsResult<()> {
        self.ensure_writable()?;
        self.sheets[sheet.0].insert_cols(at, count)?;
        self.bindings_after_insert_cols(sheet.0, at, count)?;
        self.flush_grid();
        Ok(())
    }

    /// Delete columns (see [`Workbook::delete_rows`]).
    pub fn delete_cols(&mut self, sheet: SheetId, at: u32, count: u32) -> DsResult<()> {
        self.ensure_writable()?;
        let plan = self.plan_delete_cols(sheet.0, at, count);
        self.sheets[sheet.0].delete_cols(at, count)?;
        self.apply_delete_cols_plan(sheet.0, plan)?;
        self.flush_grid();
        Ok(())
    }

    /// Force a full recomputation of every formula in the workbook.
    pub fn recalculate(&mut self) {
        self.flush_grid();
        self.recompute_all();
    }

    /// Cumulative recomputation counters (how many formula evaluations the
    /// incremental engine actually ran). A registry-backed view: the same
    /// numbers exported as `calc_passes` / `calc_cells_recomputed`.
    pub fn calc_stats(&self) -> CalcStats {
        CalcStats {
            cells_recomputed: self.obs.calc_cells_recomputed.get(),
            passes: self.obs.calc_passes.get(),
        }
    }

    // ---- relational side -------------------------------------------------

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Buffer-pool capacity (page frames) given to tables created from now
    /// on. Persisted in the snapshot header by [`Workbook::save`] and
    /// restored by [`Workbook::open`], so a reopened workbook keeps the
    /// memory budget it was tuned with.
    pub fn set_default_pool_capacity(&mut self, pages: usize) {
        self.catalog.set_default_pool_capacity(pages);
    }

    /// The configured per-table buffer-pool capacity.
    pub fn default_pool_capacity(&self) -> usize {
        self.catalog.default_pool_capacity()
    }

    /// The executor strategy switches queries run under.
    pub fn exec_options(&self) -> ExecOptions {
        self.exec_options
    }

    /// Switch executor strategies (hash join / hash aggregation / predicate
    /// pushdown) — used by benches and the equivalence property suites to
    /// compare arms over identical data.
    pub fn set_exec_options(&mut self, options: ExecOptions) {
        self.exec_options = options;
    }

    // ---- SQL ------------------------------------------------------------

    /// Parse and execute one SQL statement against the workbook: tables come
    /// from the catalog, `RANGEVALUE`/`RANGETABLE` read the live sheets.
    ///
    /// With a durable store attached ([`Workbook::save`]), each DML
    /// statement runs as one WAL transaction — durable when `execute`
    /// returns `Ok`. Successful `CREATE TABLE`/`DROP TABLE` append DDL
    /// redo records to the WAL; `ALTER TABLE` triggers a checkpoint
    /// (schema changes of existing tables are snapshot-persisted).
    ///
    /// After each DML/DDL statement the binding layer re-syncs: regions
    /// bound to a changed table re-render and their dependent formulas
    /// recompute (see [`Workbook::bind_table`]).
    pub fn execute(&mut self, sql: &str) -> DsResult<QueryResult> {
        let stmt = parse_statement(sql)?;
        self.execute_stmt(stmt)
    }

    /// Execute a `;`-separated script, returning the result of each statement.
    pub fn execute_script(&mut self, sql: &str) -> DsResult<Vec<QueryResult>> {
        let stmts = parse_statements(sql)?;
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in stmts {
            out.push(self.execute_stmt(stmt)?);
        }
        Ok(out)
    }

    fn execute_stmt(&mut self, stmt: Statement) -> DsResult<QueryResult> {
        let _span = self.obs.tracer.span("sql_execute");
        // Fold pending grid edits first: RANGEVALUE/RANGETABLE must see
        // computed formula results, not stale caches.
        self.flush_grid();
        let is_dml = matches!(
            stmt,
            Statement::Insert { .. } | Statement::Update { .. } | Statement::Delete { .. }
        );
        let is_ddl = matches!(
            stmt,
            Statement::CreateTable { .. }
                | Statement::DropTable { .. }
                | Statement::AlterTable { .. }
        );
        if is_dml || is_ddl {
            self.ensure_writable()?;
        }
        // Capture what the post-statement hooks need before the statement is
        // consumed: CREATE/DROP TABLE ride the WAL (no checkpoint) when they
        // actually create/drop, and column DDL adjusts binding metadata.
        let ddl_info = self.capture_ddl_info(&stmt);
        // One WAL transaction per DML statement: the attached tables append
        // redo records as they mutate; commit (fsync) seals the statement.
        let in_txn = if is_dml {
            match &self.store {
                Some(store) => {
                    store.wal.begin()?;
                    true
                }
                None => false,
            }
        } else {
            false
        };
        let ctx = SheetCtx {
            sheets: &self.sheets,
            by_name: &self.by_name,
            current: self.current,
        };
        let result = engine::execute(
            &mut self.catalog,
            &ctx,
            stmt,
            self.exec_options,
            &self.obs.exec,
        );
        if in_txn {
            let store = self.store.as_ref().expect("store present when in_txn");
            match &result {
                Ok(_) => store.wal.commit()?,
                // The engine applies DML row by row with no undo, so a
                // failed statement may have partially mutated the catalog —
                // and every applied row was already logged. Commit those
                // records too: recovery must rebuild exactly the state live
                // queries see, not an alternate history (statement
                // atomicity is future work). Best-effort: the statement
                // error outranks a commit I/O error.
                Err(_) => {
                    let _ = store.wal.commit();
                }
            }
        }
        if result.is_ok() {
            self.after_statement(&ddl_info)?;
            if is_dml || is_ddl {
                // Table-side changes flow back into bound regions, and the
                // formulas watching them recompute.
                self.sync_bindings()?;
                self.flush_grid();
            }
            if matches!(ddl_info, DdlInfo::Alter { .. }) && self.store.is_some() {
                // ALTER TABLE is still checkpoint-persisted (schema changes
                // of existing tables are snapshot state, not logged — except
                // the CREATE-carried schema).
                self.checkpoint()?;
            }
        }
        result
    }

    /// Pre-execution snapshot of the DDL facts the post-statement hooks
    /// need (whether a CREATE/DROP will actually happen, which column an
    /// ALTER touches).
    fn capture_ddl_info(&self, stmt: &Statement) -> DdlInfo {
        match stmt {
            Statement::CreateTable { name, .. } => DdlInfo::Create {
                table: name.clone(),
                existed: self.catalog.contains(name),
            },
            Statement::DropTable { name, .. } => DdlInfo::Drop {
                table: name.clone(),
                existed: self.catalog.contains(name),
            },
            Statement::AlterTable { name, action } => DdlInfo::Alter {
                table: name.clone(),
                dropped_col: match action {
                    dataspread_sql::ast::AlterAction::DropColumn(c) => self
                        .catalog
                        .get(name)
                        .ok()
                        .and_then(|t| t.schema().index_of(c))
                        .map(|i| i as u32),
                    _ => None,
                },
                added_col: matches!(action, dataspread_sql::ast::AlterAction::AddColumn { .. }),
            },
            _ => DdlInfo::None,
        }
    }

    /// Post-statement hooks: WAL-log successful CREATE/DROP TABLE (the DDL
    /// redo records that replace the old forced checkpoint), attach fresh
    /// tables to the durable store, and adjust binding column metadata for
    /// ALTER TABLE.
    fn after_statement(&mut self, info: &DdlInfo) -> DsResult<()> {
        match info {
            DdlInfo::Create { table, existed } => {
                if !existed {
                    if let Some(store) = self.store.clone() {
                        let (schema, pool_pages) = {
                            let t = self.catalog.get(table)?;
                            (t.schema().clone(), t.pool().capacity() as u64)
                        };
                        store
                            .wal
                            .log(dataspread_relstore::wal::WalOp::CreateTable {
                                table: table.clone(),
                                schema,
                                pool_pages,
                            })?;
                        // The new table logs its DML through the same WAL.
                        store.attach_all(&self.catalog);
                    }
                }
            }
            DdlInfo::Drop { table, existed } => {
                if *existed {
                    if let Some(store) = &self.store {
                        store.wal.log(dataspread_relstore::wal::WalOp::DropTable {
                            table: table.clone(),
                        })?;
                    }
                    // Bindings on the dropped table are detached (values
                    // frozen) by the sync_bindings pass that follows.
                }
            }
            DdlInfo::Alter {
                table,
                dropped_col,
                added_col,
            } => {
                if let Some(idx) = dropped_col {
                    let emptied = self.bindings.on_column_dropped(table, *idx);
                    for id in emptied {
                        self.detach_binding_clear(id)?;
                    }
                }
                if *added_col {
                    if let Ok(t) = self.catalog.get(table) {
                        let idx = (t.schema().width() - 1) as u32;
                        self.bindings.on_column_added(table, idx, None);
                    }
                }
            }
            DdlInfo::None => {}
        }
        Ok(())
    }

    // ---- observability ---------------------------------------------------

    /// One coherent pass over every engine metric: the workbook registry
    /// (executor, calc, binding, VFS, span counters) plus the per-component
    /// counters aggregated at scrape time — the attached WAL writer's
    /// append/commit/fsync/poison tallies and the per-table buffer pools
    /// summed across the catalog.
    pub fn metrics_snapshot(&self) -> dataspread_obs::Snapshot {
        let mut snap = self.obs.registry.snapshot();
        let wal = self
            .store
            .as_ref()
            .map(|s| s.wal.counters())
            .unwrap_or_default();
        snap.push_counter("wal_appends", wal.appends.get());
        snap.push_counter("wal_commits", wal.commits.get());
        snap.push_counter("wal_fsyncs", wal.fsyncs.get());
        snap.push_counter("wal_poison_flips", wal.poison_flips.get());
        let mut pools = dataspread_relstore::PoolSnapshot::default();
        for name in self.catalog.table_names() {
            if let Ok(t) = self.catalog.get(&name) {
                let s = t.pool().stats().snapshot();
                pools.hits += s.hits;
                pools.misses += s.misses;
                pools.evictions += s.evictions;
                pools.dirty_writebacks += s.dirty_writebacks;
                pools.write_back_errors += s.write_back_errors;
            }
        }
        snap.push_counter("pool_hits", pools.hits);
        snap.push_counter("pool_misses", pools.misses);
        snap.push_counter("pool_evictions", pools.evictions);
        snap.push_counter("pool_writeback_pages", pools.dirty_writebacks);
        snap.push_counter(
            "pool_writeback_bytes",
            pools.dirty_writebacks * dataspread_relstore::PAGE_SIZE as u64,
        );
        snap.push_counter("pool_writeback_errors", pools.write_back_errors);
        snap.sort();
        snap
    }

    /// Every engine metric in Prometheus text exposition format — what a
    /// future server crate serves from its scrape endpoint.
    pub fn metrics_text(&self) -> String {
        self.metrics_snapshot().prometheus_text()
    }

    /// Every engine metric as one JSON object keyed by metric name.
    pub fn metrics_json(&self) -> String {
        self.metrics_snapshot().json()
    }

    /// The workbook's span tracer (enter/exit scopes, slow-op log).
    pub fn tracer(&self) -> &dataspread_obs::Tracer {
        &self.obs.tracer
    }

    /// Execute and demand a row set (convenience for queries).
    pub fn query(&mut self, sql: &str) -> DsResult<(Vec<String>, Vec<Vec<Value>>)> {
        match self.execute(sql)? {
            QueryResult::Rows { columns, rows } => Ok((columns, rows)),
            other => Err(DsError::Sql(format!(
                "statement returned {other:?}, not rows"
            ))),
        }
    }

    // ---- positional references ------------------------------------------

    /// The scalar at an A1 reference (`B2` or `Data!B2`) — the engine-side
    /// implementation of `RANGEVALUE`. Pending recomputation is folded in
    /// first, so formula cells read their computed value.
    pub fn range_value(&mut self, a1: &str) -> DsResult<Value> {
        self.flush_grid();
        let ctx = SheetCtx {
            sheets: &self.sheets,
            by_name: &self.by_name,
            current: self.current,
        };
        ctx.range_value(a1)
    }

    /// A region as a relation (`A1:C10` or `Data!A1:C10`) — the engine-side
    /// implementation of `RANGETABLE`. Header row is used for column names
    /// when every cell of the first row is non-blank text; otherwise columns
    /// are named by their sheet letters.
    pub fn range_table(&mut self, a1: &str) -> DsResult<(Vec<String>, Vec<Vec<Value>>)> {
        self.flush_grid();
        let ctx = SheetCtx {
            sheets: &self.sheets,
            by_name: &self.by_name,
            current: self.current,
        };
        ctx.range_table(a1)
    }

    // ---- import / export -------------------------------------------------

    /// Import a sheet region into a new catalog table (paper §2.2,
    /// "exporting spreadsheet data to the database"): column names from the
    /// header row (or sheet letters), column types inferred from the data,
    /// error cells sanitized to NULL. Display order of the imported rows is
    /// the region's row order, maintained by the table's positional index.
    pub fn import_region(
        &mut self,
        sheet: SheetId,
        range: Range,
        table: &str,
        headers: bool,
    ) -> DsResult<usize> {
        self.ensure_writable()?;
        // Imported cells must be computed values, not stale formula caches.
        self.flush_grid();
        let matrix = self.sheets[sheet.0].region(range);
        let (names, data) = if headers {
            if matrix.is_empty() {
                return Err(DsError::Interface(
                    "header import of an empty region".into(),
                ));
            }
            let names = header_names(&matrix[0], range.start.col)?;
            (names, &matrix[1..])
        } else {
            let names: Vec<String> = (0..range.width())
                .map(|c| col_to_letters(range.start.col + c).to_ascii_lowercase())
                .collect();
            (names, &matrix[..])
        };
        // Infer each column's type from the data actually present.
        let mut cols = Vec::with_capacity(names.len());
        for (i, name) in names.iter().enumerate() {
            let dtype = DataType::infer_column(data.iter().map(|r| &r[i]));
            cols.push(ColumnDef::new(name.clone(), dtype));
        }
        let schema = Schema::new(cols)?;
        self.catalog.create_table(table, schema)?;
        let mut t = self.catalog.get_mut(table)?;
        let mut n = 0;
        for row in data {
            let clean: Vec<Value> = row
                .iter()
                .map(|v| {
                    if v.is_error() {
                        Value::Empty
                    } else {
                        v.clone()
                    }
                })
                .collect();
            t.insert(clean)?;
            n += 1;
        }
        drop(t);
        // A new table is DDL: with a store attached, persist it (and its
        // imported rows) via checkpoint, like CREATE TABLE through SQL.
        if self.store.is_some() {
            self.checkpoint()?;
        }
        Ok(n)
    }

    /// Write a table's contents (optionally with a header row) into a sheet
    /// region starting at `at` — the display direction of the two-way sync.
    pub fn export_table(
        &mut self,
        table: &str,
        sheet: SheetId,
        at: CellAddr,
        headers: bool,
    ) -> DsResult<Range> {
        self.ensure_writable()?;
        let t = self.catalog.get(table)?;
        let width = t.schema().width() as u32;
        let mut rows: Vec<Vec<Value>> = Vec::with_capacity(t.row_count() + 1);
        if headers {
            rows.push(
                t.schema()
                    .columns()
                    .iter()
                    .map(|c| Value::text(c.name.clone()))
                    .collect(),
            );
        }
        for (_, row) in t.scan()? {
            rows.push(row);
        }
        drop(t);
        let height = rows.len().max(1) as u32;
        self.sheets[sheet.0].set_region(at, &rows)?;
        // Formulas watching the exported region recompute now.
        self.flush_grid();
        Ok(Range::from_bounds(
            at.row,
            at.col,
            at.row + height - 1,
            at.col + width.max(1) - 1,
        ))
    }

    // ---- positional DML (the paper's signature operations) ----------------

    /// Insert a tuple so it is *displayed* at position `pos` — O(log n) via
    /// the table's counted B-tree, vs. the O(n) renumbering a stock rownum
    /// column forces.
    pub fn insert_tuple_at(
        &mut self,
        table: &str,
        pos: usize,
        row: Vec<Value>,
    ) -> DsResult<RowKey> {
        self.ensure_writable()?;
        let key = self.catalog.get_mut(table)?.insert_at(pos, row)?;
        // Bound regions displaying this table grow by one row.
        self.sync_bindings()?;
        self.flush_grid();
        Ok(key)
    }

    /// Fetch the window of rows displayed at `[pos, pos + count)` — the query
    /// the front-end issues as the user scrolls.
    pub fn fetch_window(
        &mut self,
        table: &str,
        pos: usize,
        count: usize,
    ) -> DsResult<Vec<(RowKey, Vec<Value>)>> {
        self.catalog.get(table)?.scan_window(pos, count)
    }
}

/// What the post-statement hooks need to know about a DDL statement,
/// captured before execution consumes it.
enum DdlInfo {
    Create {
        table: String,
        existed: bool,
    },
    Drop {
        table: String,
        existed: bool,
    },
    Alter {
        table: String,
        /// Schema index of a `DROP COLUMN` target (resolved pre-execution).
        dropped_col: Option<u32>,
        /// Whether the action is `ADD COLUMN`.
        added_col: bool,
    },
    None,
}

/// The header rule: a region's first row names its columns when every cell
/// of it is non-blank text.
fn is_header(first: &[Value]) -> bool {
    !first.is_empty()
        && first
            .iter()
            .all(|v| matches!(v, Value::Text(s) if !s.trim().is_empty()))
}

/// Sanitize a header row into distinct, non-empty column names.
fn header_names(row: &[Value], first_col: u32) -> DsResult<Vec<String>> {
    let mut names: Vec<String> = Vec::with_capacity(row.len());
    for (i, v) in row.iter().enumerate() {
        let base = match v {
            Value::Text(s) if !s.trim().is_empty() => s.trim().to_string(),
            _ => col_to_letters(first_col + i as u32).to_ascii_lowercase(),
        };
        let mut name = base.clone();
        let mut suffix = 2;
        while names.iter().any(|n| n.eq_ignore_ascii_case(&name)) {
            name = format!("{base}_{suffix}");
            suffix += 1;
        }
        names.push(name);
    }
    Ok(names)
}

/// Borrowed view of the workbook's sheets implementing the SQL layer's
/// [`SheetResolver`] — how `RANGEVALUE`/`RANGETABLE` reach the live grid
/// while the executor holds the catalog mutably.
pub(crate) struct SheetCtx<'a> {
    sheets: &'a [Sheet],
    by_name: &'a HashMap<String, usize>,
    current: usize,
}

impl Workbook {
    /// A borrowed resolver over this workbook's sheets (read-only side of
    /// the query path; see [`crate::concurrent::ReadSession`]).
    pub(crate) fn sheet_ctx(&self) -> SheetCtx<'_> {
        SheetCtx {
            sheets: &self.sheets,
            by_name: &self.by_name,
            current: self.current,
        }
    }
}

impl<'a> SheetCtx<'a> {
    /// Split `Sheet2!B3` into (sheet, rest); bare references use the current
    /// sheet.
    fn locate<'s>(&self, a1: &'s str) -> DsResult<(&'a Sheet, &'s str)> {
        match a1.split_once('!') {
            Some((sheet, rest)) => {
                let idx = self
                    .by_name
                    .get(&sheet.trim().to_ascii_lowercase())
                    .ok_or_else(|| DsError::Interface(format!("no sheet named `{sheet}`")))?;
                Ok((&self.sheets[*idx], rest))
            }
            None => Ok((&self.sheets[self.current], a1)),
        }
    }
}

impl SheetCtx<'_> {
    /// Locate and parse a `RANGETABLE` reference.
    fn locate_range(&self, a1: &str) -> DsResult<(&Sheet, Range)> {
        let (sheet, rest) = self.locate(a1)?;
        let range = Sheet::parse_range(rest.trim())
            .map_err(|_| DsError::Sql(format!("invalid RANGETABLE reference `{a1}`")))?;
        Ok((sheet, range))
    }

    /// Header decision + first row: the region names come from the header
    /// row when every cell of it is non-blank text. Reads only the first
    /// row of the region.
    fn header_row(&self, sheet: &Sheet, range: Range) -> (bool, Vec<Value>) {
        let top = Range::from_bounds(
            range.start.row,
            range.start.col,
            range.start.row,
            range.end.col,
        );
        let mut first = sheet.region(top);
        let first = first.remove(0);
        let use_header = is_header(&first);
        (use_header, first)
    }

    /// Column names for a region given the header decision.
    fn region_names(
        &self,
        range: Range,
        use_header: bool,
        first: &[Value],
    ) -> DsResult<Vec<String>> {
        if use_header {
            header_names(first, range.start.col)
        } else {
            Ok((0..range.width())
                .map(|c| col_to_letters(range.start.col + c).to_ascii_lowercase())
                .collect())
        }
    }
}

impl SheetResolver for SheetCtx<'_> {
    fn range_value(&self, a1: &str) -> DsResult<Value> {
        let (sheet, rest) = self.locate(a1)?;
        let addr = CellAddr::parse_a1(rest.trim())
            .map_err(|_| DsError::Sql(format!("invalid RANGEVALUE reference `{a1}`")))?;
        let v = sheet.value(addr);
        if let Some(e) = v.as_error() {
            // A query must not silently compute on an error cell.
            return Err(DsError::CellValue(e));
        }
        Ok(v)
    }

    /// Reads only the header row — planning a `RANGETABLE` scan must not
    /// materialize the region.
    fn range_table_names(&self, a1: &str) -> DsResult<Vec<String>> {
        let (sheet, range) = self.locate_range(a1)?;
        let (use_header, first) = self.header_row(sheet, range);
        self.region_names(range, use_header, &first)
    }

    /// Column-bounded region read: only the rectangle spanning the used
    /// columns is handed to the cell store's range scan, so narrow queries
    /// over wide regions touch fewer grid blocks. Unused slots stay
    /// `Value::Empty`; row count and width match the full read.
    fn range_table_pruned(&self, a1: &str, used: &[usize]) -> DsResult<Vec<Vec<Value>>> {
        let (sheet, range) = self.locate_range(a1)?;
        let (use_header, _) = self.header_row(sheet, range);
        let data_start = range.start.row + use_header as u32;
        if data_start > range.end.row {
            return Ok(Vec::new());
        }
        let width = range.width() as usize;
        let height = (range.end.row - data_start + 1) as usize;
        let mut rows = vec![vec![Value::Empty; width]; height];
        if let (Some(&lo), Some(&hi)) = (used.iter().min(), used.iter().max()) {
            let scan = Range::from_bounds(
                data_start,
                range.start.col + lo as u32,
                range.end.row,
                (range.start.col + hi as u32).min(range.end.col),
            );
            sheet.store().for_each_in_range(scan, &mut |a, v| {
                rows[(a.row - data_start) as usize][(a.col - range.start.col) as usize] = v.clone();
            });
        }
        Ok(rows)
    }

    fn range_table(&self, a1: &str) -> DsResult<(Vec<String>, Vec<Vec<Value>>)> {
        let (sheet, range) = self.locate_range(a1)?;
        let matrix = sheet.region(range);
        let use_header = is_header(&matrix[0]);
        let names = self.region_names(range, use_header, &matrix[0])?;
        let data = if use_header {
            &matrix[1..]
        } else {
            &matrix[..]
        };
        Ok((names, data.to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> CellAddr {
        CellAddr::parse_a1(s).unwrap()
    }

    #[test]
    fn sheets_are_named_case_insensitively() {
        let mut wb = Workbook::new();
        let id = wb.add_sheet("Data").unwrap();
        assert_eq!(wb.sheet_id("data").unwrap(), id);
        assert!(wb.add_sheet("DATA").is_err());
        assert!(wb.sheet_id("nope").is_err());
    }

    #[test]
    fn range_value_reads_live_cells() {
        let mut wb = Workbook::new();
        let s1 = wb.current_sheet();
        wb.sheet_mut(s1).set_input(a("B2"), "42").unwrap();
        assert_eq!(wb.range_value("B2").unwrap(), Value::Int(42));
        assert_eq!(wb.range_value("Sheet1!B2").unwrap(), Value::Int(42));
        assert_eq!(wb.range_value("Z99").unwrap(), Value::Empty);
        assert!(wb.range_value("Nope!A1").is_err());
        assert!(wb.range_value("not-a-ref").is_err());
    }

    #[test]
    fn range_value_refuses_error_cells() {
        let mut wb = Workbook::new();
        let s1 = wb.current_sheet();
        wb.sheet_mut(s1).set_input(a("A1"), "#REF!").unwrap();
        assert!(wb.range_value("A1").is_err());
    }

    #[test]
    fn range_table_header_inference() {
        let mut wb = Workbook::new();
        let s1 = wb.current_sheet();
        wb.sheet_mut(s1)
            .set_region(
                a("A1"),
                &[
                    vec![Value::text("id"), Value::text("name")],
                    vec![Value::Int(1), Value::text("ada")],
                ],
            )
            .unwrap();
        let (cols, rows) = wb.range_table("A1:B2").unwrap();
        assert_eq!(cols, vec!["id", "name"]);
        assert_eq!(rows, vec![vec![Value::Int(1), Value::text("ada")]]);
        // No header: letters.
        let (cols, rows) = wb.range_table("A2:B2").unwrap();
        assert_eq!(cols, vec!["a", "b"]);
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn import_infers_schema_and_order() {
        let mut wb = Workbook::new();
        let s1 = wb.current_sheet();
        wb.sheet_mut(s1)
            .set_region(
                a("A1"),
                &[
                    vec![Value::text("id"), Value::text("score")],
                    vec![Value::Int(1), Value::Float(3.5)],
                    vec![Value::Int(2), Value::Int(4)],
                ],
            )
            .unwrap();
        let n = wb
            .import_region(s1, Range::parse_a1("A1:B3").unwrap(), "scores", true)
            .unwrap();
        assert_eq!(n, 2);
        let t = wb.catalog().get("scores").unwrap();
        assert_eq!(t.schema().column(0).dtype, DataType::Int);
        assert_eq!(
            t.schema().column(1).dtype,
            DataType::Float,
            "Int ∨ Float = Float"
        );
        let rows = t.scan().unwrap();
        assert_eq!(rows[0].1[0], Value::Int(1));
        assert_eq!(rows[1].1[1], Value::Float(4.0));
    }

    #[test]
    fn export_writes_grid() {
        let mut wb = Workbook::new();
        let s1 = wb.current_sheet();
        wb.sheet_mut(s1)
            .set_region(
                a("A1"),
                &[
                    vec![Value::text("x")],
                    vec![Value::Int(7)],
                    vec![Value::Int(8)],
                ],
            )
            .unwrap();
        wb.import_region(s1, Range::parse_a1("A1:A3").unwrap(), "t", true)
            .unwrap();
        let out = wb.add_sheet("Out").unwrap();
        let covered = wb.export_table("t", out, a("C1"), true).unwrap();
        assert_eq!(covered, Range::parse_a1("C1:C3").unwrap());
        assert_eq!(wb.sheet(out).value(a("C1")), Value::text("x"));
        assert_eq!(wb.sheet(out).value(a("C2")), Value::Int(7));
        assert_eq!(wb.sheet(out).value(a("C3")), Value::Int(8));
    }

    #[test]
    fn header_names_dedup_and_fallback() {
        let names = header_names(&[Value::text("x"), Value::text("X"), Value::Empty], 0).unwrap();
        assert_eq!(
            names,
            vec!["x", "X_2", "c"],
            "case preserved, dedup case-insensitive"
        );
    }
}
