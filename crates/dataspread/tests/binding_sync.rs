//! The hybrid data-model binding layer (paper §2.1 TOM/ROM/COM): unit
//! coverage for two-way sync plus the convergence property suites.
//!
//! Convergence invariant (the acceptance bar): after ANY interleaving of
//! bound-cell edits, SQL DML, and structural grid edits, the bound region
//! rendered from the grid equals `SELECT`-ing the backing table in
//! positional order, and formulas over the region match a full
//! recalculation. Bindings round-trip through `save`/`open`, including
//! crash-injection WAL replay.

use dataspread::{BindModel, Workbook};
use dataspread_testkit as testkit;
use dataspread_types::{CellAddr, CellError, Range, Value};

fn a(s: &str) -> CellAddr {
    CellAddr::parse_a1(s).unwrap()
}

/// A workbook with table `t(a INT, b TEXT)` holding three rows.
fn setup() -> Workbook {
    let mut wb = Workbook::new();
    wb.execute_script(
        "CREATE TABLE t (a INT, b TEXT);
         INSERT INTO t VALUES (1, 'one'), (2, 'two'), (3, 'three');",
    )
    .unwrap();
    wb
}

/// Assert the bound region's grid cells equal the backing table scanned in
/// positional order (projected through the binding's display columns).
fn assert_converged(wb: &mut Workbook, id: u64) {
    let Some(meta) = wb.binding_meta(id) else {
        return; // binding detached: nothing to compare
    };
    let sheet = wb.sheet_id(&meta.sheet).unwrap();
    let rows: Vec<Vec<Value>> = wb
        .catalog()
        .get(&meta.table)
        .unwrap()
        .scan()
        .unwrap()
        .into_iter()
        .map(|(_, r)| r)
        .collect();
    let names: Vec<String> = {
        let schema = wb.catalog().get(&meta.table).unwrap().schema().clone();
        meta.cols
            .iter()
            .map(|&c| schema.column(c as usize).name.clone())
            .collect()
    };
    let header = meta.model == BindModel::Tom;
    if header {
        for (slot, name) in names.iter().enumerate() {
            assert_eq!(
                wb.cell(sheet, CellAddr::new(meta.row, meta.col + slot as u32)),
                Value::text(name.clone()),
                "header cell {slot} diverged"
            );
        }
    }
    let data_start = meta.row + header as u32;
    for (pos, row) in rows.iter().enumerate() {
        for (slot, &ci) in meta.cols.iter().enumerate() {
            let addr = CellAddr::new(data_start + pos as u32, meta.col + slot as u32);
            assert_eq!(
                wb.cell(sheet, addr),
                row[ci as usize],
                "cell at table pos {pos} display slot {slot} diverged"
            );
        }
    }
}

// ---- rendering & cell-level sync ----------------------------------------

#[test]
fn tom_renders_header_and_rows() {
    let mut wb = setup();
    let s = wb.current_sheet();
    let id = wb.bind_table(s, a("B2"), "t", BindModel::Tom).unwrap();
    assert_eq!(wb.binding_rect(id), Some(Range::parse_a1("B2:C5").unwrap()));
    assert_eq!(wb.cell(s, a("B2")), Value::text("a"));
    assert_eq!(wb.cell(s, a("C2")), Value::text("b"));
    assert_eq!(wb.cell(s, a("B3")), Value::Int(1));
    assert_eq!(wb.cell(s, a("C5")), Value::text("three"));
    assert_converged(&mut wb, id);
}

#[test]
fn rom_renders_bare_rows_and_grows_from_empty() {
    let mut wb = Workbook::new();
    wb.execute("CREATE TABLE e (x INT)").unwrap();
    let s = wb.current_sheet();
    let id = wb.bind_table(s, a("A1"), "e", BindModel::Rom).unwrap();
    assert_eq!(wb.binding_rect(id), None, "empty headerless region");
    wb.execute("INSERT INTO e VALUES (10), (20)").unwrap();
    assert_eq!(wb.binding_rect(id), Some(Range::parse_a1("A1:A2").unwrap()));
    assert_eq!(wb.cell(s, a("A1")), Value::Int(10));
    assert_eq!(wb.cell(s, a("A2")), Value::Int(20));
    assert_converged(&mut wb, id);
}

#[test]
fn com_projects_selected_columns_in_order() {
    let mut wb = setup();
    let s = wb.current_sheet();
    let id = wb.bind_table_cols(s, a("E1"), "t", &["b", "a"]).unwrap();
    assert_eq!(wb.cell(s, a("E1")), Value::text("one"), "b first");
    assert_eq!(wb.cell(s, a("F1")), Value::Int(1), "a second");
    assert_converged(&mut wb, id);
    // Unknown / duplicate columns are rejected.
    assert!(wb.bind_table_cols(s, a("H1"), "t", &["nope"]).is_err());
    assert!(wb.bind_table_cols(s, a("H1"), "t", &["a", "a"]).is_err());
    // bind_table refuses the COM model (it has no column list).
    assert!(wb.bind_table(s, a("H1"), "t", BindModel::Com).is_err());
}

#[test]
fn bound_cell_edit_is_table_dml() {
    let mut wb = setup();
    let s = wb.current_sheet();
    let id = wb.bind_table(s, a("A1"), "t", BindModel::Tom).unwrap();
    // Edit a data cell: the table row changes.
    let old = wb.set_value(s, a("B3"), Value::text("TWO")).unwrap();
    assert_eq!(old, Value::text("two"));
    let (_, rows) = wb.query("SELECT b FROM t WHERE a = 2").unwrap();
    assert_eq!(rows, vec![vec![Value::text("TWO")]]);
    // Typed input is schema-conformed: text "7" into the INT column stores
    // (and displays) the integer.
    wb.set_input(s, a("A2"), "7").unwrap();
    let (_, rows) = wb.query("SELECT COUNT(*) FROM t WHERE a = 7").unwrap();
    assert_eq!(rows, vec![vec![Value::Int(1)]]);
    assert_eq!(wb.cell(s, a("A2")), Value::Int(7));
    // A value the schema rejects leaves both sides untouched.
    assert!(wb.set_value(s, a("A2"), Value::text("xyz")).is_err());
    assert_eq!(wb.cell(s, a("A2")), Value::Int(7));
    assert_converged(&mut wb, id);
}

#[test]
fn formulas_are_rejected_inside_bindings() {
    let mut wb = setup();
    let s = wb.current_sheet();
    wb.bind_table(s, a("A1"), "t", BindModel::Tom).unwrap();
    assert!(wb.set_input(s, a("A2"), "=1+1").is_err());
    // Outside the region they are fine.
    assert_eq!(wb.set_input(s, a("E1"), "=1+1").unwrap(), Value::Int(2));
}

#[test]
fn header_edit_renames_column() {
    let mut wb = setup();
    let s = wb.current_sheet();
    let id = wb.bind_table(s, a("A1"), "t", BindModel::Tom).unwrap();
    wb.set_input(s, a("B1"), "label").unwrap();
    assert!(wb
        .catalog()
        .get("t")
        .unwrap()
        .schema()
        .index_of("label")
        .is_some());
    let (_, rows) = wb.query("SELECT label FROM t WHERE a = 1").unwrap();
    assert_eq!(rows, vec![vec![Value::text("one")]]);
    // Blank or non-text names are rejected; duplicates too.
    assert!(wb.set_value(s, a("B1"), Value::Int(9)).is_err());
    assert!(wb.set_input(s, a("B1"), "a").is_err(), "duplicate name");
    assert_converged(&mut wb, id);
}

// ---- table → sheet propagation ------------------------------------------

#[test]
fn sql_dml_rerenders_and_recomputes_formulas() {
    let mut wb = setup();
    let s = wb.current_sheet();
    let id = wb.bind_table(s, a("A1"), "t", BindModel::Tom).unwrap();
    wb.set_input(s, a("E1"), "=SUM(A2:A100)").unwrap();
    assert_eq!(wb.cell(s, a("E1")), Value::Int(6));
    // INSERT grows the region; the watching SUM recomputes.
    wb.execute("INSERT INTO t VALUES (40, 'forty')").unwrap();
    assert_eq!(wb.cell(s, a("A5")), Value::Int(40));
    assert_eq!(wb.cell(s, a("E1")), Value::Int(46));
    // UPDATE rewrites in place.
    wb.execute("UPDATE t SET a = 100 WHERE b = 'two'").unwrap();
    assert_eq!(wb.cell(s, a("E1")), Value::Int(144));
    // DELETE shrinks the region and clears the vacated row.
    wb.execute("DELETE FROM t WHERE a >= 40").unwrap();
    assert_eq!(wb.cell(s, a("E1")), Value::Int(4));
    assert_eq!(wb.cell(s, a("A5")), Value::Empty, "vacated cell cleared");
    assert_eq!(wb.cell(s, a("A4")), Value::Empty, "two rows died");
    assert_eq!(wb.cell(s, a("A3")), Value::Int(3));
    assert_converged(&mut wb, id);
}

#[test]
fn positional_insert_lands_at_its_display_row() {
    let mut wb = setup();
    let s = wb.current_sheet();
    let id = wb.bind_table(s, a("A1"), "t", BindModel::Tom).unwrap();
    wb.insert_tuple_at("t", 1, vec![Value::Int(15), Value::text("mid")])
        .unwrap();
    assert_eq!(wb.cell(s, a("A3")), Value::Int(15), "displayed at pos 1");
    assert_eq!(wb.cell(s, a("A4")), Value::Int(2), "old pos 1 shifted down");
    assert_converged(&mut wb, id);
}

#[test]
fn alter_table_reshapes_the_region() {
    let mut wb = setup();
    let s = wb.current_sheet();
    let id = wb.bind_table(s, a("A1"), "t", BindModel::Tom).unwrap();
    // ADD COLUMN: TOM bindings gain it at the right edge.
    wb.execute("ALTER TABLE t ADD COLUMN c REAL DEFAULT 0.5")
        .unwrap();
    assert_eq!(wb.cell(s, a("C1")), Value::text("c"));
    assert_eq!(wb.cell(s, a("C2")), Value::Float(0.5));
    // RENAME propagates into the header row.
    wb.execute("ALTER TABLE t RENAME COLUMN c TO score")
        .unwrap();
    assert_eq!(wb.cell(s, a("C1")), Value::text("score"));
    // DROP COLUMN narrows the region; vacated cells clear.
    wb.execute("ALTER TABLE t DROP COLUMN b").unwrap();
    assert_eq!(wb.cell(s, a("B1")), Value::text("score"), "shifted left");
    assert_eq!(wb.cell(s, a("C1")), Value::Empty, "vacated");
    assert_converged(&mut wb, id);
}

#[test]
fn drop_table_freezes_values_as_literals() {
    let mut wb = setup();
    let s = wb.current_sheet();
    let id = wb.bind_table(s, a("A1"), "t", BindModel::Tom).unwrap();
    wb.execute("DROP TABLE t").unwrap();
    assert!(wb.binding_meta(id).is_none(), "binding detached");
    // The last rendered values survive as plain cells.
    assert_eq!(wb.cell(s, a("A1")), Value::text("a"));
    assert_eq!(wb.cell(s, a("B4")), Value::text("three"));
    // And are ordinary cells now: formulas may use (and overwrite) them.
    assert_eq!(wb.set_input(s, a("A2"), "=A3+A4").unwrap(), Value::Int(5));
}

#[test]
fn unbind_keeps_values() {
    let mut wb = setup();
    let s = wb.current_sheet();
    let id = wb.bind_table(s, a("A1"), "t", BindModel::Tom).unwrap();
    wb.unbind(id).unwrap();
    assert!(wb.binding_meta(id).is_none());
    assert_eq!(wb.cell(s, a("B3")), Value::text("two"));
    // The table no longer hears edits to the former region.
    wb.set_value(s, a("A2"), Value::Int(99)).unwrap();
    let (_, rows) = wb.query("SELECT COUNT(*) FROM t WHERE a = 99").unwrap();
    assert_eq!(rows, vec![vec![Value::Int(0)]]);
    assert!(wb.unbind(id).is_err(), "already gone");
}

#[test]
fn overlapping_bindings_are_rejected() {
    let mut wb = setup();
    let s = wb.current_sheet();
    wb.bind_table(s, a("A1"), "t", BindModel::Tom).unwrap();
    assert!(wb.bind_table(s, a("B2"), "t", BindModel::Rom).is_err());
    // Same anchor on another sheet is fine.
    let s2 = wb.add_sheet("Other").unwrap();
    wb.bind_table(s2, a("A1"), "t", BindModel::Rom).unwrap();
}

// ---- structural edits over bindings -------------------------------------

#[test]
fn insert_rows_inside_region_inserts_empty_tuples() {
    let mut wb = setup();
    let s = wb.current_sheet();
    let id = wb.bind_table(s, a("A1"), "t", BindModel::Tom).unwrap();
    // Insert one grid row between table positions 0 and 1 (display row 2).
    wb.insert_rows(s, 2, 1).unwrap();
    assert_eq!(wb.catalog().get("t").unwrap().row_count(), 4);
    assert_eq!(wb.cell(s, a("A3")), Value::Empty, "new empty tuple");
    assert_eq!(wb.cell(s, a("A4")), Value::Int(2), "old row shifted");
    // The empty tuple is editable like any bound cell.
    wb.set_value(s, a("A3"), Value::Int(15)).unwrap();
    let (_, rows) = wb.query("SELECT b FROM t WHERE a = 15").unwrap();
    assert_eq!(rows, vec![vec![Value::Empty]]);
    assert_converged(&mut wb, id);
}

#[test]
fn insert_rows_at_or_above_anchor_shifts_the_binding() {
    let mut wb = setup();
    let s = wb.current_sheet();
    let id = wb.bind_table(s, a("A2"), "t", BindModel::Tom).unwrap();
    wb.set_input(s, a("A1"), "title").unwrap();
    wb.insert_rows(s, 0, 2).unwrap();
    let meta = wb.binding_meta(id).unwrap();
    assert_eq!(meta.row, 3, "anchor shifted down by 2");
    assert_eq!(wb.cell(s, a("A3")), Value::text("title"));
    assert_eq!(wb.cell(s, a("A4")), Value::text("a"), "header follows");
    assert_eq!(wb.catalog().get("t").unwrap().row_count(), 3, "no new rows");
    assert_converged(&mut wb, id);
}

#[test]
fn insert_rows_below_region_leaves_it_alone() {
    let mut wb = setup();
    let s = wb.current_sheet();
    let id = wb.bind_table(s, a("A1"), "t", BindModel::Tom).unwrap();
    wb.insert_rows(s, 4, 3).unwrap();
    assert_eq!(wb.catalog().get("t").unwrap().row_count(), 3);
    assert_eq!(wb.binding_meta(id).unwrap().row, 0);
    assert_converged(&mut wb, id);
}

#[test]
fn insert_rows_inside_respects_not_null() {
    let mut wb = Workbook::new();
    wb.execute_script(
        "CREATE TABLE p (id INT PRIMARY KEY, v INT);
         INSERT INTO p VALUES (1, 10), (2, 20);",
    )
    .unwrap();
    let s = wb.current_sheet();
    let id = wb.bind_table(s, a("A1"), "p", BindModel::Rom).unwrap();
    // An all-NULL tuple violates the NOT NULL pk: the structural edit is
    // refused before the grid moves.
    assert!(wb.insert_rows(s, 1, 1).is_err());
    assert_eq!(wb.cell(s, a("A2")), Value::Int(2), "grid untouched");
    assert_converged(&mut wb, id);
}

#[test]
fn delete_rows_overlapping_region_deletes_tuples() {
    let mut wb = setup();
    let s = wb.current_sheet();
    let id = wb.bind_table(s, a("A1"), "t", BindModel::Tom).unwrap();
    // Delete display rows 2-3 (table positions 1-2).
    wb.delete_rows(s, 2, 2).unwrap();
    assert_eq!(wb.catalog().get("t").unwrap().row_count(), 1);
    let (_, rows) = wb.query("SELECT a FROM t").unwrap();
    assert_eq!(rows, vec![vec![Value::Int(1)]]);
    assert_converged(&mut wb, id);
}

#[test]
fn delete_rows_straddling_top_and_bottom() {
    let mut wb = setup();
    let s = wb.current_sheet();
    // Headerless region at rows 3..6 (display).
    let id = wb.bind_table(s, a("A4"), "t", BindModel::Rom).unwrap();
    // Straddle the top: rows 2-3 (one above + first data row).
    wb.delete_rows(s, 2, 2).unwrap();
    let meta = wb.binding_meta(id).unwrap();
    assert_eq!(meta.row, 2, "anchor pulled up to the deletion point");
    assert_eq!(wb.catalog().get("t").unwrap().row_count(), 2);
    assert_eq!(wb.cell(s, a("A3")), Value::Int(2));
    // Straddle the bottom: last data row + one below.
    wb.delete_rows(s, 3, 2).unwrap();
    assert_eq!(wb.catalog().get("t").unwrap().row_count(), 1);
    assert_converged(&mut wb, id);
}

#[test]
fn delete_rows_covering_header_detaches_and_clears() {
    let mut wb = setup();
    let s = wb.current_sheet();
    let id = wb.bind_table(s, a("A2"), "t", BindModel::Tom).unwrap();
    // Delete rows 0-2: one above + the header + the first data row.
    wb.delete_rows(s, 0, 3).unwrap();
    assert!(wb.binding_meta(id).is_none(), "header loss detaches");
    // The overlapped data row died with the span; survivors stay in the
    // table but their mirror cells are cleared (the view is gone).
    assert_eq!(wb.catalog().get("t").unwrap().row_count(), 2);
    assert_eq!(wb.cell(s, a("A1")), Value::Empty);
    assert_eq!(wb.cell(s, a("A2")), Value::Empty);
}

#[test]
fn delete_rows_covering_whole_region() {
    let mut wb = setup();
    let s = wb.current_sheet();
    let id = wb.bind_table(s, a("A2"), "t", BindModel::Tom).unwrap();
    wb.delete_rows(s, 0, 10).unwrap();
    assert!(wb.binding_meta(id).is_none());
    assert_eq!(
        wb.catalog().get("t").unwrap().row_count(),
        0,
        "every covered tuple deleted"
    );
}

#[test]
fn insert_cols_inside_region_adds_table_column() {
    let mut wb = setup();
    let s = wb.current_sheet();
    let id = wb.bind_table(s, a("A1"), "t", BindModel::Tom).unwrap();
    wb.insert_cols(s, 1, 1).unwrap();
    let t = wb.catalog().get("t").unwrap();
    assert_eq!(t.schema().width(), 3, "grid column became a table column");
    drop(t);
    let meta = wb.binding_meta(id).unwrap();
    assert_eq!(meta.cols, vec![0, 2, 1], "spliced into display order");
    assert_eq!(wb.cell(s, a("A1")), Value::text("a"));
    assert_eq!(wb.cell(s, a("C1")), Value::text("b"), "b shifted right");
    // The new column is editable through the grid.
    wb.set_value(s, a("B2"), Value::Int(77)).unwrap();
    // The generated name dedups against the existing `b`.
    let (_, rows) = wb.query("SELECT b_2 FROM t LIMIT 1").unwrap();
    assert_eq!(rows, vec![vec![Value::Int(77)]]);
    assert_converged(&mut wb, id);
}

#[test]
fn insert_cols_left_shifts_delete_cols_narrows() {
    let mut wb = setup();
    let s = wb.current_sheet();
    let id = wb.bind_table(s, a("B1"), "t", BindModel::Tom).unwrap();
    wb.insert_cols(s, 0, 2).unwrap();
    assert_eq!(wb.binding_meta(id).unwrap().col, 3);
    assert_eq!(wb.cell(s, a("D1")), Value::text("a"));
    // Delete the display column of `a` (grid col 3): TOM drops the table
    // column.
    wb.delete_cols(s, 3, 1).unwrap();
    assert_eq!(wb.catalog().get("t").unwrap().schema().width(), 1);
    assert_eq!(wb.binding_meta(id).unwrap().col, 3);
    assert_eq!(wb.cell(s, a("D1")), Value::text("b"));
    assert_converged(&mut wb, id);
}

#[test]
fn delete_cols_on_com_narrows_projection_only() {
    let mut wb = setup();
    let s = wb.current_sheet();
    let id = wb.bind_table_cols(s, a("A1"), "t", &["a", "b"]).unwrap();
    wb.delete_cols(s, 0, 1).unwrap();
    assert_eq!(
        wb.catalog().get("t").unwrap().schema().width(),
        2,
        "COM is a projection: the table keeps the column"
    );
    let meta = wb.binding_meta(id).unwrap();
    assert_eq!(meta.cols, vec![1], "display narrowed to b");
    assert_eq!(meta.col, 0);
    assert_eq!(wb.cell(s, a("A1")), Value::text("one"));
    assert_converged(&mut wb, id);
}

#[test]
fn delete_cols_covering_region_detaches() {
    let mut wb = setup();
    let s = wb.current_sheet();
    let id = wb.bind_table(s, a("B1"), "t", BindModel::Tom).unwrap();
    wb.delete_cols(s, 0, 5).unwrap();
    assert!(wb.binding_meta(id).is_none());
    assert_eq!(
        wb.catalog().get("t").unwrap().schema().width(),
        2,
        "full-cover detach keeps the table intact"
    );
}

// ---- formulas over bindings ----------------------------------------------

#[test]
fn vlookup_into_bound_region() {
    let mut wb = setup();
    let s = wb.current_sheet();
    wb.bind_table(s, a("A1"), "t", BindModel::Tom).unwrap();
    wb.set_input(s, a("E1"), "=VLOOKUP(2,A2:B4,2,FALSE)")
        .unwrap();
    assert_eq!(wb.cell(s, a("E1")), Value::text("two"));
    // The lookup tracks table DML.
    wb.execute("UPDATE t SET b = 'zwei' WHERE a = 2").unwrap();
    assert_eq!(wb.cell(s, a("E1")), Value::text("zwei"));
    wb.execute("DELETE FROM t WHERE a = 2").unwrap();
    assert_eq!(wb.cell(s, a("E1")), Value::Error(CellError::Na));
    // CONCAT over the bound column.
    wb.set_input(s, a("E2"), "=CONCAT(B2:B4)").unwrap();
    assert_eq!(wb.cell(s, a("E2")), Value::text("onethree"));
}

// ---- convergence property suite ------------------------------------------

/// Random interleavings of bound-cell edits, SQL DML, positional DML, and
/// structural grid edits: the grid and the table must stay two views of one
/// store, and the incremental recompute must equal a full recalculation.
#[test]
fn convergence_under_random_interleavings() {
    testkit::cases(40, 0xB17D, |rng| {
        let mut wb = Workbook::new();
        wb.execute("CREATE TABLE t (a INT, b INT)").unwrap();
        let s = wb.current_sheet();
        let header = rng.bool();
        let model = if header {
            BindModel::Tom
        } else {
            BindModel::Rom
        };
        // Anchor low enough that structural edits above/below both happen.
        let id = wb.bind_table(s, a("B3"), "t", model).unwrap();
        // A formula watching the whole `a` display column.
        wb.set_input(s, a("F1"), "=SUM(B1:B60)").unwrap();
        let mut next = 0i64;
        for _ in 0..rng.index(25) + 5 {
            let nrows = wb.catalog().get("t").unwrap().row_count();
            match rng.below(8) {
                // SQL append.
                0 | 1 => {
                    next += 1;
                    wb.execute(&format!("INSERT INTO t VALUES ({next}, {})", next * 10))
                        .unwrap();
                }
                // SQL update / delete by predicate.
                2 => {
                    wb.execute(&format!(
                        "UPDATE t SET b = b + 1 WHERE a > {}",
                        rng.index(6)
                    ))
                    .unwrap();
                }
                3 => {
                    wb.execute(&format!("DELETE FROM t WHERE a = {}", rng.index(12) + 1))
                        .unwrap();
                }
                // Positional insert.
                4 => {
                    next += 1;
                    let pos = rng.index(nrows + 1);
                    wb.insert_tuple_at("t", pos, vec![Value::Int(next), Value::Int(next)])
                        .unwrap();
                }
                // Bound-cell edit (when the region has rows).
                5 => {
                    if nrows > 0 {
                        let meta = wb.binding_meta(id).unwrap();
                        let row = meta.row + header as u32 + rng.index(nrows) as u32;
                        let col = meta.col + rng.u32_in(0, 2);
                        next += 1;
                        wb.set_value(s, CellAddr::new(row, col), Value::Int(next))
                            .unwrap();
                    }
                }
                // Structural row edits: above, inside, below, straddling.
                6 => {
                    let at = rng.u32_in(0, 10);
                    wb.insert_rows(s, at, rng.u32_in(1, 3)).unwrap();
                }
                _ => {
                    let at = rng.u32_in(0, 10);
                    let count = rng.u32_in(1, 4);
                    wb.delete_rows(s, at, count).unwrap();
                }
            }
            if wb.binding_meta(id).is_none() {
                break; // a structural edit legitimately detached the binding
            }
            assert_converged(&mut wb, id);
            // Incremental recompute ≡ full recalculation.
            let before = wb.cell(s, a("F1"));
            wb.recalculate();
            assert_eq!(wb.cell(s, a("F1")), before, "incremental != full recalc");
        }
    });
}

// ---- persistence ---------------------------------------------------------

#[test]
fn bindings_round_trip_through_save_open() {
    let dir = std::env::temp_dir().join(format!("dsp-bind-roundtrip-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut wb = setup();
    let s = wb.current_sheet();
    let id = wb.bind_table(s, a("B2"), "t", BindModel::Tom).unwrap();
    wb.set_input(s, a("E1"), "=SUM(B3:B20)").unwrap();
    wb.save(&dir).unwrap();
    // Post-checkpoint work rides the WAL only: DML, a bound edit, a second
    // binding, and a DDL pair (CREATE TABLE no longer forces a checkpoint).
    wb.execute("INSERT INTO t VALUES (10, 'ten')").unwrap();
    wb.set_value(s, a("B3"), Value::Int(5)).unwrap();
    wb.execute("CREATE TABLE u (x INT)").unwrap();
    wb.execute("INSERT INTO u VALUES (42)").unwrap();
    let id2 = wb.bind_table(s, a("E5"), "u", BindModel::Rom).unwrap();
    let expect_sum = wb.cell(s, a("E1"));
    drop(wb); // crash

    let mut wb = Workbook::open(&dir).unwrap();
    let s = wb.current_sheet();
    assert_eq!(wb.binding_ids(), vec![id, id2]);
    assert_eq!(wb.cell(s, a("B3")), Value::Int(5), "bound edit replayed");
    assert_eq!(wb.cell(s, a("B6")), Value::Int(10), "insert replayed");
    assert_eq!(
        wb.cell(s, a("E5")),
        Value::Int(42),
        "WAL-created table bound"
    );
    assert_eq!(wb.cell(s, a("E1")), expect_sum);
    assert_converged(&mut wb, id);
    assert_converged(&mut wb, id2);
    // The bindings are still live after reopen.
    wb.execute("INSERT INTO u VALUES (43)").unwrap();
    assert_eq!(wb.cell(s, a("E6")), Value::Int(43));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unbind_freeze_is_durable() {
    let dir = std::env::temp_dir().join(format!("dsp-bind-freeze-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut wb = setup();
    let s = wb.current_sheet();
    let id = wb.bind_table(s, a("A1"), "t", BindModel::Tom).unwrap();
    wb.save(&dir).unwrap();
    wb.execute("DROP TABLE t").unwrap(); // detaches, freezes values
    assert!(wb.binding_meta(id).is_none());
    drop(wb);

    let mut wb = Workbook::open(&dir).unwrap();
    let s = wb.current_sheet();
    assert!(wb.binding_ids().is_empty(), "BindDrop replayed");
    assert_eq!(
        wb.cell(s, a("B3")),
        Value::text("two"),
        "frozen values replayed as literal cells"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sibling_bindings_on_one_table_stay_in_sync() {
    let mut wb = setup();
    let s = wb.current_sheet();
    let id1 = wb.bind_table(s, a("A1"), "t", BindModel::Rom).unwrap();
    let id2 = wb.bind_table_cols(s, a("E1"), "t", &["a"]).unwrap();
    // A bound edit through one binding renders in the other.
    wb.set_value(s, a("A1"), Value::Int(99)).unwrap();
    assert_eq!(wb.cell(s, a("E1")), Value::Int(99), "sibling saw the edit");
    assert_converged(&mut wb, id1);
    assert_converged(&mut wb, id2);
    // And an edit through the sibling flows back.
    wb.set_value(s, a("E2"), Value::Int(55)).unwrap();
    assert_eq!(wb.cell(s, a("A2")), Value::Int(55));
    assert_converged(&mut wb, id1);
    assert_converged(&mut wb, id2);
}

#[test]
fn structural_edits_apply_once_per_backing_table() {
    let mut wb = setup();
    let s = wb.current_sheet();
    // Two side-by-side bindings over the same table, rows aligned.
    let id1 = wb.bind_table(s, a("A1"), "t", BindModel::Rom).unwrap();
    let id2 = wb.bind_table_cols(s, a("E1"), "t", &["a", "b"]).unwrap();
    // One grid-row insert inside both regions = ONE empty tuple.
    wb.insert_rows(s, 1, 1).unwrap();
    assert_eq!(wb.catalog().get("t").unwrap().row_count(), 4);
    assert_converged(&mut wb, id1);
    assert_converged(&mut wb, id2);
    // One grid-row delete covering both = the same tuple deleted once.
    wb.delete_rows(s, 1, 2).unwrap();
    assert_eq!(wb.catalog().get("t").unwrap().row_count(), 2);
    assert_converged(&mut wb, id1);
    assert_converged(&mut wb, id2);
}

#[test]
fn recovery_clears_rows_a_replayed_delete_shrank() {
    // The checkpoint renders the mirror at full height; a WAL-only DELETE
    // shrinks the table. Recovery must clear the checkpointed ghost row,
    // not leave it as a stale literal.
    let dir = std::env::temp_dir().join(format!("dsp-bind-shrink-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut wb = setup();
    let s = wb.current_sheet();
    let id = wb.bind_table(s, a("A1"), "t", BindModel::Rom).unwrap();
    wb.save(&dir).unwrap();
    wb.execute("DELETE FROM t WHERE a = 3").unwrap(); // WAL-only
    drop(wb);

    let mut wb = Workbook::open(&dir).unwrap();
    let s = wb.current_sheet();
    assert_eq!(wb.cell(s, a("A3")), Value::Empty, "ghost row cleared");
    assert_eq!(wb.cell(s, a("A2")), Value::Int(2));
    assert_converged(&mut wb, id);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn wal_created_table_keeps_configured_pool_capacity() {
    let dir = std::env::temp_dir().join(format!("dsp-bind-pool-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut wb = Workbook::new();
    wb.set_default_pool_capacity(7);
    wb.save(&dir).unwrap();
    wb.execute("CREATE TABLE t (x INT)").unwrap(); // WAL DDL record
    assert_eq!(wb.catalog().get("t").unwrap().pool().capacity(), 7);
    drop(wb);

    let wb = Workbook::open(&dir).unwrap();
    assert_eq!(
        wb.catalog().get("t").unwrap().pool().capacity(),
        7,
        "replayed CREATE TABLE restores the configured capacity"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Crash injection: truncate the WAL at every prefix length and reopen. The
/// recovered workbook must always satisfy the convergence invariant —
/// whatever op prefix survived, the grid and the tables agree.
#[test]
fn crash_injected_recovery_always_converges() {
    let dir = std::env::temp_dir().join(format!("dsp-bind-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut wb = setup();
    let s = wb.current_sheet();
    wb.bind_table(s, a("B2"), "t", BindModel::Tom).unwrap();
    wb.set_input(s, a("F1"), "=SUM(B3:B30)").unwrap();
    wb.save(&dir).unwrap();
    // A WAL tail mixing every record family.
    wb.execute("INSERT INTO t VALUES (7, 'seven')").unwrap();
    wb.set_value(s, a("B3"), Value::Int(100)).unwrap();
    wb.insert_rows(s, 3, 1).unwrap(); // structural, inside the region
    wb.execute("CREATE TABLE u (x INT)").unwrap();
    wb.execute("INSERT INTO u VALUES (1)").unwrap();
    let id2 = wb.bind_table(s, a("E1"), "u", BindModel::Rom).unwrap();
    wb.unbind(id2).unwrap();
    drop(wb);

    let wal_path = dir.join("wal.dsp");
    let full = std::fs::read(&wal_path).unwrap();
    let mut rng = testkit::Rng::new(0xB1ED);
    // Every 7th cut plus the header boundary and the full tail.
    let mut cuts: Vec<usize> = (24..full.len()).filter(|_| rng.below(7) == 0).collect();
    cuts.push(24);
    cuts.push(full.len());
    for cut in cuts {
        // Reset the directory to checkpoint + truncated WAL.
        std::fs::write(&wal_path, &full[..cut]).unwrap();
        let mut wb = Workbook::open(&dir).unwrap();
        let s = wb.current_sheet();
        for id in wb.binding_ids() {
            assert_converged(&mut wb, id);
        }
        // Formula state equals a full recalculation.
        let before = wb.cell(s, a("F1"));
        wb.recalculate();
        assert_eq!(wb.cell(s, a("F1")), before, "cut at {cut}");
        // Opening re-checkpoints: put the original pair back for the next
        // cut by re-saving the checkpoint… the snapshot advanced, so write
        // the full WAL is stale now. Rebuild the baseline instead.
        std::fs::remove_dir_all(&dir).unwrap();
        let mut wb = setup();
        let s = wb.current_sheet();
        wb.bind_table(s, a("B2"), "t", BindModel::Tom).unwrap();
        wb.set_input(s, a("F1"), "=SUM(B3:B30)").unwrap();
        wb.save(&dir).unwrap();
        wb.execute("INSERT INTO t VALUES (7, 'seven')").unwrap();
        wb.set_value(s, a("B3"), Value::Int(100)).unwrap();
        wb.insert_rows(s, 3, 1).unwrap();
        wb.execute("CREATE TABLE u (x INT)").unwrap();
        wb.execute("INSERT INTO u VALUES (1)").unwrap();
        let id2 = wb.bind_table(s, a("E1"), "u", BindModel::Rom).unwrap();
        wb.unbind(id2).unwrap();
        drop(wb);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
