//! HTAP chaos suite: concurrent writers, readers, and checkpoints over a
//! fault-injecting VFS, asserting the engine's degradation contract:
//!
//! * recovery after any fault schedule yields a per-writer committed
//!   prefix and **never loses an `Ok`-acked commit**;
//! * a failed WAL fsync flips the engine read-only — reads keep working,
//!   every write fails with [`DsError::ReadOnly`];
//! * a degraded workbook can still be salvaged by saving to a *different*
//!   directory on healthy storage.
//!
//! Fault schedules are restricted to fsync failures and crashes: both
//! halt the engine at the fault, so "acked" stays the single source of
//! truth. Write-level faults (which report failure to the caller but
//! leave the in-memory row ahead of the log) are pinned down
//! deterministically in the relstore `fault_injection` suite instead.
//!
//! `DSP_STRESS_ITERS` scales per-writer operation counts (default 60);
//! `DSP_FAULT_SEED` replays a printed fault schedule.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use dataspread::{EngineHealth, SharedWorkbook, Workbook};
use dataspread_relstore::vfs::{FaultPlan, FaultVfs, RecoveryImage, Vfs};
use dataspread_testkit::cases;
use dataspread_types::{DsError, Value};

fn iters() -> i64 {
    std::env::var("DSP_STRESS_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(60)
}

fn fault_seed() -> u64 {
    match std::env::var("DSP_FAULT_SEED") {
        Ok(s) => {
            let s = s.trim();
            let parsed = if let Some(hex) = s.strip_prefix("0x") {
                u64::from_str_radix(hex, 16)
            } else {
                s.parse()
            };
            parsed.unwrap_or_else(|_| panic!("DSP_FAULT_SEED must be an integer, got {s:?}"))
        }
        Err(_) => 0xC4A0_5EED_u64,
    }
}

/// Writer `w`'s rows are `(w*1_000_000 + seq, 10*(w*1_000_000 + seq))`,
/// inserted in `seq` order; any consistent view shows seqs `0..k`.
fn check_committed_prefix(rows: &[(i64, i64)], writers: usize) -> Vec<i64> {
    let mut per_writer: Vec<Vec<i64>> = vec![Vec::new(); writers];
    for &(id, v) in rows {
        assert_eq!(v, id * 10, "torn row: id {id} paired with v {v}");
        let w = (id / 1_000_000) as usize;
        per_writer[w].push(id % 1_000_000);
    }
    per_writer
        .into_iter()
        .enumerate()
        .map(|(w, mut seqs)| {
            seqs.sort_unstable();
            for (i, s) in seqs.iter().enumerate() {
                assert_eq!(
                    *s, i as i64,
                    "writer {w}: gap in committed prefix (saw {s} at position {i})"
                );
            }
            seqs.len() as i64
        })
        .collect()
}

fn table_rows(wb: &mut Workbook, table: &str) -> Vec<(i64, i64)> {
    let (_, rows) = wb.query(&format!("SELECT id, v FROM {table}")).unwrap();
    rows.into_iter()
        .map(|row| match (&row[0], &row[1]) {
            (Value::Int(a), Value::Int(b)) => (*a, *b),
            other => panic!("non-int row {other:?}"),
        })
        .collect()
}

const WRITERS: usize = 3;
const READERS: usize = 2;

/// One chaos round: writers + readers + a checkpointer race a randomized
/// fsync-failure/crash schedule, then the store is recovered from the
/// power-cut (synced-only) image and checked against the acks.
fn chaos_round(plan: FaultPlan, n: i64) {
    let fault = FaultVfs::new(FaultPlan::quiet());
    let vfs: Arc<dyn Vfs> = Arc::new(fault.clone());
    let dir = PathBuf::from("/chaos");

    let mut wb = Workbook::new();
    wb.execute("CREATE TABLE t (id INT, v INT)").unwrap();
    wb.save_with_vfs(&dir, Arc::clone(&vfs)).unwrap();
    let shared = SharedWorkbook::new(wb);
    let done = Arc::new(AtomicBool::new(false));
    fault.set_plan(plan);

    let writers: Vec<_> = (0..WRITERS as i64)
        .map(|w| {
            let sh = shared.clone();
            thread::spawn(move || {
                let mut acked = 0i64;
                for seq in 0..n {
                    let id = w * 1_000_000 + seq;
                    let res = sh.with_table_mut("t", |t| {
                        t.insert(vec![Value::Int(id), Value::Int(id * 10)])
                    });
                    match res {
                        Ok(_) => acked += 1,
                        Err(e) => {
                            // Sync faults poison (ReadOnly on the next try),
                            // crashes surface as raw Io; both end this writer.
                            assert!(
                                e.is_read_only() || matches!(e, DsError::Io(_)),
                                "unexpected writer error: {e:?}"
                            );
                            break;
                        }
                    }
                }
                acked
            })
        })
        .collect();

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let sh = shared.clone();
            let done = Arc::clone(&done);
            thread::spawn(move || {
                let mut polls = 0u64;
                // Poll at least once even if the fault schedule halts every
                // writer before this thread is first scheduled.
                loop {
                    // Reads must never panic, degraded or not. After a
                    // simulated crash a cold page read can fail — that is
                    // an Err, not a wedge.
                    let res = sh.read(|s| s.table_snapshot("t").and_then(|snap| snap.scan()));
                    if let Ok(rows) = res {
                        let rows: Vec<(i64, i64)> = rows
                            .into_iter()
                            .map(|(_, row)| match (&row[0], &row[1]) {
                                (Value::Int(a), Value::Int(b)) => (*a, *b),
                                other => panic!("non-int row {other:?}"),
                            })
                            .collect();
                        check_committed_prefix(&rows, WRITERS);
                    }
                    let _ = sh.health();
                    polls += 1;
                    if done.load(Ordering::Acquire) {
                        break;
                    }
                }
                polls
            })
        })
        .collect();

    let checkpointer = {
        let sh = shared.clone();
        let done = Arc::clone(&done);
        thread::spawn(move || {
            let mut attempts = 0u64;
            loop {
                // Checkpoints may fail under faults (rolled back + retried
                // internally) or be refused read-only; neither may wedge.
                let _ = sh.write(|wb| wb.checkpoint());
                attempts += 1;
                if done.load(Ordering::Acquire) {
                    break;
                }
                thread::sleep(std::time::Duration::from_millis(1));
            }
            attempts
        })
    };

    let acked: Vec<i64> = writers.into_iter().map(|h| h.join().unwrap()).collect();
    done.store(true, Ordering::Release);
    for r in readers {
        assert!(r.join().unwrap() > 0);
    }
    assert!(checkpointer.join().unwrap() > 0);
    drop(shared.try_into_inner().expect("all clones joined"));

    // Power-cut recovery: only synced bytes survive.
    fault.reset_to_recovery(RecoveryImage::Synced);
    let mut wb = Workbook::open_with_vfs(&dir, Arc::clone(&vfs)).unwrap();
    let rows = table_rows(&mut wb, "t");
    let recovered = check_committed_prefix(&rows, WRITERS);
    for (w, (&got, &want)) in recovered.iter().zip(acked.iter()).enumerate() {
        // `>=`: an op acked Ok must survive; a checkpoint may additionally
        // have folded in the one in-flight row whose commit ack never came.
        assert!(
            got >= want,
            "writer {w}: acked {want} commits but only {got} recovered (plan {plan:?})"
        );
        assert!(
            got <= n,
            "writer {w}: recovered {got} rows out of {n} attempts"
        );
    }
}

#[test]
fn chaos_htap_never_loses_an_acked_commit() {
    let base = fault_seed();
    eprintln!("chaos base seed: {base:#x} (override with DSP_FAULT_SEED)");
    let n = iters();
    cases(6, base, |rng| {
        let plan = FaultPlan {
            seed: rng.next_u64(),
            p_sync_err: rng.u32_in(30, 250),
            p_crash: rng.u32_in(10, 120),
            ..FaultPlan::default()
        };
        chaos_round(plan, n);
    });
}

/// Deterministic degradation contract: one failed fsync flips the engine
/// read-only; reads keep working, every write path fails typed, and the
/// state is observable through `health()` on both workbook and handle.
#[test]
fn fsync_failure_degrades_to_read_only_reads_survive() {
    let fault = FaultVfs::new(FaultPlan::quiet());
    let vfs: Arc<dyn Vfs> = Arc::new(fault.clone());
    let dir = PathBuf::from("/store");

    let mut wb = Workbook::new();
    wb.execute("CREATE TABLE t (id INT, v INT)").unwrap();
    wb.save_with_vfs(&dir, Arc::clone(&vfs)).unwrap();
    wb.execute("INSERT INTO t VALUES (1, 10)").unwrap();
    assert!(wb.health().is_healthy());

    // Fail the next fsync: the statement's group commit cannot be acked.
    fault.set_plan(FaultPlan {
        fail_nth_sync: Some(fault.stats().syncs),
        ..FaultPlan::quiet()
    });
    let err = wb.execute("INSERT INTO t VALUES (2, 20)").unwrap_err();
    assert!(
        matches!(err, DsError::Io(_)),
        "first failure is the raw fault: {err:?}"
    );
    fault.quiesce();

    // Sticky: health reports the reason, every write path is refused…
    match wb.health() {
        EngineHealth::ReadOnly { reason } => {
            assert!(reason.contains("fsync"), "reason names the fault: {reason}")
        }
        EngineHealth::Healthy => panic!("engine must be degraded"),
    }
    assert!(wb
        .execute("INSERT INTO t VALUES (3, 30)")
        .unwrap_err()
        .is_read_only());
    assert!(wb
        .execute("CREATE TABLE u (x INT)")
        .unwrap_err()
        .is_read_only());
    let sheet = wb.current_sheet();
    assert!(wb
        .set_input(sheet, "A1".parse().unwrap(), "7")
        .unwrap_err()
        .is_read_only());
    assert!(wb
        .insert_tuple_at("t", 0, vec![Value::Int(4), Value::Int(40)])
        .unwrap_err()
        .is_read_only());
    assert!(wb.checkpoint().unwrap_err().is_read_only());
    assert!(wb
        .save_with_vfs(&dir, Arc::clone(&vfs))
        .unwrap_err()
        .is_read_only());

    // …while reads still serve. The un-acked row of the failed statement
    // is visible live (it was applied in memory before the commit failed)
    // — live reads show a superset, durable state is the acked prefix.
    let rows = table_rows(&mut wb, "t");
    assert!(rows.contains(&(1, 10)));
    let (_, count) = wb.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(count[0][0], Value::Int(rows.len() as i64));

    // The shared handle sees the same degradation.
    let shared = SharedWorkbook::new(wb);
    assert!(matches!(shared.health(), EngineHealth::ReadOnly { .. }));
    assert!(shared
        .with_table_mut("t", |t| t.insert(vec![Value::Int(5), Value::Int(50)]))
        .unwrap_err()
        .is_read_only());
    assert!(shared.query("SELECT id FROM t").is_ok());
    let mut wb = shared.try_into_inner().expect("sole handle");

    // Salvage: saving to a DIFFERENT directory on healthy storage is
    // legal, captures the full live state, and re-attaches the workbook
    // to the healthy store — equivalent to a reopen.
    let salvage = FaultVfs::new(FaultPlan::quiet());
    let salvage_vfs: Arc<dyn Vfs> = Arc::new(salvage.clone());
    let dir2 = PathBuf::from("/salvage");
    wb.save_with_vfs(&dir2, Arc::clone(&salvage_vfs)).unwrap();
    assert!(
        wb.health().is_healthy(),
        "salvage re-attaches healthy storage"
    );
    wb.execute("INSERT INTO t VALUES (6, 60)").unwrap();

    let mut reopened = Workbook::open_with_vfs(&dir2, salvage_vfs).unwrap();
    let rows = table_rows(&mut reopened, "t");
    assert!(rows.contains(&(1, 10)) && rows.contains(&(6, 60)));

    // Meanwhile the original (power-cut) directory recovers exactly the
    // acked prefix: the failed statement's row never became durable.
    fault.reset_to_recovery(RecoveryImage::Synced);
    let mut old = Workbook::open_with_vfs(&dir, Arc::new(fault.clone())).unwrap();
    assert_eq!(table_rows(&mut old, "t"), vec![(1, 10)]);
}

/// Workbook-level stale-tmp crash window, on the real filesystem: a crash
/// between snapshot tmp write and rename must not confuse `open` — the
/// debris is ignored and removed, and the old WAL tail still replays.
#[test]
fn open_ignores_stale_snapshot_tmp_and_replays_wal() {
    let dir = std::env::temp_dir().join(format!("dsp-chaos-tmp-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut wb = Workbook::new();
    wb.execute("CREATE TABLE t (id INT, v INT)").unwrap();
    wb.save(&dir).unwrap();
    wb.execute("INSERT INTO t VALUES (1, 10), (2, 20)").unwrap();
    drop(wb); // "crash" with the rows only in the WAL

    // Debris of a checkpoint that died before its rename.
    std::fs::write(dir.join("data.dsp.tmp"), b"half-written snapshot").unwrap();

    let mut wb = Workbook::open(&dir).unwrap();
    let mut rows = table_rows(&mut wb, "t");
    rows.sort_unstable();
    assert_eq!(rows, vec![(1, 10), (2, 20)]);
    assert!(
        !dir.join("data.dsp.tmp").exists(),
        "open must clean up stale checkpoint debris"
    );
    drop(wb);
    std::fs::remove_dir_all(&dir).unwrap();
}
