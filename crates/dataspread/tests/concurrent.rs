//! Concurrent-correctness property suite: K readers + L writers over
//! disjoint and overlapping shards, snapshot isolation (committed prefixes,
//! no torn rows), group-commit durability, and crash recovery of
//! group-committed batches.
//!
//! `DSP_STRESS_ITERS` scales the per-writer operation count (default 60;
//! CI's stress job raises it).

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use dataspread::{SharedWorkbook, Workbook};
use dataspread_relstore::snapshot::WAL_FILE;
use dataspread_types::Value;

fn iters() -> i64 {
    std::env::var("DSP_STRESS_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(60)
}

fn tmp_dir(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("dsp-conc-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// Writer `w`'s rows are `(w*1_000_000 + seq, 10*(w*1_000_000 + seq))`,
/// inserted in `seq` order. In any committed-prefix-consistent view the
/// seqs observed for each writer form exactly `0..k` for some `k`.
fn check_committed_prefix(rows: &[(i64, i64)], writers: usize) {
    let mut per_writer: Vec<Vec<i64>> = vec![Vec::new(); writers];
    for &(id, v) in rows {
        assert_eq!(v, id * 10, "torn row: id {id} paired with v {v}");
        let w = (id / 1_000_000) as usize;
        per_writer[w].push(id % 1_000_000);
    }
    for (w, mut seqs) in per_writer.into_iter().enumerate() {
        seqs.sort_unstable();
        for (i, s) in seqs.iter().enumerate() {
            assert_eq!(
                *s, i as i64,
                "writer {w}: gap in committed prefix (saw {s} at position {i})"
            );
        }
    }
}

fn scan_ids(snap: &dataspread_relstore::TableSnapshot) -> Vec<(i64, i64)> {
    snap.scan()
        .unwrap()
        .into_iter()
        .map(|(_, row)| match (&row[0], &row[1]) {
            (Value::Int(a), Value::Int(b)) => (*a, *b),
            other => panic!("non-int row {other:?}"),
        })
        .collect()
}

/// L writers hammer ONE table (overlapping shard) while K readers snapshot
/// it. Every snapshot must be a committed prefix per writer with no torn
/// rows, and row counts must be monotone per reader.
#[test]
fn overlapping_writers_snapshots_see_committed_prefixes() {
    let n = iters();
    let mut wb = Workbook::new();
    wb.execute("CREATE TABLE hot (id INT, v INT)").unwrap();
    let shared = SharedWorkbook::new(wb);
    let done = Arc::new(AtomicBool::new(false));

    const WRITERS: usize = 4;
    const READERS: usize = 4;
    let writers: Vec<_> = (0..WRITERS as i64)
        .map(|w| {
            let sh = shared.clone();
            thread::spawn(move || {
                for seq in 0..n {
                    let id = w * 1_000_000 + seq;
                    sh.with_table_mut("hot", |t| {
                        t.insert(vec![Value::Int(id), Value::Int(id * 10)])
                    })
                    .unwrap();
                }
            })
        })
        .collect();
    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let sh = shared.clone();
            let done = Arc::clone(&done);
            thread::spawn(move || {
                let mut last = 0usize;
                let mut polls = 0u64;
                while !done.load(Ordering::Acquire) || last < (WRITERS as i64 * n) as usize {
                    let snap = sh.read(|s| s.table_snapshot("hot").unwrap());
                    let rows = scan_ids(&snap);
                    assert!(rows.len() >= last, "snapshot went backwards");
                    last = rows.len();
                    check_committed_prefix(&rows, WRITERS);
                    polls += 1;
                }
                polls
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    done.store(true, Ordering::Release);
    for r in readers {
        assert!(r.join().unwrap() > 0);
    }
    let wb = shared.try_into_inner().expect("last handle");
    assert_eq!(
        wb.catalog().get("hot").unwrap().row_count(),
        (WRITERS as i64 * n) as usize
    );
}

/// Writers to DISJOINT tables proceed in parallel under the shared
/// workbook read lock; a reader mixing snapshots of both sees each table's
/// committed prefix.
#[test]
fn disjoint_writers_parallel_with_reader() {
    let n = iters();
    let mut wb = Workbook::new();
    for t in ["left", "right"] {
        wb.execute(&format!("CREATE TABLE {t} (id INT, v INT)"))
            .unwrap();
    }
    let shared = SharedWorkbook::new(wb);
    let writers: Vec<_> = [("left", 0i64), ("right", 1i64)]
        .into_iter()
        .map(|(name, w)| {
            let sh = shared.clone();
            thread::spawn(move || {
                for seq in 0..n {
                    let id = w * 1_000_000 + seq;
                    sh.with_table_mut(name, |t| {
                        t.insert(vec![Value::Int(id), Value::Int(id * 10)])
                    })
                    .unwrap();
                }
            })
        })
        .collect();
    let reader = {
        let sh = shared.clone();
        thread::spawn(move || loop {
            let ws = sh.snapshot();
            let l = scan_ids(ws.table("left").unwrap());
            let r = scan_ids(ws.table("right").unwrap());
            check_committed_prefix(&l, 1);
            check_committed_prefix(&r, 2);
            if l.len() as i64 == n && r.len() as i64 == n {
                break;
            }
        })
    };
    for w in writers {
        w.join().unwrap();
    }
    reader.join().unwrap();
}

/// In-place updates keep the two columns consistent: a snapshot never
/// observes a half-applied update (torn row).
#[test]
fn snapshots_never_see_torn_updates() {
    let n = iters();
    let mut wb = Workbook::new();
    wb.execute("CREATE TABLE upd (id INT, v INT)").unwrap();
    let shared = SharedWorkbook::new(wb);
    let keys: Vec<_> = (0..16i64)
        .map(|i| {
            shared
                .with_table_mut("upd", |t| t.insert(vec![Value::Int(i), Value::Int(i * 10)]))
                .unwrap()
        })
        .collect();
    let done = Arc::new(AtomicBool::new(false));
    let writer = {
        let sh = shared.clone();
        let keys = keys.clone();
        thread::spawn(move || {
            // Each round rewrites every row with a fresh (id', 10*id') pair.
            for round in 1..=n {
                for (i, key) in keys.iter().enumerate() {
                    let id = round * 100 + i as i64;
                    sh.with_table_mut("upd", |t| {
                        t.update_row(*key, vec![Value::Int(id), Value::Int(id * 10)])
                    })
                    .unwrap();
                }
            }
        })
    };
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let sh = shared.clone();
            let done = Arc::clone(&done);
            thread::spawn(move || {
                while !done.load(Ordering::Acquire) {
                    let snap = sh.read(|s| s.table_snapshot("upd").unwrap());
                    for (id, v) in scan_ids(&snap) {
                        assert_eq!(v, id * 10, "torn update visible");
                    }
                }
            })
        })
        .collect();
    writer.join().unwrap();
    done.store(true, Ordering::Release);
    for r in readers {
        r.join().unwrap();
    }
}

/// Concurrent auto-committed writers on a durable store: every operation
/// reported `Ok` must survive reopen, and the WAL must have batched fsyncs
/// (never more fsyncs than commits).
#[test]
fn group_committed_writes_are_durable() {
    let n = iters();
    let dir = tmp_dir("group-commit");
    let mut wb = Workbook::new();
    wb.execute("CREATE TABLE gc (id INT, v INT)").unwrap();
    wb.save(&dir).unwrap();
    let shared = SharedWorkbook::new(wb);

    const WRITERS: i64 = 8;
    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let sh = shared.clone();
            thread::spawn(move || {
                for seq in 0..n {
                    let id = w * 1_000_000 + seq;
                    sh.with_table_mut("gc", |t| {
                        t.insert(vec![Value::Int(id), Value::Int(id * 10)])
                    })
                    .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let wb = shared.try_into_inner().expect("last handle");
    let stats = wb.group_commit_stats().unwrap();
    assert!(stats.commits >= (WRITERS * n) as u64, "{stats:?}");
    assert!(stats.fsyncs >= 1, "{stats:?}");
    assert!(stats.fsyncs <= stats.commits, "{stats:?}");
    drop(wb); // crash-shaped exit: no checkpoint, recovery is WAL replay

    let wb = Workbook::open(&dir).unwrap();
    let snap = wb.catalog().get("gc").unwrap().snapshot();
    let rows = scan_ids(&snap);
    assert_eq!(rows.len() as i64, WRITERS * n);
    check_committed_prefix(&rows, WRITERS as usize);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash injection: tear the WAL tail after concurrent group-committed
/// writes. Recovery must restore an exact committed prefix per writer —
/// never a torn row, never a gap below the truncation point.
#[test]
fn torn_wal_tail_recovers_committed_prefix() {
    let n = iters();
    let dir = tmp_dir("torn-tail");
    let mut wb = Workbook::new();
    wb.execute("CREATE TABLE cr (id INT, v INT)").unwrap();
    wb.save(&dir).unwrap();
    let shared = SharedWorkbook::new(wb);
    const WRITERS: i64 = 4;
    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let sh = shared.clone();
            thread::spawn(move || {
                for seq in 0..n {
                    let id = w * 1_000_000 + seq;
                    sh.with_table_mut("cr", |t| {
                        t.insert(vec![Value::Int(id), Value::Int(id * 10)])
                    })
                    .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    drop(shared.try_into_inner().expect("last handle"));

    // Chop mid-record, then smear garbage over the new tail: recovery must
    // stop at the torn point and keep everything intact before it.
    let wal = dir.join(WAL_FILE);
    let bytes = std::fs::read(&wal).unwrap();
    let cut = bytes.len() - bytes.len() / 5 + 3;
    let mut torn = bytes[..cut].to_vec();
    let tail = torn.len().saturating_sub(7);
    for b in &mut torn[tail..] {
        *b ^= 0xA5;
    }
    std::fs::write(&wal, torn).unwrap();

    let wb = Workbook::open(&dir).unwrap();
    let snap = wb.catalog().get("cr").unwrap().snapshot();
    let rows = scan_ids(&snap);
    check_committed_prefix(&rows, WRITERS as usize);
    assert!(
        rows.len() as i64 <= WRITERS * n,
        "recovered more rows than written"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A read session keeps answering SELECTs (with plan-time snapshots) while
/// shard writers mutate the same tables underneath the shared read lock.
#[test]
fn select_runs_against_plan_time_snapshot_under_writes() {
    let n = iters();
    let mut wb = Workbook::new();
    wb.execute("CREATE TABLE q (id INT, v INT)").unwrap();
    let shared = SharedWorkbook::new(wb);
    let writer = {
        let sh = shared.clone();
        thread::spawn(move || {
            for seq in 0..n {
                sh.with_table_mut("q", |t| {
                    t.insert(vec![Value::Int(seq), Value::Int(seq * 10)])
                })
                .unwrap();
            }
        })
    };
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let sh = shared.clone();
            thread::spawn(move || loop {
                let (_, rows) = sh
                    .query("SELECT COUNT(*), SUM(v) - 10 * SUM(id) FROM q")
                    .unwrap();
                // SUM(v) == 10 * SUM(id) in every consistent view.
                let count = match rows[0][0] {
                    Value::Int(c) => c,
                    ref other => panic!("{other:?}"),
                };
                assert!(
                    matches!(rows[0][1], Value::Int(0) | Value::Empty),
                    "inconsistent aggregate over snapshot: {rows:?}"
                );
                if count == n {
                    break;
                }
            })
        })
        .collect();
    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
}
