//! Property suite: after any random sequence of grid edits, the state the
//! *incremental* recompute engine left behind is identical to a full
//! from-scratch recalculation — incremental recompute must be an
//! optimization, never a semantics change.

use dataspread::{SheetId, Workbook};
use dataspread_formula::Formula;
use dataspread_testkit as testkit;
use dataspread_types::{CellAddr, Range, Value};

const ROWS: u32 = 8;
const COLS: u32 = 4;

fn rand_addr(rng: &mut testkit::Rng) -> CellAddr {
    CellAddr::new(rng.u32_in(0, ROWS), rng.u32_in(0, COLS))
}

fn a1(addr: CellAddr) -> String {
    addr.to_a1()
}

/// A random reference, optionally sheet-qualified.
fn rand_ref(rng: &mut testkit::Rng, sheets: &[&str]) -> String {
    let addr = rand_addr(rng);
    if rng.below(3) == 0 {
        format!("{}!{}", sheets[rng.index(sheets.len())], a1(addr))
    } else {
        a1(addr)
    }
}

fn rand_range(rng: &mut testkit::Rng, sheets: &[&str]) -> String {
    let a = rand_addr(rng);
    let b = rand_addr(rng);
    let r = Range::new(a, b).to_a1();
    // `Range::to_a1` collapses 1×1 ranges to a bare cell; force the colon
    // form so aggregates always see a range argument.
    let r = if r.contains(':') {
        r
    } else {
        format!("{r}:{r}")
    };
    if rng.below(3) == 0 {
        format!("{}!{}", sheets[rng.index(sheets.len())], r)
    } else {
        r
    }
}

fn rand_formula(rng: &mut testkit::Rng, sheets: &[&str]) -> String {
    match rng.weighted(&[3, 3, 2, 2, 2, 1]) {
        0 => format!("=SUM({})", rand_range(rng, sheets)),
        1 => format!("={}+{}", rand_ref(rng, sheets), rand_ref(rng, sheets)),
        2 => format!(
            "=IF({}>{},{},{})",
            rand_ref(rng, sheets),
            rng.below(50),
            rand_ref(rng, sheets),
            rng.below(10)
        ),
        3 => format!("=AVG({})", rand_range(rng, sheets)),
        4 => format!("={}*2-{}", rand_ref(rng, sheets), rand_ref(rng, sheets)),
        _ => format!("=COUNT({})&\"!\"", rand_range(rng, sheets)),
    }
}

/// Every cell value in the workbook, dense over a fixed window (large enough
/// to cover all edits including shifted cells).
fn snapshot(wb: &Workbook, sheets: &[SheetId]) -> Vec<Vec<Vec<Value>>> {
    let window = Range::from_bounds(0, 0, ROWS + 12, COLS + 12);
    sheets.iter().map(|&s| wb.sheet(s).region(window)).collect()
}

#[test]
fn incremental_recompute_equals_full_recompute() {
    testkit::cases(60, 0xF0121A, |rng| {
        let mut wb = Workbook::new();
        let s1 = wb.current_sheet();
        let s2 = wb.add_sheet("Data").unwrap();
        let ids = [s1, s2];
        let names = ["Sheet1", "Data"];
        let edits = rng.usize_in(10, 40);
        for _ in 0..edits {
            let sheet = ids[rng.index(2)];
            match rng.weighted(&[5, 4, 2, 1, 1, 1, 1]) {
                // Literal write.
                0 => {
                    let v = rng.below(100).to_string();
                    wb.set_input(sheet, rand_addr(rng), &v).unwrap();
                }
                // Formula write.
                1 => {
                    let f = rand_formula(rng, &names);
                    wb.set_input(sheet, rand_addr(rng), &f).unwrap();
                }
                // Clear.
                2 => {
                    wb.set_value(sheet, rand_addr(rng), Value::Empty).unwrap();
                }
                // Structural edits (small, near the data).
                3 => wb
                    .insert_rows(sheet, rng.u32_in(0, ROWS), rng.u32_in(1, 3))
                    .unwrap(),
                4 => wb
                    .delete_rows(sheet, rng.u32_in(0, ROWS), rng.u32_in(1, 3))
                    .unwrap(),
                5 => wb
                    .insert_cols(sheet, rng.u32_in(0, COLS), rng.u32_in(1, 2))
                    .unwrap(),
                _ => wb
                    .delete_cols(sheet, rng.u32_in(0, COLS), rng.u32_in(1, 2))
                    .unwrap(),
            }
        }
        // The incremental engine's state…
        let incremental = snapshot(&wb, &ids);
        // …must match a full from-scratch recalculation.
        wb.recalculate();
        let full = snapshot(&wb, &ids);
        assert_eq!(incremental, full, "incremental ≠ full recompute");

        // Every surviving formula's stored source must still parse (the
        // structural-edit rewriter keeps sources canonical, `#REF!`
        // included), so it round-trips through persistence.
        for &s in &ids {
            let sheet = wb.sheet(s);
            let window = Range::from_bounds(0, 0, ROWS + 12, COLS + 12);
            for addr in window.iter_cells() {
                if let Some(src) = sheet.formula_text(addr) {
                    Formula::parse(src)
                        .unwrap_or_else(|e| panic!("stored formula `{src}` no longer parses: {e}"));
                }
            }
        }
    });
}

#[test]
fn incremental_touches_only_downstream_formulas() {
    let mut wb = Workbook::new();
    let s = wb.current_sheet();
    // A diamond A1 → {B1, B2} → C1 plus 50 unrelated formulas.
    wb.set_input(s, CellAddr::new(0, 0), "1").unwrap();
    wb.set_input(s, CellAddr::parse_a1("B1").unwrap(), "=A1+1")
        .unwrap();
    wb.set_input(s, CellAddr::parse_a1("B2").unwrap(), "=A1*2")
        .unwrap();
    wb.set_input(s, CellAddr::parse_a1("C1").unwrap(), "=B1+B2")
        .unwrap();
    for i in 0..50 {
        wb.set_input(s, CellAddr::new(i + 20, 0), &format!("=Z{}+1", i + 100))
            .unwrap();
    }
    let before = wb.calc_stats().cells_recomputed;
    wb.set_input(s, CellAddr::new(0, 0), "10").unwrap();
    let touched = wb.calc_stats().cells_recomputed - before;
    assert_eq!(
        touched, 3,
        "editing A1 must recompute exactly B1, B2, C1 — not the 50 unrelated formulas"
    );
    assert_eq!(
        wb.cell(s, CellAddr::parse_a1("C1").unwrap()),
        Value::Int(31)
    );
}
