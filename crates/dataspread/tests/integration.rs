//! The full vertical path, end to end (acceptance test for the engine):
//!
//! 1. a sheet region is imported into a catalog table (interface → relational),
//! 2. SQL runs against that table with a `RANGEVALUE` reference resolved from
//!    the *live* grid (`sql` → engine → `relstore` + `gridstore`),
//! 3. a tuple is positionally inserted mid-window (O(log n) through the
//!    counted B-tree, `posindex`),
//! 4. the windowed fetch reflects the insert — under both the counted B-tree
//!    and the dense rownum baseline (the paper's C3 arms).

use dataspread::{QueryResult, StoreKind, TableView, Workbook};
use dataspread_types::{CellAddr, Range, Value};

fn a(s: &str) -> CellAddr {
    CellAddr::parse_a1(s).unwrap()
}

fn r(s: &str) -> Range {
    Range::parse_a1(s).unwrap()
}

/// Lay out a small grade book on the sheet and import it.
fn build_workbook(kind: StoreKind) -> Workbook {
    let mut wb = Workbook::with_store(kind);
    let s = wb.current_sheet();
    let mut region: Vec<Vec<Value>> = vec![vec![
        Value::text("id"),
        Value::text("name"),
        Value::text("score"),
    ]];
    for i in 0..50i64 {
        region.push(vec![
            Value::Int(i),
            Value::text(format!("student{i:02}")),
            Value::Int(50 + i),
        ]);
    }
    wb.set_region(s, a("A1"), &region).unwrap();
    let n = wb.import_region(s, r("A1:C51"), "students", true).unwrap();
    assert_eq!(n, 50);
    wb
}

#[test]
fn import_sql_positional_insert_window_vertical_path() {
    let mut wb = build_workbook(StoreKind::Tiled);
    let s = wb.current_sheet();

    // -- 2. SQL over the imported table, parameterized by a live cell. ------
    wb.set_input(s, a("E1"), "95").unwrap();
    let (cols, rows) = wb
        .query("SELECT name FROM students WHERE score > RANGEVALUE(E1) ORDER BY score DESC")
        .unwrap();
    assert_eq!(cols, vec!["name"]);
    assert_eq!(rows.len(), 4, "scores 96..99");
    assert_eq!(rows[0][0], Value::text("student49"));

    // Editing the cell re-parameterizes the same SQL — the sheet is live.
    wb.set_input(s, a("E1"), "97").unwrap();
    let (_, rows) = wb
        .query("SELECT name FROM students WHERE score > RANGEVALUE(E1) ORDER BY score DESC")
        .unwrap();
    assert_eq!(rows.len(), 2);

    // SQL INSERT through the executor lands in the same table.
    let res = wb
        .execute("INSERT INTO students VALUES (100, 'via sql', 0)")
        .unwrap();
    assert_eq!(res, QueryResult::Affected(1));
    let (_, rows) = wb.query("SELECT COUNT(*) FROM students").unwrap();
    assert_eq!(rows, vec![vec![Value::Int(51)]]);
    wb.execute("DELETE FROM students WHERE id = 100").unwrap();

    // -- 3. Positional insert mid-window, routed through the counted B-tree.
    let before = wb.fetch_window("students", 18, 5).unwrap();
    assert_eq!(
        before[2].1[0],
        Value::Int(20),
        "row 20 displayed at position 20"
    );
    wb.insert_tuple_at(
        "students",
        20,
        vec![Value::Int(777), Value::text("wedge"), Value::Int(1)],
    )
    .unwrap();

    // -- 4. The window reflects the insert; rows below shifted down by one.
    let after = wb.fetch_window("students", 18, 5).unwrap();
    let ids: Vec<&Value> = after.iter().map(|(_, row)| &row[0]).collect();
    assert_eq!(
        ids,
        vec![
            &Value::Int(18),
            &Value::Int(19),
            &Value::Int(777),
            &Value::Int(20),
            &Value::Int(21)
        ]
    );
    // Positions after the window shifted too.
    let tail = wb.fetch_window("students", 50, 10).unwrap();
    assert_eq!(tail.len(), 1, "51 rows total now");
    assert_eq!(tail[0].1[0], Value::Int(49));
}

/// The same positional operations behave identically over the counted B-tree
/// and the dense rownum baseline (experiment C3's correctness precondition).
#[test]
fn window_after_positional_insert_matches_under_both_indexes() {
    let mut wb_counted = build_workbook(StoreKind::Tiled);
    let mut wb_dense = build_workbook(StoreKind::Block);

    let mut counted = TableView::counted(&wb_counted.catalog().get("students").unwrap()).unwrap();
    let mut dense = TableView::dense(&wb_dense.catalog().get("students").unwrap()).unwrap();

    let wedge = vec![Value::Int(900), Value::text("wedge"), Value::Int(0)];
    counted
        .insert_row_at(
            &mut wb_counted.catalog_mut().get_mut("students").unwrap(),
            25,
            wedge.clone(),
        )
        .unwrap();
    dense
        .insert_row_at(
            &mut wb_dense.catalog_mut().get_mut("students").unwrap(),
            25,
            wedge,
        )
        .unwrap();

    for (pos, count) in [(0, 5), (23, 6), (48, 10)] {
        let w1 = counted
            .window(&wb_counted.catalog().get("students").unwrap(), pos, count)
            .unwrap();
        let w2 = dense
            .window(&wb_dense.catalog().get("students").unwrap(), pos, count)
            .unwrap();
        let v1: Vec<&Vec<Value>> = w1.iter().map(|(_, row)| row).collect();
        let v2: Vec<&Vec<Value>> = w2.iter().map(|(_, row)| row).collect();
        assert_eq!(
            v1, v2,
            "window ({pos}, {count}) diverged between index arms"
        );
    }
    assert_eq!(
        counted
            .window(&wb_counted.catalog().get("students").unwrap(), 25, 1)
            .unwrap()[0]
            .1[0],
        Value::Int(900)
    );
    assert_eq!(counted.position_of(dense.key_at(25).unwrap()), Some(25));
}

/// RANGETABLE turns a live region into a relation and joins it with a table,
/// under every interface-storage layout.
#[test]
fn rangetable_join_under_every_store() {
    for kind in [StoreKind::Tiled, StoreKind::Block, StoreKind::Naive] {
        let mut wb = build_workbook(kind);
        let s = wb.current_sheet();
        // A bonus sheet region keyed by student id.
        wb.set_region(
            s,
            a("E1"),
            &[
                vec![Value::text("id"), Value::text("bonus")],
                vec![Value::Int(3), Value::Int(5)],
                vec![Value::Int(7), Value::Int(9)],
            ],
        )
        .unwrap();
        let (_, rows) = wb
            .query(
                "SELECT name, score + bonus FROM students NATURAL JOIN RANGETABLE(E1:F3)
                 ORDER BY id",
            )
            .unwrap();
        assert_eq!(
            rows,
            vec![
                vec![Value::text("student03"), Value::Int(58)],
                vec![Value::text("student07"), Value::Int(66)],
            ],
            "store {kind:?}"
        );
    }
}

/// Round trip: import → SQL UPDATE → export back to a sheet.
#[test]
fn import_update_export_round_trip() {
    let mut wb = build_workbook(StoreKind::Tiled);
    wb.execute("UPDATE students SET score = score * 2 WHERE id < 2")
        .unwrap();
    let out = wb.add_sheet("Report").unwrap();
    wb.export_table("students", out, a("A1"), true).unwrap();
    assert_eq!(wb.sheet(out).value(a("C1")), Value::text("score"));
    assert_eq!(
        wb.sheet(out).value(a("C2")),
        Value::Int(100),
        "50 * 2 exported"
    );
    assert_eq!(
        wb.sheet(out).value(a("C4")),
        Value::Int(52),
        "untouched row exported"
    );
}
