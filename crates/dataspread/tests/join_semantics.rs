//! Join semantics the hash paths must preserve, plus equivalence property
//! suites: every query here runs under all four strategy arms (hash /
//! nested-loop × pushdown on/off) and must produce *identical* row
//! sequences — the hash operators emit in nested-loop order by design.

use dataspread::{ExecOptions, Workbook};
use dataspread_testkit::{cases, Rng};
use dataspread_types::Value;

/// The four strategy arms every query is cross-checked under. The all-off
/// arm is the reference implementation (linear scans, nested loops).
/// `cost_based` stays off here: these arms assert *identical row order*,
/// which join reordering deliberately changes — the cost-based arm is
/// checked separately as a multiset.
const ARMS: [ExecOptions; 4] = [
    ExecOptions {
        hash_join: true,
        hash_aggregation: true,
        predicate_pushdown: true,
        cost_based: false,
    },
    ExecOptions {
        hash_join: false,
        hash_aggregation: false,
        predicate_pushdown: false,
        cost_based: false,
    },
    ExecOptions {
        hash_join: true,
        hash_aggregation: false,
        predicate_pushdown: false,
        cost_based: false,
    },
    ExecOptions {
        hash_join: false,
        hash_aggregation: true,
        predicate_pushdown: true,
        cost_based: false,
    },
];

/// Lexicographic row order under `Value::total_cmp` (ties broken by debug
/// representation, so `Int(2)` and `Float(2.0)` sort deterministically),
/// for multiset compares.
fn sorted(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort_by(|a, b| {
        a.iter()
            .zip(b)
            .map(|(x, y)| {
                x.total_cmp(y)
                    .then_with(|| format!("{x:?}").cmp(&format!("{y:?}")))
            })
            .find(|o| o.is_ne())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    rows
}

/// Run `sql` under every arm; assert all arms agree and return the rows.
/// The fifth, cost-based arm (the default options) may reorder joins, so it
/// is compared as a sorted multiset rather than row-for-row.
fn run_arms(wb: &mut Workbook, sql: &str) -> Vec<Vec<Value>> {
    let mut reference: Option<Vec<Vec<Value>>> = None;
    for arm in ARMS {
        wb.set_exec_options(arm);
        let (_, rows) = wb
            .query(sql)
            .unwrap_or_else(|e| panic!("{sql} under {arm:?}: {e}"));
        match &reference {
            None => reference = Some(rows),
            Some(want) => assert_eq!(&rows, want, "{sql} diverged under {arm:?}"),
        }
    }
    let reference = reference.unwrap();
    let cost_arm = ExecOptions::default();
    assert!(cost_arm.cost_based, "default options are cost-based");
    wb.set_exec_options(cost_arm);
    let (_, rows) = wb
        .query(sql)
        .unwrap_or_else(|e| panic!("{sql} under {cost_arm:?}: {e}"));
    assert_eq!(
        sorted(rows),
        sorted(reference.clone()),
        "{sql} diverged under the cost-based arm"
    );
    reference
}

#[test]
fn left_join_preserves_unmatched_rows() {
    let mut wb = Workbook::new();
    wb.execute_script(
        "CREATE TABLE emp (eid INT, did INT);
         INSERT INTO emp VALUES (1, 10), (2, 30), (3, NULL);
         CREATE TABLE dept (did INT, dname TEXT);
         INSERT INTO dept VALUES (10, 'eng'), (20, 'ops');",
    )
    .unwrap();
    let rows = run_arms(
        &mut wb,
        "SELECT eid, dname FROM emp LEFT JOIN dept ON emp.did = dept.did ORDER BY eid",
    );
    assert_eq!(
        rows,
        vec![
            vec![Value::Int(1), Value::text("eng")],
            vec![Value::Int(2), Value::Empty],
            vec![Value::Int(3), Value::Empty],
        ]
    );
}

#[test]
fn null_keys_never_equi_match() {
    let mut wb = Workbook::new();
    wb.execute_script(
        "CREATE TABLE a (k ANY, v INT);
         INSERT INTO a VALUES (NULL, 1), (7, 2);
         CREATE TABLE b (k ANY, w INT);
         INSERT INTO b VALUES (NULL, 10), (7, 20);",
    )
    .unwrap();
    // NULL = NULL is not true: only the 7s pair up.
    let rows = run_arms(&mut wb, "SELECT v, w FROM a JOIN b ON a.k = b.k");
    assert_eq!(rows, vec![vec![Value::Int(2), Value::Int(20)]]);
    // LEFT JOIN: the NULL-keyed left row survives, null-extended.
    let rows = run_arms(
        &mut wb,
        "SELECT v, w FROM a LEFT JOIN b ON a.k = b.k ORDER BY v",
    );
    assert_eq!(
        rows,
        vec![
            vec![Value::Int(1), Value::Empty],
            vec![Value::Int(2), Value::Int(20)],
        ]
    );
}

#[test]
fn mixed_int_float_keys_compare_numerically() {
    let mut wb = Workbook::new();
    wb.execute_script(
        "CREATE TABLE ints (k INT, v TEXT);
         INSERT INTO ints VALUES (2, 'two'), (3, 'three');
         CREATE TABLE floats (k REAL, w TEXT);
         INSERT INTO floats VALUES (2.0, 'deux'), (2.5, 'deux-et-demi'), (3.0, 'trois');",
    )
    .unwrap();
    let rows = run_arms(
        &mut wb,
        "SELECT v, w FROM ints JOIN floats ON ints.k = floats.k ORDER BY v",
    );
    assert_eq!(
        rows,
        vec![
            vec![Value::text("three"), Value::text("trois")],
            vec![Value::text("two"), Value::text("deux")],
        ]
    );
}

#[test]
fn natural_join_rejects_duplicate_shared_names() {
    let mut wb = Workbook::new();
    wb.execute_script(
        "CREATE TABLE t (id INT, x INT);
         INSERT INTO t VALUES (1, 2);
         CREATE TABLE u (id INT, y INT);
         INSERT INTO u VALUES (1, 3);",
    )
    .unwrap();
    // A duplicate shared name on the right side is ambiguous…
    let err = wb
        .query("SELECT * FROM t NATURAL JOIN (SELECT id, y AS id FROM u) s")
        .unwrap_err();
    assert!(
        err.to_string().contains("more than once"),
        "unexpected error: {err}"
    );
    // …and on the left side too (the old executor silently joined on the
    // first match).
    let err = wb
        .query("SELECT * FROM (SELECT id, x AS id FROM t) s NATURAL JOIN u")
        .unwrap_err();
    assert!(
        err.to_string().contains("more than once"),
        "unexpected error: {err}"
    );
    // Non-shared duplicates are fine.
    let rows = run_arms(
        &mut wb,
        "SELECT * FROM t NATURAL JOIN (SELECT id, y AS z FROM u) s",
    );
    assert_eq!(rows.len(), 1);
}

#[test]
fn left_join_on_left_side_term_gates_matching_only() {
    let mut wb = Workbook::new();
    wb.execute_script(
        "CREATE TABLE l (k INT, p INT);
         INSERT INTO l VALUES (1, 0), (2, 1);
         CREATE TABLE r (k INT, w TEXT);
         INSERT INTO r VALUES (1, 'one'), (2, 'two');",
    )
    .unwrap();
    // p = 1 gates matching: row (1,0) must still appear, null-extended —
    // a pushdown that filtered the left scan would drop it.
    let rows = run_arms(
        &mut wb,
        "SELECT l.k, w FROM l LEFT JOIN r ON l.k = r.k AND l.p = 1 ORDER BY l.k",
    );
    assert_eq!(
        rows,
        vec![
            vec![Value::Int(1), Value::Empty],
            vec![Value::Int(2), Value::text("two")],
        ]
    );
}

#[test]
fn left_join_where_on_right_side_is_not_pushed() {
    let mut wb = Workbook::new();
    wb.execute_script(
        "CREATE TABLE l (k INT);
         INSERT INTO l VALUES (1), (2);
         CREATE TABLE r (k INT);
         INSERT INTO r VALUES (1);",
    )
    .unwrap();
    // The anti-join pattern: WHERE r.k IS NULL must see the null-extended
    // rows, so it cannot sink into the right scan.
    let rows = run_arms(
        &mut wb,
        "SELECT l.k FROM l LEFT JOIN r ON l.k = r.k WHERE r.k IS NULL",
    );
    assert_eq!(rows, vec![vec![Value::Int(2)]]);
}

// ---- property suites -----------------------------------------------------

/// Random mixed-type join key: NULL, Int, or Float (often integral, so
/// Int/Float cross-matches actually occur).
fn rand_key(rng: &mut Rng) -> Value {
    match rng.weighted(&[2, 4, 4]) {
        0 => Value::Empty,
        1 => Value::Int(rng.i64().rem_euclid(12)),
        _ => {
            let base = rng.i64().rem_euclid(12) as f64;
            if rng.bool() {
                Value::Float(base)
            } else {
                Value::Float(base + 0.5)
            }
        }
    }
}

fn fill(wb: &mut Workbook, table: &str, rng: &mut Rng, rows: usize) {
    let mut t = wb.catalog_mut().get_mut(table).unwrap();
    for _ in 0..rows {
        let k = rand_key(rng);
        let v = Value::Int(rng.i64().rem_euclid(6));
        t.insert(vec![k, v]).unwrap();
    }
}

#[test]
fn property_hash_join_equals_nested_loop() {
    cases(30, 0x0001_01A0_A5A5, |rng| {
        let mut wb = Workbook::new();
        wb.execute_script(
            "CREATE TABLE l (k ANY, v INT);
             CREATE TABLE r (k ANY, w INT);",
        )
        .unwrap();
        let nl = rng.usize_in(0, 40);
        let nr = rng.usize_in(0, 40);
        fill(&mut wb, "l", rng, nl);
        fill(&mut wb, "r", rng, nr);
        for sql in [
            "SELECT * FROM l JOIN r ON l.k = r.k",
            "SELECT * FROM l LEFT JOIN r ON l.k = r.k",
            "SELECT * FROM l JOIN r ON l.k = r.k AND r.w > 2",
            "SELECT * FROM l LEFT JOIN r ON l.k = r.k AND l.v < 4",
            "SELECT * FROM l JOIN r ON l.k = r.k WHERE l.v > 0 AND r.w < 5",
            "SELECT l.v, r.w FROM l LEFT JOIN r ON l.k = r.k WHERE r.k IS NULL",
            "SELECT * FROM l NATURAL JOIN r",
            "SELECT * FROM l CROSS JOIN r WHERE l.v = r.w",
        ] {
            run_arms(&mut wb, sql);
        }
    });
}

#[test]
fn property_hash_aggregation_equals_linear() {
    cases(30, 0xA6_6E, |rng| {
        let mut wb = Workbook::new();
        wb.execute("CREATE TABLE t (k ANY, v INT)").unwrap();
        let n = rng.usize_in(0, 60);
        fill(&mut wb, "t", rng, n);
        for sql in [
            "SELECT k, COUNT(*), COUNT(v), SUM(v), AVG(v), MIN(v), MAX(v) FROM t GROUP BY k",
            "SELECT k, COUNT(DISTINCT v), SUM(DISTINCT v) FROM t GROUP BY k",
            "SELECT COUNT(*), SUM(v) FROM t",
            "SELECT k FROM t GROUP BY k HAVING COUNT(*) > 1",
        ] {
            run_arms(&mut wb, sql);
        }
    });
}

#[test]
fn property_hash_distinct_matches_linear_dedup() {
    cases(30, 0xD15_71C7, |rng| {
        let mut wb = Workbook::new();
        wb.execute("CREATE TABLE t (k ANY, v INT)").unwrap();
        let n = rng.usize_in(0, 60);
        fill(&mut wb, "t", rng, n);
        let all = run_arms(&mut wb, "SELECT k, v FROM t");
        let distinct = run_arms(&mut wb, "SELECT DISTINCT k, v FROM t");
        // Reference dedup: first occurrence under componentwise sql_eq.
        let mut expect: Vec<Vec<Value>> = Vec::new();
        for row in all {
            if !expect
                .iter()
                .any(|s| s.iter().zip(&row).all(|(a, b)| a.sql_eq(b)))
            {
                expect.push(row);
            }
        }
        assert_eq!(distinct, expect);
    });
}

// ---- scan pruning --------------------------------------------------------

#[test]
fn rangetable_scan_is_column_bounded() {
    use dataspread_types::{col_to_letters, CellAddr};
    let mut wb = Workbook::new();
    let s = wb.current_sheet();
    // A 201×96 region (several 32×32 tile columns): header row, then
    // numbers.
    const COLS: i64 = 96;
    const DATA_ROWS: i64 = 200;
    let mut rows: Vec<Vec<Value>> = Vec::new();
    rows.push((0..COLS).map(|c| Value::text(format!("c{c}"))).collect());
    for r in 0..DATA_ROWS {
        rows.push((0..COLS).map(|c| Value::Int(r * COLS + c)).collect());
    }
    wb.set_region(s, CellAddr::parse_a1("A1").unwrap(), &rows)
        .unwrap();
    let region = format!("A1:{}{}", col_to_letters(COLS as u32 - 1), DATA_ROWS + 1);

    let (_, wide) = wb
        .query(&format!("SELECT * FROM RANGETABLE({region})"))
        .unwrap();
    wb.sheet(s).store().stats().reset();
    let (_, narrow) = wb
        .query(&format!(
            "SELECT c0, c1 FROM RANGETABLE({region}) WHERE c1 > 100"
        ))
        .unwrap();
    let narrow_reads = wb.sheet(s).store().stats().blocks_read();
    wb.sheet(s).store().stats().reset();
    let (_, wide2) = wb
        .query(&format!("SELECT * FROM RANGETABLE({region})"))
        .unwrap();
    let wide_reads = wb.sheet(s).store().stats().blocks_read();

    assert_eq!(wide, wide2);
    assert!(
        narrow_reads < wide_reads,
        "pruned scan must touch fewer blocks: {narrow_reads} vs {wide_reads}"
    );
    // Same answers as projecting the full read.
    let expect: Vec<Vec<Value>> = wide
        .iter()
        .filter(|r| matches!(r[1], Value::Int(i) if i > 100))
        .map(|r| vec![r[0].clone(), r[1].clone()])
        .collect();
    assert_eq!(narrow, expect);
}

#[test]
fn count_star_over_rangetable_reads_no_data_blocks() {
    use dataspread_types::CellAddr;
    let mut wb = Workbook::new();
    let s = wb.current_sheet();
    // Header row in the first tile row, data spilling into further tile
    // rows (64 > 32-row tiles), so a data read is visible in the counters.
    let mut rows: Vec<Vec<Value>> = Vec::new();
    rows.push(vec![Value::text("a"), Value::text("b")]);
    for r in 0..64i64 {
        rows.push(vec![Value::Int(r), Value::Int(r * 2)]);
    }
    wb.set_region(s, CellAddr::parse_a1("A1").unwrap(), &rows)
        .unwrap();

    wb.sheet(s).store().stats().reset();
    let (_, n) = wb.query("SELECT COUNT(*) FROM RANGETABLE(A1:B65)").unwrap();
    let count_reads = wb.sheet(s).store().stats().blocks_read();
    wb.sheet(s).store().stats().reset();
    let (_, full) = wb.query("SELECT a FROM RANGETABLE(A1:B65)").unwrap();
    let data_reads = wb.sheet(s).store().stats().blocks_read();

    assert_eq!(n, vec![vec![Value::Int(64)]]);
    assert_eq!(full.len(), 64);
    // COUNT(*) uses no columns: only the header row is consulted (twice —
    // names + header decision), never the data blocks below it.
    assert!(
        count_reads < data_reads,
        "COUNT(*) must not scan the region: {count_reads} vs {data_reads}"
    );
    assert!(
        count_reads <= 2,
        "COUNT(*) should touch only the header tile: {count_reads}"
    );
}
