//! End-to-end observability: EXPLAIN ANALYZE row-count fidelity, the
//! workbook metrics registry, WAL commit accounting, and the span tracer.
//! Specified in `docs/OBSERVABILITY.md`.

use dataspread::Workbook;
use dataspread_types::Value;

fn seeded() -> Workbook {
    let mut wb = Workbook::new();
    wb.execute("CREATE TABLE ev (k INT, grp INT, amt INT)")
        .unwrap();
    wb.execute("CREATE TABLE grp (g INT, name TEXT)").unwrap();
    wb.execute(
        "INSERT INTO ev VALUES (1, 1, 10), (2, 1, 20), (3, 2, 30), (4, 2, 40), \
         (5, 3, 50), (6, 3, 60), (7, 1, 70), (8, 2, 80)",
    )
    .unwrap();
    wb.execute("INSERT INTO grp VALUES (1, 'a'), (2, 'b'), (3, 'c')")
        .unwrap();
    wb
}

/// The plan lines of one `EXPLAIN ANALYZE`.
fn analyze_lines(wb: &mut Workbook, sql: &str) -> Vec<String> {
    let (_, rows) = wb.query(&format!("EXPLAIN ANALYZE {sql}")).unwrap();
    rows.iter()
        .map(|r| match &r[0] {
            Value::Text(s) => s.clone(),
            other => panic!("plan line is not text: {other:?}"),
        })
        .collect()
}

/// Parse `actual rows=N` out of an annotated plan line.
fn actual_rows(line: &str) -> u64 {
    let at = line
        .find("actual rows=")
        .unwrap_or_else(|| panic!("no annotation in {line:?}"));
    line[at + "actual rows=".len()..]
        .split(|c: char| !c.is_ascii_digit())
        .next()
        .unwrap()
        .parse()
        .unwrap()
}

#[test]
fn explain_analyze_actual_rows_match_select() {
    // The statement-level annotation on the first plan line must equal the
    // row count the same SELECT returns — across scans, filters, joins,
    // aggregates, DISTINCT, and LIMIT.
    let corpus = [
        "SELECT k FROM ev",
        "SELECT k FROM ev WHERE grp = 2",
        "SELECT k FROM ev WHERE grp = 99",
        "SELECT ev.k, grp.name FROM ev JOIN grp ON ev.grp = grp.g",
        "SELECT ev.k FROM ev JOIN grp ON ev.grp = grp.g WHERE grp.name = 'b'",
        "SELECT grp, COUNT(*) FROM ev GROUP BY grp",
        "SELECT grp, SUM(amt) FROM ev GROUP BY grp HAVING SUM(amt) > 100",
        "SELECT DISTINCT grp FROM ev",
        "SELECT k FROM ev ORDER BY amt DESC LIMIT 3",
        "SELECT k FROM ev LIMIT 2 OFFSET 5",
    ];
    let mut wb = seeded();
    for sql in corpus {
        let (_, rows) = wb.query(sql).unwrap();
        let lines = analyze_lines(&mut wb, sql);
        assert_eq!(
            actual_rows(&lines[0]),
            rows.len() as u64,
            "statement annotation vs SELECT for {sql}\n{}",
            lines.join("\n")
        );
        // Every annotated line carries a timing.
        for l in lines.iter().filter(|l| l.contains("actual rows=")) {
            assert!(l.contains("time="), "missing timing in {l:?}");
        }
    }
}

#[test]
fn explain_analyze_annotates_every_plan_node() {
    let mut wb = seeded();
    let lines = analyze_lines(
        &mut wb,
        "SELECT ev.k FROM ev JOIN grp ON ev.grp = grp.g WHERE amt > 20",
    );
    // Root + join + both scan nodes are annotated. The stats-driven planner
    // puts grp (3 rows) on the probe side and the filtered ev scan (6 of 8
    // rows pass amt > 20) on the build side; each scan's actual is its
    // post-pushdown output, which is exactly the join input size.
    let annotated = lines.iter().filter(|l| l.contains("actual rows=")).count();
    assert_eq!(annotated, 4, "{}", lines.join("\n"));
    let scans: Vec<u64> = lines
        .iter()
        .filter(|l| l.trim_start().starts_with("scan"))
        .map(|l| actual_rows(l))
        .collect();
    assert_eq!(scans, vec![3, 6], "probe then build input sizes");
}

#[test]
fn explain_analyze_rejects_non_select() {
    let mut wb = seeded();
    let err = wb.execute("EXPLAIN ANALYZE DELETE FROM ev").unwrap_err();
    assert!(err.to_string().contains("EXPLAIN ANALYZE"), "{err}");
}

#[test]
fn executor_counters_track_scans_and_outputs() {
    let mut wb = seeded();
    let before = wb.metrics_snapshot();
    wb.query("SELECT k FROM ev WHERE grp = 1").unwrap();
    let after = wb.metrics_snapshot();
    let delta = |name: &str| after.counter(name).unwrap() - before.counter(name).unwrap();
    assert_eq!(delta("exec_queries"), 1);
    assert_eq!(delta("exec_rows_scanned"), 8, "full scan of ev");
    assert_eq!(delta("exec_rows_output"), 3, "three grp=1 rows");

    let before = wb.metrics_snapshot();
    wb.query("SELECT ev.k FROM ev JOIN grp ON ev.grp = grp.g")
        .unwrap();
    let after = wb.metrics_snapshot();
    let delta = |name: &str| after.counter(name).unwrap() - before.counter(name).unwrap();
    assert_eq!(delta("exec_join_probe_rows"), 8, "left input");
    assert_eq!(delta("exec_join_build_rows"), 3, "right input");
}

#[test]
fn calc_and_bind_counters_feed_the_registry() {
    let mut wb = seeded();
    let s = wb.current_sheet();
    let a = |t: &str| dataspread_types::CellAddr::parse_a1(t).unwrap();
    wb.set_input(s, a("A1"), "2").unwrap();
    wb.set_input(s, a("B1"), "=A1*2").unwrap();
    wb.set_input(s, a("C1"), "=B1+1").unwrap();
    let snap = wb.metrics_snapshot();
    assert!(snap.counter("calc_passes").unwrap() >= 2);
    assert!(snap.counter("calc_cells_dirtied").unwrap() >= 3);
    assert!(snap.counter("calc_cells_recomputed").unwrap() >= 2);
    // B1 -> C1 is a two-level chain: the depth gauge saw it.
    wb.set_input(s, a("A1"), "5").unwrap();
    let text = wb.metrics_text();
    assert!(
        text.contains("calc_topo_depth 2"),
        "chain depth gauge:\n{text}"
    );
    // A binding refresh diffs cells into the sheet.
    let before = wb.metrics_snapshot().counter("bind_cells_diffed").unwrap();
    wb.bind_table(s, a("E1"), "grp", dataspread::BindModel::Tom)
        .unwrap();
    let after = wb.metrics_snapshot();
    assert!(after.counter("bind_refreshes").unwrap() >= 1);
    // Header (2 cells) + 3 rows x 2 cols = at least 8 cells rendered.
    assert!(after.counter("bind_cells_diffed").unwrap() - before >= 8);
}

#[test]
fn wal_commits_count_once_per_autocommitted_statement() {
    let dir = std::env::temp_dir().join(format!("dsp-obs-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut wb = seeded();
    wb.save(&dir).unwrap();
    let base = wb.metrics_snapshot();
    wb.execute("INSERT INTO ev VALUES (9, 9, 90)").unwrap();
    wb.execute("UPDATE ev SET amt = 0 WHERE k = 9").unwrap();
    wb.execute("DELETE FROM ev WHERE k = 9").unwrap();
    let snap = wb.metrics_snapshot();
    // Each statement auto-commits exactly once — the explicit-commit and
    // autocommit paths are disjoint, so nothing double-counts.
    assert_eq!(
        snap.counter("wal_commits").unwrap() - base.counter("wal_commits").unwrap(),
        3
    );
    // Each autocommit frames its op as BEGIN + op + COMMIT: three records.
    assert_eq!(
        snap.counter("wal_appends").unwrap() - base.counter("wal_appends").unwrap(),
        9
    );
    assert!(snap.counter("wal_fsyncs").unwrap() >= base.counter("wal_fsyncs").unwrap());
    assert_eq!(snap.counter("wal_poison_flips"), Some(0));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn vfs_and_pool_metrics_appear_after_persistence() {
    let dir = std::env::temp_dir().join(format!("dsp-obs-vfs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut wb = seeded();
    wb.save(&dir).unwrap();
    let snap = wb.metrics_snapshot();
    assert!(snap.counter("vfs_file_writes").unwrap() > 0, "save wrote");
    assert!(snap.counter("vfs_write_bytes").unwrap() > 0);
    assert!(snap.counter("vfs_fsyncs").unwrap() > 0, "save synced");
    drop(wb);

    // Reopen: recovery I/O is metered too (the meter is adopted into the
    // fresh workbook's registry), and pool counters aggregate per table.
    // Queries scan plan-time snapshots and bypass the pool; DML is the
    // path that touches frames.
    let mut wb = Workbook::open(&dir).unwrap();
    wb.execute("INSERT INTO ev VALUES (100, 1, 1)").unwrap();
    let snap = wb.metrics_snapshot();
    assert!(snap.counter("vfs_file_reads").unwrap() > 0, "open read");
    assert!(snap.counter("vfs_read_bytes").unwrap() > 0);
    assert!(
        snap.counter("pool_hits").unwrap() + snap.counter("pool_misses").unwrap() > 0,
        "DML touched the buffer pool"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn exported_formats_cover_the_catalog() {
    let mut wb = seeded();
    wb.query("SELECT k FROM ev").unwrap();
    let text = wb.metrics_text();
    let json = wb.metrics_json();
    // Every documented metric is present in both exports, always — a
    // scrape must not gain or lose series depending on engine activity.
    for spec in dataspread::obs::METRICS {
        assert!(
            text.contains(&format!("# TYPE {} ", spec.name)),
            "{} missing from prometheus text",
            spec.name
        );
        assert!(
            json.contains(&format!("\"{}\"", spec.name)),
            "{} missing from json",
            spec.name
        );
    }
    assert!(text.contains("exec_queries 1"), "{text}");
}

#[test]
fn spans_record_statement_execution() {
    let mut wb = seeded();
    wb.query("SELECT k FROM ev").unwrap();
    wb.query("SELECT COUNT(*) FROM grp").unwrap();
    let tracer = wb.tracer();
    assert!(tracer.recorded() >= 2);
    let recent = tracer.recent();
    assert!(recent.iter().any(|s| s.name == "sql_execute"), "{recent:?}");
    let snap = wb.metrics_snapshot();
    assert_eq!(snap.counter("spans_recorded"), Some(tracer.recorded()));
}
