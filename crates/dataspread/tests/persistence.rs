//! The durability acceptance path: a workbook with tables and sheet data
//! survives `save` → process restart → `open` with identical query results,
//! across checkpoints, WAL replay, and crash-shaped file states.

use std::path::PathBuf;

use dataspread::{StoreKind, Workbook};
use dataspread_relstore::snapshot::{DATA_FILE, WAL_FILE};
use dataspread_types::{CellAddr, Range, Value};

fn tmp_dir(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("dsp-persist-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn a(s: &str) -> CellAddr {
    CellAddr::parse_a1(s).unwrap()
}

/// Queries whose results must be identical across a save/open cycle.
fn fingerprint(wb: &mut Workbook) -> Vec<Vec<Vec<Value>>> {
    [
        "SELECT * FROM students ORDER BY id",
        "SELECT COUNT(*), SUM(score) FROM students",
        "SELECT name FROM students WHERE score > RANGEVALUE(B1) ORDER BY name",
        "SELECT s.name, b.bonus FROM students s JOIN bonuses b ON s.id = b.id ORDER BY s.id",
    ]
    .iter()
    .map(|q| wb.query(q).unwrap().1)
    .collect()
}

fn build_workbook() -> Workbook {
    let mut wb = Workbook::new();
    wb.execute_script(
        "CREATE TABLE students (id INT PRIMARY KEY, name TEXT NOT NULL, score REAL);
         INSERT INTO students VALUES (1, 'ada', 91.5), (2, 'alan', 87.0), (3, 'grace', 95.25);
         CREATE TABLE bonuses (id INT, bonus INT);
         INSERT INTO bonuses VALUES (1, 5), (3, 7);",
    )
    .unwrap();
    let s = wb.current_sheet();
    wb.set_input(s, a("B1"), "90").unwrap();
    wb.set_input(s, a("A1"), "cutoff:").unwrap();
    wb
}

#[test]
fn save_reopen_identical_results() {
    let dir = tmp_dir("roundtrip");
    let mut wb = build_workbook();
    let reference = fingerprint(&mut wb);
    wb.save(&dir).unwrap();
    assert!(wb.is_durable());
    assert_eq!(wb.store_dir(), Some(dir.as_path()));
    drop(wb); // process "restart"

    let mut wb = Workbook::open(&dir).unwrap();
    assert_eq!(fingerprint(&mut wb), reference);
    // Sheet state came back too: cells and the current-sheet pointer.
    let s = wb.current_sheet();
    assert_eq!(wb.sheet(s).value(a("A1")), Value::text("cutoff:"));
    assert_eq!(wb.sheet(s).value(a("B1")), Value::Int(90));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn wal_tail_survives_crash_without_checkpoint() {
    let dir = tmp_dir("waltail");
    let mut wb = build_workbook();
    wb.save(&dir).unwrap();
    // Post-checkpoint DML: durable via the WAL alone. Simulate a crash by
    // copying the store files *before* any further checkpoint, then
    // reopening from the copy.
    wb.execute("INSERT INTO students VALUES (4, 'edsger', 88.0)")
        .unwrap();
    wb.execute("UPDATE students SET score = 99.0 WHERE id = 2")
        .unwrap();
    wb.execute("DELETE FROM bonuses WHERE id = 1").unwrap();
    wb.insert_tuple_at(
        "students",
        0,
        vec![Value::Int(5), Value::text("kay"), Value::Float(70.0)],
    )
    .unwrap();
    let reference = fingerprint(&mut wb);
    let order: Vec<Vec<Value>> = wb
        .fetch_window("students", 0, 10)
        .unwrap()
        .into_iter()
        .map(|(_, row)| row)
        .collect();

    let crashed = tmp_dir("waltail-crashed");
    std::fs::create_dir_all(&crashed).unwrap();
    for f in [DATA_FILE, WAL_FILE] {
        std::fs::copy(dir.join(f), crashed.join(f)).unwrap();
    }
    drop(wb);

    let mut wb = Workbook::open(&crashed).unwrap();
    assert_eq!(fingerprint(&mut wb), reference);
    // Positional order replayed too (the paper's signature operation).
    let reopened: Vec<Vec<Value>> = wb
        .fetch_window("students", 0, 10)
        .unwrap()
        .into_iter()
        .map(|(_, row)| row)
        .collect();
    assert_eq!(reopened, order);
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&crashed).unwrap();
}

#[test]
fn ddl_checkpoints_automatically() {
    let dir = tmp_dir("ddl");
    let mut wb = build_workbook();
    wb.save(&dir).unwrap();
    wb.execute("ALTER TABLE students ADD COLUMN grade TEXT DEFAULT '?'")
        .unwrap();
    wb.execute("UPDATE students SET grade = 'A' WHERE id = 3")
        .unwrap();
    wb.execute("CREATE TABLE fresh (x INT)").unwrap();
    wb.execute("INSERT INTO fresh VALUES (11)").unwrap();
    drop(wb);

    let mut wb = Workbook::open(&dir).unwrap();
    let (_, rows) = wb.query("SELECT grade FROM students WHERE id = 3").unwrap();
    assert_eq!(rows, vec![vec![Value::text("A")]]);
    let (_, rows) = wb.query("SELECT x FROM fresh").unwrap();
    assert_eq!(rows, vec![vec![Value::Int(11)]]);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn import_region_is_durable() {
    let dir = tmp_dir("import");
    let mut wb = Workbook::with_store(StoreKind::Block);
    let s = wb.current_sheet();
    wb.set_region(
        s,
        a("A1"),
        &[
            vec![Value::text("k"), Value::text("v")],
            vec![Value::Int(1), Value::text("one")],
            vec![Value::Int(2), Value::text("two")],
        ],
    )
    .unwrap();
    wb.save(&dir).unwrap();
    wb.import_region(s, Range::parse_a1("A1:B3").unwrap(), "kv", true)
        .unwrap();
    drop(wb);

    let mut wb = Workbook::open(&dir).unwrap();
    let (_, rows) = wb.query("SELECT v FROM kv ORDER BY k").unwrap();
    assert_eq!(
        rows,
        vec![vec![Value::text("one")], vec![Value::text("two")]]
    );
    // Store kind survived the round trip.
    let s = wb.current_sheet();
    assert_eq!(wb.sheet(s).store_kind(), StoreKind::Block);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn failed_statement_recovers_to_what_memory_saw() {
    let dir = tmp_dir("failed");
    let mut wb = build_workbook();
    wb.save(&dir).unwrap();
    wb.execute("INSERT INTO students VALUES (10, 'ok', 50.0)")
        .unwrap();
    // Multi-row insert failing on its LAST row (duplicate pk): the engine
    // applies row by row, so 20 and 21 are in memory when the statement
    // errors. The log must mirror that — recovery may not invent an
    // alternate history where the statement never ran.
    assert!(wb
        .execute("INSERT INTO students VALUES (20, 'p1', 1.0), (21, 'p2', 2.0), (20, 'dup', 3.0)")
        .is_err());
    let in_memory = wb
        .query("SELECT id FROM students WHERE id >= 10 ORDER BY id")
        .unwrap()
        .1;
    assert_eq!(
        in_memory,
        vec![
            vec![Value::Int(10)],
            vec![Value::Int(20)],
            vec![Value::Int(21)]
        ]
    );
    // The log stays usable for the next statement.
    wb.execute("INSERT INTO students VALUES (11, 'after', 60.0)")
        .unwrap();
    drop(wb);

    let mut wb = Workbook::open(&dir).unwrap();
    let (_, rows) = wb
        .query("SELECT id FROM students WHERE id >= 10 ORDER BY id")
        .unwrap();
    assert_eq!(
        rows,
        vec![
            vec![Value::Int(10)],
            vec![Value::Int(11)],
            vec![Value::Int(20)],
            vec![Value::Int(21)]
        ],
        "disk must replay to exactly what live queries saw"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn saving_over_foreign_store_advances_generation() {
    let dir = tmp_dir("generation");
    let mut wb1 = build_workbook();
    wb1.save(&dir).unwrap(); // generation 1
    wb1.save(&dir).unwrap(); // generation 2
    drop(wb1);
    // A different workbook adopting the same directory must continue the
    // sequence, not restart at 1 — otherwise a crash between snapshot
    // rename and WAL reset could resurrect (or hard-reject) a stale WAL.
    let mut wb2 = Workbook::new();
    wb2.execute("CREATE TABLE other (y INT)").unwrap();
    wb2.save(&dir).unwrap();
    drop(wb2);
    let pf = dataspread::relstore::PageFile::open(dir.join(DATA_FILE)).unwrap();
    assert!(
        pf.generation() >= 3,
        "generation must be monotone, got {}",
        pf.generation()
    );
    drop(pf);
    let mut wb = Workbook::open(&dir).unwrap();
    let (_, rows) = wb.query("SELECT COUNT(*) FROM other").unwrap();
    assert_eq!(rows, vec![vec![Value::Int(0)]]);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn open_missing_or_corrupt_store_errors_cleanly() {
    let dir = tmp_dir("corrupt");
    assert!(Workbook::open(&dir).is_err(), "missing store");
    let mut wb = build_workbook();
    wb.save(&dir).unwrap();
    drop(wb);
    // Bit-flip inside the first frame's payload (offset 64 header + 16
    // frame header + 2): open must fail with an error, never decode
    // garbage.
    let data = dir.join(DATA_FILE);
    let mut raw = std::fs::read(&data).unwrap();
    raw[64 + 16 + 2] ^= 0x40;
    std::fs::write(&data, &raw).unwrap();
    assert!(Workbook::open(&dir).is_err(), "corrupt page file detected");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sheet_edits_survive_crash_without_checkpoint() {
    let dir = tmp_dir("sheetedits");
    let mut wb = build_workbook();
    wb.save(&dir).unwrap();
    // Post-checkpoint grid edits: literals, a formula, and a structural
    // edit — durable via the WAL alone, no checkpoint follows.
    let s = wb.current_sheet();
    wb.set_input(s, a("D1"), "10").unwrap();
    wb.set_input(s, a("D2"), "32").unwrap();
    let v = wb.set_input(s, a("D3"), "=SUM(D1:D2)").unwrap();
    assert_eq!(v, Value::Int(42));
    wb.set_input(s, a("E1"), "direct").unwrap(); // raw-path edit logs too
    wb.insert_rows(s, 0, 2).unwrap(); // shifts D1:D3 → D3:D5
    wb.set_value(s, a("F9"), Value::Bool(true)).unwrap();

    let crashed = tmp_dir("sheetedits-crashed");
    std::fs::create_dir_all(&crashed).unwrap();
    for f in [DATA_FILE, WAL_FILE] {
        std::fs::copy(dir.join(f), crashed.join(f)).unwrap();
    }
    drop(wb); // crash

    let mut wb = Workbook::open(&crashed).unwrap();
    let s = wb.current_sheet();
    assert_eq!(wb.cell(s, a("D3")), Value::Int(10));
    assert_eq!(wb.cell(s, a("D4")), Value::Int(32));
    assert_eq!(wb.cell(s, a("D5")), Value::Int(42), "formula recomputed");
    assert_eq!(wb.formula_text(s, a("D5")), Some("=SUM(D3:D4)"));
    assert_eq!(wb.cell(s, a("E3")), Value::text("direct"));
    assert_eq!(
        wb.cell(s, a("F9")),
        Value::Bool(true),
        "edit after the shift"
    );
    // The dependency graph is live after recovery: edit a precedent.
    wb.set_input(s, a("D3"), "100").unwrap();
    assert_eq!(wb.cell(s, a("D5")), Value::Int(132));
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&crashed).unwrap();
}

#[test]
fn formula_cells_survive_save_open() {
    let dir = tmp_dir("formulasave");
    let mut wb = build_workbook();
    let s = wb.current_sheet();
    wb.set_input(s, a("C1"), "=RANGEVALUE").ok(); // not a formula fn: stays #NAME?
    wb.set_input(s, a("C2"), "=B1*2").unwrap(); // B1 = 90 from build_workbook
    wb.set_input(s, a("C3"), "=C2+C9").unwrap();
    wb.save(&dir).unwrap();
    drop(wb);

    let mut wb = Workbook::open(&dir).unwrap();
    let s = wb.current_sheet();
    assert_eq!(wb.formula_text(s, a("C2")), Some("=B1*2"));
    assert_eq!(wb.cell(s, a("C2")), Value::Int(180));
    assert_eq!(wb.cell(s, a("C3")), Value::Int(180));
    assert!(wb.cell(s, a("C1")).is_error(), "unparseable stays an error");
    assert_eq!(wb.formula_text(s, a("C1")), Some("=RANGEVALUE"));
    // Still incremental after reopen.
    wb.set_input(s, a("B1"), "10").unwrap();
    assert_eq!(wb.cell(s, a("C2")), Value::Int(20));
    // And visible to SQL.
    let (_, rows) = wb.query("SELECT RANGEVALUE(C2)").unwrap();
    assert_eq!(rows, vec![vec![Value::Int(20)]]);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sheet_edit_wal_truncation_recovers_a_prefix() {
    // Crash injection: chop the WAL at random byte boundaries; recovery must
    // reconstruct the state after some *prefix* of the committed edits —
    // never a mixture, never garbage.
    let base = tmp_dir("sheettorn");
    let mut wb = build_workbook();
    wb.save(&base).unwrap();
    let s = wb.current_sheet();
    // Each edit is one auto-committed WAL transaction.
    let edits: Vec<(&str, &str)> = vec![
        ("D1", "5"),
        ("D2", "=D1*10"),
        ("D1", "7"),
        ("D3", "hello"),
        ("D2", "=D1+1"),
    ];
    // Expected cell states after each prefix of edits.
    let probe = ["D1", "D2", "D3"];
    let mut expected: Vec<Vec<Value>> = Vec::new();
    {
        let mut model = build_workbook();
        let ms = model.current_sheet();
        expected.push(probe.iter().map(|p| model.cell(ms, a(p))).collect());
        for (cell, input) in &edits {
            model.set_input(ms, a(cell), input).unwrap();
            expected.push(probe.iter().map(|p| model.cell(ms, a(p))).collect());
        }
    }
    for (cell, input) in &edits {
        wb.set_input(s, a(cell), input).unwrap();
    }
    drop(wb);

    let wal_bytes = std::fs::read(base.join(WAL_FILE)).unwrap();
    let mut rng = dataspread_testkit::Rng::new(0x7E57);
    for trial in 0..30 {
        let cut = rng.usize_in(0, wal_bytes.len() + 1);
        let dir = tmp_dir(&format!("sheettorn-{trial}"));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::copy(base.join(DATA_FILE), dir.join(DATA_FILE)).unwrap();
        std::fs::write(dir.join(WAL_FILE), &wal_bytes[..cut]).unwrap();
        let mut wb = Workbook::open(&dir).unwrap();
        let s = wb.current_sheet();
        let state: Vec<Value> = probe.iter().map(|p| wb.cell(s, a(p))).collect();
        assert!(
            expected.contains(&state),
            "cut {cut}: recovered state {state:?} is not a prefix state"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn replayed_formulas_typed_after_structural_edits_keep_coordinates() {
    // Crash recovery replays the WAL tail as one batch. A formula logged
    // AFTER a structural edit already refers to post-edit coordinates; the
    // recovery flush must not shift it a second time.
    let dir = tmp_dir("replayorder");
    let mut wb = build_workbook();
    let data = {
        wb.save(&dir).unwrap();
        wb.add_sheet("Data").unwrap() // checkpoints (durable)
    };
    let s = wb.current_sheet();
    wb.set_input(data, a("A5"), "9").unwrap();
    wb.insert_rows(data, 0, 1).unwrap(); // A5 → A6
    wb.set_input(s, a("B1"), "=Data!A6").unwrap(); // post-shift coordinates
    assert_eq!(wb.cell(s, a("B1")), Value::Int(9));

    let crashed = tmp_dir("replayorder-crashed");
    std::fs::create_dir_all(&crashed).unwrap();
    for f in [DATA_FILE, WAL_FILE] {
        std::fs::copy(dir.join(f), crashed.join(f)).unwrap();
    }
    drop(wb);

    let mut wb = Workbook::open(&crashed).unwrap();
    let s = wb.current_sheet();
    assert_eq!(
        wb.formula_text(s, a("B1")),
        Some("=Data!A6"),
        "recovery must not double-shift a formula typed after the edit"
    );
    assert_eq!(wb.cell(s, a("B1")), Value::Int(9));
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&crashed).unwrap();
}

#[test]
fn pool_capacity_survives_reopen() {
    let dir = tmp_dir("poolcap");
    let mut wb = Workbook::new();
    wb.set_default_pool_capacity(7);
    wb.execute("CREATE TABLE tuned (x INT)").unwrap();
    assert_eq!(
        wb.catalog().get("tuned").unwrap().pool().capacity(),
        7,
        "configured capacity applies to tables created via SQL"
    );
    wb.save(&dir).unwrap();
    drop(wb);

    let mut wb = Workbook::open(&dir).unwrap();
    assert_eq!(
        wb.default_pool_capacity(),
        7,
        "capacity persisted in the snapshot header"
    );
    assert_eq!(wb.catalog().get("tuned").unwrap().pool().capacity(), 7);
    // Tables created after reopening inherit the restored budget.
    wb.execute("CREATE TABLE later (y INT)").unwrap();
    assert_eq!(wb.catalog().get("later").unwrap().pool().capacity(), 7);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn repeated_saves_and_reopens_are_stable() {
    let dir = tmp_dir("repeat");
    let mut wb = build_workbook();
    wb.save(&dir).unwrap();
    for round in 0..5 {
        wb.execute(&format!(
            "INSERT INTO bonuses VALUES ({}, {})",
            100 + round,
            round
        ))
        .unwrap();
        wb.save(&dir).unwrap();
        drop(wb);
        wb = Workbook::open(&dir).unwrap();
    }
    let (_, rows) = wb.query("SELECT COUNT(*) FROM bonuses").unwrap();
    assert_eq!(rows, vec![vec![Value::Int(7)]]);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Optimizer statistics are part of the workbook meta: they survive
/// save → open exactly, and a crash after unsynced post-checkpoint DML
/// rebuilds a sketch that still covers the replayed rows.
#[test]
fn statistics_survive_save_open_and_wal_replay() {
    let dir = tmp_dir("stats");
    let mut wb = build_workbook();
    wb.execute("ANALYZE").unwrap();
    let snap = |wb: &Workbook| -> Vec<(f64, u64, Option<f64>, Option<f64>)> {
        let t = wb.catalog().get("students").unwrap();
        (0..3)
            .map(|c| {
                let s = t.statistics().column(c).unwrap();
                (s.ndv(), s.null_count(), s.num_min(), s.num_max())
            })
            .collect()
    };
    let reference = snap(&wb);
    let plan = wb
        .query("EXPLAIN SELECT name FROM students WHERE id = 2")
        .unwrap()
        .1;
    wb.save(&dir).unwrap();
    drop(wb); // process "restart"

    // Clean reopen: stats come back from the meta block, not a rebuild —
    // same sketches, same EXPLAIN estimates.
    let mut wb = Workbook::open(&dir).unwrap();
    assert_eq!(snap(&wb), reference, "persisted stats differ after open");
    assert_eq!(
        wb.query("EXPLAIN SELECT name FROM students WHERE id = 2")
            .unwrap()
            .1,
        plan,
        "EXPLAIN must be stable across save/open"
    );

    // Crash injection: DML after the checkpoint reaches disk only through
    // the WAL. Copy the crash-shaped files and reopen; replay re-observes
    // the new rows, so the sketch row count is exact and the envelope
    // covers the new extreme value.
    wb.execute("INSERT INTO students VALUES (7, 'zz-top', 999.0)")
        .unwrap();
    wb.execute("DELETE FROM students WHERE id = 1").unwrap();
    let live_rows = wb.query("SELECT COUNT(*) FROM students").unwrap().1;
    let crashed = tmp_dir("stats-crashed");
    std::fs::create_dir_all(&crashed).unwrap();
    for f in [DATA_FILE, WAL_FILE] {
        std::fs::copy(dir.join(f), crashed.join(f)).unwrap();
    }
    drop(wb); // crash

    let mut wb = Workbook::open(&crashed).unwrap();
    assert_eq!(
        wb.query("SELECT COUNT(*) FROM students").unwrap().1,
        live_rows
    );
    {
        let t = wb.catalog().get("students").unwrap();
        assert_eq!(t.row_count(), 3, "replayed row count");
        let score = t.statistics().column(2).unwrap();
        assert!(
            score.num_max().is_some_and(|m| m >= 999.0),
            "replayed insert must widen the score envelope, got {:?}",
            score.num_max()
        );
        let id = t.statistics().column(0).unwrap();
        assert!(id.ndv() >= 3.0, "id NDV undercounts after replay");
    }
    // ANALYZE after recovery snaps everything to exact again.
    wb.execute("ANALYZE students").unwrap();
    let t = wb.catalog().get("students").unwrap();
    assert_eq!(t.statistics().column(0).unwrap().ndv(), 3.0);
    drop(t);
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&crashed).unwrap();
}
