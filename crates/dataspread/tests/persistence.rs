//! The durability acceptance path: a workbook with tables and sheet data
//! survives `save` → process restart → `open` with identical query results,
//! across checkpoints, WAL replay, and crash-shaped file states.

use std::path::PathBuf;

use dataspread::{StoreKind, Workbook};
use dataspread_relstore::snapshot::{DATA_FILE, WAL_FILE};
use dataspread_types::{CellAddr, Range, Value};

fn tmp_dir(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("dsp-persist-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn a(s: &str) -> CellAddr {
    CellAddr::parse_a1(s).unwrap()
}

/// Queries whose results must be identical across a save/open cycle.
fn fingerprint(wb: &mut Workbook) -> Vec<Vec<Vec<Value>>> {
    [
        "SELECT * FROM students ORDER BY id",
        "SELECT COUNT(*), SUM(score) FROM students",
        "SELECT name FROM students WHERE score > RANGEVALUE(B1) ORDER BY name",
        "SELECT s.name, b.bonus FROM students s JOIN bonuses b ON s.id = b.id ORDER BY s.id",
    ]
    .iter()
    .map(|q| wb.query(q).unwrap().1)
    .collect()
}

fn build_workbook() -> Workbook {
    let mut wb = Workbook::new();
    wb.execute_script(
        "CREATE TABLE students (id INT PRIMARY KEY, name TEXT NOT NULL, score REAL);
         INSERT INTO students VALUES (1, 'ada', 91.5), (2, 'alan', 87.0), (3, 'grace', 95.25);
         CREATE TABLE bonuses (id INT, bonus INT);
         INSERT INTO bonuses VALUES (1, 5), (3, 7);",
    )
    .unwrap();
    let s = wb.current_sheet();
    wb.sheet_mut(s).set_input(a("B1"), "90");
    wb.sheet_mut(s).set_input(a("A1"), "cutoff:");
    wb
}

#[test]
fn save_reopen_identical_results() {
    let dir = tmp_dir("roundtrip");
    let mut wb = build_workbook();
    let reference = fingerprint(&mut wb);
    wb.save(&dir).unwrap();
    assert!(wb.is_durable());
    assert_eq!(wb.store_dir(), Some(dir.as_path()));
    drop(wb); // process "restart"

    let mut wb = Workbook::open(&dir).unwrap();
    assert_eq!(fingerprint(&mut wb), reference);
    // Sheet state came back too: cells and the current-sheet pointer.
    let s = wb.current_sheet();
    assert_eq!(wb.sheet(s).value(a("A1")), Value::text("cutoff:"));
    assert_eq!(wb.sheet(s).value(a("B1")), Value::Int(90));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn wal_tail_survives_crash_without_checkpoint() {
    let dir = tmp_dir("waltail");
    let mut wb = build_workbook();
    wb.save(&dir).unwrap();
    // Post-checkpoint DML: durable via the WAL alone. Simulate a crash by
    // copying the store files *before* any further checkpoint, then
    // reopening from the copy.
    wb.execute("INSERT INTO students VALUES (4, 'edsger', 88.0)")
        .unwrap();
    wb.execute("UPDATE students SET score = 99.0 WHERE id = 2")
        .unwrap();
    wb.execute("DELETE FROM bonuses WHERE id = 1").unwrap();
    wb.insert_tuple_at(
        "students",
        0,
        vec![Value::Int(5), Value::text("kay"), Value::Float(70.0)],
    )
    .unwrap();
    let reference = fingerprint(&mut wb);
    let order: Vec<Vec<Value>> = wb
        .fetch_window("students", 0, 10)
        .unwrap()
        .into_iter()
        .map(|(_, row)| row)
        .collect();

    let crashed = tmp_dir("waltail-crashed");
    std::fs::create_dir_all(&crashed).unwrap();
    for f in [DATA_FILE, WAL_FILE] {
        std::fs::copy(dir.join(f), crashed.join(f)).unwrap();
    }
    drop(wb);

    let mut wb = Workbook::open(&crashed).unwrap();
    assert_eq!(fingerprint(&mut wb), reference);
    // Positional order replayed too (the paper's signature operation).
    let reopened: Vec<Vec<Value>> = wb
        .fetch_window("students", 0, 10)
        .unwrap()
        .into_iter()
        .map(|(_, row)| row)
        .collect();
    assert_eq!(reopened, order);
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&crashed).unwrap();
}

#[test]
fn ddl_checkpoints_automatically() {
    let dir = tmp_dir("ddl");
    let mut wb = build_workbook();
    wb.save(&dir).unwrap();
    wb.execute("ALTER TABLE students ADD COLUMN grade TEXT DEFAULT '?'")
        .unwrap();
    wb.execute("UPDATE students SET grade = 'A' WHERE id = 3")
        .unwrap();
    wb.execute("CREATE TABLE fresh (x INT)").unwrap();
    wb.execute("INSERT INTO fresh VALUES (11)").unwrap();
    drop(wb);

    let mut wb = Workbook::open(&dir).unwrap();
    let (_, rows) = wb.query("SELECT grade FROM students WHERE id = 3").unwrap();
    assert_eq!(rows, vec![vec![Value::text("A")]]);
    let (_, rows) = wb.query("SELECT x FROM fresh").unwrap();
    assert_eq!(rows, vec![vec![Value::Int(11)]]);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn import_region_is_durable() {
    let dir = tmp_dir("import");
    let mut wb = Workbook::with_store(StoreKind::Block);
    let s = wb.current_sheet();
    wb.sheet_mut(s).set_region(
        a("A1"),
        &[
            vec![Value::text("k"), Value::text("v")],
            vec![Value::Int(1), Value::text("one")],
            vec![Value::Int(2), Value::text("two")],
        ],
    );
    wb.save(&dir).unwrap();
    wb.import_region(s, Range::parse_a1("A1:B3").unwrap(), "kv", true)
        .unwrap();
    drop(wb);

    let mut wb = Workbook::open(&dir).unwrap();
    let (_, rows) = wb.query("SELECT v FROM kv ORDER BY k").unwrap();
    assert_eq!(
        rows,
        vec![vec![Value::text("one")], vec![Value::text("two")]]
    );
    // Store kind survived the round trip.
    let s = wb.current_sheet();
    assert_eq!(wb.sheet(s).store_kind(), StoreKind::Block);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn failed_statement_recovers_to_what_memory_saw() {
    let dir = tmp_dir("failed");
    let mut wb = build_workbook();
    wb.save(&dir).unwrap();
    wb.execute("INSERT INTO students VALUES (10, 'ok', 50.0)")
        .unwrap();
    // Multi-row insert failing on its LAST row (duplicate pk): the engine
    // applies row by row, so 20 and 21 are in memory when the statement
    // errors. The log must mirror that — recovery may not invent an
    // alternate history where the statement never ran.
    assert!(wb
        .execute("INSERT INTO students VALUES (20, 'p1', 1.0), (21, 'p2', 2.0), (20, 'dup', 3.0)")
        .is_err());
    let in_memory = wb
        .query("SELECT id FROM students WHERE id >= 10 ORDER BY id")
        .unwrap()
        .1;
    assert_eq!(
        in_memory,
        vec![
            vec![Value::Int(10)],
            vec![Value::Int(20)],
            vec![Value::Int(21)]
        ]
    );
    // The log stays usable for the next statement.
    wb.execute("INSERT INTO students VALUES (11, 'after', 60.0)")
        .unwrap();
    drop(wb);

    let mut wb = Workbook::open(&dir).unwrap();
    let (_, rows) = wb
        .query("SELECT id FROM students WHERE id >= 10 ORDER BY id")
        .unwrap();
    assert_eq!(
        rows,
        vec![
            vec![Value::Int(10)],
            vec![Value::Int(11)],
            vec![Value::Int(20)],
            vec![Value::Int(21)]
        ],
        "disk must replay to exactly what live queries saw"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn saving_over_foreign_store_advances_generation() {
    let dir = tmp_dir("generation");
    let mut wb1 = build_workbook();
    wb1.save(&dir).unwrap(); // generation 1
    wb1.save(&dir).unwrap(); // generation 2
    drop(wb1);
    // A different workbook adopting the same directory must continue the
    // sequence, not restart at 1 — otherwise a crash between snapshot
    // rename and WAL reset could resurrect (or hard-reject) a stale WAL.
    let mut wb2 = Workbook::new();
    wb2.execute("CREATE TABLE other (y INT)").unwrap();
    wb2.save(&dir).unwrap();
    drop(wb2);
    let pf = dataspread::relstore::PageFile::open(dir.join(DATA_FILE)).unwrap();
    assert!(
        pf.generation() >= 3,
        "generation must be monotone, got {}",
        pf.generation()
    );
    drop(pf);
    let mut wb = Workbook::open(&dir).unwrap();
    let (_, rows) = wb.query("SELECT COUNT(*) FROM other").unwrap();
    assert_eq!(rows, vec![vec![Value::Int(0)]]);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn open_missing_or_corrupt_store_errors_cleanly() {
    let dir = tmp_dir("corrupt");
    assert!(Workbook::open(&dir).is_err(), "missing store");
    let mut wb = build_workbook();
    wb.save(&dir).unwrap();
    drop(wb);
    // Bit-flip inside the first frame's payload (offset 64 header + 16
    // frame header + 2): open must fail with an error, never decode
    // garbage.
    let data = dir.join(DATA_FILE);
    let mut raw = std::fs::read(&data).unwrap();
    raw[64 + 16 + 2] ^= 0x40;
    std::fs::write(&data, &raw).unwrap();
    assert!(Workbook::open(&dir).is_err(), "corrupt page file detected");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn repeated_saves_and_reopens_are_stable() {
    let dir = tmp_dir("repeat");
    let mut wb = build_workbook();
    wb.save(&dir).unwrap();
    for round in 0..5 {
        wb.execute(&format!(
            "INSERT INTO bonuses VALUES ({}, {})",
            100 + round,
            round
        ))
        .unwrap();
        wb.save(&dir).unwrap();
        drop(wb);
        wb = Workbook::open(&dir).unwrap();
    }
    let (_, rows) = wb.query("SELECT COUNT(*) FROM bonuses").unwrap();
    assert_eq!(rows, vec![vec![Value::Int(7)]]);
    std::fs::remove_dir_all(&dir).unwrap();
}
