//! Formula evaluation.
//!
//! Evaluation never fails as a `Result`: every failure mode is an in-cell
//! error value (`#DIV/0!`, `#VALUE!`, `#REF!`, …), exactly what the grid
//! displays. Errors propagate through operators and aggregates; `IF`
//! evaluates lazily so an error in the untaken branch is invisible.
//!
//! Numeric semantics keep the `Int`/`Float` split of [`Value`]: integer
//! operands produce integer results when the mathematical result is integral
//! and representable (`4/2 = 2`, `5/2 = 2.5`, overflow widens to float).

use dataspread_types::{CellAddr, CellError, Range, SheetRef, Value};

use crate::{BinOp, Expr, Func};

/// Where a formula's references resolve: the engine implements this over the
/// live workbook (cached cell values), tests over plain maps.
pub trait CellProvider {
    /// The current value of one cell. `SheetRef::Current` means the sheet
    /// the formula lives on. `Err` when the referenced sheet does not exist
    /// (surfaced as `#REF!`).
    fn cell_value(&self, sheet: &SheetRef, addr: CellAddr) -> Result<Value, CellError>;
}

/// The result of evaluating one argument expression: a scalar, or a range to
/// be iterated by an aggregate.
enum Arg {
    Scalar(Value),
    Cells(SheetRef, Range),
}

/// Evaluate an expression to its display value.
pub fn eval(e: &Expr, cells: &dyn CellProvider) -> Value {
    match eval_arg(e, cells) {
        Arg::Scalar(v) => v,
        // A bare range where a scalar is demanded (`=A1:B2`) is a value error.
        Arg::Cells(..) => Value::Error(CellError::Value),
    }
}

fn eval_arg(e: &Expr, cells: &dyn CellProvider) -> Arg {
    match e {
        Expr::Lit(v) => Arg::Scalar(v.clone()),
        Expr::Cell(c) => Arg::Scalar(match cells.cell_value(&c.sheet, c.addr) {
            Ok(v) => v,
            Err(err) => Value::Error(err),
        }),
        Expr::Range(r) => Arg::Cells(r.sheet.clone(), r.range()),
        Expr::RefError => Arg::Scalar(Value::Error(CellError::Ref)),
        Expr::Neg(a) => Arg::Scalar(negate(eval(a, cells))),
        Expr::Bin(op, a, b) => Arg::Scalar(binary(*op, eval(a, cells), eval(b, cells))),
        Expr::Call(f, args) => Arg::Scalar(call(*f, args, cells)),
    }
}

fn negate(v: Value) -> Value {
    match v {
        Value::Int(i) => match i.checked_neg() {
            Some(n) => Value::Int(n),
            None => Value::Float(-(i as f64)),
        },
        Value::Error(e) => Value::Error(e),
        other => match other.coerce_f64() {
            Ok(f) => Value::Float(-f),
            Err(e) => Value::Error(e),
        },
    }
}

/// Wrap a float result, mapping NaN/∞ to `#NUM!`.
fn num(f: f64) -> Value {
    if f.is_finite() {
        Value::Float(f)
    } else {
        Value::Error(CellError::Num)
    }
}

fn binary(op: BinOp, a: Value, b: Value) -> Value {
    if let Some(e) = a.as_error() {
        return Value::Error(e);
    }
    if let Some(e) = b.as_error() {
        return Value::Error(e);
    }
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Pow => arith(op, &a, &b),
        BinOp::Concat => match (a.coerce_text(), b.coerce_text()) {
            (Ok(x), Ok(y)) => Value::Text(x + &y),
            (Err(e), _) | (_, Err(e)) => Value::Error(e),
        },
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            match a.compare(&b) {
                Some(ord) => Value::Bool(match op {
                    BinOp::Eq => ord.is_eq(),
                    BinOp::Ne => ord.is_ne(),
                    BinOp::Lt => ord.is_lt(),
                    BinOp::Le => ord.is_le(),
                    BinOp::Gt => ord.is_gt(),
                    BinOp::Ge => ord.is_ge(),
                    _ => unreachable!("non-comparison op in comparison arm"),
                }),
                None => Value::Error(CellError::Value),
            }
        }
    }
}

fn arith(op: BinOp, a: &Value, b: &Value) -> Value {
    // Empty and booleans participate as exact integers (`=Z99+1` is `1`,
    // not `1.0`), keeping the Int/Float split stable through arithmetic.
    fn as_int_like(v: &Value) -> Value {
        match v {
            Value::Empty => Value::Int(0),
            Value::Bool(b) => Value::Int(*b as i64),
            other => other.clone(),
        }
    }
    let (a, b) = (&as_int_like(a), &as_int_like(b));
    // Integer fast path: stay integral whenever the result is.
    if let (Value::Int(x), Value::Int(y)) = (a, b) {
        match op {
            BinOp::Add => {
                if let Some(r) = x.checked_add(*y) {
                    return Value::Int(r);
                }
            }
            BinOp::Sub => {
                if let Some(r) = x.checked_sub(*y) {
                    return Value::Int(r);
                }
            }
            BinOp::Mul => {
                if let Some(r) = x.checked_mul(*y) {
                    return Value::Int(r);
                }
            }
            BinOp::Div => {
                if *y == 0 {
                    return Value::Error(CellError::Div0);
                }
                if x % y == 0 {
                    return Value::Int(x / y);
                }
            }
            BinOp::Pow => {
                if (0..=62).contains(y) {
                    if let Some(r) = x.checked_pow(*y as u32) {
                        return Value::Int(r);
                    }
                }
            }
            _ => unreachable!("arith called with non-arithmetic op"),
        }
    }
    let x = match a.coerce_f64() {
        Ok(f) => f,
        Err(e) => return Value::Error(e),
    };
    let y = match b.coerce_f64() {
        Ok(f) => f,
        Err(e) => return Value::Error(e),
    };
    match op {
        BinOp::Add => num(x + y),
        BinOp::Sub => num(x - y),
        BinOp::Mul => num(x * y),
        BinOp::Div => {
            if y == 0.0 {
                Value::Error(CellError::Div0)
            } else {
                num(x / y)
            }
        }
        BinOp::Pow => num(x.powf(y)),
        _ => unreachable!("arith called with non-arithmetic op"),
    }
}

/// Numeric accumulator that stays integral as long as its inputs do.
#[derive(Default)]
struct Acc {
    count: u64,
    int_sum: i64,
    float_sum: f64,
    is_float: bool,
    min: Option<Value>,
    max: Option<Value>,
}

impl Acc {
    fn push(&mut self, v: &Value) {
        self.count += 1;
        match v {
            Value::Int(i) if !self.is_float => match self.int_sum.checked_add(*i) {
                Some(s) => self.int_sum = s,
                None => {
                    self.is_float = true;
                    self.float_sum = self.int_sum as f64 + *i as f64;
                }
            },
            other => {
                let f = other.coerce_f64().unwrap_or(0.0);
                if !self.is_float {
                    self.is_float = true;
                    self.float_sum = self.int_sum as f64;
                }
                self.float_sum += f;
            }
        }
        let replace_min = match &self.min {
            Some(m) => v.compare(m) == Some(std::cmp::Ordering::Less),
            None => true,
        };
        if replace_min {
            self.min = Some(v.clone());
        }
        let replace_max = match &self.max {
            Some(m) => v.compare(m) == Some(std::cmp::Ordering::Greater),
            None => true,
        };
        if replace_max {
            self.max = Some(v.clone());
        }
    }

    fn sum(&self) -> Value {
        if self.is_float {
            num(self.float_sum)
        } else {
            Value::Int(self.int_sum)
        }
    }
}

/// `VLOOKUP(needle, table_range, col_index, [approximate])`: find `needle`
/// in the first column of `table_range` and return the row's value at
/// 1-based `col_index`. The optional fourth argument selects approximate
/// matching (default `TRUE`, spreadsheet convention: the last row whose
/// first-column value is ≤ the needle, assuming sorted input); `FALSE`
/// demands an exact match. No hit is `#N/A`; a bad column index is `#VALUE!`
/// below 1 and `#REF!` past the range width.
fn vlookup(args: &[Expr], cells: &dyn CellProvider) -> Value {
    let needle = eval(&args[0], cells);
    if let Some(e) = needle.as_error() {
        return Value::Error(e);
    }
    let (sheet, range) = match eval_arg(&args[1], cells) {
        Arg::Cells(s, r) => (s, r),
        Arg::Scalar(v) => {
            return Value::Error(v.as_error().unwrap_or(CellError::Value));
        }
    };
    let col = match eval(&args[2], cells).coerce_i64() {
        Ok(i) => i,
        Err(e) => return Value::Error(e),
    };
    if col < 1 {
        return Value::Error(CellError::Value);
    }
    if col as u64 > u64::from(range.width()) {
        return Value::Error(CellError::Ref);
    }
    let approximate = match args.get(3) {
        Some(a) => match eval(a, cells).coerce_bool() {
            Ok(b) => b,
            Err(e) => return Value::Error(e),
        },
        None => true,
    };
    let result_col = range.start.col + (col - 1) as u32;
    let mut best: Option<u32> = None;
    for row in range.start.row..=range.end.row {
        let key = match cells.cell_value(&sheet, CellAddr::new(row, range.start.col)) {
            Ok(v) => v,
            Err(e) => return Value::Error(e),
        };
        if let Some(e) = key.as_error() {
            return Value::Error(e);
        }
        if key.is_empty() {
            continue;
        }
        match key.compare(&needle) {
            Some(std::cmp::Ordering::Equal) => {
                best = Some(row);
                break;
            }
            Some(std::cmp::Ordering::Less) if approximate => best = Some(row),
            _ => {}
        }
    }
    match best {
        Some(row) => match cells.cell_value(&sheet, CellAddr::new(row, result_col)) {
            Ok(v) => v,
            Err(e) => Value::Error(e),
        },
        None => Value::Error(CellError::Na),
    }
}

/// `CONCAT(a, b, …)`: concatenate every argument's text. Range arguments
/// contribute each non-empty cell in row-major order; any error propagates.
fn concat(args: &[Expr], cells: &dyn CellProvider) -> Value {
    let mut out = String::new();
    for arg in args {
        let as_cells = match arg {
            Expr::Cell(c) => Some((c.sheet.clone(), dataspread_types::Range::cell(c.addr))),
            _ => match eval_arg(arg, cells) {
                Arg::Cells(sheet, range) => Some((sheet, range)),
                Arg::Scalar(v) => {
                    if let Some(e) = v.as_error() {
                        return Value::Error(e);
                    }
                    match v.coerce_text() {
                        Ok(t) => out.push_str(&t),
                        Err(e) => return Value::Error(e),
                    }
                    None
                }
            },
        };
        if let Some((sheet, range)) = as_cells {
            for addr in range.iter_cells() {
                let v = match cells.cell_value(&sheet, addr) {
                    Ok(v) => v,
                    Err(e) => return Value::Error(e),
                };
                if let Some(e) = v.as_error() {
                    return Value::Error(e);
                }
                if v.is_empty() {
                    continue;
                }
                match v.coerce_text() {
                    Ok(t) => out.push_str(&t),
                    Err(e) => return Value::Error(e),
                }
            }
        }
    }
    Value::Text(out)
}

fn call(f: Func, args: &[Expr], cells: &dyn CellProvider) -> Value {
    match f {
        Func::Vlookup => return vlookup(args, cells),
        Func::Concat => return concat(args, cells),
        _ => {}
    }
    if f == Func::If {
        // Lazy: only the taken branch is evaluated.
        let cond = eval(&args[0], cells);
        if let Some(e) = cond.as_error() {
            return Value::Error(e);
        }
        let taken = match cond.coerce_bool() {
            Ok(true) => Some(&args[1]),
            Ok(false) => args.get(2),
            Err(e) => return Value::Error(e),
        };
        return match taken {
            Some(branch) => eval(branch, cells),
            // Spreadsheet convention: a missing else-branch yields FALSE.
            None => Value::Bool(false),
        };
    }

    // Aggregates: fold every numeric cell of every argument. Cell and
    // range reference arguments participate only through their numeric
    // cells — blanks, text, and booleans are skipped, like real
    // spreadsheets (`=AVG(A1,4)` with A1 empty is 4, not 2). Direct
    // literal/computed arguments participate with numeric coercion
    // (`=SUM(A1,"5",TRUE)` adds 6 on top of A1). Any error poisons the
    // whole aggregate.
    let mut acc = Acc::default();
    for arg in args {
        // A single-cell reference behaves exactly like a 1×1 range.
        let as_cells = match arg {
            Expr::Cell(c) => Some((c.sheet.clone(), dataspread_types::Range::cell(c.addr))),
            _ => match eval_arg(arg, cells) {
                Arg::Cells(sheet, range) => Some((sheet, range)),
                Arg::Scalar(v) => {
                    if let Some(e) = v.as_error() {
                        return Value::Error(e);
                    }
                    if f == Func::Count {
                        if v.is_numeric() {
                            acc.push(&v);
                        }
                        continue;
                    }
                    match v.coerce_f64() {
                        Ok(_) => acc.push(&v),
                        Err(e) => return Value::Error(e),
                    }
                    None
                }
            },
        };
        if let Some((sheet, range)) = as_cells {
            for addr in range.iter_cells() {
                let v = match cells.cell_value(&sheet, addr) {
                    Ok(v) => v,
                    Err(e) => return Value::Error(e),
                };
                if let Some(e) = v.as_error() {
                    return Value::Error(e);
                }
                if v.is_numeric() {
                    acc.push(&v);
                }
            }
        }
    }
    match f {
        Func::Sum => acc.sum(),
        Func::Count => Value::Int(acc.count as i64),
        Func::Avg => {
            if acc.count == 0 {
                Value::Error(CellError::Div0)
            } else {
                match acc.sum() {
                    Value::Int(s) if s % acc.count as i64 == 0 => Value::Int(s / acc.count as i64),
                    s => match s.coerce_f64() {
                        Ok(total) => num(total / acc.count as f64),
                        Err(e) => Value::Error(e),
                    },
                }
            }
        }
        Func::Min => acc.min.unwrap_or(Value::Int(0)),
        Func::Max => acc.max.unwrap_or(Value::Int(0)),
        Func::If | Func::Vlookup | Func::Concat => unreachable!("handled above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Formula;
    use std::collections::HashMap;

    /// Test provider: one implicit sheet plus optional named sheets.
    #[derive(Default)]
    struct Grid {
        cells: HashMap<(String, CellAddr), Value>,
    }

    impl Grid {
        fn set(&mut self, a1: &str, v: impl Into<Value>) -> &mut Self {
            match a1.split_once('!') {
                Some((s, rest)) => self
                    .cells
                    .insert((s.to_string(), CellAddr::parse_a1(rest).unwrap()), v.into()),
                None => self
                    .cells
                    .insert((String::new(), CellAddr::parse_a1(a1).unwrap()), v.into()),
            };
            self
        }
    }

    impl CellProvider for Grid {
        fn cell_value(&self, sheet: &SheetRef, addr: CellAddr) -> Result<Value, CellError> {
            let key = match sheet {
                SheetRef::Current => String::new(),
                SheetRef::Named(n) => {
                    if n == "Missing" {
                        return Err(CellError::Ref);
                    }
                    n.clone()
                }
            };
            Ok(self.cells.get(&(key, addr)).cloned().unwrap_or_default())
        }
    }

    fn run(src: &str, g: &Grid) -> Value {
        Formula::parse(src).unwrap().eval(g)
    }

    #[test]
    fn arithmetic_keeps_ints_integral() {
        let g = Grid::default();
        assert_eq!(run("=1+2*3", &g), Value::Int(7));
        assert_eq!(run("=4/2", &g), Value::Int(2));
        assert_eq!(run("=5/2", &g), Value::Float(2.5));
        assert_eq!(run("=2^10", &g), Value::Int(1024));
        assert_eq!(run("=2^-1", &g), Value::Float(0.5));
        assert_eq!(run("=-2^2", &g), Value::Int(4), "unary binds tighter");
        assert_eq!(run("=1/0", &g), Value::Error(CellError::Div0));
    }

    #[test]
    fn comparisons_and_concat() {
        let g = Grid::default();
        assert_eq!(run("=1<2", &g), Value::Bool(true));
        assert_eq!(run("=\"a\"&1&TRUE", &g), Value::text("a1TRUE"));
        assert_eq!(run("=\"Apple\"=\"apple\"", &g), Value::Bool(true));
        assert_eq!(run("=1<>2", &g), Value::Bool(true));
    }

    #[test]
    fn cell_refs_and_empty_default() {
        let mut g = Grid::default();
        g.set("A1", 10).set("B1", 2.5);
        assert_eq!(run("=A1*2", &g), Value::Int(20));
        assert_eq!(run("=A1+B1", &g), Value::Float(12.5));
        assert_eq!(run("=Z99+1", &g), Value::Int(1), "empty coerces to 0");
    }

    #[test]
    fn aggregates_skip_non_numeric_range_cells() {
        let mut g = Grid::default();
        g.set("A1", 1)
            .set("A2", "label")
            .set("A3", 3)
            .set("B2", true);
        assert_eq!(run("=SUM(A1:B3)", &g), Value::Int(4));
        assert_eq!(run("=COUNT(A1:B3)", &g), Value::Int(2));
        assert_eq!(run("=AVG(A1:A3)", &g), Value::Int(2));
        assert_eq!(run("=MIN(A1:A3)", &g), Value::Int(1));
        assert_eq!(run("=MAX(A1:A3)", &g), Value::Int(3));
        assert_eq!(run("=AVG(C1:C9)", &g), Value::Error(CellError::Div0));
        assert_eq!(run("=SUM(A1,10)", &g), Value::Int(11));
    }

    #[test]
    fn errors_poison_aggregates_and_operators() {
        let mut g = Grid::default();
        g.set("A1", Value::Error(CellError::Ref)).set("A2", 1);
        assert_eq!(run("=SUM(A1:A2)", &g), Value::Error(CellError::Ref));
        assert_eq!(run("=A1+1", &g), Value::Error(CellError::Ref));
        assert_eq!(run("=A1=A1", &g), Value::Error(CellError::Ref));
    }

    #[test]
    fn if_is_lazy() {
        let mut g = Grid::default();
        g.set("A1", 5).set("B1", Value::Error(CellError::Div0));
        assert_eq!(run("=IF(A1>3,\"big\",B1)", &g), Value::text("big"));
        assert_eq!(run("=IF(A1>9,B1,\"small\")", &g), Value::text("small"));
        assert_eq!(run("=IF(A1>9,1)", &g), Value::Bool(false));
        assert_eq!(run("=IF(B1,1,2)", &g), Value::Error(CellError::Div0));
    }

    #[test]
    fn scalar_context_rejects_bare_range() {
        let g = Grid::default();
        assert_eq!(run("=A1:B2", &g), Value::Error(CellError::Value));
        assert_eq!(run("=1+A1:B2", &g), Value::Error(CellError::Value));
    }

    #[test]
    fn missing_sheet_is_ref_error() {
        let g = Grid::default();
        assert_eq!(run("=Missing!A1", &g), Value::Error(CellError::Ref));
        assert_eq!(run("=SUM(Missing!A1:A9)", &g), Value::Error(CellError::Ref));
    }

    #[test]
    fn text_scalars_coerce_only_as_direct_literals() {
        let mut g = Grid::default();
        g.set("A1", "12");
        // A referenced cell holding text is skipped (like a range cell)…
        assert_eq!(run("=SUM(A1)", &g), Value::Int(0));
        // …but a direct literal argument coerces, and bad text errors.
        assert_eq!(run("=SUM(\"12\")", &g), Value::Float(12.0));
        assert_eq!(run("=SUM(\"abc\")", &g), Value::Error(CellError::Value));
    }

    #[test]
    fn vlookup_exact_and_approximate() {
        let mut g = Grid::default();
        g.set("A1", 10)
            .set("B1", "ten")
            .set("A2", 20)
            .set("B2", "twenty")
            .set("A3", 30)
            .set("B3", "thirty");
        // Exact match.
        assert_eq!(run("=VLOOKUP(20,A1:B3,2,FALSE)", &g), Value::text("twenty"));
        assert_eq!(
            run("=VLOOKUP(25,A1:B3,2,FALSE)", &g),
            Value::Error(CellError::Na)
        );
        // Approximate (default): last key ≤ needle.
        assert_eq!(run("=VLOOKUP(25,A1:B3,2)", &g), Value::text("twenty"));
        assert_eq!(run("=VLOOKUP(99,A1:B3,2)", &g), Value::text("thirty"));
        assert_eq!(
            run("=VLOOKUP(5,A1:B3,2)", &g),
            Value::Error(CellError::Na),
            "needle below every key"
        );
        // Column 1 returns the key itself; text keys compare caselessly.
        assert_eq!(run("=VLOOKUP(30,A1:B3,1,FALSE)", &g), Value::Int(30));
        g.set("A4", "Zed").set("B4", 4);
        assert_eq!(run("=VLOOKUP(\"zed\",A1:B4,2,FALSE)", &g), Value::Int(4));
        // Bad column index: #VALUE! below 1, #REF! past the width.
        assert_eq!(
            run("=VLOOKUP(10,A1:B3,0,FALSE)", &g),
            Value::Error(CellError::Value)
        );
        assert_eq!(
            run("=VLOOKUP(10,A1:B3,3,FALSE)", &g),
            Value::Error(CellError::Ref)
        );
        // A scalar where the table range belongs is #VALUE!.
        assert_eq!(
            run("=VLOOKUP(10,5,1,FALSE)", &g),
            Value::Error(CellError::Value)
        );
        // Empty keys are skipped, not matched.
        assert_eq!(
            run("=VLOOKUP(0,C1:D3,2,FALSE)", &g),
            Value::Error(CellError::Na)
        );
    }

    #[test]
    fn vlookup_propagates_errors() {
        let mut g = Grid::default();
        g.set("A1", Value::Error(CellError::Div0)).set("B1", 1);
        assert_eq!(
            run("=VLOOKUP(1,A1:B1,2,FALSE)", &g),
            Value::Error(CellError::Div0)
        );
        assert_eq!(
            run("=VLOOKUP(A1,C1:D2,2,FALSE)", &g),
            Value::Error(CellError::Div0),
            "error needle propagates"
        );
    }

    #[test]
    fn concat_joins_scalars_and_ranges() {
        let mut g = Grid::default();
        g.set("A1", "a").set("A2", 2).set("A3", true);
        assert_eq!(run("=CONCAT(A1:A3)", &g), Value::text("a2TRUE"));
        assert_eq!(
            run("=CONCAT(\"x\",A1,\"-\",A2)", &g),
            Value::text("xa-2"),
            "scalars and refs interleave"
        );
        // CONCATENATE alias; empties are skipped.
        assert_eq!(run("=CONCATENATE(A1,Z9,A2)", &g), Value::text("a2"));
        // Errors poison the result.
        g.set("A2", Value::Error(CellError::Ref));
        assert_eq!(run("=CONCAT(A1:A3)", &g), Value::Error(CellError::Ref));
    }

    #[test]
    fn empty_cell_reference_args_are_skipped() {
        let g = Grid::default(); // A1 empty
        assert_eq!(run("=AVG(A1,4)", &g), Value::Int(4), "not 2: blank skipped");
        assert_eq!(run("=MIN(A1,5)", &g), Value::Int(5));
        assert_eq!(run("=MAX(A1,5)", &g), Value::Int(5));
        assert_eq!(run("=SUM(A1,5)", &g), Value::Int(5), "stays integral");
        assert_eq!(run("=COUNT(A1,5)", &g), Value::Int(1));
    }
}
