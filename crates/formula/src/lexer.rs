//! Formula tokenizer.
//!
//! Produces a flat token stream; reference assembly (`$A$1`, `Sheet2!B3:C9`)
//! is the parser's job, built from `Ident`/`Number`/`Dollar`/`Bang`/`Colon`
//! primitives. Numbers keep the `Int`/`Float` distinction so `=1+2` stays
//! integral end to end.

use dataspread_types::{CellError, DsError, DsResult, Value};

/// One lexical token.
#[derive(Clone, PartialEq, Debug)]
pub enum Token {
    /// An integer or decimal literal.
    Number(Value),
    /// A double-quoted string literal (quotes stripped, `""` unescaped).
    Str(String),
    /// An error-code literal (`#REF!`, `#DIV/0!`, …). Appears when a broken
    /// formula is re-parsed (structural edits render dead references as
    /// `#REF!`) or typed verbatim.
    ErrLit(CellError),
    /// An identifier: function name, `TRUE`/`FALSE`, sheet name, or an
    /// A1-looking fragment (`A1`, `AA12`, `A`).
    Ident(String),
    Dollar,
    Bang,
    Colon,
    Comma,
    LParen,
    RParen,
    Plus,
    Minus,
    Star,
    Slash,
    Caret,
    Amp,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Tokenize the body of a formula (the text after the leading `=`).
pub fn lex(src: &str) -> DsResult<Vec<Token>> {
    let b = src.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'$' => {
                out.push(Token::Dollar);
                i += 1;
            }
            b'!' => {
                out.push(Token::Bang);
                i += 1;
            }
            b':' => {
                out.push(Token::Colon);
                i += 1;
            }
            b',' => {
                out.push(Token::Comma);
                i += 1;
            }
            b'(' => {
                out.push(Token::LParen);
                i += 1;
            }
            b')' => {
                out.push(Token::RParen);
                i += 1;
            }
            b'+' => {
                out.push(Token::Plus);
                i += 1;
            }
            b'-' => {
                out.push(Token::Minus);
                i += 1;
            }
            b'*' => {
                out.push(Token::Star);
                i += 1;
            }
            b'/' => {
                out.push(Token::Slash);
                i += 1;
            }
            b'^' => {
                out.push(Token::Caret);
                i += 1;
            }
            b'&' => {
                out.push(Token::Amp);
                i += 1;
            }
            b'=' => {
                out.push(Token::Eq);
                i += 1;
            }
            b'<' => {
                if b.get(i + 1) == Some(&b'>') {
                    out.push(Token::Ne);
                    i += 2;
                } else if b.get(i + 1) == Some(&b'=') {
                    out.push(Token::Le);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            b'>' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            b'"' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match b.get(i) {
                        Some(b'"') if b.get(i + 1) == Some(&b'"') => {
                            s.push('"');
                            i += 2;
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(_) => {
                            // Consume one UTF-8 scalar, not one byte.
                            let rest = &src[i..];
                            let ch = rest.chars().next().unwrap();
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                        None => return Err(DsError::Parse("unterminated string literal".into())),
                    }
                }
                out.push(Token::Str(s));
            }
            b'#' => {
                // Greedily take the error-code alphabet, then match the
                // longest known code (codes end in `!`, `?`, or `A` for #N/A).
                let start = i;
                let mut j = i + 1;
                while j < b.len()
                    && j - start < 8
                    && (b[j].is_ascii_alphanumeric() || matches!(b[j], b'/' | b'!' | b'?'))
                {
                    j += 1;
                }
                let mut found = None;
                for end in (start + 1..=j).rev() {
                    if let Some(e) = CellError::parse(&src[start..end]) {
                        found = Some((e, end));
                        break;
                    }
                }
                match found {
                    Some((e, end)) => {
                        out.push(Token::ErrLit(e));
                        i = end;
                    }
                    None => {
                        return Err(DsError::Parse(format!(
                            "unknown error literal at `{}`",
                            &src[start..j]
                        )))
                    }
                }
            }
            b'0'..=b'9' | b'.' => {
                let start = i;
                let mut saw_dot = false;
                while i < b.len() && (b[i].is_ascii_digit() || (b[i] == b'.' && !saw_dot)) {
                    saw_dot |= b[i] == b'.';
                    i += 1;
                }
                let text = &src[start..i];
                let v = if let Ok(n) = text.parse::<i64>() {
                    Value::Int(n)
                } else {
                    let f: f64 = text
                        .parse()
                        .map_err(|_| DsError::Parse(format!("bad number `{text}`")))?;
                    if !f.is_finite() {
                        return Err(DsError::Parse(format!("bad number `{text}`")));
                    }
                    Value::Float(f)
                };
                out.push(Token::Number(v));
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push(Token::Ident(src[start..i].to_string()));
            }
            other => {
                return Err(DsError::Parse(format!(
                    "unexpected character `{}` in formula",
                    other as char
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_keep_int_float_distinction() {
        assert_eq!(
            lex("1 2.5").unwrap(),
            vec![
                Token::Number(Value::Int(1)),
                Token::Number(Value::Float(2.5))
            ]
        );
    }

    #[test]
    fn strings_unescape_double_quotes() {
        assert_eq!(
            lex("\"a\"\"b\"").unwrap(),
            vec![Token::Str("a\"b".to_string())]
        );
        assert!(lex("\"open").is_err());
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            lex("<><= >=<>").unwrap(),
            vec![Token::Ne, Token::Le, Token::Ge, Token::Ne]
        );
    }

    #[test]
    fn refs_lex_as_fragments() {
        assert_eq!(
            lex("$A$1").unwrap(),
            vec![
                Token::Dollar,
                Token::Ident("A".into()),
                Token::Dollar,
                Token::Number(Value::Int(1))
            ]
        );
        assert_eq!(
            lex("Data!B2").unwrap(),
            vec![
                Token::Ident("Data".into()),
                Token::Bang,
                Token::Ident("B2".into())
            ]
        );
    }

    #[test]
    fn garbage_rejected() {
        assert!(lex("a @ b").is_err());
    }

    #[test]
    fn unicode_in_strings_survives() {
        assert_eq!(lex("\"héllo\"").unwrap(), vec![Token::Str("héllo".into())]);
    }
}
