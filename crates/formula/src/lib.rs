//! The formula language: the spreadsheet half of DataSpread's front end.
//!
//! The paper's interface is "formulae over cell ranges"; this crate owns that
//! surface. It is deliberately storage-free: a [`Formula`] is parsed from
//! `=`-prefixed source text into an AST over [`CellRef`]/[`RangeRef`]
//! (`dataspread_types`), evaluated against any [`CellProvider`] (the engine
//! implements it over the live workbook), and interrogated for its
//! *precedents* — the ranges it reads — so the engine can maintain a
//! dependency graph and recompute incrementally.
//!
//! Supported surface:
//!
//! * literals: integers, decimals, `"strings"` (`""` escapes a quote),
//!   `TRUE`/`FALSE`
//! * references: `A1`, `$A$1`, `B2:D10`, `Sheet2!A1`, `Data!$A$1:C9`
//! * operators: `+ - * / ^` (unary minus binds tighter than `^`, as in
//!   spreadsheets: `-2^2 = 4`), `&` concatenation, `= <> < <= > >=`
//! * functions: `SUM`, `AVG`/`AVERAGE`, `MIN`, `MAX`, `COUNT`, `IF`,
//!   `VLOOKUP`, `CONCAT`/`CONCATENATE`
//!
//! Structural grid edits (insert/delete rows/columns) rewrite references via
//! [`Formula::adjust`]; a reference whose target is deleted collapses to the
//! poisoned [`Expr::RefError`] node, which evaluates to `#REF!` forever after
//! (exactly how real spreadsheets display a broken formula).

pub mod eval;
pub mod lexer;
pub mod parser;

use std::fmt;

use dataspread_types::{CellAddr, CellRef, DsResult, RangeRef, SheetRef, Value};

pub use eval::CellProvider;

/// Binary operators, in source syntax.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Pow,
    Concat,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl BinOp {
    fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Pow => "^",
            BinOp::Concat => "&",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
        }
    }
}

/// Built-in functions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Func {
    Sum,
    Avg,
    Min,
    Max,
    Count,
    If,
    Vlookup,
    Concat,
}

impl Func {
    /// Resolve a (case-insensitive) function name.
    pub fn by_name(name: &str) -> Option<Func> {
        Some(match name.to_ascii_uppercase().as_str() {
            "SUM" => Func::Sum,
            "AVG" | "AVERAGE" => Func::Avg,
            "MIN" => Func::Min,
            "MAX" => Func::Max,
            "COUNT" => Func::Count,
            "IF" => Func::If,
            "VLOOKUP" => Func::Vlookup,
            "CONCAT" | "CONCATENATE" => Func::Concat,
            _ => return None,
        })
    }

    fn name(self) -> &'static str {
        match self {
            Func::Sum => "SUM",
            Func::Avg => "AVG",
            Func::Min => "MIN",
            Func::Max => "MAX",
            Func::Count => "COUNT",
            Func::If => "IF",
            Func::Vlookup => "VLOOKUP",
            Func::Concat => "CONCAT",
        }
    }

    /// Accepted argument count.
    pub fn arity(self) -> std::ops::RangeInclusive<usize> {
        match self {
            Func::If => 2..=3,
            Func::Vlookup => 3..=4,
            _ => 1..=255,
        }
    }
}

/// A parsed formula expression.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// A literal scalar (`42`, `1.5`, `"text"`, `TRUE`).
    Lit(Value),
    /// A single-cell reference.
    Cell(CellRef),
    /// A rectangular range reference.
    Range(RangeRef),
    /// A reference destroyed by a structural edit; evaluates to `#REF!`.
    RefError,
    /// Unary minus.
    Neg(Box<Expr>),
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// A function call.
    Call(Func, Vec<Expr>),
}

/// A structural grid edit, as seen by formulas referencing the edited sheet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GridOp {
    /// `count` rows inserted at display row `at`.
    InsertRows { at: u32, count: u32 },
    /// Rows `[at, at + count)` deleted.
    DeleteRows { at: u32, count: u32 },
    /// `count` columns inserted at column `at`.
    InsertCols { at: u32, count: u32 },
    /// Columns `[at, at + count)` deleted.
    DeleteCols { at: u32, count: u32 },
}

impl GridOp {
    /// Where a single cell at `addr` ends up after this edit: `None` when the
    /// cell itself is deleted.
    pub fn map_addr(self, addr: CellAddr) -> Option<CellAddr> {
        let (row, col) = (addr.row, addr.col);
        let mapped = match self {
            GridOp::InsertRows { at, count } => (
                if row >= at {
                    row.checked_add(count)?
                } else {
                    row
                },
                col,
            ),
            GridOp::DeleteRows { at, count } => {
                if row >= at && row < at + count {
                    return None;
                }
                (if row >= at + count { row - count } else { row }, col)
            }
            GridOp::InsertCols { at, count } => (
                row,
                if col >= at {
                    col.checked_add(count)?
                } else {
                    col
                },
            ),
            GridOp::DeleteCols { at, count } => {
                if col >= at && col < at + count {
                    return None;
                }
                (row, if col >= at + count { col - count } else { col })
            }
        };
        Some(CellAddr::new(mapped.0, mapped.1))
    }

    /// Map one axis index of a *range corner* under a deletion: indices inside
    /// the deleted span clamp to the span edge instead of vanishing, so the
    /// surviving part of the range stays referenced.
    fn clamp_start(at: u32, count: u32, i: u32) -> u32 {
        if i >= at + count {
            i - count
        } else if i >= at {
            at
        } else {
            i
        }
    }

    fn clamp_end(at: u32, count: u32, i: u32) -> Option<u32> {
        if i >= at + count {
            Some(i - count)
        } else if i >= at {
            at.checked_sub(1)
        } else {
            Some(i)
        }
    }
}

/// A parsed formula: the AST plus nothing else. The engine keeps the original
/// source text alongside it for display and persistence.
#[derive(Clone, PartialEq, Debug)]
pub struct Formula {
    /// Root of the expression tree.
    pub expr: Expr,
}

impl Formula {
    /// Parse `=`-prefixed source text. The leading `=` is required — that is
    /// what distinguishes a formula from a literal at the input boundary.
    pub fn parse(src: &str) -> DsResult<Formula> {
        parser::parse(src)
    }

    /// Every range this formula reads, with its sheet qualifier. Single cells
    /// are reported as 1×1 ranges. Used by the engine's dependency graph.
    pub fn precedents(&self) -> Vec<(SheetRef, dataspread_types::Range)> {
        let mut out = Vec::new();
        collect_precedents(&self.expr, &mut out);
        out
    }

    /// Rewrite references for a structural edit on the sheet(s) selected by
    /// `applies_to` (the engine passes a predicate matching the edited sheet,
    /// resolving `SheetRef::Current` by the formula's home sheet). References
    /// wholly inside a deleted span become [`Expr::RefError`]. Returns `true`
    /// when anything changed.
    pub fn adjust(&mut self, op: GridOp, applies_to: &dyn Fn(&SheetRef) -> bool) -> bool {
        adjust_expr(&mut self.expr, op, applies_to)
    }

    /// Does the formula contain a broken (`#REF!`) reference node?
    pub fn has_ref_error(&self) -> bool {
        fn walk(e: &Expr) -> bool {
            match e {
                Expr::RefError => true,
                Expr::Neg(a) => walk(a),
                Expr::Bin(_, a, b) => walk(a) || walk(b),
                Expr::Call(_, args) => args.iter().any(walk),
                _ => false,
            }
        }
        walk(&self.expr)
    }

    /// Evaluate against a provider of cell values. Errors come back as
    /// [`Value::Error`], never as `Err` — a formula always displays something.
    pub fn eval(&self, cells: &dyn CellProvider) -> Value {
        eval::eval(&self.expr, cells)
    }
}

fn collect_precedents(e: &Expr, out: &mut Vec<(SheetRef, dataspread_types::Range)>) {
    match e {
        Expr::Cell(c) => out.push((c.sheet.clone(), dataspread_types::Range::cell(c.addr))),
        Expr::Range(r) => out.push((r.sheet.clone(), r.range())),
        Expr::Neg(a) => collect_precedents(a, out),
        Expr::Bin(_, a, b) => {
            collect_precedents(a, out);
            collect_precedents(b, out);
        }
        Expr::Call(_, args) => {
            for a in args {
                collect_precedents(a, out);
            }
        }
        Expr::Lit(_) | Expr::RefError => {}
    }
}

fn adjust_expr(e: &mut Expr, op: GridOp, applies_to: &dyn Fn(&SheetRef) -> bool) -> bool {
    match e {
        Expr::Cell(c) => {
            if !applies_to(&c.sheet) {
                return false;
            }
            match op.map_addr(c.addr) {
                Some(a) if a == c.addr => false,
                Some(a) => {
                    c.addr = a;
                    true
                }
                None => {
                    *e = Expr::RefError;
                    true
                }
            }
        }
        Expr::Range(r) => {
            if !applies_to(&r.sheet) {
                return false;
            }
            match adjust_range(r, op) {
                Some(changed) => changed,
                None => {
                    *e = Expr::RefError;
                    true
                }
            }
        }
        Expr::Neg(a) => adjust_expr(a, op, applies_to),
        Expr::Bin(_, a, b) => {
            // `|` not `||`: both sides must be visited.
            adjust_expr(a, op, applies_to) | adjust_expr(b, op, applies_to)
        }
        Expr::Call(_, args) => {
            let mut changed = false;
            for a in args {
                changed |= adjust_expr(a, op, applies_to);
            }
            changed
        }
        Expr::Lit(_) | Expr::RefError => false,
    }
}

/// Shift a range for a structural edit. `None` means the whole range was
/// deleted (→ `#REF!`); `Some(changed)` otherwise.
fn adjust_range(r: &mut RangeRef, op: GridOp) -> Option<bool> {
    // Work on the normalized rectangle, then write the corners back.
    let rect = r.range();
    let (mut r0, mut c0, mut r1, mut c1) =
        (rect.start.row, rect.start.col, rect.end.row, rect.end.col);
    match op {
        GridOp::InsertRows { at, count } => {
            if r0 >= at {
                r0 = r0.checked_add(count)?;
            }
            if r1 >= at {
                r1 = r1.checked_add(count)?;
            }
        }
        GridOp::DeleteRows { at, count } => {
            if r0 >= at && r1 < at + count {
                return None;
            }
            r0 = GridOp::clamp_start(at, count, r0);
            r1 = GridOp::clamp_end(at, count, r1)?;
        }
        GridOp::InsertCols { at, count } => {
            if c0 >= at {
                c0 = c0.checked_add(count)?;
            }
            if c1 >= at {
                c1 = c1.checked_add(count)?;
            }
        }
        GridOp::DeleteCols { at, count } => {
            if c0 >= at && c1 < at + count {
                return None;
            }
            c0 = GridOp::clamp_start(at, count, c0);
            c1 = GridOp::clamp_end(at, count, c1)?;
        }
    }
    if r1 < r0 || c1 < c0 {
        return None;
    }
    let new_start = CellAddr::new(r0, c0);
    let new_end = CellAddr::new(r1, c1);
    let changed = new_start != r.start.addr || new_end != r.end.addr;
    r.start.addr = new_start;
    r.end.addr = new_end;
    Some(changed)
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Lit(Value::Text(s)) => write!(f, "\"{}\"", s.replace('"', "\"\"")),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Cell(c) => write!(f, "{c}"),
            Expr::Range(r) => write!(f, "{r}"),
            Expr::RefError => f.write_str("#REF!"),
            Expr::Neg(a) => write!(f, "-{a}"),
            Expr::Bin(op, a, b) => write!(f, "({a}{}{b})", op.symbol()),
            Expr::Call(func, args) => {
                write!(f, "{}(", func.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
        }
    }
}

impl fmt::Display for Formula {
    /// Canonical rendering, `=`-prefixed. Sub-expressions are parenthesized
    /// rather than re-deriving precedence — unambiguous and re-parseable.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "={}", self.expr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataspread_types::Range;

    fn fx(src: &str) -> Formula {
        Formula::parse(src).unwrap()
    }

    fn all(_: &SheetRef) -> bool {
        true
    }

    #[test]
    fn precedents_cover_cells_and_ranges() {
        let f = fx("=SUM(A1:B2) + C3 * Data!D4");
        let p = f.precedents();
        assert_eq!(p.len(), 3);
        assert_eq!(p[0].1, Range::parse_a1("A1:B2").unwrap());
        assert_eq!(p[1].1, Range::cell(CellAddr::new(2, 2)));
        assert_eq!(p[2].0, SheetRef::Named("Data".into()));
    }

    #[test]
    fn insert_rows_shifts_refs_below() {
        let mut f = fx("=A1 + A10");
        assert!(f.adjust(GridOp::InsertRows { at: 4, count: 3 }, &all));
        assert_eq!(f.to_string(), "=(A1+A13)");
    }

    #[test]
    fn insert_inside_range_expands_it() {
        let mut f = fx("=SUM(A2:A5)");
        assert!(f.adjust(GridOp::InsertRows { at: 2, count: 2 }, &all));
        assert_eq!(f.to_string(), "=SUM(A2:A7)");
    }

    #[test]
    fn delete_rows_breaks_cell_ref() {
        let mut f = fx("=A5 + 1");
        assert!(f.adjust(GridOp::DeleteRows { at: 4, count: 1 }, &all));
        assert!(f.has_ref_error());
        assert_eq!(f.to_string(), "=(#REF!+1)");
    }

    #[test]
    fn delete_rows_shrinks_overlapping_range() {
        let mut f = fx("=SUM(A2:A10)");
        // Delete display rows 5..8 (0-based 4..7): the range loses 3 rows.
        assert!(f.adjust(GridOp::DeleteRows { at: 4, count: 3 }, &all));
        assert_eq!(f.to_string(), "=SUM(A2:A7)");
        // Deleting the range wholly kills it.
        let mut f = fx("=SUM(B2:B3)");
        assert!(f.adjust(GridOp::DeleteRows { at: 1, count: 2 }, &all));
        assert!(f.has_ref_error());
    }

    #[test]
    fn delete_cols_and_insert_cols_mirror_rows() {
        let mut f = fx("=SUM(B1:D1)");
        assert!(f.adjust(GridOp::InsertCols { at: 2, count: 1 }, &all));
        assert_eq!(f.to_string(), "=SUM(B1:E1)");
        assert!(f.adjust(GridOp::DeleteCols { at: 0, count: 1 }, &all));
        assert_eq!(f.to_string(), "=SUM(A1:D1)");
    }

    #[test]
    fn adjust_respects_sheet_predicate() {
        let mut f = fx("=A5 + Data!A5");
        let only_data = |s: &SheetRef| matches!(s, SheetRef::Named(n) if n == "Data");
        assert!(f.adjust(GridOp::InsertRows { at: 0, count: 1 }, &only_data));
        assert_eq!(f.to_string(), "=(A5+Data!A6)");
    }

    #[test]
    fn absolute_refs_shift_on_structural_edits_too() {
        // Structural edits move data; `$` only pins refs against copy/paste.
        let mut f = fx("=$A$5");
        assert!(f.adjust(GridOp::InsertRows { at: 0, count: 2 }, &all));
        assert_eq!(f.to_string(), "=$A$7");
    }

    #[test]
    fn display_round_trips_through_parser() {
        for src in [
            "=1+2*3",
            "=SUM(A1:B2,C3)",
            "=IF(A1>2,\"y\",\"n\")",
            "=-A1^2 & \"x\"",
            "=Data!$B$2:C9",
        ] {
            let f = fx(src);
            let again = Formula::parse(&f.to_string()).unwrap();
            assert_eq!(f, again, "{src} → {f}");
        }
    }
}
