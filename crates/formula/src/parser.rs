//! Recursive-descent formula parser.
//!
//! Precedence, loosest to tightest — the spreadsheet convention:
//! comparisons, `&`, `+ -`, `* /`, unary `-`, `^` (right-associative).
//! Unary minus binds tighter than `^`, so `=-2^2` is `4`.

use dataspread_types::addr::MAX_ROW;
use dataspread_types::{
    letters_to_col, CellAddr, CellRef, DsError, DsResult, RangeRef, SheetRef, Value,
};

use crate::lexer::{lex, Token};
use crate::{BinOp, Expr, Formula, Func};

/// Parse a full formula, `=` prefix required.
pub fn parse(src: &str) -> DsResult<Formula> {
    let body = src
        .trim()
        .strip_prefix('=')
        .ok_or_else(|| DsError::Parse("formula must start with `=`".into()))?;
    if body.trim().is_empty() {
        return Err(DsError::Parse("empty formula".into()));
    }
    let tokens = lex(body)?;
    let mut p = Parser { tokens, pos: 0 };
    let expr = p.expr()?;
    if p.pos != p.tokens.len() {
        return Err(DsError::Parse(format!(
            "unexpected trailing input in formula `{src}`"
        )));
    }
    Ok(Formula { expr })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: Token, what: &str) -> DsResult<()> {
        match self.next() {
            Some(got) if got == t => Ok(()),
            other => Err(DsError::Parse(format!("expected {what}, found {other:?}"))),
        }
    }

    fn expr(&mut self) -> DsResult<Expr> {
        self.cmp()
    }

    fn cmp(&mut self) -> DsResult<Expr> {
        let mut lhs = self.concat()?;
        while let Some(op) = match self.peek() {
            Some(Token::Eq) => Some(BinOp::Eq),
            Some(Token::Ne) => Some(BinOp::Ne),
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::Le) => Some(BinOp::Le),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::Ge) => Some(BinOp::Ge),
            _ => None,
        } {
            self.pos += 1;
            let rhs = self.concat()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn concat(&mut self) -> DsResult<Expr> {
        let mut lhs = self.add()?;
        while self.peek() == Some(&Token::Amp) {
            self.pos += 1;
            let rhs = self.add()?;
            lhs = Expr::Bin(BinOp::Concat, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn add(&mut self) -> DsResult<Expr> {
        let mut lhs = self.mul()?;
        while let Some(op) = match self.peek() {
            Some(Token::Plus) => Some(BinOp::Add),
            Some(Token::Minus) => Some(BinOp::Sub),
            _ => None,
        } {
            self.pos += 1;
            let rhs = self.mul()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul(&mut self) -> DsResult<Expr> {
        let mut lhs = self.pow()?;
        while let Some(op) = match self.peek() {
            Some(Token::Star) => Some(BinOp::Mul),
            Some(Token::Slash) => Some(BinOp::Div),
            _ => None,
        } {
            self.pos += 1;
            let rhs = self.pow()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn pow(&mut self) -> DsResult<Expr> {
        // Base and exponent are *signed* primaries: unary minus binds tighter
        // than `^` (`-2^2 = 4`), and the exponent may be signed (`2^-3`).
        let lhs = self.unary()?;
        if self.peek() == Some(&Token::Caret) {
            self.pos += 1;
            let rhs = self.pow()?; // right-associative
            return Ok(Expr::Bin(BinOp::Pow, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> DsResult<Expr> {
        match self.peek() {
            Some(Token::Minus) => {
                self.pos += 1;
                Ok(Expr::Neg(Box::new(self.unary()?)))
            }
            Some(Token::Plus) => {
                self.pos += 1;
                self.unary()
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> DsResult<Expr> {
        match self.peek() {
            Some(Token::Number(_)) => {
                if let Some(Token::Number(v)) = self.next() {
                    Ok(Expr::Lit(v))
                } else {
                    unreachable!("peeked number")
                }
            }
            Some(Token::Str(_)) => {
                if let Some(Token::Str(s)) = self.next() {
                    Ok(Expr::Lit(Value::Text(s)))
                } else {
                    unreachable!("peeked string")
                }
            }
            Some(Token::ErrLit(e)) => {
                // `#REF!` round-trips to the poisoned reference node so a
                // broken formula stays broken across persistence; other
                // codes are plain error literals.
                let e = *e;
                self.pos += 1;
                Ok(if e == dataspread_types::CellError::Ref {
                    Expr::RefError
                } else {
                    Expr::Lit(Value::Error(e))
                })
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(Token::RParen, "`)`")?;
                Ok(e)
            }
            Some(Token::Dollar) => self.reference(SheetRef::Current),
            Some(Token::Ident(name)) => {
                let name = name.clone();
                match self.peek2() {
                    // Function call: IDENT '('.
                    Some(Token::LParen) => {
                        let func = Func::by_name(&name)
                            .ok_or_else(|| DsError::Parse(format!("unknown function `{name}`")))?;
                        self.pos += 2;
                        let mut args = Vec::new();
                        if self.peek() != Some(&Token::RParen) {
                            loop {
                                args.push(self.expr()?);
                                match self.peek() {
                                    Some(Token::Comma) => {
                                        self.pos += 1;
                                    }
                                    _ => break,
                                }
                            }
                        }
                        self.expect(Token::RParen, "`)` closing the argument list")?;
                        if !func.arity().contains(&args.len()) {
                            return Err(DsError::Parse(format!(
                                "{} takes {:?} arguments, got {}",
                                name,
                                func.arity(),
                                args.len()
                            )));
                        }
                        Ok(Expr::Call(func, args))
                    }
                    // Sheet qualifier: IDENT '!' ref.
                    Some(Token::Bang) => {
                        self.pos += 2;
                        self.reference(SheetRef::Named(name))
                    }
                    _ => match name.to_ascii_uppercase().as_str() {
                        "TRUE" => {
                            self.pos += 1;
                            Ok(Expr::Lit(Value::Bool(true)))
                        }
                        "FALSE" => {
                            self.pos += 1;
                            Ok(Expr::Lit(Value::Bool(false)))
                        }
                        _ => self.reference(SheetRef::Current),
                    },
                }
            }
            other => Err(DsError::Parse(format!(
                "unexpected token {other:?} in formula"
            ))),
        }
    }

    /// Parse `corner (':' corner)?` with the given sheet qualifier already
    /// consumed.
    fn reference(&mut self, sheet: SheetRef) -> DsResult<Expr> {
        let start = self.corner()?;
        if self.peek() == Some(&Token::Colon) {
            self.pos += 1;
            let end = self.corner()?;
            return Ok(Expr::Range(RangeRef::new(sheet, start, end)));
        }
        let mut cell = start;
        cell.sheet = sheet;
        Ok(Expr::Cell(cell))
    }

    /// One range corner: `[$] letters [$] row`. The lexer may deliver the
    /// column letters and row digits fused into one identifier (`A1`) or
    /// split by an absolute-row `$` (`A`, `$`, `1`).
    fn corner(&mut self) -> DsResult<CellRef> {
        let abs_col = if self.peek() == Some(&Token::Dollar) {
            self.pos += 1;
            true
        } else {
            false
        };
        let frag = match self.next() {
            Some(Token::Ident(s)) => s,
            other => {
                return Err(DsError::Parse(format!(
                    "expected cell reference, found {other:?}"
                )))
            }
        };
        let digit_at = frag
            .bytes()
            .position(|b| b.is_ascii_digit())
            .unwrap_or(frag.len());
        let (letters, digits) = frag.split_at(digit_at);
        let col = letters_to_col(letters)
            .ok_or_else(|| DsError::Parse(format!("invalid column letters `{letters}`")))?;
        let (abs_row, row1) = if digits.is_empty() {
            // Row must follow as `$ <number>`.
            self.expect(Token::Dollar, "`$` before the row number")?;
            match self.next() {
                Some(Token::Number(Value::Int(n))) => (true, n as u64),
                other => {
                    return Err(DsError::Parse(format!(
                        "expected row number, found {other:?}"
                    )))
                }
            }
        } else {
            if !digits.bytes().all(|b| b.is_ascii_digit()) {
                return Err(DsError::Parse(format!("invalid cell reference `{frag}`")));
            }
            let n: u64 = digits
                .parse()
                .map_err(|_| DsError::Parse(format!("invalid row number `{digits}`")))?;
            (false, n)
        };
        if row1 == 0 || row1 > MAX_ROW as u64 + 1 {
            return Err(DsError::Parse(format!("row {row1} out of range")));
        }
        Ok(CellRef {
            sheet: SheetRef::Current,
            addr: CellAddr::new((row1 - 1) as u32, col),
            abs_row,
            abs_col,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(src: &str) -> Formula {
        parse(src).unwrap()
    }

    #[test]
    fn precedence_matches_spreadsheets() {
        assert_eq!(ok("=1+2*3").to_string(), "=(1+(2*3))");
        assert_eq!(ok("=(1+2)*3").to_string(), "=((1+2)*3)");
        assert_eq!(ok("=1<2&\"x\"").to_string(), "=(1<(2&\"x\"))");
        assert_eq!(ok("=2^3^2").to_string(), "=(2^(3^2))");
        assert_eq!(ok("=-2^2").to_string(), "=(-2^2)", "unary binds tighter");
        assert_eq!(ok("=1=2").to_string(), "=(1=2)");
    }

    #[test]
    fn references_with_flags_and_sheets() {
        assert_eq!(ok("=A1").to_string(), "=A1");
        assert_eq!(ok("=$a$1").to_string(), "=$A$1");
        assert_eq!(ok("=A$1").to_string(), "=A$1");
        assert_eq!(ok("=$A1").to_string(), "=$A1");
        assert_eq!(ok("=Data!B2").to_string(), "=Data!B2");
        assert_eq!(ok("=Data!$B$2:C9").to_string(), "=Data!$B$2:C9");
        assert_eq!(ok("=SUM(A1:B10)").to_string(), "=SUM(A1:B10)");
    }

    #[test]
    fn functions_case_insensitive_with_arity() {
        assert_eq!(ok("=sum(A1,2,3)").to_string(), "=SUM(A1,2,3)");
        assert_eq!(ok("=average(A1:A3)").to_string(), "=AVG(A1:A3)");
        assert!(parse("=IF(1)").is_err(), "IF needs 2..=3 args");
        assert!(parse("=SUM()").is_err(), "SUM needs at least one arg");
        assert!(parse("=NOPE(1)").is_err(), "unknown function");
    }

    #[test]
    fn error_literals_round_trip() {
        assert_eq!(ok("=#REF!+1").to_string(), "=(#REF!+1)");
        assert_eq!(ok("=(#REF!+1)").to_string(), "=(#REF!+1)");
        assert_eq!(ok("=#DIV/0!").to_string(), "=#DIV/0!");
        assert_eq!(ok("=SUM(A1,#N/A)").to_string(), "=SUM(A1,#N/A)");
        assert!(parse("=#BOGUS!").is_err());
    }

    #[test]
    fn booleans_and_strings() {
        assert_eq!(ok("=TRUE").to_string(), "=TRUE");
        assert_eq!(ok("=false").to_string(), "=FALSE");
        assert_eq!(ok("=\"a\"\"b\"").to_string(), "=\"a\"\"b\"");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "no-equals",
            "=",
            "=1+",
            "=(1",
            "=A0",
            "=1A",
            "=A1:",
            "=SUM(A1",
            "=foo",
            "=$1",
        ] {
            assert!(parse(bad).is_err(), "`{bad}` must not parse");
        }
    }
}
