//! Proximity-block store: the paper-faithful interface storage layout.
//!
//! > "the component groups the cells together by proximity and splits the
//! > groups into data blocks as required by the underlying storage"
//!
//! Cells are gathered into variable-extent blocks of bounded capacity. A new
//! cell joins the nearby block whose bounding rectangle grows the least; a
//! block that outgrows its capacity splits along its longer axis at the
//! median cell. Block rectangles are indexed by the [`RTree`], so a window
//! fetch only opens blocks whose bounds intersect the window.

use std::collections::HashMap;

use dataspread_types::{CellAddr, Range};

use crate::rtree::{RTree, Rect};
use crate::{shift_addr_cols, shift_addr_rows, CellStore, StoreStats};

/// Tuning for the proximity grouping.
#[derive(Clone, Copy, Debug)]
pub struct BlockConfig {
    /// Maximum cells per block before it splits.
    pub capacity: usize,
    /// How far (Chebyshev distance) a cell may be from an existing block and
    /// still join it rather than founding a new block.
    pub proximity: u32,
}

impl Default for BlockConfig {
    fn default() -> Self {
        BlockConfig {
            capacity: 256,
            proximity: 8,
        }
    }
}

#[derive(Debug)]
struct Block<T> {
    bounds: Rect,
    cells: HashMap<CellAddr, T>,
}

impl<T> Block<T> {
    fn recompute_bounds(&mut self) {
        let mut it = self.cells.keys();
        let first = it.next().expect("recompute_bounds on empty block");
        let mut b = Rect::point(first.row, first.col);
        for a in it {
            b = b.union(&Rect::point(a.row, a.col));
        }
        self.bounds = b;
    }
}

/// Variable-extent proximity blocks indexed by an R-tree.
#[derive(Debug)]
pub struct BlockGrid<T> {
    cfg: BlockConfig,
    blocks: Vec<Option<Block<T>>>,
    free: Vec<u32>,
    rtree: RTree<u32>,
    cells: usize,
    stats: StoreStats,
}

impl<T> Default for BlockGrid<T> {
    fn default() -> Self {
        BlockGrid::new(BlockConfig::default())
    }
}

impl<T> BlockGrid<T> {
    pub fn new(cfg: BlockConfig) -> Self {
        assert!(cfg.capacity >= 2);
        BlockGrid {
            cfg,
            blocks: Vec::new(),
            free: Vec::new(),
            rtree: RTree::new(8),
            cells: 0,
            stats: StoreStats::default(),
        }
    }

    pub fn config(&self) -> BlockConfig {
        self.cfg
    }

    fn alloc_block(&mut self, block: Block<T>) -> u32 {
        if let Some(id) = self.free.pop() {
            self.blocks[id as usize] = Some(block);
            id
        } else {
            self.blocks.push(Some(block));
            (self.blocks.len() - 1) as u32
        }
    }

    fn block(&self, id: u32) -> &Block<T> {
        self.blocks[id as usize]
            .as_ref()
            .expect("dangling block id")
    }

    fn block_mut(&mut self, id: u32) -> &mut Block<T> {
        self.blocks[id as usize]
            .as_mut()
            .expect("dangling block id")
    }

    /// The block currently holding `addr`, if any.
    fn find_block_of(&self, addr: CellAddr) -> Option<u32> {
        let candidates = self.rtree.point_search(addr.row, addr.col);
        self.stats.add_read(candidates.len() as u64);
        candidates
            .into_iter()
            .find(|&id| self.block(id).cells.contains_key(&addr))
    }

    /// Split an over-capacity block along its longer axis at the median cell.
    fn split_block(&mut self, id: u32) {
        let old_bounds = self.block(id).bounds;
        let mut cells: Vec<(CellAddr, T)> = self.block_mut(id).cells.drain().collect();
        let by_rows = (old_bounds.r1 - old_bounds.r0) >= (old_bounds.c1 - old_bounds.c0);
        if by_rows {
            cells.sort_by_key(|(a, _)| (a.row, a.col));
        } else {
            cells.sort_by_key(|(a, _)| (a.col, a.row));
        }
        let second = cells.split_off(cells.len() / 2);
        let left = self.block_mut(id);
        left.cells.extend(cells);
        left.recompute_bounds();
        let left_bounds = left.bounds;

        let mut right = Block {
            bounds: Rect::point(0, 0),
            cells: second.into_iter().collect(),
        };
        right.recompute_bounds();
        let right_bounds = right.bounds;
        let right_id = self.alloc_block(right);

        self.rtree.update(old_bounds, left_bounds, id);
        self.rtree.insert(right_bounds, right_id);
        self.stats.add_write(2);
    }

    fn rebuild(&mut self, f: impl Fn(CellAddr) -> Option<CellAddr>) {
        let mut all: Vec<(CellAddr, T)> = Vec::with_capacity(self.cells);
        for slot in self.blocks.iter_mut() {
            if let Some(b) = slot.take() {
                all.extend(b.cells);
            }
        }
        self.blocks.clear();
        self.free.clear();
        self.rtree = RTree::new(8);
        self.cells = 0;
        // Deterministic rebuild order keeps blocks spatially coherent.
        all.sort_by_key(|(a, _)| *a);
        for (a, v) in all {
            if let Some(na) = f(a) {
                self.set(na, v);
            }
        }
    }
}

impl<T> CellStore<T> for BlockGrid<T> {
    fn get(&self, addr: CellAddr) -> Option<&T> {
        let id = self.find_block_of(addr)?;
        self.block(id).cells.get(&addr)
    }

    fn set(&mut self, addr: CellAddr, value: T) -> Option<T> {
        // Existing cell: replace in place, bounds unchanged.
        if let Some(id) = self.find_block_of(addr) {
            self.stats.add_write(1);
            return self.block_mut(id).cells.insert(addr, value);
        }
        // New cell: join the nearby block whose bounds grow least.
        let p = self.cfg.proximity;
        let neighborhood = Rect::new(
            addr.row.saturating_sub(p),
            addr.col.saturating_sub(p),
            addr.row.saturating_add(p),
            addr.col.saturating_add(p),
        );
        let candidates = self.rtree.search(neighborhood);
        self.stats.add_read(candidates.len() as u64);
        let cell_rect = Rect::point(addr.row, addr.col);
        let mut best: Option<(u32, u64)> = None;
        for id in candidates {
            let b = self.block(id);
            if b.cells.len() >= self.cfg.capacity {
                continue;
            }
            let grow = b.bounds.enlargement(&cell_rect);
            if best.is_none_or(|(_, g)| grow < g) {
                best = Some((id, grow));
            }
        }
        self.cells += 1;
        self.stats.add_write(1);
        match best {
            Some((id, _)) => {
                let old_bounds = self.block(id).bounds;
                let block = self.block_mut(id);
                block.cells.insert(addr, value);
                let new_bounds = old_bounds.union(&cell_rect);
                if new_bounds != old_bounds {
                    self.block_mut(id).bounds = new_bounds;
                    self.rtree.update(old_bounds, new_bounds, id);
                }
                if self.block(id).cells.len() > self.cfg.capacity {
                    self.split_block(id);
                }
                None
            }
            None => {
                let mut cells = HashMap::new();
                cells.insert(addr, value);
                let id = self.alloc_block(Block {
                    bounds: cell_rect,
                    cells,
                });
                self.rtree.insert(cell_rect, id);
                None
            }
        }
    }

    fn remove(&mut self, addr: CellAddr) -> Option<T> {
        let id = self.find_block_of(addr)?;
        self.stats.add_write(1);
        let old_bounds = self.block(id).bounds;
        let v = self.block_mut(id).cells.remove(&addr);
        if v.is_some() {
            self.cells -= 1;
            if self.block(id).cells.is_empty() {
                self.rtree.remove(old_bounds, id);
                self.blocks[id as usize] = None;
                self.free.push(id);
            } else {
                // Keep bounds tight so window queries stay selective.
                self.block_mut(id).recompute_bounds();
                let nb = self.block(id).bounds;
                if nb != old_bounds {
                    self.rtree.update(old_bounds, nb, id);
                }
            }
        }
        v
    }

    fn cell_count(&self) -> usize {
        self.cells
    }

    fn for_each_in_range(&self, range: Range, f: &mut dyn FnMut(CellAddr, &T)) {
        let hits = self.rtree.search(Rect::from_range(range));
        self.stats.add_read(hits.len() as u64);
        for id in hits {
            let b = self.block(id);
            self.stats.add_scanned(b.cells.len() as u64);
            for (a, v) in &b.cells {
                if range.contains(*a) {
                    f(*a, v);
                }
            }
        }
    }

    fn used_bounds(&self) -> Option<Range> {
        let mut bounds: Option<Rect> = None;
        self.rtree.for_each(&mut |r, _| {
            bounds = Some(match bounds {
                Some(b) => b.union(&r),
                None => r,
            });
        });
        bounds.map(Rect::to_range)
    }

    fn insert_rows(&mut self, at: u32, count: u32) {
        self.rebuild(|a| shift_addr_rows(a, at, count, true));
    }

    fn delete_rows(&mut self, at: u32, count: u32) {
        self.rebuild(|a| shift_addr_rows(a, at, count, false));
    }

    fn insert_cols(&mut self, at: u32, count: u32) {
        self.rebuild(|a| shift_addr_cols(a, at, count, true));
    }

    fn delete_cols(&mut self, at: u32, count: u32) {
        self.rebuild(|a| shift_addr_cols(a, at, count, false));
    }

    fn stats(&self) -> &StoreStats {
        &self.stats
    }

    fn block_count(&self) -> usize {
        self.blocks.len() - self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BlockGrid<i64> {
        BlockGrid::new(BlockConfig {
            capacity: 8,
            proximity: 4,
        })
    }

    #[test]
    fn point_ops() {
        let mut g = tiny();
        let a = CellAddr::new(5, 5);
        assert_eq!(g.set(a, 1), None);
        assert_eq!(g.get(a), Some(&1));
        assert_eq!(g.set(a, 2), Some(1));
        assert_eq!(g.remove(a), Some(2));
        assert_eq!(g.get(a), None);
        assert_eq!(g.cell_count(), 0);
        assert_eq!(g.block_count(), 0);
    }

    #[test]
    fn nearby_cells_share_a_block() {
        let mut g = tiny();
        for c in 0..4u32 {
            g.set(CellAddr::new(0, c), c as i64);
        }
        assert_eq!(g.block_count(), 1, "4 adjacent cells fit one block");
    }

    #[test]
    fn distant_cells_get_separate_blocks() {
        let mut g = tiny();
        g.set(CellAddr::new(0, 0), 1);
        g.set(CellAddr::new(500, 500), 2);
        assert_eq!(g.block_count(), 2);
    }

    #[test]
    fn blocks_split_at_capacity() {
        let mut g = tiny();
        for c in 0..20u32 {
            g.set(CellAddr::new(0, c), c as i64);
        }
        assert_eq!(g.cell_count(), 20);
        assert!(g.block_count() >= 2, "capacity 8 forces splits");
        for c in 0..20u32 {
            assert_eq!(g.get(CellAddr::new(0, c)), Some(&(c as i64)), "col {c}");
        }
    }

    #[test]
    fn range_scan_correct_after_splits() {
        let mut g = tiny();
        for r in 0..10u32 {
            for c in 0..10u32 {
                g.set(CellAddr::new(r, c), (r * 10 + c) as i64);
            }
        }
        let got = g.cells_in_range(Range::from_bounds(2, 2, 4, 4));
        assert_eq!(got.len(), 9);
        assert_eq!(got[0], (CellAddr::new(2, 2), 22));
        assert_eq!(got[8], (CellAddr::new(4, 4), 44));
    }

    #[test]
    fn range_scan_skips_far_blocks() {
        let mut g = tiny();
        for c in 0..8u32 {
            g.set(CellAddr::new(0, c), 1);
        }
        for c in 0..8u32 {
            g.set(CellAddr::new(1000, c), 2);
        }
        g.stats().reset();
        let got = g.cells_in_range(Range::from_bounds(0, 0, 10, 10));
        assert_eq!(got.len(), 8);
        // Only the near block(s) were opened.
        assert!(
            g.stats().cells_scanned() <= 8,
            "scanned {}",
            g.stats().cells_scanned()
        );
    }

    #[test]
    fn structural_edits() {
        let mut g = tiny();
        g.set(CellAddr::new(2, 2), 1);
        g.set(CellAddr::new(6, 2), 2);
        g.insert_rows(4, 10);
        assert_eq!(g.get(CellAddr::new(2, 2)), Some(&1));
        assert_eq!(g.get(CellAddr::new(16, 2)), Some(&2));
        g.delete_rows(0, 3);
        assert_eq!(g.get(CellAddr::new(13, 2)), Some(&2));
        assert_eq!(g.cell_count(), 1);
    }

    #[test]
    fn used_bounds_tracks_blocks() {
        let mut g = tiny();
        assert_eq!(g.used_bounds(), None);
        g.set(CellAddr::new(5, 1), 1);
        g.set(CellAddr::new(2, 9), 1);
        assert_eq!(g.used_bounds(), Some(Range::from_bounds(2, 1, 5, 9)));
    }
}
