//! The *interface storage manager* (paper §3).
//!
//! > "This interface data requires special treatment as it does not have a
//! > schema. The interface storage component stores this data as a collection
//! > of cells. To enable efficient retrieval for a given range, the component
//! > groups the cells together by proximity and splits the groups into data
//! > blocks as required by the underlying storage. To enable efficient
//! > access, the blocks are further indexed by a two-dimensional indexing
//! > method."
//!
//! Three implementations of the same [`CellStore`] interface:
//!
//! * [`TiledGrid`] — cells grouped into fixed-extent tiles addressed directly
//!   by coordinate arithmetic. The production path for sheets.
//! * [`BlockGrid`] — the paper-faithful variant: cells grouped by *proximity*
//!   into variable-extent blocks, indexed by an [`rtree::RTree`].
//! * [`NaiveGrid`] — one hash entry per cell, no grouping: the baseline that
//!   shows why block grouping matters (experiment `C5`).
//!
//! Every store counts block-level touches in [`StoreStats`], standing in for
//! the paper's "disk blocks" accounting (substitution #3 in `DESIGN.md`).

pub mod block;
pub mod naive;
pub mod rtree;
pub mod tiled;

pub use block::BlockGrid;
pub use naive::NaiveGrid;
pub use rtree::{RTree, Rect};
pub use tiled::{TileConfig, TiledGrid};

use std::sync::atomic::{AtomicU64, Ordering};

use dataspread_types::{CellAddr, Range};

/// Block-level access counters. Reads are counted on `&self` paths, hence
/// the interior mutability — atomics (relaxed), so a store can be shared
/// across threads. "Block" means tile ([`TiledGrid`]), proximity block
/// ([`BlockGrid`]), or individual cell ([`NaiveGrid`] — per-cell storage *is*
/// its block granularity).
#[derive(Debug, Default)]
pub struct StoreStats {
    blocks_read: AtomicU64,
    blocks_written: AtomicU64,
    cells_scanned: AtomicU64,
}

impl StoreStats {
    pub fn blocks_read(&self) -> u64 {
        self.blocks_read.load(Ordering::Relaxed)
    }
    pub fn blocks_written(&self) -> u64 {
        self.blocks_written.load(Ordering::Relaxed)
    }
    pub fn cells_scanned(&self) -> u64 {
        self.cells_scanned.load(Ordering::Relaxed)
    }
    pub fn reset(&self) {
        self.blocks_read.store(0, Ordering::Relaxed);
        self.blocks_written.store(0, Ordering::Relaxed);
        self.cells_scanned.store(0, Ordering::Relaxed);
    }
    pub(crate) fn add_read(&self, n: u64) {
        self.blocks_read.fetch_add(n, Ordering::Relaxed);
    }
    pub(crate) fn add_write(&self, n: u64) {
        self.blocks_written.fetch_add(n, Ordering::Relaxed);
    }
    pub(crate) fn add_scanned(&self, n: u64) {
        self.cells_scanned.fetch_add(n, Ordering::Relaxed);
    }
}

/// A sparse two-dimensional cell store.
///
/// Contract notes:
/// * `for_each_in_range` visits cells in an *unspecified order* (each store
///   uses its natural block order); [`CellStore::cells_in_range`] sorts
///   row-major.
/// * Structural row/column edits shift cell contents like a spreadsheet
///   insert/delete does; cells inside a deleted band are dropped.
pub trait CellStore<T> {
    /// Read one cell.
    fn get(&self, addr: CellAddr) -> Option<&T>;

    /// Write one cell, returning the previous content.
    fn set(&mut self, addr: CellAddr, value: T) -> Option<T>;

    /// Clear one cell, returning its content.
    fn remove(&mut self, addr: CellAddr) -> Option<T>;

    /// Number of non-empty cells.
    fn cell_count(&self) -> usize;

    /// Visit every non-empty cell within `range` (unordered).
    fn for_each_in_range(&self, range: Range, f: &mut dyn FnMut(CellAddr, &T));

    /// Tight bounding box of all non-empty cells.
    fn used_bounds(&self) -> Option<Range>;

    /// Shift every cell at `row >= at` down by `count` rows.
    fn insert_rows(&mut self, at: u32, count: u32);

    /// Delete `count` rows starting at `at`: their cells vanish, cells below
    /// shift up.
    fn delete_rows(&mut self, at: u32, count: u32);

    /// Shift every cell at `col >= at` right by `count` columns.
    fn insert_cols(&mut self, at: u32, count: u32);

    /// Delete `count` columns starting at `at`.
    fn delete_cols(&mut self, at: u32, count: u32);

    /// Block-touch counters.
    fn stats(&self) -> &StoreStats;

    /// Number of storage blocks currently allocated.
    fn block_count(&self) -> usize;

    /// All cells in `range`, sorted row-major. Convenience over
    /// [`CellStore::for_each_in_range`].
    fn cells_in_range(&self, range: Range) -> Vec<(CellAddr, T)>
    where
        T: Clone,
    {
        let mut out = Vec::new();
        self.for_each_in_range(range, &mut |a, v| out.push((a, v.clone())));
        out.sort_by_key(|(a, _)| *a);
        out
    }

    /// Remove every cell in `range`, returning how many were removed.
    fn clear_range(&mut self, range: Range) -> usize {
        let mut addrs = Vec::new();
        self.for_each_in_range(range, &mut |a, _| addrs.push(a));
        let n = addrs.len();
        for a in addrs {
            self.remove(a);
        }
        n
    }
}

/// Shift helper shared by the rebuild-style structural edits: maps an address
/// through a row insert/delete, `None` when the cell falls in a deleted band.
pub(crate) fn shift_addr_rows(
    addr: CellAddr,
    at: u32,
    count: u32,
    insert: bool,
) -> Option<CellAddr> {
    if insert {
        if addr.row >= at {
            Some(CellAddr::new(addr.row + count, addr.col))
        } else {
            Some(addr)
        }
    } else {
        if addr.row >= at && addr.row < at + count {
            None
        } else if addr.row >= at + count {
            Some(CellAddr::new(addr.row - count, addr.col))
        } else {
            Some(addr)
        }
    }
}

pub(crate) fn shift_addr_cols(
    addr: CellAddr,
    at: u32,
    count: u32,
    insert: bool,
) -> Option<CellAddr> {
    if insert {
        if addr.col >= at {
            Some(CellAddr::new(addr.row, addr.col + count))
        } else {
            Some(addr)
        }
    } else {
        if addr.col >= at && addr.col < at + count {
            None
        } else if addr.col >= at + count {
            Some(CellAddr::new(addr.row, addr.col - count))
        } else {
            Some(addr)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_rows_insert_and_delete() {
        let a = CellAddr::new(5, 2);
        assert_eq!(shift_addr_rows(a, 3, 2, true), Some(CellAddr::new(7, 2)));
        assert_eq!(shift_addr_rows(a, 6, 2, true), Some(a));
        assert_eq!(shift_addr_rows(a, 5, 1, false), None);
        assert_eq!(shift_addr_rows(a, 3, 2, false), Some(CellAddr::new(3, 2)));
        assert_eq!(shift_addr_rows(a, 6, 2, false), Some(a));
    }

    #[test]
    fn shift_cols_insert_and_delete() {
        let a = CellAddr::new(5, 2);
        assert_eq!(shift_addr_cols(a, 1, 3, true), Some(CellAddr::new(5, 5)));
        assert_eq!(shift_addr_cols(a, 2, 1, false), None);
        assert_eq!(shift_addr_cols(a, 0, 1, false), Some(CellAddr::new(5, 1)));
    }
}
