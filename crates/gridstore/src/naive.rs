//! The no-grouping baseline: one hash entry per cell.
//!
//! This is what a key-value dump of cells looks like with no block structure:
//! point reads are fine, but *range* retrieval must inspect every stored cell
//! because nothing ties spatial proximity to storage proximity. Experiment
//! `C5` quantifies the gap versus [`crate::TiledGrid`]/[`crate::BlockGrid`].

use std::collections::HashMap;

use dataspread_types::{CellAddr, Range};

use crate::{shift_addr_cols, shift_addr_rows, CellStore, StoreStats};

/// Per-cell hash map store.
#[derive(Debug, Default)]
pub struct NaiveGrid<T> {
    cells: HashMap<CellAddr, T>,
    stats: StoreStats,
}

impl<T> NaiveGrid<T> {
    pub fn new() -> Self {
        NaiveGrid {
            cells: HashMap::new(),
            stats: StoreStats::default(),
        }
    }

    fn rebuild(&mut self, f: impl Fn(CellAddr) -> Option<CellAddr>) {
        let old = std::mem::take(&mut self.cells);
        let n = old.len() as u64;
        for (a, v) in old {
            if let Some(na) = f(a) {
                self.cells.insert(na, v);
            }
        }
        self.stats.add_write(n);
    }
}

impl<T> CellStore<T> for NaiveGrid<T> {
    fn get(&self, addr: CellAddr) -> Option<&T> {
        self.stats.add_read(1);
        self.cells.get(&addr)
    }

    fn set(&mut self, addr: CellAddr, value: T) -> Option<T> {
        self.stats.add_write(1);
        self.cells.insert(addr, value)
    }

    fn remove(&mut self, addr: CellAddr) -> Option<T> {
        self.stats.add_write(1);
        self.cells.remove(&addr)
    }

    fn cell_count(&self) -> usize {
        self.cells.len()
    }

    fn for_each_in_range(&self, range: Range, f: &mut dyn FnMut(CellAddr, &T)) {
        // No spatial index: every stored cell is a candidate (and a "block
        // read" — per-cell storage means per-cell blocks).
        self.stats.add_read(self.cells.len() as u64);
        self.stats.add_scanned(self.cells.len() as u64);
        for (a, v) in &self.cells {
            if range.contains(*a) {
                f(*a, v);
            }
        }
    }

    fn used_bounds(&self) -> Option<Range> {
        let mut it = self.cells.keys();
        let first = *it.next()?;
        let mut bounds = Range::cell(first);
        for a in it {
            bounds = bounds.union(&Range::cell(*a));
        }
        Some(bounds)
    }

    fn insert_rows(&mut self, at: u32, count: u32) {
        self.rebuild(|a| shift_addr_rows(a, at, count, true));
    }

    fn delete_rows(&mut self, at: u32, count: u32) {
        self.rebuild(|a| shift_addr_rows(a, at, count, false));
    }

    fn insert_cols(&mut self, at: u32, count: u32) {
        self.rebuild(|a| shift_addr_cols(a, at, count, true));
    }

    fn delete_cols(&mut self, at: u32, count: u32) {
        self.rebuild(|a| shift_addr_cols(a, at, count, false));
    }

    fn stats(&self) -> &StoreStats {
        &self.stats
    }

    fn block_count(&self) -> usize {
        self.cells.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_ops() {
        let mut g = NaiveGrid::new();
        let a = CellAddr::new(3, 4);
        assert_eq!(g.set(a, 42), None);
        assert_eq!(g.get(a), Some(&42));
        assert_eq!(g.set(a, 43), Some(42));
        assert_eq!(g.remove(a), Some(43));
        assert_eq!(g.get(a), None);
        assert_eq!(g.cell_count(), 0);
    }

    #[test]
    fn range_scan_filters() {
        let mut g = NaiveGrid::new();
        g.set(CellAddr::new(0, 0), 1);
        g.set(CellAddr::new(5, 5), 2);
        g.set(CellAddr::new(100, 100), 3);
        let got = g.cells_in_range(Range::from_bounds(0, 0, 10, 10));
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], (CellAddr::new(0, 0), 1));
        assert_eq!(got[1], (CellAddr::new(5, 5), 2));
    }

    #[test]
    fn structural_edits_shift() {
        let mut g = NaiveGrid::new();
        g.set(CellAddr::new(2, 0), "a");
        g.set(CellAddr::new(5, 0), "b");
        g.insert_rows(3, 2);
        assert_eq!(g.get(CellAddr::new(2, 0)), Some(&"a"));
        assert_eq!(g.get(CellAddr::new(7, 0)), Some(&"b"));
        g.delete_rows(0, 3);
        assert_eq!(g.get(CellAddr::new(4, 0)), Some(&"b"));
        assert_eq!(g.cell_count(), 1);
    }

    #[test]
    fn used_bounds_tight() {
        let mut g = NaiveGrid::new();
        assert_eq!(g.used_bounds(), None);
        g.set(CellAddr::new(3, 7), 1);
        g.set(CellAddr::new(9, 2), 1);
        assert_eq!(g.used_bounds(), Some(Range::from_bounds(3, 2, 9, 7)));
    }
}
