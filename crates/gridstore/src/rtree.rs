//! A compact R-tree over integer rectangles.
//!
//! This is the "two-dimensional indexing method" of the paper's interface
//! storage manager: proximity blocks register their bounding rectangles here,
//! and a window fetch asks the tree which blocks could intersect the window.
//! Quadratic-split Guttman R-tree; deletion condenses underfull nodes by
//! re-inserting the orphaned data entries.

use dataspread_types::Range;

/// Inclusive integer rectangle in (row, col) space.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Rect {
    pub r0: u32,
    pub c0: u32,
    pub r1: u32,
    pub c1: u32,
}

impl Rect {
    pub fn new(r0: u32, c0: u32, r1: u32, c1: u32) -> Self {
        debug_assert!(r0 <= r1 && c0 <= c1);
        Rect { r0, c0, r1, c1 }
    }

    pub fn point(r: u32, c: u32) -> Self {
        Rect {
            r0: r,
            c0: c,
            r1: r,
            c1: c,
        }
    }

    pub fn from_range(r: Range) -> Self {
        Rect {
            r0: r.start.row,
            c0: r.start.col,
            r1: r.end.row,
            c1: r.end.col,
        }
    }

    pub fn to_range(self) -> Range {
        Range::from_bounds(self.r0, self.c0, self.r1, self.c1)
    }

    pub fn intersects(&self, o: &Rect) -> bool {
        self.r0 <= o.r1 && o.r0 <= self.r1 && self.c0 <= o.c1 && o.c0 <= self.c1
    }

    pub fn contains_point(&self, r: u32, c: u32) -> bool {
        r >= self.r0 && r <= self.r1 && c >= self.c0 && c <= self.c1
    }

    pub fn union(&self, o: &Rect) -> Rect {
        Rect {
            r0: self.r0.min(o.r0),
            c0: self.c0.min(o.c0),
            r1: self.r1.max(o.r1),
            c1: self.c1.max(o.c1),
        }
    }

    pub fn area(&self) -> u64 {
        (self.r1 - self.r0 + 1) as u64 * (self.c1 - self.c0 + 1) as u64
    }

    /// How much this rectangle's area would grow to cover `o`.
    pub fn enlargement(&self, o: &Rect) -> u64 {
        self.union(o).area() - self.area()
    }
}

type NodeId = usize;

#[derive(Debug)]
enum RNodeKind<P> {
    Leaf(Vec<(Rect, P)>),
    Internal(Vec<(Rect, NodeId)>),
    Free,
}

#[derive(Debug)]
struct RNode<P> {
    kind: RNodeKind<P>,
}

/// Guttman R-tree mapping rectangles to payloads.
#[derive(Debug)]
pub struct RTree<P> {
    arena: Vec<RNode<P>>,
    free: Vec<NodeId>,
    root: NodeId,
    len: usize,
    max_entries: usize,
    min_entries: usize,
}

impl<P: Copy + PartialEq> Default for RTree<P> {
    fn default() -> Self {
        RTree::new(8)
    }
}

impl<P: Copy + PartialEq> RTree<P> {
    /// `max_entries` per node (≥ 4); min fill is `max_entries / 2 - 1`,
    /// clamped to ≥ 2.
    pub fn new(max_entries: usize) -> Self {
        assert!(max_entries >= 4);
        RTree {
            arena: vec![RNode {
                kind: RNodeKind::Leaf(Vec::new()),
            }],
            free: Vec::new(),
            root: 0,
            len: 0,
            max_entries,
            min_entries: (max_entries / 2).saturating_sub(1).max(2),
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn alloc(&mut self, node: RNode<P>) -> NodeId {
        if let Some(id) = self.free.pop() {
            self.arena[id] = node;
            id
        } else {
            self.arena.push(node);
            self.arena.len() - 1
        }
    }

    fn release(&mut self, id: NodeId) {
        self.arena[id] = RNode {
            kind: RNodeKind::Free,
        };
        self.free.push(id);
    }

    // ---- insert ----------------------------------------------------------

    pub fn insert(&mut self, rect: Rect, payload: P) {
        self.len += 1;
        if let Some((sib_rect, sib_id)) = self.insert_rec(self.root, rect, payload) {
            // Root split: grow the tree by one level.
            let old_root = self.root;
            let old_rect = self.node_bounds(old_root);
            let new_root = self.alloc(RNode {
                kind: RNodeKind::Internal(vec![(old_rect, old_root), (sib_rect, sib_id)]),
            });
            self.root = new_root;
        }
    }

    /// Recursive insert; returns `Some((rect, id))` if `node` split and a new
    /// sibling must be linked by the caller.
    fn insert_rec(&mut self, node: NodeId, rect: Rect, payload: P) -> Option<(Rect, NodeId)> {
        let is_leaf = matches!(self.arena[node].kind, RNodeKind::Leaf(_));
        if is_leaf {
            match &mut self.arena[node].kind {
                RNodeKind::Leaf(entries) => entries.push((rect, payload)),
                _ => unreachable!(),
            }
            if self.node_len(node) > self.max_entries {
                return Some(self.split_leaf(node));
            }
            return None;
        }
        // Choose the subtree needing least enlargement (ties: smaller area).
        let chosen = match &self.arena[node].kind {
            RNodeKind::Internal(entries) => {
                let mut best = 0;
                let mut best_cost = (u64::MAX, u64::MAX);
                for (i, (r, _)) in entries.iter().enumerate() {
                    let cost = (r.enlargement(&rect), r.area());
                    if cost < best_cost {
                        best_cost = cost;
                        best = i;
                    }
                }
                best
            }
            _ => unreachable!(),
        };
        let child_id = match &self.arena[node].kind {
            RNodeKind::Internal(entries) => entries[chosen].1,
            _ => unreachable!(),
        };
        let split = self.insert_rec(child_id, rect, payload);
        // Update the chosen entry's rect to cover the new data.
        let child_bounds = self.node_bounds(child_id);
        match &mut self.arena[node].kind {
            RNodeKind::Internal(entries) => entries[chosen].0 = child_bounds,
            _ => unreachable!(),
        }
        if let Some((sr, sid)) = split {
            match &mut self.arena[node].kind {
                RNodeKind::Internal(entries) => entries.push((sr, sid)),
                _ => unreachable!(),
            }
            if self.node_len(node) > self.max_entries {
                return Some(self.split_internal(node));
            }
        }
        None
    }

    fn node_len(&self, id: NodeId) -> usize {
        match &self.arena[id].kind {
            RNodeKind::Leaf(e) => e.len(),
            RNodeKind::Internal(e) => e.len(),
            RNodeKind::Free => panic!("free node"),
        }
    }

    fn node_bounds(&self, id: NodeId) -> Rect {
        match &self.arena[id].kind {
            RNodeKind::Leaf(e) => {
                let mut it = e.iter();
                let mut b = it.next().expect("bounds of empty node").0;
                for (r, _) in it {
                    b = b.union(r);
                }
                b
            }
            RNodeKind::Internal(e) => {
                let mut it = e.iter();
                let mut b = it.next().expect("bounds of empty node").0;
                for (r, _) in it {
                    b = b.union(r);
                }
                b
            }
            RNodeKind::Free => panic!("free node"),
        }
    }

    fn split_leaf(&mut self, node: NodeId) -> (Rect, NodeId) {
        let entries = match &mut self.arena[node].kind {
            RNodeKind::Leaf(e) => std::mem::take(e),
            _ => unreachable!(),
        };
        let (a, b) = quadratic_split(entries, self.min_entries);
        match &mut self.arena[node].kind {
            RNodeKind::Leaf(e) => *e = a,
            _ => unreachable!(),
        }
        let sib = self.alloc(RNode {
            kind: RNodeKind::Leaf(b),
        });
        (self.node_bounds(sib), sib)
    }

    fn split_internal(&mut self, node: NodeId) -> (Rect, NodeId) {
        let entries = match &mut self.arena[node].kind {
            RNodeKind::Internal(e) => std::mem::take(e),
            _ => unreachable!(),
        };
        let (a, b) = quadratic_split(entries, self.min_entries);
        match &mut self.arena[node].kind {
            RNodeKind::Internal(e) => *e = a,
            _ => unreachable!(),
        }
        let sib = self.alloc(RNode {
            kind: RNodeKind::Internal(b),
        });
        (self.node_bounds(sib), sib)
    }

    // ---- search ------------------------------------------------------------

    /// All payloads whose rectangle intersects `query`.
    pub fn search(&self, query: Rect) -> Vec<P> {
        let mut out = Vec::new();
        self.search_rec(self.root, query, &mut out);
        out
    }

    /// Payloads whose rectangle contains the point.
    pub fn point_search(&self, row: u32, col: u32) -> Vec<P> {
        self.search(Rect::point(row, col))
    }

    fn search_rec(&self, node: NodeId, query: Rect, out: &mut Vec<P>) {
        match &self.arena[node].kind {
            RNodeKind::Leaf(entries) => {
                for (r, p) in entries {
                    if r.intersects(&query) {
                        out.push(*p);
                    }
                }
            }
            RNodeKind::Internal(entries) => {
                for (r, c) in entries {
                    if r.intersects(&query) {
                        self.search_rec(*c, query, out);
                    }
                }
            }
            RNodeKind::Free => panic!("free node"),
        }
    }

    /// Visit every (rect, payload) pair (unordered) — used by rebuilds.
    pub fn for_each(&self, f: &mut dyn FnMut(Rect, P)) {
        self.for_each_rec(self.root, f);
    }

    fn for_each_rec(&self, node: NodeId, f: &mut dyn FnMut(Rect, P)) {
        match &self.arena[node].kind {
            RNodeKind::Leaf(entries) => {
                for (r, p) in entries {
                    f(*r, *p);
                }
            }
            RNodeKind::Internal(entries) => {
                for (_, c) in entries {
                    self.for_each_rec(*c, f);
                }
            }
            RNodeKind::Free => panic!("free node"),
        }
    }

    // ---- delete -----------------------------------------------------------

    /// Remove the entry with this payload whose stored rect intersects
    /// `rect`. Returns `true` if an entry was removed.
    pub fn remove(&mut self, rect: Rect, payload: P) -> bool {
        let mut orphans: Vec<(Rect, P)> = Vec::new();
        let found = self.remove_rec(self.root, rect, payload, &mut orphans);
        if found {
            self.len -= 1;
        }
        // Shrink the root: an internal root with one child drops a level.
        loop {
            let collapse = match &self.arena[self.root].kind {
                RNodeKind::Internal(entries) if entries.len() == 1 => Some(entries[0].1),
                RNodeKind::Internal(entries) if entries.is_empty() => None,
                _ => break,
            };
            match collapse {
                Some(child) => {
                    let old = self.root;
                    self.root = child;
                    self.release(old);
                }
                None => {
                    self.arena[self.root].kind = RNodeKind::Leaf(Vec::new());
                    break;
                }
            }
        }
        // Re-insert data entries orphaned by condensed nodes.
        for (r, p) in orphans {
            self.len -= 1; // insert() will re-increment
            self.insert(r, p);
        }
        found
    }

    fn remove_rec(
        &mut self,
        node: NodeId,
        rect: Rect,
        payload: P,
        orphans: &mut Vec<(Rect, P)>,
    ) -> bool {
        let is_leaf = matches!(self.arena[node].kind, RNodeKind::Leaf(_));
        if is_leaf {
            match &mut self.arena[node].kind {
                RNodeKind::Leaf(entries) => {
                    if let Some(i) = entries
                        .iter()
                        .position(|(r, p)| *p == payload && r.intersects(&rect))
                    {
                        entries.remove(i);
                        return true;
                    }
                    false
                }
                _ => unreachable!(),
            }
        } else {
            let candidates: Vec<(usize, NodeId)> = match &self.arena[node].kind {
                RNodeKind::Internal(entries) => entries
                    .iter()
                    .enumerate()
                    .filter(|(_, (r, _))| r.intersects(&rect))
                    .map(|(i, (_, c))| (i, *c))
                    .collect(),
                _ => unreachable!(),
            };
            for (idx, child) in candidates {
                if self.remove_rec(child, rect, payload, orphans) {
                    if self.node_len(child) < self.min_entries {
                        // Condense: orphan the whole subtree for re-insert.
                        self.collect_subtree(child, orphans);
                        self.release(child);
                        match &mut self.arena[node].kind {
                            RNodeKind::Internal(entries) => {
                                entries.remove(idx);
                            }
                            _ => unreachable!(),
                        }
                    } else {
                        let nb = self.node_bounds(child);
                        match &mut self.arena[node].kind {
                            RNodeKind::Internal(entries) => entries[idx].0 = nb,
                            _ => unreachable!(),
                        }
                    }
                    return true;
                }
            }
            false
        }
    }

    fn collect_subtree(&mut self, node: NodeId, out: &mut Vec<(Rect, P)>) {
        let kind = std::mem::replace(&mut self.arena[node].kind, RNodeKind::Free);
        match kind {
            RNodeKind::Leaf(entries) => out.extend(entries),
            RNodeKind::Internal(entries) => {
                for (_, c) in entries {
                    self.collect_subtree(c, out);
                    self.release(c);
                }
            }
            RNodeKind::Free => {}
        }
    }

    /// Update the rectangle stored for `payload` (a block grew or shrank):
    /// remove + re-insert.
    pub fn update(&mut self, old_rect: Rect, new_rect: Rect, payload: P) -> bool {
        if self.remove(old_rect, payload) {
            self.insert(new_rect, payload);
            true
        } else {
            false
        }
    }
}

/// The two halves a node splits into.
type SplitHalves<X> = (Vec<(Rect, X)>, Vec<(Rect, X)>);

/// Guttman quadratic split: pick the two seeds wasting the most area
/// together, then greedily assign the rest by least enlargement.
fn quadratic_split<X>(mut entries: Vec<(Rect, X)>, min_entries: usize) -> SplitHalves<X> {
    debug_assert!(entries.len() >= 2);
    // Seed selection.
    let (mut s1, mut s2, mut worst) = (0usize, 1usize, 0i64);
    for i in 0..entries.len() {
        for j in (i + 1)..entries.len() {
            let d = entries[i].0.union(&entries[j].0).area() as i64
                - entries[i].0.area() as i64
                - entries[j].0.area() as i64;
            if d >= worst {
                worst = d;
                s1 = i;
                s2 = j;
            }
        }
    }
    // Take seeds out (higher index first to keep the other stable).
    let (hi, lo) = if s1 > s2 { (s1, s2) } else { (s2, s1) };
    let e_hi = entries.swap_remove(hi);
    let e_lo = entries.swap_remove(lo);
    let mut a = vec![e_lo];
    let mut b = vec![e_hi];
    let mut ra = a[0].0;
    let mut rb = b[0].0;
    while let Some(e) = entries.pop() {
        // Force assignment if one side must take everything to reach min.
        let remaining = entries.len() + 1;
        if a.len() + remaining <= min_entries {
            ra = ra.union(&e.0);
            a.push(e);
            continue;
        }
        if b.len() + remaining <= min_entries {
            rb = rb.union(&e.0);
            b.push(e);
            continue;
        }
        let ea = ra.enlargement(&e.0);
        let eb = rb.enlargement(&e.0);
        if ea < eb || (ea == eb && a.len() <= b.len()) {
            ra = ra.union(&e.0);
            a.push(e);
        } else {
            rb = rb.union(&e.0);
            b.push(e);
        }
    }
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_basics() {
        let a = Rect::new(0, 0, 4, 4);
        let b = Rect::new(3, 3, 6, 6);
        assert!(a.intersects(&b));
        assert_eq!(a.union(&b), Rect::new(0, 0, 6, 6));
        assert_eq!(a.area(), 25);
        assert_eq!(a.enlargement(&b), 49 - 25);
        assert!(a.contains_point(4, 4));
        assert!(!a.contains_point(5, 0));
    }

    #[test]
    fn insert_search_point() {
        let mut t: RTree<u32> = RTree::new(4);
        for i in 0..50u32 {
            t.insert(Rect::new(i * 10, 0, i * 10 + 5, 5), i);
        }
        assert_eq!(t.len(), 50);
        let hits = t.point_search(102, 3);
        assert_eq!(hits, vec![10]);
        let hits = t.search(Rect::new(0, 0, 25, 5));
        let mut hits = hits;
        hits.sort();
        assert_eq!(hits, vec![0, 1, 2]);
    }

    #[test]
    fn overlapping_rects_all_found() {
        let mut t: RTree<u32> = RTree::new(4);
        for i in 0..20u32 {
            t.insert(Rect::new(0, 0, 10, 10), i);
        }
        let mut hits = t.point_search(5, 5);
        hits.sort();
        assert_eq!(hits, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn remove_and_search() {
        let mut t: RTree<u32> = RTree::new(4);
        for i in 0..30u32 {
            t.insert(Rect::point(i, i), i);
        }
        assert!(t.remove(Rect::point(7, 7), 7));
        assert!(!t.remove(Rect::point(7, 7), 7), "double remove");
        assert_eq!(t.len(), 29);
        assert!(t.point_search(7, 7).is_empty());
        assert_eq!(t.point_search(8, 8), vec![8]);
    }

    #[test]
    fn remove_everything() {
        let mut t: RTree<u32> = RTree::new(4);
        for i in 0..100u32 {
            t.insert(Rect::new(i, i, i + 2, i + 2), i);
        }
        for i in 0..100u32 {
            assert!(t.remove(Rect::new(i, i, i + 2, i + 2), i), "remove {i}");
        }
        assert!(t.is_empty());
        assert!(t.search(Rect::new(0, 0, 1000, 1000)).is_empty());
    }

    #[test]
    fn update_moves_entry() {
        let mut t: RTree<u32> = RTree::new(4);
        t.insert(Rect::new(0, 0, 1, 1), 42);
        assert!(t.update(Rect::new(0, 0, 1, 1), Rect::new(50, 50, 60, 60), 42));
        assert!(t.point_search(0, 0).is_empty());
        assert_eq!(t.point_search(55, 55), vec![42]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn for_each_visits_all() {
        let mut t: RTree<u32> = RTree::new(5);
        for i in 0..37u32 {
            t.insert(Rect::point(i % 7, i / 7), i);
        }
        let mut seen = Vec::new();
        t.for_each(&mut |_, p| seen.push(p));
        seen.sort();
        assert_eq!(seen, (0..37).collect::<Vec<_>>());
    }

    #[test]
    fn search_window_after_heavy_churn() {
        let mut t: RTree<u32> = RTree::new(6);
        // Insert 200, delete the odd ones, verify the evens.
        for i in 0..200u32 {
            t.insert(Rect::point(i, 2 * i), i);
        }
        for i in (1..200u32).step_by(2) {
            assert!(t.remove(Rect::point(i, 2 * i), i));
        }
        for i in (0..200u32).step_by(2) {
            assert_eq!(t.point_search(i, 2 * i), vec![i], "payload {i}");
        }
        assert_eq!(t.len(), 100);
    }
}
