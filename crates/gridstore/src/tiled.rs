//! Fixed-extent tile store: the production layout for sheet data.
//!
//! Cells are grouped into `tile_rows × tile_cols` tiles ("data blocks");
//! a window fetch touches exactly the tiles overlapping the window, so the
//! cost is O(window area / tile area) block reads regardless of how much data
//! lives elsewhere on the sheet. Tile extent is a measured trade-off
//! (ablation #2 in DESIGN.md): small tiles waste less space on sparse sheets,
//! large tiles scan faster on dense ones.

use std::collections::HashMap;

use dataspread_types::{CellAddr, Range};

use crate::{shift_addr_cols, shift_addr_rows, CellStore, StoreStats};

/// Tile extent configuration.
#[derive(Clone, Copy, Debug)]
pub struct TileConfig {
    pub tile_rows: u32,
    pub tile_cols: u32,
}

impl Default for TileConfig {
    fn default() -> Self {
        // 32×32 = 1024 slots ≈ a few KB per tile for typical payloads,
        // matching the disk-block framing of the paper.
        TileConfig {
            tile_rows: 32,
            tile_cols: 32,
        }
    }
}

#[derive(Debug)]
struct Tile<T> {
    slots: Vec<Option<T>>,
    occupied: u32,
}

impl<T> Tile<T> {
    fn new(capacity: usize) -> Self {
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, || None);
        Tile { slots, occupied: 0 }
    }
}

/// Sparse grid of fixed-extent tiles.
#[derive(Debug)]
pub struct TiledGrid<T> {
    cfg: TileConfig,
    tiles: HashMap<(u32, u32), Tile<T>>,
    cells: usize,
    stats: StoreStats,
}

impl<T> Default for TiledGrid<T> {
    fn default() -> Self {
        TiledGrid::new(TileConfig::default())
    }
}

impl<T> TiledGrid<T> {
    pub fn new(cfg: TileConfig) -> Self {
        assert!(cfg.tile_rows > 0 && cfg.tile_cols > 0);
        TiledGrid {
            cfg,
            tiles: HashMap::new(),
            cells: 0,
            stats: StoreStats::default(),
        }
    }

    pub fn config(&self) -> TileConfig {
        self.cfg
    }

    #[inline]
    fn tile_coord(&self, addr: CellAddr) -> (u32, u32) {
        (addr.row / self.cfg.tile_rows, addr.col / self.cfg.tile_cols)
    }

    #[inline]
    fn slot_index(&self, addr: CellAddr) -> usize {
        let r = addr.row % self.cfg.tile_rows;
        let c = addr.col % self.cfg.tile_cols;
        (r * self.cfg.tile_cols + c) as usize
    }

    fn rebuild(
        &mut self,
        f: impl Fn(CellAddr) -> Option<CellAddr>,
        from: Option<u32>,
        axis_rows: bool,
    ) {
        // Only tiles that can contain affected cells need rebuilding; tiles
        // strictly before the edit point are untouched (the block-level
        // advantage over the naive store).
        let boundary_tile = from.map(|at| {
            if axis_rows {
                at / self.cfg.tile_rows
            } else {
                at / self.cfg.tile_cols
            }
        });
        let affected: Vec<(u32, u32)> = self
            .tiles
            .keys()
            .copied()
            .filter(|(tr, tc)| match boundary_tile {
                Some(b) => {
                    if axis_rows {
                        *tr >= b
                    } else {
                        *tc >= b
                    }
                }
                None => true,
            })
            .collect();
        let mut moved: Vec<(CellAddr, T)> = Vec::new();
        for coord in &affected {
            let tile = self.tiles.remove(coord).unwrap();
            let base_row = coord.0 * self.cfg.tile_rows;
            let base_col = coord.1 * self.cfg.tile_cols;
            for (i, slot) in tile.slots.into_iter().enumerate() {
                if let Some(v) = slot {
                    let r = base_row + i as u32 / self.cfg.tile_cols;
                    let c = base_col + i as u32 % self.cfg.tile_cols;
                    self.cells -= 1;
                    if let Some(na) = f(CellAddr::new(r, c)) {
                        moved.push((na, v));
                    }
                }
            }
        }
        self.stats.add_write(affected.len() as u64);
        for (a, v) in moved {
            self.set_internal(a, v);
        }
    }

    fn set_internal(&mut self, addr: CellAddr, value: T) -> Option<T> {
        let coord = self.tile_coord(addr);
        let idx = self.slot_index(addr);
        let cap = (self.cfg.tile_rows * self.cfg.tile_cols) as usize;
        let tile = self.tiles.entry(coord).or_insert_with(|| Tile::new(cap));
        let old = tile.slots[idx].replace(value);
        if old.is_none() {
            tile.occupied += 1;
            self.cells += 1;
        }
        old
    }
}

impl<T> CellStore<T> for TiledGrid<T> {
    fn get(&self, addr: CellAddr) -> Option<&T> {
        self.stats.add_read(1);
        let tile = self.tiles.get(&self.tile_coord(addr))?;
        tile.slots[self.slot_index(addr)].as_ref()
    }

    fn set(&mut self, addr: CellAddr, value: T) -> Option<T> {
        self.stats.add_write(1);
        self.set_internal(addr, value)
    }

    fn remove(&mut self, addr: CellAddr) -> Option<T> {
        self.stats.add_write(1);
        let coord = self.tile_coord(addr);
        let idx = self.slot_index(addr);
        let tile = self.tiles.get_mut(&coord)?;
        let old = tile.slots[idx].take();
        if old.is_some() {
            tile.occupied -= 1;
            self.cells -= 1;
            if tile.occupied == 0 {
                self.tiles.remove(&coord);
            }
        }
        old
    }

    fn cell_count(&self) -> usize {
        self.cells
    }

    fn for_each_in_range(&self, range: Range, f: &mut dyn FnMut(CellAddr, &T)) {
        let (tr0, tc0) = self.tile_coord(range.start);
        let (tr1, tc1) = self.tile_coord(range.end);
        for tr in tr0..=tr1 {
            for tc in tc0..=tc1 {
                let Some(tile) = self.tiles.get(&(tr, tc)) else {
                    continue;
                };
                self.stats.add_read(1);
                let base_row = tr * self.cfg.tile_rows;
                let base_col = tc * self.cfg.tile_cols;
                // Visit only the slots inside the intersection of the tile
                // and the requested range.
                let r_lo = range.start.row.max(base_row) - base_row;
                let r_hi = range.end.row.min(base_row + self.cfg.tile_rows - 1) - base_row;
                let c_lo = range.start.col.max(base_col) - base_col;
                let c_hi = range.end.col.min(base_col + self.cfg.tile_cols - 1) - base_col;
                for r in r_lo..=r_hi {
                    for c in c_lo..=c_hi {
                        self.stats.add_scanned(1);
                        let idx = (r * self.cfg.tile_cols + c) as usize;
                        if let Some(v) = &tile.slots[idx] {
                            f(CellAddr::new(base_row + r, base_col + c), v);
                        }
                    }
                }
            }
        }
    }

    fn used_bounds(&self) -> Option<Range> {
        let mut bounds: Option<Range> = None;
        for (coord, tile) in &self.tiles {
            let base_row = coord.0 * self.cfg.tile_rows;
            let base_col = coord.1 * self.cfg.tile_cols;
            for (i, slot) in tile.slots.iter().enumerate() {
                if slot.is_some() {
                    let a = CellAddr::new(
                        base_row + i as u32 / self.cfg.tile_cols,
                        base_col + i as u32 % self.cfg.tile_cols,
                    );
                    bounds = Some(match bounds {
                        Some(b) => b.union(&Range::cell(a)),
                        None => Range::cell(a),
                    });
                }
            }
        }
        bounds
    }

    fn insert_rows(&mut self, at: u32, count: u32) {
        self.rebuild(|a| shift_addr_rows(a, at, count, true), Some(at), true);
    }

    fn delete_rows(&mut self, at: u32, count: u32) {
        self.rebuild(|a| shift_addr_rows(a, at, count, false), Some(at), true);
    }

    fn insert_cols(&mut self, at: u32, count: u32) {
        self.rebuild(|a| shift_addr_cols(a, at, count, true), Some(at), false);
    }

    fn delete_cols(&mut self, at: u32, count: u32) {
        self.rebuild(|a| shift_addr_cols(a, at, count, false), Some(at), false);
    }

    fn stats(&self) -> &StoreStats {
        &self.stats
    }

    fn block_count(&self) -> usize {
        self.tiles.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TiledGrid<i64> {
        TiledGrid::new(TileConfig {
            tile_rows: 4,
            tile_cols: 4,
        })
    }

    #[test]
    fn point_ops_cross_tiles() {
        let mut g = small();
        for i in 0..20u32 {
            assert_eq!(g.set(CellAddr::new(i, i), i as i64), None);
        }
        assert_eq!(g.cell_count(), 20);
        assert!(g.block_count() >= 5, "diagonal spans at least 5 tiles");
        for i in 0..20u32 {
            assert_eq!(g.get(CellAddr::new(i, i)), Some(&(i as i64)));
        }
        assert_eq!(g.get(CellAddr::new(0, 1)), None);
    }

    #[test]
    fn remove_drops_empty_tiles() {
        let mut g = small();
        g.set(CellAddr::new(0, 0), 1);
        g.set(CellAddr::new(100, 100), 2);
        assert_eq!(g.block_count(), 2);
        g.remove(CellAddr::new(100, 100));
        assert_eq!(g.block_count(), 1);
        assert_eq!(g.cell_count(), 1);
    }

    #[test]
    fn range_scan_touches_only_overlapping_tiles() {
        let mut g = small();
        // 3 distant clusters.
        for r in 0..4u32 {
            for c in 0..4u32 {
                g.set(CellAddr::new(r, c), 1);
                g.set(CellAddr::new(r + 100, c), 2);
                g.set(CellAddr::new(r, c + 100), 3);
            }
        }
        g.stats().reset();
        let got = g.cells_in_range(Range::from_bounds(0, 0, 3, 3));
        assert_eq!(got.len(), 16);
        assert_eq!(g.stats().blocks_read(), 1, "only one tile overlaps");
    }

    #[test]
    fn range_scan_is_sorted_row_major() {
        let mut g = small();
        g.set(CellAddr::new(1, 5), 1);
        g.set(CellAddr::new(0, 9), 2);
        g.set(CellAddr::new(1, 0), 3);
        let got = g.cells_in_range(Range::from_bounds(0, 0, 10, 10));
        let addrs: Vec<CellAddr> = got.iter().map(|(a, _)| *a).collect();
        let mut sorted = addrs.clone();
        sorted.sort();
        assert_eq!(addrs, sorted);
        assert_eq!(addrs[0], CellAddr::new(0, 9));
    }

    #[test]
    fn insert_rows_shifts_only_below() {
        let mut g = small();
        g.set(CellAddr::new(1, 1), 10);
        g.set(CellAddr::new(9, 1), 90);
        g.insert_rows(4, 3);
        assert_eq!(g.get(CellAddr::new(1, 1)), Some(&10));
        assert_eq!(g.get(CellAddr::new(12, 1)), Some(&90));
        assert_eq!(g.cell_count(), 2);
    }

    #[test]
    fn delete_rows_drops_band() {
        let mut g = small();
        g.set(CellAddr::new(2, 0), 1);
        g.set(CellAddr::new(5, 0), 2);
        g.set(CellAddr::new(8, 0), 3);
        g.delete_rows(4, 3);
        assert_eq!(g.get(CellAddr::new(2, 0)), Some(&1));
        assert_eq!(g.get(CellAddr::new(5, 0)), Some(&3));
        assert_eq!(g.cell_count(), 2);
    }

    #[test]
    fn insert_cols_shifts() {
        let mut g = small();
        g.set(CellAddr::new(0, 2), 1);
        g.insert_cols(0, 4);
        assert_eq!(g.get(CellAddr::new(0, 6)), Some(&1));
    }

    #[test]
    fn used_bounds_after_edits() {
        let mut g = small();
        g.set(CellAddr::new(3, 3), 1);
        g.set(CellAddr::new(10, 1), 1);
        assert_eq!(g.used_bounds(), Some(Range::from_bounds(3, 1, 10, 3)));
        g.remove(CellAddr::new(10, 1));
        assert_eq!(g.used_bounds(), Some(Range::cell(CellAddr::new(3, 3))));
    }

    #[test]
    fn overwrite_keeps_count() {
        let mut g = small();
        g.set(CellAddr::new(0, 0), 1);
        assert_eq!(g.set(CellAddr::new(0, 0), 2), Some(1));
        assert_eq!(g.cell_count(), 1);
    }
}
