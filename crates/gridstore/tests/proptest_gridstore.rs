//! Model-based property tests: all three cell stores must agree with a plain
//! `HashMap` model under arbitrary edit sequences, including structural
//! row/column edits and range queries.
//!
//! Driven by `dataspread_testkit` (deterministic seeds) instead of an
//! external property-testing crate — see substitution #4 in `DESIGN.md`.

use std::collections::HashMap;

use dataspread_gridstore::block::BlockConfig;
use dataspread_gridstore::{BlockGrid, CellStore, NaiveGrid, TileConfig, TiledGrid};
use dataspread_testkit::{cases, Rng};
use dataspread_types::{CellAddr, Range};

#[derive(Clone, Debug)]
enum Op {
    Set(u32, u32, i64),
    Remove(u32, u32),
    InsertRows(u32, u32),
    DeleteRows(u32, u32),
    InsertCols(u32, u32),
    DeleteCols(u32, u32),
    QueryRange(u32, u32, u32, u32),
}

fn arb_ops(rng: &mut Rng) -> Vec<Op> {
    let len = rng.index(80);
    (0..len)
        .map(|_| match rng.weighted(&[4, 2, 1, 1, 1, 1, 2]) {
            0 => Op::Set(rng.u32_in(0, 64), rng.u32_in(0, 64), rng.i64()),
            1 => Op::Remove(rng.u32_in(0, 64), rng.u32_in(0, 64)),
            2 => Op::InsertRows(rng.u32_in(0, 40), rng.u32_in(1, 4)),
            3 => Op::DeleteRows(rng.u32_in(0, 40), rng.u32_in(1, 4)),
            4 => Op::InsertCols(rng.u32_in(0, 40), rng.u32_in(1, 4)),
            5 => Op::DeleteCols(rng.u32_in(0, 40), rng.u32_in(1, 4)),
            _ => Op::QueryRange(
                rng.u32_in(0, 64),
                rng.u32_in(0, 64),
                rng.u32_in(0, 64),
                rng.u32_in(0, 64),
            ),
        })
        .collect()
}

struct Model {
    cells: HashMap<CellAddr, i64>,
}

impl Model {
    fn new() -> Self {
        Model {
            cells: HashMap::new(),
        }
    }

    fn apply_shift(&mut self, f: impl Fn(CellAddr) -> Option<CellAddr>) {
        let old = std::mem::take(&mut self.cells);
        for (a, v) in old {
            if let Some(na) = f(a) {
                self.cells.insert(na, v);
            }
        }
    }
}

fn run_store<S: CellStore<i64>>(mut store: S, ops: &[Op]) {
    let mut model = Model::new();
    for op in ops {
        match *op {
            Op::Set(r, c, v) => {
                let a = CellAddr::new(r, c);
                let old_s = store.set(a, v);
                let old_m = model.cells.insert(a, v);
                assert_eq!(old_s, old_m, "set({a}) old value mismatch");
            }
            Op::Remove(r, c) => {
                let a = CellAddr::new(r, c);
                assert_eq!(store.remove(a), model.cells.remove(&a), "remove({a})");
            }
            Op::InsertRows(at, n) => {
                store.insert_rows(at, n);
                model.apply_shift(|a| {
                    if a.row >= at {
                        Some(CellAddr::new(a.row + n, a.col))
                    } else {
                        Some(a)
                    }
                });
            }
            Op::DeleteRows(at, n) => {
                store.delete_rows(at, n);
                model.apply_shift(|a| {
                    if a.row >= at && a.row < at + n {
                        None
                    } else if a.row >= at + n {
                        Some(CellAddr::new(a.row - n, a.col))
                    } else {
                        Some(a)
                    }
                });
            }
            Op::InsertCols(at, n) => {
                store.insert_cols(at, n);
                model.apply_shift(|a| {
                    if a.col >= at {
                        Some(CellAddr::new(a.row, a.col + n))
                    } else {
                        Some(a)
                    }
                });
            }
            Op::DeleteCols(at, n) => {
                store.delete_cols(at, n);
                model.apply_shift(|a| {
                    if a.col >= at && a.col < at + n {
                        None
                    } else if a.col >= at + n {
                        Some(CellAddr::new(a.row, a.col - n))
                    } else {
                        Some(a)
                    }
                });
            }
            Op::QueryRange(r0, c0, r1, c1) => {
                let q = Range::new(CellAddr::new(r0, c0), CellAddr::new(r1, c1));
                let got = store.cells_in_range(q);
                let mut expect: Vec<(CellAddr, i64)> = model
                    .cells
                    .iter()
                    .filter(|(a, _)| q.contains(**a))
                    .map(|(a, v)| (*a, *v))
                    .collect();
                expect.sort_by_key(|(a, _)| *a);
                assert_eq!(got, expect, "range query {q} mismatch");
            }
        }
        assert_eq!(
            store.cell_count(),
            model.cells.len(),
            "cell count after {op:?}"
        );
    }
    // Final full sweep.
    if let Some(bounds) = store.used_bounds() {
        let got = store.cells_in_range(bounds);
        assert_eq!(got.len(), model.cells.len());
    } else {
        assert!(model.cells.is_empty());
    }
}

#[test]
fn naive_matches_model() {
    cases(48, 0x621201, |rng| {
        let ops = arb_ops(rng);
        run_store(NaiveGrid::new(), &ops);
    });
}

#[test]
fn tiled_matches_model() {
    cases(48, 0x621202, |rng| {
        let ops = arb_ops(rng);
        run_store(
            TiledGrid::new(TileConfig {
                tile_rows: 8,
                tile_cols: 8,
            }),
            &ops,
        );
    });
}

#[test]
fn tiled_default_matches_model() {
    cases(48, 0x621203, |rng| {
        let ops = arb_ops(rng);
        run_store(TiledGrid::default(), &ops);
    });
}

#[test]
fn block_matches_model() {
    cases(48, 0x621204, |rng| {
        let ops = arb_ops(rng);
        run_store(
            BlockGrid::new(BlockConfig {
                capacity: 16,
                proximity: 4,
            }),
            &ops,
        );
    });
}

#[test]
fn block_small_capacity_matches_model() {
    // Capacity 2 forces constant splitting — stress for the R-tree churn.
    cases(48, 0x621205, |rng| {
        let ops = arb_ops(rng);
        run_store(
            BlockGrid::new(BlockConfig {
                capacity: 2,
                proximity: 2,
            }),
            &ops,
        );
    });
}
