//! Model-based property tests: all three cell stores must agree with a plain
//! `HashMap` model under arbitrary edit sequences, including structural
//! row/column edits and range queries.

use std::collections::HashMap;

use proptest::prelude::*;

use dataspread_gridstore::block::BlockConfig;
use dataspread_gridstore::{BlockGrid, CellStore, NaiveGrid, TileConfig, TiledGrid};
use dataspread_types::{CellAddr, Range};

#[derive(Clone, Debug)]
enum Op {
    Set(u32, u32, i64),
    Remove(u32, u32),
    InsertRows(u32, u32),
    DeleteRows(u32, u32),
    InsertCols(u32, u32),
    DeleteCols(u32, u32),
    QueryRange(u32, u32, u32, u32),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            4 => (0u32..64, 0u32..64, any::<i64>()).prop_map(|(r, c, v)| Op::Set(r, c, v)),
            2 => (0u32..64, 0u32..64).prop_map(|(r, c)| Op::Remove(r, c)),
            1 => (0u32..40, 1u32..4).prop_map(|(at, n)| Op::InsertRows(at, n)),
            1 => (0u32..40, 1u32..4).prop_map(|(at, n)| Op::DeleteRows(at, n)),
            1 => (0u32..40, 1u32..4).prop_map(|(at, n)| Op::InsertCols(at, n)),
            1 => (0u32..40, 1u32..4).prop_map(|(at, n)| Op::DeleteCols(at, n)),
            2 => (0u32..64, 0u32..64, 0u32..64, 0u32..64)
                .prop_map(|(a, b, c, d)| Op::QueryRange(a, b, c, d)),
        ],
        0..80,
    )
}

struct Model {
    cells: HashMap<CellAddr, i64>,
}

impl Model {
    fn new() -> Self {
        Model { cells: HashMap::new() }
    }

    fn apply_shift(&mut self, f: impl Fn(CellAddr) -> Option<CellAddr>) {
        let old = std::mem::take(&mut self.cells);
        for (a, v) in old {
            if let Some(na) = f(a) {
                self.cells.insert(na, v);
            }
        }
    }
}

fn run_store<S: CellStore<i64>>(mut store: S, ops: &[Op]) {
    let mut model = Model::new();
    for op in ops {
        match *op {
            Op::Set(r, c, v) => {
                let a = CellAddr::new(r, c);
                let old_s = store.set(a, v);
                let old_m = model.cells.insert(a, v);
                assert_eq!(old_s, old_m, "set({a}) old value mismatch");
            }
            Op::Remove(r, c) => {
                let a = CellAddr::new(r, c);
                assert_eq!(store.remove(a), model.cells.remove(&a), "remove({a})");
            }
            Op::InsertRows(at, n) => {
                store.insert_rows(at, n);
                model.apply_shift(|a| {
                    if a.row >= at {
                        Some(CellAddr::new(a.row + n, a.col))
                    } else {
                        Some(a)
                    }
                });
            }
            Op::DeleteRows(at, n) => {
                store.delete_rows(at, n);
                model.apply_shift(|a| {
                    if a.row >= at && a.row < at + n {
                        None
                    } else if a.row >= at + n {
                        Some(CellAddr::new(a.row - n, a.col))
                    } else {
                        Some(a)
                    }
                });
            }
            Op::InsertCols(at, n) => {
                store.insert_cols(at, n);
                model.apply_shift(|a| {
                    if a.col >= at {
                        Some(CellAddr::new(a.row, a.col + n))
                    } else {
                        Some(a)
                    }
                });
            }
            Op::DeleteCols(at, n) => {
                store.delete_cols(at, n);
                model.apply_shift(|a| {
                    if a.col >= at && a.col < at + n {
                        None
                    } else if a.col >= at + n {
                        Some(CellAddr::new(a.row, a.col - n))
                    } else {
                        Some(a)
                    }
                });
            }
            Op::QueryRange(r0, c0, r1, c1) => {
                let q = Range::new(CellAddr::new(r0, c0), CellAddr::new(r1, c1));
                let got = store.cells_in_range(q);
                let mut expect: Vec<(CellAddr, i64)> = model
                    .cells
                    .iter()
                    .filter(|(a, _)| q.contains(**a))
                    .map(|(a, v)| (*a, *v))
                    .collect();
                expect.sort_by_key(|(a, _)| *a);
                assert_eq!(got, expect, "range query {q} mismatch");
            }
        }
        assert_eq!(store.cell_count(), model.cells.len(), "cell count after {op:?}");
    }
    // Final full sweep.
    if let Some(bounds) = store.used_bounds() {
        let got = store.cells_in_range(bounds);
        assert_eq!(got.len(), model.cells.len());
    } else {
        assert!(model.cells.is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn naive_matches_model(ops in arb_ops()) {
        run_store(NaiveGrid::new(), &ops);
    }

    #[test]
    fn tiled_matches_model(ops in arb_ops()) {
        run_store(TiledGrid::new(TileConfig { tile_rows: 8, tile_cols: 8 }), &ops);
    }

    #[test]
    fn tiled_default_matches_model(ops in arb_ops()) {
        run_store(TiledGrid::default(), &ops);
    }

    #[test]
    fn block_matches_model(ops in arb_ops()) {
        run_store(BlockGrid::new(BlockConfig { capacity: 16, proximity: 4 }), &ops);
    }

    #[test]
    fn block_small_capacity_matches_model(ops in arb_ops()) {
        // Capacity 2 forces constant splitting — stress for the R-tree churn.
        run_store(BlockGrid::new(BlockConfig { capacity: 2, proximity: 2 }), &ops);
    }
}
