//! Observability primitives for the DataSpread engine: a registry of named
//! atomic counters/gauges/latency histograms, plus a lightweight span
//! tracer. No dependencies, lock-free on the hot path.
//!
//! Design (see `docs/OBSERVABILITY.md` for the metric catalog):
//!
//! * **Handles are `Arc`-backed.** [`Counter`], [`Gauge`], and
//!   [`Histogram`] clone cheaply; components keep their own handle and bump
//!   it with one relaxed atomic op — no registry lookup, no lock, on the
//!   hot path. The registry only locks on get-or-create and on snapshot.
//! * **Relaxed ordering everywhere.** Metrics are monotonic tallies read
//!   for reporting, not for synchronization; torn cross-counter reads are
//!   acceptable and documented (`docs/CONCURRENCY.md`).
//! * **One-pass [`Registry::snapshot`].** A single walk under the registry
//!   lock copies every value, so exports are one coherent pass rather than
//!   N racy reads spread over time (individual counters are still read
//!   relaxed — coherence is per-pass, not transactional).
//! * **Source-of-truth [`METRICS`] table.** Every metric name the engine
//!   registers or exports must have a row here (enforced by the `xcheck`
//!   `metric-name` check), so the catalog in `docs/OBSERVABILITY.md` and
//!   Prometheus scrapes can never drift from the code.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

// ---- metric handles ------------------------------------------------------

/// A monotonically increasing `u64` counter. Clone freely: every clone
/// shares the same cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh, unregistered counter (components that meter per-instance
    /// state own one of these; aggregation happens at scrape time).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add 1.
    #[inline]
    pub fn bump(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Zero the counter (bench phase boundaries only — Prometheus counters
    /// are otherwise monotonic).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A settable signed gauge (last-write-wins).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A fresh, unregistered gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Set the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjust by a (possibly negative) delta.
    #[inline]
    pub fn adjust(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket latency histogram. Buckets are cumulative-export,
/// per-bucket-stored: `observe` does one binary search plus two relaxed
/// adds, no allocation, no lock.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistInner>);

#[derive(Debug)]
struct HistInner {
    /// Upper bounds (inclusive), strictly increasing. An implicit `+Inf`
    /// bucket follows.
    bounds: Vec<u64>,
    /// One slot per bound plus the `+Inf` overflow slot.
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

/// Default latency bounds in nanoseconds: 1µs → 1s, one decade apart with
/// a 3× midpoint, which is plenty to tell "page-cache fsync" from "real
/// disk" from "stalled".
pub const LATENCY_NS_BOUNDS: &[u64] = &[
    1_000,
    10_000,
    100_000,
    300_000,
    1_000_000,
    3_000_000,
    10_000_000,
    30_000_000,
    100_000_000,
    1_000_000_000,
];

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new(LATENCY_NS_BOUNDS)
    }
}

impl Histogram {
    /// A fresh histogram over the given inclusive upper bounds (must be
    /// strictly increasing; an `+Inf` bucket is appended implicitly).
    pub fn new(bounds: &[u64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistInner {
            bounds: bounds.to_vec(),
            counts,
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }))
    }

    /// Record one observation (e.g. elapsed nanoseconds).
    #[inline]
    pub fn observe(&self, v: u64) {
        let i = self.0.bounds.partition_point(|&b| b < v);
        self.0.counts[i].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a [`Duration`] in nanoseconds.
    #[inline]
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// One-pass copy of the bucket counts.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            bounds: self.0.bounds.clone(),
            counts: self
                .0
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: self.0.sum.load(Ordering::Relaxed),
            count: self.0.count.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Inclusive upper bounds; the final slot of `counts` is `+Inf`.
    pub bounds: Vec<u64>,
    /// Per-bucket (non-cumulative) counts, one per bound plus overflow.
    pub counts: Vec<u64>,
    /// Sum of all observations.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

// ---- the source-of-truth metric table ------------------------------------

/// What a metric is, for export formatting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic tally.
    Counter,
    /// Settable level.
    Gauge,
    /// Fixed-bucket distribution.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` word.
    pub fn as_str(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One row of the [`METRICS`] registry: the canonical name, kind, and help
/// text of a metric the engine exports.
#[derive(Clone, Copy, Debug)]
pub struct MetricSpec {
    /// Prometheus-legal name: `[a-z0-9_]+`.
    pub name: &'static str,
    /// Counter, gauge, or histogram.
    pub kind: MetricKind,
    /// One-line description (the `# HELP` text).
    pub help: &'static str,
}

/// Every metric name the engine registers or exports. The `xcheck`
/// `metric-name` check enforces that names used at call sites appear here,
/// are unique, match `[a-z0-9_]+`, and have a row in
/// `docs/OBSERVABILITY.md`.
pub const METRICS: &[MetricSpec] = &[
    MetricSpec {
        name: "wal_appends",
        kind: MetricKind::Counter,
        help: "WAL records appended (ops, BEGIN/COMMIT frames included)",
    },
    MetricSpec {
        name: "wal_commits",
        kind: MetricKind::Counter,
        help: "WAL transactions committed (explicit commits plus autocommits)",
    },
    MetricSpec {
        name: "wal_fsyncs",
        kind: MetricKind::Counter,
        help: "WAL fsync calls issued by the group-commit leader",
    },
    MetricSpec {
        name: "wal_poison_flips",
        kind: MetricKind::Counter,
        help: "Times the WAL writer flipped into the sticky poisoned state",
    },
    MetricSpec {
        name: "pool_hits",
        kind: MetricKind::Counter,
        help: "Buffer-pool accesses that found their page resident",
    },
    MetricSpec {
        name: "pool_misses",
        kind: MetricKind::Counter,
        help: "Buffer-pool accesses that faulted their page in",
    },
    MetricSpec {
        name: "pool_evictions",
        kind: MetricKind::Counter,
        help: "Buffer-pool frames evicted to make room",
    },
    MetricSpec {
        name: "pool_writeback_pages",
        kind: MetricKind::Counter,
        help: "Dirty frames written back on eviction or flush",
    },
    MetricSpec {
        name: "pool_writeback_bytes",
        kind: MetricKind::Counter,
        help: "Bytes of dirty pages written back (pages x page size)",
    },
    MetricSpec {
        name: "pool_writeback_errors",
        kind: MetricKind::Counter,
        help: "Write-backs whose physical scratch write failed",
    },
    MetricSpec {
        name: "vfs_file_reads",
        kind: MetricKind::Counter,
        help: "Positioned reads issued through the metered Vfs",
    },
    MetricSpec {
        name: "vfs_read_bytes",
        kind: MetricKind::Counter,
        help: "Bytes read through the metered Vfs",
    },
    MetricSpec {
        name: "vfs_file_writes",
        kind: MetricKind::Counter,
        help: "Positioned writes issued through the metered Vfs",
    },
    MetricSpec {
        name: "vfs_write_bytes",
        kind: MetricKind::Counter,
        help: "Bytes written through the metered Vfs",
    },
    MetricSpec {
        name: "vfs_fsyncs",
        kind: MetricKind::Counter,
        help: "File and directory syncs issued through the metered Vfs",
    },
    MetricSpec {
        name: "vfs_fsync_ns",
        kind: MetricKind::Histogram,
        help: "Latency of metered Vfs sync calls, nanoseconds",
    },
    MetricSpec {
        name: "exec_queries",
        kind: MetricKind::Counter,
        help: "SELECT statements executed",
    },
    MetricSpec {
        name: "exec_rows_scanned",
        kind: MetricKind::Counter,
        help: "Rows produced by leaf scans (table and range scans)",
    },
    MetricSpec {
        name: "exec_rows_output",
        kind: MetricKind::Counter,
        help: "Rows returned to clients by SELECT statements",
    },
    MetricSpec {
        name: "exec_join_build_rows",
        kind: MetricKind::Counter,
        help: "Rows materialized into join build sides",
    },
    MetricSpec {
        name: "exec_join_probe_rows",
        kind: MetricKind::Counter,
        help: "Rows streamed through join probe sides",
    },
    MetricSpec {
        name: "calc_passes",
        kind: MetricKind::Counter,
        help: "Formula recomputation passes run",
    },
    MetricSpec {
        name: "calc_cells_dirtied",
        kind: MetricKind::Counter,
        help: "Cell positions marked dirty by grid edits",
    },
    MetricSpec {
        name: "calc_cells_recomputed",
        kind: MetricKind::Counter,
        help: "Formula cells evaluated or poisoned with #CYCLE!",
    },
    MetricSpec {
        name: "calc_topo_depth",
        kind: MetricKind::Gauge,
        help: "Topological depth (levels) of the last recompute pass",
    },
    MetricSpec {
        name: "bind_refreshes",
        kind: MetricKind::Counter,
        help: "Bound-region refresh passes that re-rendered a table",
    },
    MetricSpec {
        name: "bind_cells_diffed",
        kind: MetricKind::Counter,
        help: "Sheet cells actually rewritten by binding sync diffs",
    },
    MetricSpec {
        name: "spans_recorded",
        kind: MetricKind::Counter,
        help: "Spans completed and recorded by the tracer",
    },
    MetricSpec {
        name: "spans_slow",
        kind: MetricKind::Counter,
        help: "Spans whose duration exceeded the slow-op threshold",
    },
];

/// The spec for `name`, if it is a registered metric.
pub fn spec_of(name: &str) -> Option<&'static MetricSpec> {
    METRICS.iter().find(|s| s.name == name)
}

/// Prometheus name rule this repo enforces: `[a-z0-9_]+`.
pub fn is_valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
}

// ---- the registry --------------------------------------------------------

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named collection of metric handles. Get-or-create takes the registry
/// lock once; the returned handle is then lock-free forever.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        debug_assert!(is_valid_metric_name(name), "bad metric name {name:?}");
        let mut m = self.lock();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            other => panic_kind(name, other),
        }
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        debug_assert!(is_valid_metric_name(name), "bad metric name {name:?}");
        let mut m = self.lock();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic_kind(name, other),
        }
    }

    /// Get or create the histogram `name` over `bounds`.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        debug_assert!(is_valid_metric_name(name), "bad metric name {name:?}");
        let mut m = self.lock();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new(bounds)))
        {
            Metric::Histogram(h) => h.clone(),
            other => panic_kind(name, other),
        }
    }

    /// Attach an existing counter handle under `name`, replacing any prior
    /// registration — how a component-owned counter (a WAL's, a pool's)
    /// becomes scrape-visible without moving its hot path through the
    /// registry.
    pub fn register_counter(&self, name: &str, c: &Counter) {
        debug_assert!(is_valid_metric_name(name), "bad metric name {name:?}");
        self.lock()
            .insert(name.to_string(), Metric::Counter(c.clone()));
    }

    /// Attach an existing histogram handle under `name` (see
    /// [`Registry::register_counter`]).
    pub fn register_histogram(&self, name: &str, h: &Histogram) {
        debug_assert!(is_valid_metric_name(name), "bad metric name {name:?}");
        self.lock()
            .insert(name.to_string(), Metric::Histogram(h.clone()));
    }

    /// One coherent pass over every registered metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let m = self.lock();
        let samples = m
            .iter()
            .map(|(name, metric)| Sample {
                name: name.clone(),
                value: match metric {
                    Metric::Counter(c) => SampleValue::Counter(c.get()),
                    Metric::Gauge(g) => SampleValue::Gauge(g.get()),
                    Metric::Histogram(h) => SampleValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        Snapshot { samples }
    }
}

fn panic_kind(name: &str, other: &Metric) -> ! {
    let kind = match other {
        Metric::Counter(_) => "counter",
        Metric::Gauge(_) => "gauge",
        Metric::Histogram(_) => "histogram",
    };
    panic!("metric `{name}` is already registered as a {kind}")
}

/// The process-wide registry, for callers without a component-scoped one.
/// Engine components prefer per-workbook registries (test isolation);
/// `global()` exists so ad-hoc tools and future long-running servers share
/// one scrape surface.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

// ---- snapshots and export formats ----------------------------------------

/// One exported metric value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SampleValue {
    /// Monotonic tally.
    Counter(u64),
    /// Settable level.
    Gauge(i64),
    /// Distribution copy.
    Histogram(HistSnapshot),
}

/// A named sample in a [`Snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sample {
    /// Metric name (`[a-z0-9_]+`).
    pub name: String,
    /// The copied value.
    pub value: SampleValue,
}

/// A one-pass copy of a registry (plus any scrape-time computed samples),
/// renderable as Prometheus text or JSON.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Samples, kept sorted by name via [`Snapshot::sort`].
    pub samples: Vec<Sample>,
}

impl Snapshot {
    /// Append a computed counter sample (scrape-time aggregation).
    pub fn push_counter(&mut self, name: &str, v: u64) {
        debug_assert!(is_valid_metric_name(name), "bad metric name {name:?}");
        self.samples.push(Sample {
            name: name.to_string(),
            value: SampleValue::Counter(v),
        });
    }

    /// Append a computed gauge sample.
    pub fn push_gauge(&mut self, name: &str, v: i64) {
        debug_assert!(is_valid_metric_name(name), "bad metric name {name:?}");
        self.samples.push(Sample {
            name: name.to_string(),
            value: SampleValue::Gauge(v),
        });
    }

    /// The counter value of `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.samples.iter().find(|s| s.name == name).and_then(|s| {
            if let SampleValue::Counter(v) = s.value {
                Some(v)
            } else {
                None
            }
        })
    }

    /// Sort samples by name; later pushes for the same name win (stable
    /// sort keeps first — callers avoid duplicates, xcheck enforces names).
    pub fn sort(&mut self) {
        self.samples.sort_by(|a, b| a.name.cmp(&b.name));
    }

    /// Prometheus text exposition format (`# HELP`/`# TYPE` from
    /// [`METRICS`] when the name is cataloged).
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            let spec = spec_of(&s.name);
            if let Some(spec) = spec {
                out.push_str(&format!("# HELP {} {}\n", s.name, spec.help));
                out.push_str(&format!("# TYPE {} {}\n", s.name, spec.kind.as_str()));
            }
            match &s.value {
                SampleValue::Counter(v) => out.push_str(&format!("{} {}\n", s.name, v)),
                SampleValue::Gauge(v) => out.push_str(&format!("{} {}\n", s.name, v)),
                SampleValue::Histogram(h) => {
                    let mut cum = 0u64;
                    for (i, c) in h.counts.iter().enumerate() {
                        cum += c;
                        let le = match h.bounds.get(i) {
                            Some(b) => b.to_string(),
                            None => "+Inf".to_string(),
                        };
                        out.push_str(&format!("{}_bucket{{le=\"{}\"}} {}\n", s.name, le, cum));
                    }
                    out.push_str(&format!("{}_sum {}\n", s.name, h.sum));
                    out.push_str(&format!("{}_count {}\n", s.name, h.count));
                }
            }
        }
        out
    }

    /// A JSON object keyed by metric name. Histograms expand to
    /// `{"buckets": [[le, count], ...], "sum": n, "count": n}` with the
    /// overflow bucket keyed `null`.
    pub fn json(&self) -> String {
        let mut out = String::from("{");
        for (i, s) in self.samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":", s.name));
            match &s.value {
                SampleValue::Counter(v) => out.push_str(&v.to_string()),
                SampleValue::Gauge(v) => out.push_str(&v.to_string()),
                SampleValue::Histogram(h) => {
                    out.push_str("{\"buckets\":[");
                    for (j, c) in h.counts.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        match h.bounds.get(j) {
                            Some(b) => out.push_str(&format!("[{b},{c}]")),
                            None => out.push_str(&format!("[null,{c}]")),
                        }
                    }
                    out.push_str(&format!("],\"sum\":{},\"count\":{}}}", h.sum, h.count));
                }
            }
        }
        out.push('}');
        out
    }
}

// ---- span tracing --------------------------------------------------------

/// One completed span in the tracer's ring buffer.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Scope name (static: span sites are compile-time known).
    pub name: &'static str,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// True when `dur_ns` exceeded the slow-op threshold at completion.
    pub slow: bool,
}

#[derive(Debug)]
struct TracerInner {
    ring: Mutex<std::collections::VecDeque<SpanRecord>>,
    cap: usize,
    slow_ns: AtomicU64,
    recorded: Counter,
    slow: Counter,
}

/// A lightweight enter/exit span tracer: completed spans land in a bounded
/// ring buffer (oldest evicted first), and any span over the configurable
/// slow-op threshold is flagged and counted. Clone handles freely.
#[derive(Clone, Debug)]
pub struct Tracer(Arc<TracerInner>);

/// Default slow-op threshold: 10ms — interactive-latency scale.
pub const DEFAULT_SLOW_NS: u64 = 10_000_000;

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(256, Counter::new(), Counter::new())
    }
}

impl Tracer {
    /// A tracer with a ring of `cap` completed spans, reporting through the
    /// given counters (pass registry-created handles to make span tallies
    /// scrape-visible).
    pub fn new(cap: usize, recorded: Counter, slow: Counter) -> Tracer {
        Tracer(Arc::new(TracerInner {
            ring: Mutex::new(std::collections::VecDeque::with_capacity(cap)),
            cap: cap.max(1),
            slow_ns: AtomicU64::new(DEFAULT_SLOW_NS),
            recorded,
            slow,
        }))
    }

    /// Set the slow-op threshold.
    pub fn set_slow_threshold(&self, d: Duration) {
        self.0
            .slow_ns
            .store(d.as_nanos().min(u64::MAX as u128) as u64, Ordering::Relaxed);
    }

    /// The current slow-op threshold in nanoseconds.
    pub fn slow_threshold_ns(&self) -> u64 {
        self.0.slow_ns.load(Ordering::Relaxed)
    }

    /// Enter a scope; the returned guard records the span on drop.
    pub fn span(&self, name: &'static str) -> Span {
        Span {
            tracer: Arc::clone(&self.0),
            name,
            start: Instant::now(),
        }
    }

    /// The most recent completed spans, oldest first.
    pub fn recent(&self) -> Vec<SpanRecord> {
        self.0
            .ring
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// The recent spans that crossed the slow-op threshold, oldest first.
    pub fn recent_slow(&self) -> Vec<SpanRecord> {
        self.recent().into_iter().filter(|s| s.slow).collect()
    }

    /// Spans recorded since creation.
    pub fn recorded(&self) -> u64 {
        self.0.recorded.get()
    }

    /// Slow spans recorded since creation.
    pub fn slow_count(&self) -> u64 {
        self.0.slow.get()
    }

    fn record(&self, rec: SpanRecord) {
        self.0.recorded.bump();
        if rec.slow {
            self.0.slow.bump();
        }
        let mut ring = self.0.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() >= self.0.cap {
            ring.pop_front();
        }
        ring.push_back(rec);
    }
}

/// RAII guard for one traced scope (see [`Tracer::span`]).
pub struct Span {
    tracer: Arc<TracerInner>,
    name: &'static str,
    start: Instant,
}

impl Drop for Span {
    fn drop(&mut self) {
        let dur_ns = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let slow = dur_ns > self.tracer.slow_ns.load(Ordering::Relaxed);
        Tracer(Arc::clone(&self.tracer)).record(SpanRecord {
            name: self.name,
            dur_ns,
            slow,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counters_and_gauges_share_cells_across_clones() {
        let r = Registry::new();
        let a = r.counter("wal_commits");
        let b = r.counter("wal_commits");
        a.bump();
        b.add(2);
        assert_eq!(a.get(), 3);
        let g = r.gauge("calc_topo_depth");
        g.set(7);
        g.adjust(-2);
        assert_eq!(r.gauge("calc_topo_depth").get(), 5);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper() {
        let h = Histogram::new(&[10, 100, 1000]);
        // Exactly on a bound lands IN that bucket (inclusive upper).
        h.observe(10);
        // Strictly above a bound lands in the next.
        h.observe(11);
        // Below the first bound.
        h.observe(0);
        // Above every bound: the +Inf overflow slot.
        h.observe(1001);
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 1, 0, 1]);
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 10 + 11 + 1001);
        assert_eq!(s.bounds, vec![10, 100, 1000]);
    }

    #[test]
    fn histogram_edge_cases_single_bound_and_max() {
        let h = Histogram::new(&[5]);
        h.observe(5);
        h.observe(6);
        h.observe(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.counts, vec![1, 2]);
    }

    #[test]
    fn concurrent_increments_sum_exactly() {
        // N threads x M bumps ≡ N·M, and snapshots taken under concurrent
        // writers are coherent single reads (monotone, never torn).
        const N: usize = 8;
        const M: u64 = 10_000;
        let r = Arc::new(Registry::new());
        let c = r.counter("exec_queries");
        let h = r.histogram("vfs_fsync_ns", &[100, 10_000]);
        let workers: Vec<_> = (0..N)
            .map(|_| {
                let c = c.clone();
                let h = h.clone();
                thread::spawn(move || {
                    for i in 0..M {
                        c.bump();
                        h.observe(i % 20_000);
                    }
                })
            })
            .collect();
        // Snapshot while writers run: counts only grow.
        let mut last = 0;
        for _ in 0..100 {
            let snap = r.snapshot();
            let v = snap.counter("exec_queries").unwrap();
            assert!(v >= last, "counter went backwards: {v} < {last}");
            last = v;
        }
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(c.get(), (N as u64) * M);
        let hs = h.snapshot();
        assert_eq!(hs.count, (N as u64) * M);
        assert_eq!(hs.counts.iter().sum::<u64>(), (N as u64) * M);
    }

    #[test]
    fn snapshot_renders_prometheus_and_json() {
        let r = Registry::new();
        r.counter("wal_commits").add(42);
        r.histogram("vfs_fsync_ns", &[1000]).observe(500);
        let mut snap = r.snapshot();
        snap.push_counter("pool_hits", 7);
        snap.sort();
        let text = snap.prometheus_text();
        assert!(text.contains("# TYPE wal_commits counter"), "{text}");
        assert!(text.contains("wal_commits 42\n"), "{text}");
        assert!(text.contains("pool_hits 7\n"), "{text}");
        assert!(
            text.contains("vfs_fsync_ns_bucket{le=\"1000\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("vfs_fsync_ns_bucket{le=\"+Inf\"} 1"),
            "{text}"
        );
        assert!(text.contains("vfs_fsync_ns_count 1"), "{text}");
        let json = snap.json();
        assert!(json.contains("\"wal_commits\":42"), "{json}");
        assert!(
            json.contains(
                "\"vfs_fsync_ns\":{\"buckets\":[[1000,1],[null,0]],\"sum\":500,\"count\":1}"
            ),
            "{json}"
        );
        // Histogram cumulative buckets: every registered METRICS row name
        // in this test is real, so export picked up HELP lines.
        assert!(text.contains("# HELP wal_commits"), "{text}");
    }

    #[test]
    fn metric_name_validation() {
        assert!(is_valid_metric_name("wal_commits"));
        assert!(is_valid_metric_name("a1_b2"));
        assert!(!is_valid_metric_name(""));
        assert!(!is_valid_metric_name("WalCommits"));
        assert!(!is_valid_metric_name("wal-commits"));
        assert!(!is_valid_metric_name("wal.commits"));
    }

    #[test]
    fn metrics_table_is_unique_and_valid() {
        for (i, s) in METRICS.iter().enumerate() {
            assert!(is_valid_metric_name(s.name), "bad name {:?}", s.name);
            assert!(
                !METRICS[..i].iter().any(|p| p.name == s.name),
                "duplicate metric {:?}",
                s.name
            );
            assert!(!s.help.is_empty());
        }
    }

    #[test]
    fn tracer_records_spans_and_flags_slow_ones() {
        let t = Tracer::new(4, Counter::new(), Counter::new());
        t.set_slow_threshold(Duration::from_nanos(0));
        {
            let _s = t.span("sql_execute");
        }
        t.set_slow_threshold(Duration::from_secs(3600));
        {
            let _s = t.span("calc_flush");
        }
        let recent = t.recent();
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].name, "sql_execute");
        assert!(recent[0].slow, "zero threshold flags everything");
        assert!(!recent[1].slow, "huge threshold flags nothing");
        assert_eq!(t.recorded(), 2);
        assert_eq!(t.slow_count(), 1);
        assert_eq!(t.recent_slow().len(), 1);
        // Ring bound: oldest evicted.
        for _ in 0..10 {
            let _s = t.span("calc_flush");
        }
        assert_eq!(t.recent().len(), 4);
        assert_eq!(t.recorded(), 12);
    }

    #[test]
    fn global_registry_is_shared() {
        global().counter("exec_queries").bump();
        assert!(global().snapshot().counter("exec_queries").unwrap() >= 1);
    }
}
