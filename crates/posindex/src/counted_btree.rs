//! Order-statistics ("counted") B-tree: the positional index itself.
//!
//! Instead of separator *keys*, internal nodes store the *sizes* of their
//! subtrees. Descending by running count answers "what is at position p?" in
//! O(log n); inserting or deleting at a position touches one root-to-leaf
//! path. Stable row keys live in the leaves in presentation order. A
//! key→leaf hash map plus parent pointers gives the reverse lookup
//! (`position_of`) in O(log n · fanout), which the interface manager needs to
//! translate keyed database updates back into grid rows.
//!
//! Nodes live in an arena (`Vec<Node>`) with integer ids and an explicit free
//! list, so the structure is safe Rust with no `Rc`/`RefCell` overhead.

use std::collections::HashMap;

use dataspread_types::{DsError, DsResult};

use crate::{PositionalIndex, RowKey};

type NodeId = usize;

/// Default maximum entries per node. 64 keeps nodes around a cache line
/// multiple and the tree ≤ 4 levels deep up to ~16M rows.
pub const DEFAULT_FANOUT: usize = 64;

#[derive(Clone, Debug)]
enum NodeKind {
    Leaf {
        keys: Vec<RowKey>,
        /// Next leaf in presentation order; makes windowed reads a linked-list
        /// walk after one descent.
        next: Option<NodeId>,
    },
    Internal {
        children: Vec<NodeId>,
        /// `counts[i]` = number of keys under `children[i]`.
        counts: Vec<usize>,
    },
    /// Slot on the free list.
    Free,
}

#[derive(Clone, Debug)]
struct Node {
    parent: Option<NodeId>,
    kind: NodeKind,
}

/// The counted B-tree. See the module docs.
#[derive(Clone, Debug)]
pub struct CountedBtree {
    arena: Vec<Node>,
    free: Vec<NodeId>,
    root: NodeId,
    len: usize,
    fanout: usize,
    /// Reverse index: which leaf currently holds each key.
    key_leaf: HashMap<RowKey, NodeId>,
}

impl Default for CountedBtree {
    fn default() -> Self {
        CountedBtree::new()
    }
}

impl CountedBtree {
    /// An empty tree with the default fanout.
    pub fn new() -> Self {
        CountedBtree::with_fanout(DEFAULT_FANOUT)
    }

    /// An empty tree with an explicit fanout (≥ 4). Exposed so the benches can
    /// sweep the fanout (ablation #3 in DESIGN.md).
    pub fn with_fanout(fanout: usize) -> Self {
        assert!(fanout >= 4, "fanout must be at least 4");
        let root = 0;
        CountedBtree {
            arena: vec![Node {
                parent: None,
                kind: NodeKind::Leaf {
                    keys: Vec::new(),
                    next: None,
                },
            }],
            free: Vec::new(),
            root,
            len: 0,
            fanout,
            key_leaf: HashMap::new(),
        }
    }

    /// Bulk-load from keys in positional order — O(n), used when a table is
    /// first displayed. Errors on duplicate keys.
    pub fn from_keys(keys: impl IntoIterator<Item = RowKey>) -> DsResult<Self> {
        Self::from_keys_with_fanout(keys, DEFAULT_FANOUT)
    }

    pub fn from_keys_with_fanout(
        keys: impl IntoIterator<Item = RowKey>,
        fanout: usize,
    ) -> DsResult<Self> {
        assert!(fanout >= 4, "fanout must be at least 4");
        let all: Vec<RowKey> = keys.into_iter().collect();
        if all.is_empty() {
            return Ok(CountedBtree::with_fanout(fanout));
        }
        let min = fanout / 2;
        let mut tree = CountedBtree {
            arena: Vec::new(),
            free: Vec::new(),
            root: 0,
            len: all.len(),
            fanout,
            key_leaf: HashMap::with_capacity(all.len()),
        };

        // Chunk keys into leaves, keeping every leaf within [min, fanout].
        let mut chunks: Vec<Vec<RowKey>> = all.chunks(fanout).map(|c| c.to_vec()).collect();
        let n_chunks = chunks.len();
        if n_chunks >= 2 && chunks[n_chunks - 1].len() < min {
            let deficit = min - chunks[n_chunks - 1].len();
            let donor_len = chunks[n_chunks - 2].len();
            let moved = chunks[n_chunks - 2].split_off(donor_len - deficit);
            let last = &mut chunks[n_chunks - 1];
            let mut new_last = moved;
            new_last.append(last);
            *last = new_last;
        }

        // Build the leaf level.
        let mut level: Vec<(NodeId, usize)> = Vec::with_capacity(chunks.len());
        let mut prev: Option<NodeId> = None;
        for chunk in chunks {
            let count = chunk.len();
            let id = tree.arena.len();
            for &k in &chunk {
                if tree.key_leaf.insert(k, id).is_some() {
                    return Err(DsError::Storage(format!("duplicate row key {k}")));
                }
            }
            tree.arena.push(Node {
                parent: None,
                kind: NodeKind::Leaf {
                    keys: chunk,
                    next: None,
                },
            });
            if let Some(p) = prev {
                match &mut tree.arena[p].kind {
                    NodeKind::Leaf { next, .. } => *next = Some(id),
                    _ => unreachable!(),
                }
            }
            prev = Some(id);
            level.push((id, count));
        }

        // Build internal levels until a single root remains.
        while level.len() > 1 {
            let mut next_level: Vec<(NodeId, usize)> = Vec::with_capacity(level.len() / 2 + 1);
            let mut groups: Vec<Vec<(NodeId, usize)>> =
                level.chunks(fanout).map(|c| c.to_vec()).collect();
            let g = groups.len();
            if g >= 2 && groups[g - 1].len() < min {
                let deficit = min - groups[g - 1].len();
                let donor_len = groups[g - 2].len();
                let moved = groups[g - 2].split_off(donor_len - deficit);
                let last = &mut groups[g - 1];
                let mut new_last = moved;
                new_last.append(last);
                *last = new_last;
            }
            for group in groups {
                let id = tree.arena.len();
                let children: Vec<NodeId> = group.iter().map(|(c, _)| *c).collect();
                let counts: Vec<usize> = group.iter().map(|(_, n)| *n).collect();
                let total: usize = counts.iter().sum();
                for &c in &children {
                    tree.arena[c].parent = Some(id);
                }
                tree.arena.push(Node {
                    parent: None,
                    kind: NodeKind::Internal { children, counts },
                });
                next_level.push((id, total));
            }
            level = next_level;
        }
        tree.root = level[0].0;
        Ok(tree)
    }

    /// Configured node fanout.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Tree height in levels (a lone leaf is depth 1).
    pub fn depth(&self) -> usize {
        let mut d = 1;
        let mut id = self.root;
        while let NodeKind::Internal { children, .. } = &self.arena[id].kind {
            id = children[0];
            d += 1;
        }
        d
    }

    /// Number of live nodes (for space accounting in benches).
    pub fn node_count(&self) -> usize {
        self.arena.len() - self.free.len()
    }

    // ---- arena helpers -------------------------------------------------

    fn alloc(&mut self, node: Node) -> NodeId {
        if let Some(id) = self.free.pop() {
            self.arena[id] = node;
            id
        } else {
            self.arena.push(node);
            self.arena.len() - 1
        }
    }

    fn release(&mut self, id: NodeId) {
        self.arena[id] = Node {
            parent: None,
            kind: NodeKind::Free,
        };
        self.free.push(id);
    }

    fn child_index(&self, parent: NodeId, child: NodeId) -> usize {
        match &self.arena[parent].kind {
            NodeKind::Internal { children, .. } => children
                .iter()
                .position(|&c| c == child)
                .expect("child not found under parent"),
            _ => panic!("child_index on non-internal node"),
        }
    }

    fn node_size(&self, id: NodeId) -> usize {
        match &self.arena[id].kind {
            NodeKind::Leaf { keys, .. } => keys.len(),
            NodeKind::Internal { children, .. } => children.len(),
            NodeKind::Free => panic!("size of freed node"),
        }
    }

    /// Propagate a ±delta along the path from `node` to the root.
    fn bump_counts(&mut self, mut node: NodeId, delta: isize) {
        while let Some(p) = self.arena[node].parent {
            let idx = self.child_index(p, node);
            match &mut self.arena[p].kind {
                NodeKind::Internal { counts, .. } => {
                    counts[idx] = (counts[idx] as isize + delta) as usize;
                }
                _ => unreachable!(),
            }
            node = p;
        }
    }

    /// Descend to the leaf that should receive an insert at `pos`.
    /// At exact boundaries we lean left (append to the earlier leaf).
    fn locate_insert(&self, mut pos: usize) -> (NodeId, usize) {
        let mut id = self.root;
        loop {
            match &self.arena[id].kind {
                NodeKind::Leaf { .. } => return (id, pos),
                NodeKind::Internal { children, counts } => {
                    let mut chosen = children.len() - 1;
                    for (i, &c) in counts.iter().enumerate() {
                        if pos <= c {
                            chosen = i;
                            break;
                        }
                        pos -= c;
                    }
                    id = children[chosen];
                }
                NodeKind::Free => unreachable!("free node in tree"),
            }
        }
    }

    /// Descend to the leaf holding position `pos` (requires `pos < len`).
    fn locate_read(&self, mut pos: usize) -> (NodeId, usize) {
        let mut id = self.root;
        loop {
            match &self.arena[id].kind {
                NodeKind::Leaf { .. } => return (id, pos),
                NodeKind::Internal { children, counts } => {
                    let mut chosen = children.len() - 1;
                    for (i, &c) in counts.iter().enumerate() {
                        if pos < c {
                            chosen = i;
                            break;
                        }
                        pos -= c;
                    }
                    id = children[chosen];
                }
                NodeKind::Free => unreachable!("free node in tree"),
            }
        }
    }

    // ---- splits --------------------------------------------------------

    fn split_leaf(&mut self, left_id: NodeId) {
        let (right_keys, old_next) = match &mut self.arena[left_id].kind {
            NodeKind::Leaf { keys, next } => {
                let mid = keys.len() / 2;
                (keys.split_off(mid), *next)
            }
            _ => unreachable!(),
        };
        let left_count = self.node_size(left_id);
        let right_count = right_keys.len();
        let right_id = self.alloc(Node {
            parent: None,
            kind: NodeKind::Leaf {
                keys: right_keys,
                next: old_next,
            },
        });
        match &mut self.arena[left_id].kind {
            NodeKind::Leaf { next, .. } => *next = Some(right_id),
            _ => unreachable!(),
        }
        // Re-home the moved keys in the reverse index.
        let moved: Vec<RowKey> = match &self.arena[right_id].kind {
            NodeKind::Leaf { keys, .. } => keys.clone(),
            _ => unreachable!(),
        };
        for k in moved {
            self.key_leaf.insert(k, right_id);
        }
        self.attach_right(left_id, right_id, left_count, right_count);
    }

    fn split_internal(&mut self, left_id: NodeId) {
        let (right_children, right_counts) = match &mut self.arena[left_id].kind {
            NodeKind::Internal { children, counts } => {
                let mid = children.len() / 2;
                (children.split_off(mid), counts.split_off(mid))
            }
            _ => unreachable!(),
        };
        let left_total: usize = match &self.arena[left_id].kind {
            NodeKind::Internal { counts, .. } => counts.iter().sum(),
            _ => unreachable!(),
        };
        let right_total: usize = right_counts.iter().sum();
        let kids = right_children.clone();
        let right_id = self.alloc(Node {
            parent: None,
            kind: NodeKind::Internal {
                children: right_children,
                counts: right_counts,
            },
        });
        for c in kids {
            self.arena[c].parent = Some(right_id);
        }
        self.attach_right(left_id, right_id, left_total, right_total);
    }

    /// Hook `right_id` in as the sibling immediately after `left_id`,
    /// creating a new root if `left_id` was the root. Splits cascade upward.
    fn attach_right(
        &mut self,
        left_id: NodeId,
        right_id: NodeId,
        left_count: usize,
        right_count: usize,
    ) {
        match self.arena[left_id].parent {
            None => {
                let new_root = self.alloc(Node {
                    parent: None,
                    kind: NodeKind::Internal {
                        children: vec![left_id, right_id],
                        counts: vec![left_count, right_count],
                    },
                });
                self.arena[left_id].parent = Some(new_root);
                self.arena[right_id].parent = Some(new_root);
                self.root = new_root;
            }
            Some(p) => {
                let idx = self.child_index(p, left_id);
                match &mut self.arena[p].kind {
                    NodeKind::Internal { children, counts } => {
                        counts[idx] = left_count;
                        children.insert(idx + 1, right_id);
                        counts.insert(idx + 1, right_count);
                    }
                    _ => unreachable!(),
                }
                self.arena[right_id].parent = Some(p);
                if self.node_size(p) > self.fanout {
                    self.split_internal(p);
                }
            }
        }
    }

    // ---- underflow repair ------------------------------------------------

    fn min_size(&self) -> usize {
        self.fanout / 2
    }

    fn fix_underflow(&mut self, node_id: NodeId) {
        let Some(parent_id) = self.arena[node_id].parent else {
            // Root: an internal root with a single child collapses.
            if let NodeKind::Internal { children, .. } = &self.arena[node_id].kind {
                if children.len() == 1 {
                    let child = children[0];
                    self.arena[child].parent = None;
                    self.root = child;
                    self.release(node_id);
                }
            }
            return;
        };
        let idx = self.child_index(parent_id, node_id);
        let (left_sib, right_sib) = match &self.arena[parent_id].kind {
            NodeKind::Internal { children, .. } => (
                if idx > 0 {
                    Some(children[idx - 1])
                } else {
                    None
                },
                children.get(idx + 1).copied(),
            ),
            _ => unreachable!(),
        };
        let min = self.min_size();
        if let Some(l) = left_sib {
            if self.node_size(l) > min {
                self.borrow_from_left(parent_id, idx);
                return;
            }
        }
        if let Some(r) = right_sib {
            if self.node_size(r) > min {
                self.borrow_from_right(parent_id, idx);
                return;
            }
        }
        // No rich sibling: merge. Prefer merging into the left sibling.
        if left_sib.is_some() {
            self.merge(parent_id, idx - 1, idx);
        } else {
            self.merge(parent_id, idx, idx + 1);
        }
        // The merge shrank the parent; repair it if needed.
        if self.arena[parent_id].parent.is_none() {
            self.fix_underflow(parent_id); // root-collapse check
        } else if self.node_size(parent_id) < min {
            self.fix_underflow(parent_id);
        }
    }

    fn borrow_from_left(&mut self, parent_id: NodeId, idx: usize) {
        let (left_id, node_id) = match &self.arena[parent_id].kind {
            NodeKind::Internal { children, .. } => (children[idx - 1], children[idx]),
            _ => unreachable!(),
        };
        let moved_count;
        let is_leaf = matches!(self.arena[left_id].kind, NodeKind::Leaf { .. });
        if is_leaf {
            let key = match &mut self.arena[left_id].kind {
                NodeKind::Leaf { keys, .. } => keys.pop().expect("left sibling not empty"),
                _ => unreachable!(),
            };
            match &mut self.arena[node_id].kind {
                NodeKind::Leaf { keys, .. } => keys.insert(0, key),
                _ => unreachable!(),
            }
            self.key_leaf.insert(key, node_id);
            moved_count = 1;
        } else {
            let (child, count) = match &mut self.arena[left_id].kind {
                NodeKind::Internal { children, counts } => (
                    children.pop().expect("left sibling not empty"),
                    counts.pop().unwrap(),
                ),
                _ => unreachable!(),
            };
            match &mut self.arena[node_id].kind {
                NodeKind::Internal { children, counts } => {
                    children.insert(0, child);
                    counts.insert(0, count);
                }
                _ => unreachable!(),
            }
            self.arena[child].parent = Some(node_id);
            moved_count = count;
        }
        match &mut self.arena[parent_id].kind {
            NodeKind::Internal { counts, .. } => {
                counts[idx - 1] -= moved_count;
                counts[idx] += moved_count;
            }
            _ => unreachable!(),
        }
    }

    fn borrow_from_right(&mut self, parent_id: NodeId, idx: usize) {
        let (node_id, right_id) = match &self.arena[parent_id].kind {
            NodeKind::Internal { children, .. } => (children[idx], children[idx + 1]),
            _ => unreachable!(),
        };
        let moved_count;
        let is_leaf = matches!(self.arena[right_id].kind, NodeKind::Leaf { .. });
        if is_leaf {
            let key = match &mut self.arena[right_id].kind {
                NodeKind::Leaf { keys, .. } => keys.remove(0),
                _ => unreachable!(),
            };
            match &mut self.arena[node_id].kind {
                NodeKind::Leaf { keys, .. } => keys.push(key),
                _ => unreachable!(),
            }
            self.key_leaf.insert(key, node_id);
            moved_count = 1;
        } else {
            let (child, count) = match &mut self.arena[right_id].kind {
                NodeKind::Internal { children, counts } => (children.remove(0), counts.remove(0)),
                _ => unreachable!(),
            };
            match &mut self.arena[node_id].kind {
                NodeKind::Internal { children, counts } => {
                    children.push(child);
                    counts.push(count);
                }
                _ => unreachable!(),
            }
            self.arena[child].parent = Some(node_id);
            moved_count = count;
        }
        match &mut self.arena[parent_id].kind {
            NodeKind::Internal { counts, .. } => {
                counts[idx + 1] -= moved_count;
                counts[idx] += moved_count;
            }
            _ => unreachable!(),
        }
    }

    /// Merge `children[ri]` into `children[li]` (must be adjacent, li < ri).
    fn merge(&mut self, parent_id: NodeId, li: usize, ri: usize) {
        let (left_id, right_id) = match &self.arena[parent_id].kind {
            NodeKind::Internal { children, .. } => (children[li], children[ri]),
            _ => unreachable!(),
        };
        let right_kind = std::mem::replace(&mut self.arena[right_id].kind, NodeKind::Free);
        match right_kind {
            NodeKind::Leaf { keys, next } => {
                for &k in &keys {
                    self.key_leaf.insert(k, left_id);
                }
                match &mut self.arena[left_id].kind {
                    NodeKind::Leaf { keys: lk, next: ln } => {
                        lk.extend(keys);
                        *ln = next;
                    }
                    _ => unreachable!(),
                }
            }
            NodeKind::Internal { children, counts } => {
                for &c in &children {
                    self.arena[c].parent = Some(left_id);
                }
                match &mut self.arena[left_id].kind {
                    NodeKind::Internal {
                        children: lc,
                        counts: lcnt,
                    } => {
                        lc.extend(children);
                        lcnt.extend(counts);
                    }
                    _ => unreachable!(),
                }
            }
            NodeKind::Free => unreachable!(),
        }
        match &mut self.arena[parent_id].kind {
            NodeKind::Internal { children, counts } => {
                counts[li] += counts[ri];
                children.remove(ri);
                counts.remove(ri);
            }
            _ => unreachable!(),
        }
        self.release(right_id);
    }

    // ---- verification (used by tests & proptests) ------------------------

    /// Exhaustively verify structural invariants; panics with a description
    /// on the first violation. O(n) — test-only.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mut leaves_in_order: Vec<NodeId> = Vec::new();
        let total = self.check_node(
            self.root,
            None,
            &mut leaves_in_order,
            0,
            self.tree_depth(self.root),
        );
        assert_eq!(total, self.len, "len mismatch");
        // next-pointer chain equals in-order leaves.
        let mut chained = Vec::new();
        let mut cur = Some(*leaves_in_order.first().expect("at least one leaf"));
        while let Some(id) = cur {
            chained.push(id);
            cur = match &self.arena[id].kind {
                NodeKind::Leaf { next, .. } => *next,
                _ => panic!("chained non-leaf"),
            };
        }
        assert_eq!(chained, leaves_in_order, "leaf chain broken");
        // reverse index complete and correct.
        assert_eq!(self.key_leaf.len(), self.len, "key_leaf size mismatch");
        for (&k, &leaf) in &self.key_leaf {
            match &self.arena[leaf].kind {
                NodeKind::Leaf { keys, .. } => {
                    assert!(keys.contains(&k), "key_leaf points {k} at wrong leaf")
                }
                _ => panic!("key_leaf points at non-leaf"),
            }
        }
    }

    fn tree_depth(&self, mut id: NodeId) -> usize {
        let mut d = 0;
        loop {
            match &self.arena[id].kind {
                NodeKind::Leaf { .. } => return d,
                NodeKind::Internal { children, .. } => {
                    id = children[0];
                    d += 1;
                }
                NodeKind::Free => panic!("free node in tree"),
            }
        }
    }

    fn check_node(
        &self,
        id: NodeId,
        parent: Option<NodeId>,
        leaves: &mut Vec<NodeId>,
        depth: usize,
        leaf_depth: usize,
    ) -> usize {
        assert_eq!(
            self.arena[id].parent, parent,
            "bad parent pointer at node {id}"
        );
        let min = self.min_size();
        match &self.arena[id].kind {
            NodeKind::Leaf { keys, .. } => {
                assert_eq!(depth, leaf_depth, "leaf at wrong depth");
                if parent.is_some() {
                    assert!(keys.len() >= min, "leaf underflow: {} < {min}", keys.len());
                }
                assert!(keys.len() <= self.fanout, "leaf overflow");
                leaves.push(id);
                keys.len()
            }
            NodeKind::Internal { children, counts } => {
                assert_eq!(children.len(), counts.len());
                if parent.is_some() {
                    assert!(children.len() >= min, "internal underflow");
                } else {
                    assert!(children.len() >= 2, "root internal must have ≥2 children");
                }
                assert!(children.len() <= self.fanout, "internal overflow");
                let mut total = 0;
                for (i, &c) in children.iter().enumerate() {
                    let sub = self.check_node(c, Some(id), leaves, depth + 1, leaf_depth);
                    assert_eq!(sub, counts[i], "count mismatch at node {id} child {i}");
                    total += sub;
                }
                total
            }
            NodeKind::Free => panic!("free node reachable"),
        }
    }
}

impl PositionalIndex for CountedBtree {
    fn len(&self) -> usize {
        self.len
    }

    fn insert_at(&mut self, pos: usize, key: RowKey) -> DsResult<()> {
        if pos > self.len {
            return Err(DsError::Storage(format!(
                "insert position {pos} out of bounds (len {})",
                self.len
            )));
        }
        if self.key_leaf.contains_key(&key) {
            return Err(DsError::Storage(format!("duplicate row key {key}")));
        }
        let (leaf_id, off) = self.locate_insert(pos);
        match &mut self.arena[leaf_id].kind {
            NodeKind::Leaf { keys, .. } => keys.insert(off, key),
            _ => unreachable!(),
        }
        self.key_leaf.insert(key, leaf_id);
        self.len += 1;
        self.bump_counts(leaf_id, 1);
        if self.node_size(leaf_id) > self.fanout {
            self.split_leaf(leaf_id);
        }
        Ok(())
    }

    fn remove_at(&mut self, pos: usize) -> DsResult<RowKey> {
        if pos >= self.len {
            return Err(DsError::Storage(format!(
                "remove position {pos} out of bounds (len {})",
                self.len
            )));
        }
        let (leaf_id, off) = self.locate_read(pos);
        let key = match &mut self.arena[leaf_id].kind {
            NodeKind::Leaf { keys, .. } => keys.remove(off),
            _ => unreachable!(),
        };
        self.key_leaf.remove(&key);
        self.len -= 1;
        self.bump_counts(leaf_id, -1);
        if self.arena[leaf_id].parent.is_some() && self.node_size(leaf_id) < self.min_size() {
            self.fix_underflow(leaf_id);
        }
        Ok(key)
    }

    fn key_at(&self, pos: usize) -> Option<RowKey> {
        if pos >= self.len {
            return None;
        }
        let (leaf_id, off) = self.locate_read(pos);
        match &self.arena[leaf_id].kind {
            NodeKind::Leaf { keys, .. } => Some(keys[off]),
            _ => unreachable!(),
        }
    }

    fn position_of(&self, key: RowKey) -> Option<usize> {
        let leaf_id = *self.key_leaf.get(&key)?;
        let mut pos = match &self.arena[leaf_id].kind {
            NodeKind::Leaf { keys, .. } => keys.iter().position(|&k| k == key)?,
            _ => unreachable!(),
        };
        let mut child = leaf_id;
        while let Some(p) = self.arena[child].parent {
            let idx = self.child_index(p, child);
            match &self.arena[p].kind {
                NodeKind::Internal { counts, .. } => {
                    pos += counts[..idx].iter().sum::<usize>();
                }
                _ => unreachable!(),
            }
            child = p;
        }
        Some(pos)
    }

    fn range(&self, pos: usize, count: usize) -> Vec<RowKey> {
        if pos >= self.len || count == 0 {
            return Vec::new();
        }
        let take = count.min(self.len - pos);
        let mut out = Vec::with_capacity(take);
        let (mut leaf_id, mut off) = self.locate_read(pos);
        loop {
            match &self.arena[leaf_id].kind {
                NodeKind::Leaf { keys, next } => {
                    for &k in &keys[off..] {
                        out.push(k);
                        if out.len() == take {
                            return out;
                        }
                    }
                    match next {
                        Some(n) => {
                            leaf_id = *n;
                            off = 0;
                        }
                        None => return out,
                    }
                }
                _ => unreachable!(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree() {
        let t = CountedBtree::new();
        assert_eq!(t.len(), 0);
        assert!(t.is_empty());
        assert_eq!(t.key_at(0), None);
        assert_eq!(t.range(0, 10), Vec::<RowKey>::new());
        t.check_invariants();
    }

    #[test]
    fn push_sequence_and_read_back() {
        let mut t = CountedBtree::with_fanout(4);
        for k in 0..100 {
            t.push(k).unwrap();
        }
        t.check_invariants();
        assert_eq!(t.len(), 100);
        for p in 0..100 {
            assert_eq!(t.key_at(p), Some(p as RowKey));
            assert_eq!(t.position_of(p as RowKey), Some(p));
        }
        assert!(t.depth() > 2, "fanout 4 over 100 keys must be multi-level");
    }

    #[test]
    fn insert_at_front_reverses() {
        let mut t = CountedBtree::with_fanout(4);
        for k in 0..50 {
            t.insert_at(0, k).unwrap();
        }
        t.check_invariants();
        let expect: Vec<RowKey> = (0..50).rev().collect();
        assert_eq!(t.to_vec(), expect);
    }

    #[test]
    fn insert_middle() {
        let mut t = CountedBtree::with_fanout(4);
        t.push(1).unwrap();
        t.push(3).unwrap();
        t.insert_at(1, 2).unwrap();
        assert_eq!(t.to_vec(), vec![1, 2, 3]);
        t.check_invariants();
    }

    #[test]
    fn duplicate_key_rejected() {
        let mut t = CountedBtree::new();
        t.push(7).unwrap();
        assert!(t.push(7).is_err());
        assert!(t.insert_at(0, 7).is_err());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut t = CountedBtree::new();
        assert!(t.insert_at(1, 5).is_err());
        t.push(5).unwrap();
        assert!(t.remove_at(1).is_err());
        assert_eq!(t.key_at(1), None);
    }

    #[test]
    fn remove_everything_both_directions() {
        let mut t = CountedBtree::with_fanout(4);
        for k in 0..64 {
            t.push(k).unwrap();
        }
        // Remove from the front.
        for k in 0..32 {
            assert_eq!(t.remove_at(0).unwrap(), k);
            t.check_invariants();
        }
        // Remove from the back.
        for k in (32..64).rev() {
            let last = t.len() - 1;
            assert_eq!(t.remove_at(last).unwrap(), k);
            t.check_invariants();
        }
        assert!(t.is_empty());
    }

    #[test]
    fn remove_middle_repeatedly() {
        let mut t = CountedBtree::with_fanout(4);
        for k in 0..101 {
            t.push(k).unwrap();
        }
        while t.len() > 0 {
            let mid = t.len() / 2;
            t.remove_at(mid).unwrap();
            t.check_invariants();
        }
    }

    #[test]
    fn position_of_after_shifts() {
        let mut t = CountedBtree::with_fanout(4);
        for k in 0..20 {
            t.push(k).unwrap();
        }
        // Insert 5 keys at the front; existing keys shift by 5.
        for k in 100..105 {
            t.insert_at(0, k).unwrap();
        }
        assert_eq!(t.position_of(0), Some(5));
        assert_eq!(t.position_of(19), Some(24));
        t.remove_at(0).unwrap();
        assert_eq!(t.position_of(0), Some(4));
    }

    #[test]
    fn range_spans_leaves() {
        let mut t = CountedBtree::with_fanout(4);
        for k in 0..40 {
            t.push(k * 10).unwrap();
        }
        let r = t.range(7, 11);
        let expect: Vec<RowKey> = (7..18).map(|k| k * 10).collect();
        assert_eq!(r, expect);
        // Clamped at the end.
        assert_eq!(t.range(38, 10), vec![380, 390]);
    }

    #[test]
    fn bulk_load_matches_push() {
        let keys: Vec<RowKey> = (0..1000).map(|k| k * 3).collect();
        let bulk = CountedBtree::from_keys_with_fanout(keys.clone(), 8).unwrap();
        bulk.check_invariants();
        assert_eq!(bulk.to_vec(), keys);
        for (p, &k) in keys.iter().enumerate() {
            assert_eq!(bulk.key_at(p), Some(k));
            assert_eq!(bulk.position_of(k), Some(p));
        }
    }

    #[test]
    fn bulk_load_small_tail() {
        // 9 keys with fanout 8 leaves a 1-key tail chunk that must be
        // rebalanced to satisfy the min-size invariant.
        let keys: Vec<RowKey> = (0..9).collect();
        let t = CountedBtree::from_keys_with_fanout(keys.clone(), 8).unwrap();
        t.check_invariants();
        assert_eq!(t.to_vec(), keys);
    }

    #[test]
    fn bulk_load_rejects_duplicates() {
        assert!(CountedBtree::from_keys([1, 2, 1]).is_err());
    }

    #[test]
    fn bulk_then_edit() {
        let mut t = CountedBtree::from_keys_with_fanout(0..500, 16).unwrap();
        t.insert_at(250, 10_000).unwrap();
        assert_eq!(t.key_at(250), Some(10_000));
        assert_eq!(t.key_at(251), Some(250));
        t.remove_key(10_000).unwrap();
        assert_eq!(t.key_at(250), Some(250));
        t.check_invariants();
    }

    #[test]
    fn node_count_shrinks_after_mass_delete() {
        let mut t = CountedBtree::from_keys_with_fanout(0..4096, 8).unwrap();
        let full = t.node_count();
        for _ in 0..4000 {
            t.remove_at(0).unwrap();
        }
        t.check_invariants();
        assert!(
            t.node_count() < full / 4,
            "tree should shrink: {} vs {}",
            t.node_count(),
            full
        );
    }
}
