//! The stock-RDBMS baseline: an explicit row-number column.
//!
//! Storing the display position as a table attribute (`rownum INTEGER`) gives
//! O(1) positional lookup through an index, but positional *insert* and
//! *delete* renumber every subsequent tuple — the O(n) behaviour the paper's
//! positional index exists to avoid. We model that cost faithfully: the
//! suffix of the position map is rewritten on every structural edit, exactly
//! like the `UPDATE t SET rownum = rownum + 1 WHERE rownum >= ?` a stock
//! system would run.

use std::collections::HashMap;

use dataspread_types::{DsError, DsResult};

use crate::{PositionalIndex, RowKey};

/// Dense positional index: `Vec` of keys plus a key→position hash map that is
/// renumbered on structural edits.
#[derive(Clone, Debug, Default)]
pub struct DenseIndex {
    keys: Vec<RowKey>,
    pos: HashMap<RowKey, usize>,
}

impl DenseIndex {
    pub fn new() -> Self {
        DenseIndex::default()
    }

    pub fn with_capacity(n: usize) -> Self {
        DenseIndex {
            keys: Vec::with_capacity(n),
            pos: HashMap::with_capacity(n),
        }
    }

    /// Bulk-load from keys in positional order. Errors on duplicates.
    pub fn from_keys(keys: impl IntoIterator<Item = RowKey>) -> DsResult<Self> {
        let keys: Vec<RowKey> = keys.into_iter().collect();
        let mut pos = HashMap::with_capacity(keys.len());
        for (i, &k) in keys.iter().enumerate() {
            if pos.insert(k, i).is_some() {
                return Err(DsError::Storage(format!("duplicate row key {k}")));
            }
        }
        Ok(DenseIndex { keys, pos })
    }
}

impl PositionalIndex for DenseIndex {
    fn len(&self) -> usize {
        self.keys.len()
    }

    fn insert_at(&mut self, at: usize, key: RowKey) -> DsResult<()> {
        if at > self.keys.len() {
            return Err(DsError::Storage(format!(
                "insert position {at} out of bounds (len {})",
                self.keys.len()
            )));
        }
        if self.pos.contains_key(&key) {
            return Err(DsError::Storage(format!("duplicate row key {key}")));
        }
        self.keys.insert(at, key);
        // The renumbering pass a row-number column forces on the database.
        for (i, k) in self.keys.iter().enumerate().skip(at) {
            self.pos.insert(*k, i);
        }
        Ok(())
    }

    fn remove_at(&mut self, at: usize) -> DsResult<RowKey> {
        if at >= self.keys.len() {
            return Err(DsError::Storage(format!(
                "remove position {at} out of bounds (len {})",
                self.keys.len()
            )));
        }
        let key = self.keys.remove(at);
        self.pos.remove(&key);
        for (i, k) in self.keys.iter().enumerate().skip(at) {
            self.pos.insert(*k, i);
        }
        Ok(key)
    }

    fn key_at(&self, at: usize) -> Option<RowKey> {
        self.keys.get(at).copied()
    }

    fn position_of(&self, key: RowKey) -> Option<usize> {
        self.pos.get(&key).copied()
    }

    fn range(&self, at: usize, count: usize) -> Vec<RowKey> {
        if at >= self.keys.len() {
            return Vec::new();
        }
        let end = (at + count).min(self.keys.len());
        self.keys[at..end].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut idx = DenseIndex::new();
        idx.insert_at(0, 100).unwrap();
        idx.insert_at(1, 200).unwrap();
        idx.insert_at(1, 150).unwrap();
        assert_eq!(idx.to_vec(), vec![100, 150, 200]);
        assert_eq!(idx.key_at(1), Some(150));
        assert_eq!(idx.position_of(200), Some(2));
    }

    #[test]
    fn remove_renumbers() {
        let mut idx = DenseIndex::from_keys([1, 2, 3, 4]).unwrap();
        assert_eq!(idx.remove_at(1).unwrap(), 2);
        assert_eq!(idx.position_of(3), Some(1));
        assert_eq!(idx.position_of(4), Some(2));
        assert_eq!(idx.position_of(2), None);
    }

    #[test]
    fn bounds_and_duplicates_error() {
        let mut idx = DenseIndex::from_keys([1, 2]).unwrap();
        assert!(idx.insert_at(5, 9).is_err());
        assert!(idx.insert_at(0, 1).is_err());
        assert!(idx.remove_at(2).is_err());
        assert!(DenseIndex::from_keys([7, 7]).is_err());
    }

    #[test]
    fn range_clamps() {
        let idx = DenseIndex::from_keys([10, 20, 30]).unwrap();
        assert_eq!(idx.range(1, 10), vec![20, 30]);
        assert_eq!(idx.range(3, 1), Vec::<RowKey>::new());
        assert_eq!(idx.range(0, 0), Vec::<RowKey>::new());
    }
}
