//! The *positional index* (paper §3).
//!
//! > "We introduce a new type of index, positional, which makes
//! > interface-oriented operations, e.g., ordered presentation, efficient."
//!
//! A spreadsheet presents tuples *in an order*, addressed by row number. A
//! stock RDBMS has no efficient way to answer "which tuple is displayed at row
//! 481,227?" or "insert this tuple *between* rows 12 and 13" — the classical
//! workaround stores an explicit row-number column, making positional insert
//! O(n) (every subsequent tuple is renumbered).
//!
//! This crate provides:
//!
//! * [`CountedBtree`] — an order-statistics B-tree over stable row keys.
//!   `key_at`, `insert_at`, `remove_at`, and `position_of` are all O(log n);
//!   windowed reads are O(log n + window).
//! * [`DenseIndex`] — the stock baseline: a dense row-number assignment where
//!   positional insert/delete renumbers the suffix. Used as the comparison
//!   arm in experiment `C3` and as the *model* in property tests.
//! * [`RowMapping`] — the façade the interface manager uses to translate
//!   between grid rows and tuple keys (paper §3, "interface manager maintains
//!   a mapping between a tuple's key attribute and its corresponding
//!   location").
//!
//! Both index types implement [`PositionalIndex`], so the storage layer and
//! the benches can swap them freely.

pub mod counted_btree;
pub mod dense;
pub mod mapping;

pub use counted_btree::CountedBtree;
pub use dense::DenseIndex;
pub use mapping::RowMapping;

use dataspread_types::DsResult;

/// Stable identity of a tuple, assigned once at insert and never reused.
/// Positions change as rows are inserted/deleted above; keys do not.
pub type RowKey = u64;

/// Common interface of positional indexes: a sequence of distinct row keys
/// addressable by position.
pub trait PositionalIndex {
    /// Number of keys in the index.
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert `key` so it ends up at position `pos` (everything at `pos` and
    /// after shifts down by one). Errors if `pos > len` or `key` is already
    /// present.
    fn insert_at(&mut self, pos: usize, key: RowKey) -> DsResult<()>;

    /// Append at the end.
    fn push(&mut self, key: RowKey) -> DsResult<()> {
        self.insert_at(self.len(), key)
    }

    /// Remove and return the key at `pos`. Errors if out of bounds.
    fn remove_at(&mut self, pos: usize) -> DsResult<RowKey>;

    /// The key currently at `pos`, if in bounds.
    fn key_at(&self, pos: usize) -> Option<RowKey>;

    /// Reverse lookup: the current position of `key`.
    fn position_of(&self, key: RowKey) -> Option<usize>;

    /// The keys at positions `pos .. pos+count` (clamped to the end) — the
    /// window-fetch primitive.
    fn range(&self, pos: usize, count: usize) -> Vec<RowKey>;

    /// All keys in positional order.
    fn to_vec(&self) -> Vec<RowKey> {
        self.range(0, self.len())
    }

    /// Remove by key; returns the position it occupied.
    fn remove_key(&mut self, key: RowKey) -> DsResult<usize> {
        let pos = self.position_of(key).ok_or_else(|| {
            dataspread_types::DsError::Storage(format!("row key {key} not in positional index"))
        })?;
        self.remove_at(pos)?;
        Ok(pos)
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    #[test]
    fn default_methods_delegate() {
        let mut idx = DenseIndex::new();
        idx.push(10).unwrap();
        idx.push(20).unwrap();
        idx.push(30).unwrap();
        assert_eq!(idx.to_vec(), vec![10, 20, 30]);
        assert_eq!(idx.remove_key(20).unwrap(), 1);
        assert_eq!(idx.to_vec(), vec![10, 30]);
        assert!(idx.remove_key(99).is_err());
    }
}
