//! Row mapping: the interface-manager façade over the positional index.
//!
//! Paper §3 (Interface Manager): *"the interface manager maintains a mapping
//! between a tuple's key attribute and its corresponding location. This
//! enables translation of an update on the interface, having a locational
//! context, to the underlying relational database, which requires a key to
//! uniquely identify a tuple."*
//!
//! [`RowMapping`] is that mapping for one displayed table/query region:
//! grid-row-within-region ↔ stable [`RowKey`]. It wraps a [`CountedBtree`]
//! so both directions are O(log n).

use dataspread_types::DsResult;

use crate::{CountedBtree, PositionalIndex, RowKey};

/// Two-way mapping between region-relative row offsets and tuple keys.
#[derive(Debug, Default)]
pub struct RowMapping {
    index: CountedBtree,
}

impl RowMapping {
    pub fn new() -> Self {
        RowMapping {
            index: CountedBtree::new(),
        }
    }

    /// Bulk-build from keys in display order (initial table display).
    pub fn from_keys(keys: impl IntoIterator<Item = RowKey>) -> DsResult<Self> {
        Ok(RowMapping {
            index: CountedBtree::from_keys(keys)?,
        })
    }

    /// Number of displayed rows.
    pub fn row_count(&self) -> usize {
        self.index.len()
    }

    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The tuple displayed at region-relative row `row`.
    pub fn key_for_row(&self, row: usize) -> Option<RowKey> {
        self.index.key_at(row)
    }

    /// Where a tuple is currently displayed (for back-end → front-end sync).
    pub fn row_for_key(&self, key: RowKey) -> Option<usize> {
        self.index.position_of(key)
    }

    /// A window of keys for rows `first_row .. first_row + height`.
    pub fn keys_in_window(&self, first_row: usize, height: usize) -> Vec<RowKey> {
        self.index.range(first_row, height)
    }

    /// Display a new tuple at `row` (rows below shift down).
    pub fn insert_row(&mut self, row: usize, key: RowKey) -> DsResult<()> {
        self.index.insert_at(row, key)
    }

    /// Append a tuple at the bottom of the region.
    pub fn append(&mut self, key: RowKey) -> DsResult<()> {
        self.index.push(key)
    }

    /// Remove the tuple at `row`, returning its key (rows below shift up).
    pub fn remove_row(&mut self, row: usize) -> DsResult<RowKey> {
        self.index.remove_at(row)
    }

    /// Remove a tuple by key (back-end delete), returning the row it occupied.
    pub fn remove_by_key(&mut self, key: RowKey) -> DsResult<usize> {
        self.index.remove_key(key)
    }

    /// All keys in display order.
    pub fn keys(&self) -> Vec<RowKey> {
        self.index.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_order_round_trip() {
        let m = RowMapping::from_keys([30, 10, 20]).unwrap();
        assert_eq!(m.row_count(), 3);
        assert_eq!(m.key_for_row(0), Some(30));
        assert_eq!(m.row_for_key(20), Some(2));
        assert_eq!(m.keys(), vec![30, 10, 20]);
    }

    #[test]
    fn front_end_row_insert_shifts_below() {
        let mut m = RowMapping::from_keys([1, 2, 3]).unwrap();
        m.insert_row(1, 99).unwrap();
        assert_eq!(m.keys(), vec![1, 99, 2, 3]);
        assert_eq!(m.row_for_key(3), Some(3));
    }

    #[test]
    fn back_end_delete_translates_to_row() {
        let mut m = RowMapping::from_keys([5, 6, 7, 8]).unwrap();
        let row = m.remove_by_key(7).unwrap();
        assert_eq!(row, 2);
        assert_eq!(m.keys(), vec![5, 6, 8]);
    }

    #[test]
    fn window_fetch() {
        let m = RowMapping::from_keys(0..100).unwrap();
        assert_eq!(m.keys_in_window(40, 5), vec![40, 41, 42, 43, 44]);
        assert_eq!(m.keys_in_window(98, 5), vec![98, 99]);
    }
}
