//! Model-based property tests: the counted B-tree must behave exactly like
//! the dense baseline under arbitrary operation sequences, and its structural
//! invariants must hold after every mutation.
//!
//! Driven by `dataspread_testkit` (deterministic seeds) instead of an
//! external property-testing crate — see substitution #4 in `DESIGN.md`.

use dataspread_posindex::{CountedBtree, DenseIndex, PositionalIndex, RowKey};
use dataspread_testkit::{cases, Rng};

#[derive(Clone, Debug)]
enum Op {
    InsertAt(usize, RowKey),
    RemoveAt(usize),
    Push(RowKey),
    RemoveKey(RowKey),
}

fn arb_ops(rng: &mut Rng, max_len: usize) -> Vec<Op> {
    let len = rng.index(max_len);
    (0..len)
        .map(|_| match rng.weighted(&[1, 1, 1, 1]) {
            0 => Op::InsertAt(rng.next_u64() as usize, rng.next_u64() as u32 as RowKey),
            1 => Op::RemoveAt(rng.next_u64() as usize),
            2 => Op::Push(rng.next_u64() as u32 as RowKey),
            _ => Op::RemoveKey(rng.next_u64() as u32 as RowKey),
        })
        .collect()
}

fn run_ops(ops: &[Op], fanout: usize) {
    let mut tree = CountedBtree::with_fanout(fanout);
    let mut model = DenseIndex::new();
    for op in ops {
        match op {
            Op::InsertAt(p, k) => {
                let p = if model.len() == 0 {
                    0
                } else {
                    p % (model.len() + 1)
                };
                let r1 = tree.insert_at(p, *k);
                let r2 = model.insert_at(p, *k);
                assert_eq!(r1.is_ok(), r2.is_ok(), "insert_at({p}, {k}) disagreement");
            }
            Op::RemoveAt(p) => {
                if model.len() > 0 {
                    let p = p % model.len();
                    assert_eq!(tree.remove_at(p).unwrap(), model.remove_at(p).unwrap());
                }
            }
            Op::Push(k) => {
                let r1 = tree.push(*k);
                let r2 = model.push(*k);
                assert_eq!(r1.is_ok(), r2.is_ok());
            }
            Op::RemoveKey(k) => {
                let r1 = tree.remove_key(*k);
                let r2 = model.remove_key(*k);
                match (r1, r2) {
                    (Ok(a), Ok(b)) => assert_eq!(a, b),
                    (Err(_), Err(_)) => {}
                    (a, b) => panic!("remove_key({k}) disagreement: {a:?} vs {b:?}"),
                }
            }
        }
        tree.check_invariants();
        assert_eq!(tree.len(), model.len());
    }
    // Final state equivalence in every observable way.
    assert_eq!(tree.to_vec(), model.to_vec());
    for p in 0..model.len() {
        assert_eq!(tree.key_at(p), model.key_at(p));
        let k = model.key_at(p).unwrap();
        assert_eq!(tree.position_of(k), model.position_of(k));
    }
    // Window reads agree at a few offsets.
    for p in [0, model.len() / 3, model.len() / 2] {
        assert_eq!(tree.range(p, 7), model.range(p, 7));
    }
}

#[test]
fn btree_matches_model_fanout_4() {
    cases(64, 0x90501, |rng| {
        let ops = arb_ops(rng, 120);
        run_ops(&ops, 4);
    });
}

#[test]
fn btree_matches_model_fanout_5() {
    // Odd fanout exercises asymmetric splits.
    cases(64, 0x90502, |rng| {
        let ops = arb_ops(rng, 120);
        run_ops(&ops, 5);
    });
}

#[test]
fn btree_matches_model_fanout_16() {
    cases(64, 0x90503, |rng| {
        let ops = arb_ops(rng, 200);
        run_ops(&ops, 16);
    });
}

#[test]
fn bulk_load_equivalent_to_pushes() {
    cases(64, 0x90504, |rng| {
        let n = rng.index(600);
        let fanout = rng.usize_in(4, 32);
        let keys: Vec<RowKey> = (0..n as RowKey).collect();
        let bulk = CountedBtree::from_keys_with_fanout(keys.clone(), fanout).unwrap();
        bulk.check_invariants();
        assert_eq!(bulk.to_vec(), keys);
    });
}

#[test]
fn range_is_window_of_to_vec() {
    cases(128, 0x90505, |rng| {
        let n = rng.usize_in(1, 300);
        let pos = rng.index(400);
        let count = rng.index(64);
        let t = CountedBtree::from_keys_with_fanout((0..n as RowKey).map(|k| k * 2), 8).unwrap();
        let all = t.to_vec();
        let expect: Vec<RowKey> = all.iter().copied().skip(pos).take(count).collect();
        assert_eq!(t.range(pos, count), expect);
    });
}
