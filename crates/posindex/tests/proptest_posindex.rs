//! Model-based property tests: the counted B-tree must behave exactly like
//! the dense baseline under arbitrary operation sequences, and its structural
//! invariants must hold after every mutation.

use proptest::prelude::*;

use dataspread_posindex::{CountedBtree, DenseIndex, PositionalIndex, RowKey};

#[derive(Clone, Debug)]
enum Op {
    InsertAt(usize, RowKey),
    RemoveAt(usize),
    Push(RowKey),
    RemoveKey(RowKey),
}

fn arb_ops(max_len: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (any::<usize>(), any::<u32>()).prop_map(|(p, k)| Op::InsertAt(p, k as RowKey)),
            any::<usize>().prop_map(Op::RemoveAt),
            any::<u32>().prop_map(|k| Op::Push(k as RowKey)),
            any::<u32>().prop_map(|k| Op::RemoveKey(k as RowKey)),
        ],
        0..max_len,
    )
}

fn run_ops(ops: &[Op], fanout: usize) {
    let mut tree = CountedBtree::with_fanout(fanout);
    let mut model = DenseIndex::new();
    for op in ops {
        match op {
            Op::InsertAt(p, k) => {
                let p = if model.len() == 0 { 0 } else { p % (model.len() + 1) };
                let r1 = tree.insert_at(p, *k);
                let r2 = model.insert_at(p, *k);
                assert_eq!(r1.is_ok(), r2.is_ok(), "insert_at({p}, {k}) disagreement");
            }
            Op::RemoveAt(p) => {
                if model.len() > 0 {
                    let p = p % model.len();
                    assert_eq!(tree.remove_at(p).unwrap(), model.remove_at(p).unwrap());
                }
            }
            Op::Push(k) => {
                let r1 = tree.push(*k);
                let r2 = model.push(*k);
                assert_eq!(r1.is_ok(), r2.is_ok());
            }
            Op::RemoveKey(k) => {
                let r1 = tree.remove_key(*k);
                let r2 = model.remove_key(*k);
                match (r1, r2) {
                    (Ok(a), Ok(b)) => assert_eq!(a, b),
                    (Err(_), Err(_)) => {}
                    (a, b) => panic!("remove_key({k}) disagreement: {a:?} vs {b:?}"),
                }
            }
        }
        tree.check_invariants();
        assert_eq!(tree.len(), model.len());
    }
    // Final state equivalence in every observable way.
    assert_eq!(tree.to_vec(), model.to_vec());
    for p in 0..model.len() {
        assert_eq!(tree.key_at(p), model.key_at(p));
        let k = model.key_at(p).unwrap();
        assert_eq!(tree.position_of(k), model.position_of(k));
    }
    // Window reads agree at a few offsets.
    for p in [0, model.len() / 3, model.len() / 2] {
        assert_eq!(tree.range(p, 7), model.range(p, 7));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn btree_matches_model_fanout_4(ops in arb_ops(120)) {
        run_ops(&ops, 4);
    }

    #[test]
    fn btree_matches_model_fanout_5(ops in arb_ops(120)) {
        // Odd fanout exercises asymmetric splits.
        run_ops(&ops, 5);
    }

    #[test]
    fn btree_matches_model_fanout_16(ops in arb_ops(200)) {
        run_ops(&ops, 16);
    }

    #[test]
    fn bulk_load_equivalent_to_pushes(n in 0usize..600, fanout in 4usize..32) {
        let keys: Vec<RowKey> = (0..n as RowKey).collect();
        let bulk = CountedBtree::from_keys_with_fanout(keys.clone(), fanout).unwrap();
        bulk.check_invariants();
        prop_assert_eq!(bulk.to_vec(), keys);
    }

    #[test]
    fn range_is_window_of_to_vec(n in 1usize..300, pos in 0usize..400, count in 0usize..64) {
        let t = CountedBtree::from_keys_with_fanout((0..n as RowKey).map(|k| k * 2), 8).unwrap();
        let all = t.to_vec();
        let expect: Vec<RowKey> = all.iter().copied().skip(pos).take(count).collect();
        prop_assert_eq!(t.range(pos, count), expect);
    }
}
