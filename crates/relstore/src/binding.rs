//! Durable metadata for table-bound sheet regions (paper §2.1, the hybrid
//! data models).
//!
//! A *binding* attaches a rectangular sheet region to a stored table so the
//! grid and the relation become two views of one store. The paper names
//! three presentation models and all three are one metadata shape here:
//!
//! * **TOM** (Table-Oriented Model) — the whole table with a header row
//!   naming its columns.
//! * **ROM** (Row-Oriented Model) — the table's row set in positional order
//!   (via the positional index), no header.
//! * **COM** (Column-Oriented Model) — a selected subset of columns, no
//!   header row requirement (the engine renders COM headerless).
//!
//! This module owns only the *durable metadata* — the engine-side registry,
//! edit routing, and refresh logic live in `dataspread::bind`. Metadata is
//! persisted twice: as a checkpoint section in the workbook snapshot stream,
//! and as WAL records ([`crate::wal::WalOp::BindCreate`] /
//! [`crate::wal::WalOp::BindDrop`]) so a binding created or dropped between
//! checkpoints survives a crash.

use dataspread_types::{DsError, DsResult};

use crate::codec::{put_str, put_u32, put_u64, Cursor};

/// Which presentation model a binding renders (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BindModel {
    /// Whole table with a header row.
    Tom,
    /// Row set in positional order, no header.
    Rom,
    /// Selected columns, no header.
    Com,
}

impl BindModel {
    fn code(self) -> u8 {
        match self {
            BindModel::Tom => 0,
            BindModel::Rom => 1,
            BindModel::Com => 2,
        }
    }

    fn from_code(c: u8) -> DsResult<Self> {
        Ok(match c {
            0 => BindModel::Tom,
            1 => BindModel::Rom,
            2 => BindModel::Com,
            other => return Err(DsError::Storage(format!("binding: bad model code {other}"))),
        })
    }

    /// Does this model render a header row above the data rows?
    pub fn has_header(self) -> bool {
        matches!(self, BindModel::Tom)
    }
}

/// The durable description of one binding: which sheet rectangle mirrors
/// which table, and how.
///
/// The rectangle is *anchored*, not sized: its top-left corner is
/// (`row`, `col`) and its extent is derived live — height is the table's
/// row count (plus a header row for TOM), width is `cols.len()`. `cols`
/// holds schema column indices in display order; TOM/ROM bindings list
/// every column, COM a subset.
#[derive(Clone, Debug, PartialEq)]
pub struct BindingMeta {
    /// Workbook-unique binding id (never reused).
    pub id: u64,
    /// Name of the sheet holding the bound region.
    pub sheet: String,
    /// Name of the backing table.
    pub table: String,
    /// Top-left anchor row (the header row for TOM).
    pub row: u32,
    /// Top-left anchor column.
    pub col: u32,
    /// Presentation model.
    pub model: BindModel,
    /// Schema column indices displayed, in display order.
    pub cols: Vec<u32>,
}

impl BindingMeta {
    /// Serialize into a checkpoint/WAL stream.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        put_u64(buf, self.id);
        put_str(buf, &self.sheet);
        put_str(buf, &self.table);
        put_u32(buf, self.row);
        put_u32(buf, self.col);
        buf.push(self.model.code());
        put_u32(buf, self.cols.len() as u32);
        for &c in &self.cols {
            put_u32(buf, c);
        }
    }

    /// Decode from a checkpoint/WAL stream.
    pub fn decode(cur: &mut Cursor<'_>) -> DsResult<BindingMeta> {
        let id = cur.u64()?;
        let sheet = cur.str()?;
        let table = cur.str()?;
        let row = cur.u32()?;
        let col = cur.u32()?;
        let model = BindModel::from_code(cur.u8()?)?;
        let ncols = cur.u32()? as usize;
        let mut cols = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            cols.push(cur.u32()?);
        }
        Ok(BindingMeta {
            id,
            sheet,
            table,
            row,
            col,
            model,
            cols,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_round_trips() {
        let meta = BindingMeta {
            id: 7,
            sheet: "Data".into(),
            table: "people".into(),
            row: 3,
            col: 1,
            model: BindModel::Com,
            cols: vec![2, 0],
        };
        let mut buf = Vec::new();
        meta.encode(&mut buf);
        let mut cur = Cursor::new(&buf);
        let back = BindingMeta::decode(&mut cur).unwrap();
        assert!(cur.is_empty());
        assert_eq!(back, meta);
    }

    #[test]
    fn models_have_stable_codes_and_headers() {
        for (m, header) in [
            (BindModel::Tom, true),
            (BindModel::Rom, false),
            (BindModel::Com, false),
        ] {
            assert_eq!(BindModel::from_code(m.code()).unwrap(), m);
            assert_eq!(m.has_header(), header);
        }
        assert!(BindModel::from_code(9).is_err());
    }
}
