//! Buffer pool: an LRU over page frames with hit/miss/eviction accounting.
//!
//! The repository substitutes in-memory pages for the paper's disk blocks
//! (substitution #3 in `DESIGN.md`); the buffer pool restores the *cost
//! cliff* of that boundary. Every page access is routed through
//! [`BufferPool::access`]: a miss models a disk read, an eviction of a dirty
//! frame models a write-back. Benches report these counters alongside wall
//! time, so layouts can be compared by "blocks touched" exactly as the paper
//! argues.

use std::collections::HashMap;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Identity of a page frame: (attribute-group index, page index in chain).
pub type PageRef = (u32, u32);

/// Counters for the simulated memory/disk boundary.
#[derive(Debug, Default)]
pub struct PoolStats {
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub evictions: AtomicU64,
    pub dirty_writebacks: AtomicU64,
}

impl PoolStats {
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
    pub fn dirty_writebacks(&self) -> u64 {
        self.dirty_writebacks.load(Ordering::Relaxed)
    }
    pub fn reset(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.dirty_writebacks.store(0, Ordering::Relaxed);
    }
}

const NIL: usize = usize::MAX;

struct LruNode {
    key: PageRef,
    dirty: bool,
    prev: usize,
    next: usize,
}

/// Intrusive doubly-linked LRU list over an arena.
struct Lru {
    map: HashMap<PageRef, usize>,
    nodes: Vec<LruNode>,
    free: Vec<usize>,
    head: usize, // most recent
    tail: usize, // least recent
    cap: usize,
}

impl Lru {
    fn new(cap: usize) -> Self {
        Lru {
            map: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            cap,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (p, n) = (self.nodes[i].prev, self.nodes[i].next);
        if p != NIL {
            self.nodes[p].next = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.nodes[n].prev = p;
        } else {
            self.tail = p;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Touch a page. Returns `(hit, evicted_dirty)` where `evicted_dirty` is
    /// `Some(dirty_flag)` if an eviction happened to make room.
    fn access(&mut self, key: PageRef, write: bool) -> (bool, Option<bool>) {
        if let Some(&i) = self.map.get(&key) {
            self.unlink(i);
            self.push_front(i);
            if write {
                self.nodes[i].dirty = true;
            }
            return (true, None);
        }
        // Miss: maybe evict.
        let mut evicted = None;
        if self.map.len() >= self.cap {
            let victim = self.tail;
            self.unlink(victim);
            let node = &self.nodes[victim];
            evicted = Some(node.dirty);
            self.map.remove(&node.key);
            self.free.push(victim);
        }
        let node = LruNode {
            key,
            dirty: write,
            prev: NIL,
            next: NIL,
        };
        let i = if let Some(i) = self.free.pop() {
            self.nodes[i] = node;
            i
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        };
        self.map.insert(key, i);
        self.push_front(i);
        (false, evicted)
    }

    fn evict_all(&mut self) -> u64 {
        let dirty = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(i, n)| self.map.get(&n.key) == Some(i) && n.dirty);
        let count = dirty.count() as u64;
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        count
    }
}

/// The pool: a bounded LRU plus counters, safe to touch from `&self` paths.
pub struct BufferPool {
    lru: Mutex<Lru>,
    stats: PoolStats,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("hits", &self.stats.hits())
            .field("misses", &self.stats.misses())
            .finish()
    }
}

impl BufferPool {
    /// `capacity` in page frames.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1);
        BufferPool {
            lru: Mutex::new(Lru::new(capacity)),
            stats: PoolStats::default(),
        }
    }

    /// Lock the LRU, shrugging off poisoning (counters are best-effort).
    fn lru(&self) -> std::sync::MutexGuard<'_, Lru> {
        self.lru.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Record an access to a page. `write` marks the frame dirty.
    pub fn access(&self, page: PageRef, write: bool) {
        let (hit, evicted) = self.lru().access(page, write);
        if hit {
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(dirty) = evicted {
            self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            if dirty {
                self.stats.dirty_writebacks.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Flush everything (e.g. between bench phases): counts dirty frames as
    /// write-backs and empties the pool.
    pub fn flush(&self) {
        let dirty = self.lru().evict_all();
        self.stats
            .dirty_writebacks
            .fetch_add(dirty, Ordering::Relaxed);
    }

    pub fn stats(&self) -> &PoolStats {
        &self.stats
    }

    pub fn resident(&self) -> usize {
        self.lru().map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_after_first_touch() {
        let pool = BufferPool::new(4);
        pool.access((0, 0), false);
        pool.access((0, 0), false);
        pool.access((0, 0), true);
        assert_eq!(pool.stats().misses(), 1);
        assert_eq!(pool.stats().hits(), 2);
    }

    #[test]
    fn eviction_at_capacity_is_lru_order() {
        let pool = BufferPool::new(2);
        pool.access((0, 0), true); // miss
        pool.access((0, 1), false); // miss
        pool.access((0, 0), false); // hit, (0,1) is now LRU
        pool.access((0, 2), false); // miss, evicts (0,1) (clean)
        assert_eq!(pool.stats().evictions(), 1);
        assert_eq!(pool.stats().dirty_writebacks(), 0);
        pool.access((0, 1), false); // miss again, evicts (0,0) which is dirty
        assert_eq!(pool.stats().dirty_writebacks(), 1);
        assert_eq!(pool.stats().misses(), 4);
    }

    #[test]
    fn working_set_within_capacity_never_evicts() {
        let pool = BufferPool::new(8);
        for round in 0..10 {
            for p in 0..8u32 {
                pool.access((0, p), round % 2 == 0);
            }
        }
        assert_eq!(pool.stats().misses(), 8);
        assert_eq!(pool.stats().evictions(), 0);
        assert_eq!(pool.resident(), 8);
    }

    #[test]
    fn sequential_flood_thrashes_small_pool() {
        let pool = BufferPool::new(4);
        for p in 0..100u32 {
            pool.access((0, p), false);
        }
        assert_eq!(pool.stats().misses(), 100);
        assert_eq!(pool.stats().evictions(), 96);
    }

    #[test]
    fn flush_counts_dirty_frames() {
        let pool = BufferPool::new(8);
        pool.access((0, 0), true);
        pool.access((0, 1), false);
        pool.access((0, 2), true);
        pool.flush();
        assert_eq!(pool.stats().dirty_writebacks(), 2);
        assert_eq!(pool.resident(), 0);
    }
}
