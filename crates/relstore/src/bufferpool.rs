//! Buffer pool: an LRU over page frames with hit/miss/eviction accounting.
//!
//! The buffer pool restores the *cost cliff* of the memory/disk boundary.
//! Every page access is routed through [`BufferPool::access`]: a miss models
//! a disk read, an eviction of a dirty frame models a write-back. When a
//! table is attached to a durable store (see `docs/STORAGE.md`), the
//! [`PageRef`] of each dirty eviction is returned to the caller, which
//! writes the page's real bytes to the on-disk page file — the counters
//! stop being a simulation and become measurements of actual I/O. Benches
//! report them alongside wall time via [`PoolStats::snapshot`].

use std::collections::HashMap;

use std::sync::Mutex;

use dataspread_obs::Counter;

/// Identity of a page frame: (attribute-group index, page index in chain).
pub type PageRef = (u32, u32);

/// Counters for the memory/disk boundary.
///
/// The fields are registry-grade [`Counter`] handles (relaxed atomics under
/// `Arc`) so `&self` paths can count and a workbook can clone them into its
/// metrics registry; read them through the accessors, or grab a coherent
/// one-pass copy with [`PoolStats::snapshot`].
#[derive(Debug, Default)]
pub struct PoolStats {
    /// Accesses that found their page resident.
    pub hits: Counter,
    /// Accesses that had to fault their page in (modeled disk reads).
    pub misses: Counter,
    /// Frames evicted to make room.
    pub evictions: Counter,
    /// Evicted frames that were dirty (modeled — or, with a durable store
    /// attached, real — disk writes).
    pub dirty_writebacks: Counter,
    /// Write-backs whose physical scratch-frame write failed. Scratch
    /// frames are advisory (recovery never reads them), so a failure is
    /// counted rather than surfaced — keeping reads alive on a degraded
    /// store.
    pub write_back_errors: Counter,
}

/// A point-in-time copy of [`PoolStats`], taken in one pass so benches stop
/// reading four atomics non-atomically mid-run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolSnapshot {
    /// Accesses that found their page resident.
    pub hits: u64,
    /// Accesses that faulted their page in.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Evicted frames that were dirty.
    pub dirty_writebacks: u64,
    /// Write-backs whose physical write failed (see [`PoolStats`]).
    pub write_back_errors: u64,
}

impl PoolSnapshot {
    /// Blocks that crossed the disk boundary: reads (misses) + writes.
    pub fn blocks_touched(&self) -> u64 {
        self.misses + self.dirty_writebacks
    }
}

impl PoolStats {
    /// Accesses that found their page resident.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }
    /// Accesses that faulted their page in.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }
    /// Frames evicted to make room.
    pub fn evictions(&self) -> u64 {
        self.evictions.get()
    }
    /// Evicted frames that were dirty.
    pub fn dirty_writebacks(&self) -> u64 {
        self.dirty_writebacks.get()
    }
    /// Write-backs whose physical write failed.
    pub fn write_back_errors(&self) -> u64 {
        self.write_back_errors.get()
    }
    /// One-pass copy of all counters.
    pub fn snapshot(&self) -> PoolSnapshot {
        PoolSnapshot {
            hits: self.hits(),
            misses: self.misses(),
            evictions: self.evictions(),
            dirty_writebacks: self.dirty_writebacks(),
            write_back_errors: self.write_back_errors(),
        }
    }
    /// Zero every counter (bench phase boundaries).
    pub fn reset(&self) {
        self.hits.reset();
        self.misses.reset();
        self.evictions.reset();
        self.dirty_writebacks.reset();
        self.write_back_errors.reset();
    }
}

const NIL: usize = usize::MAX;

struct LruNode {
    key: PageRef,
    dirty: bool,
    prev: usize,
    next: usize,
}

/// Intrusive doubly-linked LRU list over an arena.
struct Lru {
    map: HashMap<PageRef, usize>,
    nodes: Vec<LruNode>,
    free: Vec<usize>,
    head: usize, // most recent
    tail: usize, // least recent
    cap: usize,
}

impl Lru {
    fn new(cap: usize) -> Self {
        Lru {
            map: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            cap,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (p, n) = (self.nodes[i].prev, self.nodes[i].next);
        if p != NIL {
            self.nodes[p].next = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.nodes[n].prev = p;
        } else {
            self.tail = p;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Touch a page. Returns `(hit, evicted)` where `evicted` is
    /// `Some((page, dirty_flag))` if an eviction happened to make room.
    fn access(&mut self, key: PageRef, write: bool) -> (bool, Option<(PageRef, bool)>) {
        if let Some(&i) = self.map.get(&key) {
            self.unlink(i);
            self.push_front(i);
            if write {
                self.nodes[i].dirty = true;
            }
            return (true, None);
        }
        // Miss: maybe evict.
        let mut evicted = None;
        if self.map.len() >= self.cap {
            let victim = self.tail;
            self.unlink(victim);
            let node = &self.nodes[victim];
            evicted = Some((node.key, node.dirty));
            self.map.remove(&node.key);
            self.free.push(victim);
        }
        let node = LruNode {
            key,
            dirty: write,
            prev: NIL,
            next: NIL,
        };
        let i = if let Some(i) = self.free.pop() {
            self.nodes[i] = node;
            i
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        };
        self.map.insert(key, i);
        self.push_front(i);
        (false, evicted)
    }

    fn evict_all(&mut self) -> Vec<PageRef> {
        let dirty: Vec<PageRef> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(i, n)| self.map.get(&n.key) == Some(i) && n.dirty)
            .map(|(_, n)| n.key)
            .collect();
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        dirty
    }
}

/// The pool: a bounded LRU plus counters, safe to touch from `&self` paths.
pub struct BufferPool {
    lru: Mutex<Lru>,
    stats: PoolStats,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("hits", &self.stats.hits())
            .field("misses", &self.stats.misses())
            .finish()
    }
}

impl BufferPool {
    /// `capacity` in page frames.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1);
        BufferPool {
            lru: Mutex::new(Lru::new(capacity)),
            stats: PoolStats::default(),
        }
    }

    /// Lock the LRU, shrugging off poisoning (counters are best-effort).
    fn lru(&self) -> std::sync::MutexGuard<'_, Lru> {
        self.lru.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Record an access to a page. `write` marks the frame dirty.
    ///
    /// Returns the [`PageRef`] of a *dirty* frame this access evicted, if
    /// any — the write-back hook. A caller holding real page bytes (a table
    /// attached to a durable store) must write that page out; callers in
    /// pure in-memory mode ignore it and the write-back stays modeled.
    pub fn access(&self, page: PageRef, write: bool) -> Option<PageRef> {
        let (hit, evicted) = self.lru().access(page, write);
        if hit {
            self.stats.hits.bump();
        } else {
            self.stats.misses.bump();
        }
        let mut dirty_evicted = None;
        if let Some((key, dirty)) = evicted {
            self.stats.evictions.bump();
            if dirty {
                self.stats.dirty_writebacks.bump();
                dirty_evicted = Some(key);
            }
        }
        dirty_evicted
    }

    /// Flush everything (a checkpoint, or a bench phase boundary): counts
    /// dirty frames as write-backs, empties the pool, and returns the dirty
    /// [`PageRef`]s so an attached store can write them out.
    pub fn flush(&self) -> Vec<PageRef> {
        let dirty = self.lru().evict_all();
        self.stats.dirty_writebacks.add(dirty.len() as u64);
        dirty
    }

    /// The counters.
    pub fn stats(&self) -> &PoolStats {
        &self.stats
    }

    /// Frames currently resident.
    pub fn resident(&self) -> usize {
        self.lru().map.len()
    }

    /// Configured capacity in page frames (persisted across save/open).
    pub fn capacity(&self) -> usize {
        self.lru().cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_after_first_touch() {
        let pool = BufferPool::new(4);
        pool.access((0, 0), false);
        pool.access((0, 0), false);
        pool.access((0, 0), true);
        assert_eq!(pool.stats().misses(), 1);
        assert_eq!(pool.stats().hits(), 2);
    }

    #[test]
    fn eviction_at_capacity_is_lru_order() {
        let pool = BufferPool::new(2);
        pool.access((0, 0), true); // miss
        pool.access((0, 1), false); // miss
        pool.access((0, 0), false); // hit, (0,1) is now LRU
        pool.access((0, 2), false); // miss, evicts (0,1) (clean)
        assert_eq!(pool.stats().evictions(), 1);
        assert_eq!(pool.stats().dirty_writebacks(), 0);
        pool.access((0, 1), false); // miss again, evicts (0,0) which is dirty
        assert_eq!(pool.stats().dirty_writebacks(), 1);
        assert_eq!(pool.stats().misses(), 4);
    }

    #[test]
    fn working_set_within_capacity_never_evicts() {
        let pool = BufferPool::new(8);
        for round in 0..10 {
            for p in 0..8u32 {
                pool.access((0, p), round % 2 == 0);
            }
        }
        assert_eq!(pool.stats().misses(), 8);
        assert_eq!(pool.stats().evictions(), 0);
        assert_eq!(pool.resident(), 8);
    }

    #[test]
    fn sequential_flood_thrashes_small_pool() {
        let pool = BufferPool::new(4);
        for p in 0..100u32 {
            pool.access((0, p), false);
        }
        assert_eq!(pool.stats().misses(), 100);
        assert_eq!(pool.stats().evictions(), 96);
    }

    #[test]
    fn flush_counts_dirty_frames() {
        let pool = BufferPool::new(8);
        pool.access((0, 0), true);
        pool.access((0, 1), false);
        pool.access((0, 2), true);
        let mut dirty = pool.flush();
        dirty.sort_unstable();
        assert_eq!(dirty, vec![(0, 0), (0, 2)]);
        assert_eq!(pool.stats().dirty_writebacks(), 2);
        assert_eq!(pool.resident(), 0);
    }

    #[test]
    fn access_reports_dirty_victim() {
        let pool = BufferPool::new(1);
        assert_eq!(pool.access((0, 0), true), None);
        // Evicts (0,0), which is dirty: the write-back hook fires.
        assert_eq!(pool.access((0, 1), false), Some((0, 0)));
        // Evicts (0,1), which is clean: nothing to write back.
        assert_eq!(pool.access((0, 2), false), None);
    }

    #[test]
    fn snapshot_is_one_coherent_copy() {
        let pool = BufferPool::new(2);
        pool.access((0, 0), true);
        pool.access((0, 0), false);
        pool.access((0, 1), false);
        pool.access((0, 2), false); // evicts dirty (0,0)
        let s = pool.stats().snapshot();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 3);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.dirty_writebacks, 1);
        assert_eq!(s.blocks_touched(), 4);
        assert_eq!(s, pool.stats().snapshot(), "stable when idle");
    }
}
