//! The catalog: named tables, the entry point for the SQL layer and the
//! interface manager.

use std::collections::HashMap;

use dataspread_types::{DsError, DsResult};

use crate::schema::Schema;
use crate::table::{GroupPolicy, Table};

/// Default layout for new tables: the DataSpread hybrid with 4-column groups.
pub const DEFAULT_POLICY: GroupPolicy = GroupPolicy::Hybrid { max_group_width: 4 };

/// A named collection of tables.
#[derive(Debug)]
pub struct Catalog {
    /// Keyed by lower-cased name (SQL identifiers are case-insensitive).
    tables: HashMap<String, Table>,
    /// Buffer-pool capacity (page frames) given to tables created through
    /// this catalog. Workbook-configurable and persisted in the snapshot, so
    /// a reopened store keeps the memory budget it was tuned with.
    default_pool_pages: usize,
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog::new()
    }
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog {
            tables: HashMap::new(),
            default_pool_pages: crate::table::DEFAULT_POOL_PAGES,
        }
    }

    fn key(name: &str) -> String {
        name.to_ascii_lowercase()
    }

    /// Buffer-pool capacity new tables are created with.
    pub fn default_pool_capacity(&self) -> usize {
        self.default_pool_pages
    }

    /// Set the buffer-pool capacity for tables created from now on (existing
    /// tables keep their pools). Clamped to at least one frame.
    pub fn set_default_pool_capacity(&mut self, pages: usize) {
        self.default_pool_pages = pages.max(1);
    }

    /// Create a table with the default (hybrid) layout.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> DsResult<&mut Table> {
        self.create_table_with_policy(name, schema, DEFAULT_POLICY)
    }

    /// Create a table under an explicit grouping policy.
    pub fn create_table_with_policy(
        &mut self,
        name: &str,
        schema: Schema,
        policy: GroupPolicy,
    ) -> DsResult<&mut Table> {
        if name.is_empty() {
            return Err(DsError::Schema("empty table name".into()));
        }
        let k = Self::key(name);
        if self.tables.contains_key(&k) {
            return Err(DsError::Schema(format!("table `{name}` already exists")));
        }
        self.tables.insert(
            k.clone(),
            Table::with_pool_capacity(name, schema, policy, self.default_pool_pages),
        );
        Ok(self.tables.get_mut(&k).unwrap())
    }

    /// Remove a table, returning it.
    pub fn drop_table(&mut self, name: &str) -> DsResult<Table> {
        self.tables
            .remove(&Self::key(name))
            .ok_or_else(|| DsError::TableNotFound(name.to_string()))
    }

    /// Look up a table by (case-insensitive) name.
    pub fn get(&self, name: &str) -> DsResult<&Table> {
        self.tables
            .get(&Self::key(name))
            .ok_or_else(|| DsError::TableNotFound(name.to_string()))
    }

    /// Mutable lookup by (case-insensitive) name.
    pub fn get_mut(&mut self, name: &str) -> DsResult<&mut Table> {
        self.tables
            .get_mut(&Self::key(name))
            .ok_or_else(|| DsError::TableNotFound(name.to_string()))
    }

    /// Does a table with this name exist?
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(&Self::key(name))
    }

    /// Table names, sorted for deterministic output.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.values().map(|t| t.name().to_string()).collect();
        names.sort();
        names
    }

    /// Mutable access to every table (attach/detach of the durable store,
    /// checkpointing). Iteration order is unspecified.
    pub fn tables_mut(&mut self) -> impl Iterator<Item = &mut Table> {
        self.tables.values_mut()
    }

    /// Adopt an already-built table (snapshot decode).
    pub(crate) fn insert_table(&mut self, table: Table) -> DsResult<()> {
        let k = Self::key(table.name());
        if self.tables.contains_key(&k) {
            return Err(DsError::Schema(format!(
                "table `{}` already exists",
                table.name()
            )));
        }
        self.tables.insert(k, table);
        Ok(())
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when the catalog holds no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use dataspread_types::{DataType, Value};

    fn schema() -> Schema {
        Schema::new(vec![ColumnDef::new("id", DataType::Int)]).unwrap()
    }

    #[test]
    fn create_get_drop() {
        let mut c = Catalog::new();
        c.create_table("T1", schema()).unwrap();
        assert!(c.contains("t1"), "case-insensitive");
        assert!(c.get("T1").is_ok());
        assert!(c.create_table("t1", schema()).is_err(), "duplicate");
        let t = c.drop_table("T1").unwrap();
        assert_eq!(t.name(), "T1");
        assert!(c.get("t1").is_err());
        assert!(c.drop_table("t1").is_err());
    }

    #[test]
    fn names_sorted() {
        let mut c = Catalog::new();
        c.create_table("zeta", schema()).unwrap();
        c.create_table("alpha", schema()).unwrap();
        assert_eq!(c.table_names(), vec!["alpha", "zeta"]);
    }

    #[test]
    fn mutate_through_catalog() {
        let mut c = Catalog::new();
        c.create_table("t", schema()).unwrap();
        c.get_mut("t").unwrap().insert(vec![Value::Int(1)]).unwrap();
        assert_eq!(c.get("t").unwrap().row_count(), 1);
    }
}
