//! The catalog: named tables, the entry point for the SQL layer and the
//! interface manager.
//!
//! Each table sits behind its own `Arc<RwLock<..>>` **shard**, so the catalog
//! can hand out read and write guards through `&self`: writers to *disjoint*
//! tables proceed in parallel, readers of the same table share the lock, and
//! a thread can clone a shard handle ([`Catalog::shard`]) and work on it
//! without holding any catalog-wide lock. Only DDL — creating, dropping, or
//! adopting a table — mutates the name map and therefore requires
//! `&mut self`.
//!
//! Lock discipline (see `docs/CONCURRENCY.md`): take at most one shard lock
//! at a time, and never request a write guard for a shard while holding its
//! read guard on the same thread.

use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use dataspread_types::{DsError, DsResult};

use crate::schema::Schema;
use crate::table::{GroupPolicy, Table, TableSnapshot};

/// Default layout for new tables: the DataSpread hybrid with 4-column groups.
pub const DEFAULT_POLICY: GroupPolicy = GroupPolicy::Hybrid { max_group_width: 4 };

/// A table's shard: the lock readers and writers of that table contend on.
pub type TableShard = Arc<RwLock<Table>>;

/// Shared read guard over one table (returned by [`Catalog::get`]).
/// Dereferences to [`Table`].
pub struct TableRef<'a>(RwLockReadGuard<'a, Table>);

impl Deref for TableRef<'_> {
    type Target = Table;
    fn deref(&self) -> &Table {
        &self.0
    }
}

/// Exclusive write guard over one table (returned by [`Catalog::get_mut`]).
/// Dereferences to [`Table`].
pub struct TableRefMut<'a>(RwLockWriteGuard<'a, Table>);

impl Deref for TableRefMut<'_> {
    type Target = Table;
    fn deref(&self) -> &Table {
        &self.0
    }
}

impl DerefMut for TableRefMut<'_> {
    fn deref_mut(&mut self) -> &mut Table {
        &mut self.0
    }
}

fn read_shard(shard: &RwLock<Table>) -> RwLockReadGuard<'_, Table> {
    shard.read().unwrap_or_else(|e| e.into_inner())
}

fn write_shard(shard: &RwLock<Table>) -> RwLockWriteGuard<'_, Table> {
    shard.write().unwrap_or_else(|e| e.into_inner())
}

/// A named collection of tables, each behind its own shard lock.
#[derive(Debug)]
pub struct Catalog {
    /// Keyed by lower-cased name (SQL identifiers are case-insensitive).
    tables: HashMap<String, TableShard>,
    /// Buffer-pool capacity (page frames) given to tables created through
    /// this catalog. Workbook-configurable and persisted in the snapshot, so
    /// a reopened store keeps the memory budget it was tuned with.
    default_pool_pages: usize,
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog::new()
    }
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog {
            tables: HashMap::new(),
            default_pool_pages: crate::table::DEFAULT_POOL_PAGES,
        }
    }

    fn key(name: &str) -> String {
        name.to_ascii_lowercase()
    }

    /// Buffer-pool capacity new tables are created with.
    pub fn default_pool_capacity(&self) -> usize {
        self.default_pool_pages
    }

    /// Set the buffer-pool capacity for tables created from now on (existing
    /// tables keep their pools). Clamped to at least one frame.
    pub fn set_default_pool_capacity(&mut self, pages: usize) {
        self.default_pool_pages = pages.max(1);
    }

    /// Create a table with the default (hybrid) layout.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> DsResult<TableRefMut<'_>> {
        self.create_table_with_policy(name, schema, DEFAULT_POLICY)
    }

    /// Create a table under an explicit grouping policy.
    pub fn create_table_with_policy(
        &mut self,
        name: &str,
        schema: Schema,
        policy: GroupPolicy,
    ) -> DsResult<TableRefMut<'_>> {
        if name.is_empty() {
            return Err(DsError::Schema("empty table name".into()));
        }
        let k = Self::key(name);
        if self.tables.contains_key(&k) {
            return Err(DsError::Schema(format!("table `{name}` already exists")));
        }
        self.tables.insert(
            k.clone(),
            Arc::new(RwLock::new(Table::with_pool_capacity(
                name,
                schema,
                policy,
                self.default_pool_pages,
            ))),
        );
        match self.tables.get(&k) {
            Some(shard) => Ok(TableRefMut(write_shard(shard))),
            // Unreachable (we just inserted `k`), but a typed error beats
            // a panic inside the storage layer.
            None => Err(DsError::Storage(format!("create_table: {k} not in map"))),
        }
    }

    /// Remove a table. If some thread still holds a cloned shard handle the
    /// table itself survives until that handle drops, but it is no longer
    /// reachable by name.
    pub fn drop_table(&mut self, name: &str) -> DsResult<()> {
        self.tables
            .remove(&Self::key(name))
            .map(|_| ())
            .ok_or_else(|| DsError::TableNotFound(name.to_string()))
    }

    /// Shared (read-locked) access to a table by (case-insensitive) name.
    pub fn get(&self, name: &str) -> DsResult<TableRef<'_>> {
        self.tables
            .get(&Self::key(name))
            .map(|s| TableRef(read_shard(s)))
            .ok_or_else(|| DsError::TableNotFound(name.to_string()))
    }

    /// Exclusive (write-locked) access to a table by name. Takes `&self`:
    /// the shard lock, not the catalog borrow, is what serializes writers —
    /// which is exactly what lets writers to *different* tables run in
    /// parallel.
    pub fn get_mut(&self, name: &str) -> DsResult<TableRefMut<'_>> {
        self.tables
            .get(&Self::key(name))
            .map(|s| TableRefMut(write_shard(s)))
            .ok_or_else(|| DsError::TableNotFound(name.to_string()))
    }

    /// Clone a table's shard handle for a worker thread: lock it with
    /// `read()`/`write()` without holding any reference to the catalog.
    pub fn shard(&self, name: &str) -> DsResult<TableShard> {
        self.tables
            .get(&Self::key(name))
            .cloned()
            .ok_or_else(|| DsError::TableNotFound(name.to_string()))
    }

    /// A consistent snapshot of one table (shorthand for
    /// `get(name)?.snapshot()`; the read lock is held only for the O(#pages)
    /// pointer clone).
    pub fn snapshot_of(&self, name: &str) -> DsResult<TableSnapshot> {
        Ok(self.get(name)?.snapshot())
    }

    /// Does a table with this name exist?
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(&Self::key(name))
    }

    /// Table names, sorted for deterministic output.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .tables
            .values()
            .map(|s| read_shard(s).name().to_string())
            .collect();
        names.sort();
        names
    }

    /// Every table's shard handle (attach/detach of the durable store,
    /// checkpointing). Iteration order is unspecified.
    pub fn shards(&self) -> Vec<TableShard> {
        self.tables.values().cloned().collect()
    }

    /// Adopt an already-built table (snapshot decode).
    pub(crate) fn insert_table(&mut self, table: Table) -> DsResult<()> {
        let k = Self::key(table.name());
        if self.tables.contains_key(&k) {
            return Err(DsError::Schema(format!(
                "table `{}` already exists",
                table.name()
            )));
        }
        self.tables.insert(k, Arc::new(RwLock::new(table)));
        Ok(())
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when the catalog holds no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use dataspread_types::{DataType, Value};

    fn schema() -> Schema {
        Schema::new(vec![ColumnDef::new("id", DataType::Int)]).unwrap()
    }

    #[test]
    fn create_get_drop() {
        let mut c = Catalog::new();
        c.create_table("T1", schema()).unwrap();
        assert!(c.contains("t1"), "case-insensitive");
        assert!(c.get("T1").is_ok());
        assert!(c.create_table("t1", schema()).is_err(), "duplicate");
        c.drop_table("T1").unwrap();
        assert!(c.get("t1").is_err());
        assert!(c.drop_table("t1").is_err());
    }

    #[test]
    fn names_sorted() {
        let mut c = Catalog::new();
        c.create_table("zeta", schema()).unwrap();
        c.create_table("alpha", schema()).unwrap();
        assert_eq!(c.table_names(), vec!["alpha", "zeta"]);
    }

    #[test]
    fn mutate_through_catalog() {
        let mut c = Catalog::new();
        c.create_table("t", schema()).unwrap();
        c.get_mut("t").unwrap().insert(vec![Value::Int(1)]).unwrap();
        assert_eq!(c.get("t").unwrap().row_count(), 1);
    }

    #[test]
    fn parallel_writes_to_disjoint_tables() {
        let mut c = Catalog::new();
        c.create_table("a", schema()).unwrap();
        c.create_table("b", schema()).unwrap();
        let c = std::sync::Arc::new(c);
        let handles: Vec<_> = ["a", "b"]
            .into_iter()
            .map(|name| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..200 {
                        c.get_mut(name)
                            .unwrap()
                            .insert(vec![Value::Int(i)])
                            .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get("a").unwrap().row_count(), 200);
        assert_eq!(c.get("b").unwrap().row_count(), 200);
    }

    #[test]
    fn shard_handle_outlives_catalog_borrow() {
        let mut c = Catalog::new();
        c.create_table("t", schema()).unwrap();
        let shard = c.shard("t").unwrap();
        let handle = std::thread::spawn(move || {
            let mut t = shard.write().unwrap();
            t.insert(vec![Value::Int(7)]).unwrap();
        });
        handle.join().unwrap();
        assert_eq!(c.get("t").unwrap().row_count(), 1);
        assert!(c.shard("missing").is_err());
    }
}
