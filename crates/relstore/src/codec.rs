//! Binary tuple codec.
//!
//! Tuple *fragments* (the slice of a row belonging to one attribute group)
//! are serialized into page bytes with a compact tagged encoding. The codec
//! is the unit that makes "pages touched" a meaningful metric: fragment size
//! determines how many fragments fit a 4 KiB page, which determines how many
//! pages a schema change or scan touches.
//!
//! The module also provides the little-endian primitives ([`put_u32`],
//! [`put_str`], [`Cursor`], …) shared by every on-disk encoding in the crate
//! (page images, WAL records, snapshot metadata — see `docs/STORAGE.md`).

use dataspread_types::{CellError, DsError, DsResult, Value};

/// Decode a little-endian `u16` from the first 2 bytes of `b`.
///
/// Bounds are the caller's contract (panics on a short slice, like
/// indexing); unlike `try_into().unwrap()` chains this keeps decode paths
/// free of `unwrap` so the panic audit (`cargo run -p xcheck`) stays sharp.
pub fn u16_le(b: &[u8]) -> u16 {
    u16::from_le_bytes([b[0], b[1]])
}

/// Decode a little-endian `u32` from the first 4 bytes of `b`.
pub fn u32_le(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

/// Decode a little-endian `u64` from the first 8 bytes of `b`.
pub fn u64_le(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

// Little-endian read helpers over an advancing slice. Bounds are checked by
// the callers (decode reports truncation as `DsError`, not a panic).
fn get_u8(buf: &mut &[u8]) -> u8 {
    let v = buf[0];
    *buf = &buf[1..];
    v
}

fn get_u16_le(buf: &mut &[u8]) -> u16 {
    let v = u16_le(buf);
    *buf = &buf[2..];
    v
}

fn get_u32_le(buf: &mut &[u8]) -> u32 {
    let v = u32_le(buf);
    *buf = &buf[4..];
    v
}

fn get_i64_le(buf: &mut &[u8]) -> i64 {
    let v = u64_le(buf) as i64;
    *buf = &buf[8..];
    v
}

fn get_f64_le(buf: &mut &[u8]) -> f64 {
    let v = f64::from_bits(u64_le(buf));
    *buf = &buf[8..];
    v
}

const TAG_EMPTY: u8 = 0;
const TAG_BOOL_FALSE: u8 = 1;
const TAG_BOOL_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_FLOAT: u8 = 4;
const TAG_TEXT: u8 = 5;
const TAG_ERROR: u8 = 6;

/// Append one value to `buf`.
pub fn encode_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Empty => buf.push(TAG_EMPTY),
        Value::Bool(false) => buf.push(TAG_BOOL_FALSE),
        Value::Bool(true) => buf.push(TAG_BOOL_TRUE),
        Value::Int(i) => {
            buf.push(TAG_INT);
            buf.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            buf.push(TAG_FLOAT);
            buf.extend_from_slice(&f.to_le_bytes());
        }
        Value::Text(s) => {
            buf.push(TAG_TEXT);
            buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
            buf.extend_from_slice(s.as_bytes());
        }
        Value::Error(e) => {
            buf.push(TAG_ERROR);
            buf.push(error_code(*e));
        }
    }
}

fn error_code(e: CellError) -> u8 {
    match e {
        CellError::Div0 => 0,
        CellError::Ref => 1,
        CellError::Value => 2,
        CellError::Name => 3,
        CellError::Cycle => 4,
        CellError::Na => 5,
        CellError::Num => 6,
        CellError::Db => 7,
    }
}

fn error_from_code(c: u8) -> DsResult<CellError> {
    Ok(match c {
        0 => CellError::Div0,
        1 => CellError::Ref,
        2 => CellError::Value,
        3 => CellError::Name,
        4 => CellError::Cycle,
        5 => CellError::Na,
        6 => CellError::Num,
        7 => CellError::Db,
        _ => return Err(DsError::Storage(format!("bad error code {c}"))),
    })
}

/// Decode one value from the front of `buf`, advancing it.
pub fn decode_value(buf: &mut &[u8]) -> DsResult<Value> {
    if buf.is_empty() {
        return Err(DsError::Storage("truncated value".into()));
    }
    let tag = get_u8(buf);
    Ok(match tag {
        TAG_EMPTY => Value::Empty,
        TAG_BOOL_FALSE => Value::Bool(false),
        TAG_BOOL_TRUE => Value::Bool(true),
        TAG_INT => {
            if buf.len() < 8 {
                return Err(DsError::Storage("truncated int".into()));
            }
            Value::Int(get_i64_le(buf))
        }
        TAG_FLOAT => {
            if buf.len() < 8 {
                return Err(DsError::Storage("truncated float".into()));
            }
            Value::Float(get_f64_le(buf))
        }
        TAG_TEXT => {
            if buf.len() < 4 {
                return Err(DsError::Storage("truncated text length".into()));
            }
            let len = get_u32_le(buf) as usize;
            if buf.len() < len {
                return Err(DsError::Storage("truncated text body".into()));
            }
            let s = std::str::from_utf8(&buf[..len])
                .map_err(|_| DsError::Storage("invalid utf8 in text value".into()))?
                .to_string();
            *buf = &buf[len..];
            Value::Text(s)
        }
        TAG_ERROR => {
            if buf.is_empty() {
                return Err(DsError::Storage("truncated error".into()));
            }
            Value::Error(error_from_code(get_u8(buf))?)
        }
        _ => return Err(DsError::Storage(format!("bad value tag {tag}"))),
    })
}

/// Serialize a fragment (a fixed-arity slice of values).
pub fn encode_fragment(values: &[Value]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(fragment_size_hint(values));
    buf.extend_from_slice(&(values.len() as u16).to_le_bytes());
    for v in values {
        encode_value(&mut buf, v);
    }
    buf
}

/// Deserialize a fragment.
pub fn decode_fragment(mut bytes: &[u8]) -> DsResult<Vec<Value>> {
    if bytes.len() < 2 {
        return Err(DsError::Storage("truncated fragment".into()));
    }
    let n = get_u16_le(&mut bytes) as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(decode_value(&mut bytes)?);
    }
    if !bytes.is_empty() {
        return Err(DsError::Storage("trailing bytes after fragment".into()));
    }
    Ok(out)
}

/// Exact encoded size of one value.
pub fn value_size(v: &Value) -> usize {
    match v {
        Value::Empty | Value::Bool(_) => 1,
        Value::Int(_) | Value::Float(_) => 9,
        Value::Text(s) => 5 + s.len(),
        Value::Error(_) => 2,
    }
}

fn fragment_size_hint(values: &[Value]) -> usize {
    2 + values.iter().map(value_size).sum::<usize>()
}

// ---- little-endian write helpers ------------------------------------------

/// Append a `u16` little-endian.
pub fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u32` little-endian.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` little-endian.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a length-prefixed (`u32`) UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// A bounds-checked reader over an encoded byte slice.
///
/// Every accessor reports truncation as [`DsError::Storage`] instead of
/// panicking — the counterpart of the `put_*` helpers, used by the WAL and
/// snapshot decoders where the input may be torn or corrupt.
#[derive(Debug)]
pub struct Cursor<'a> {
    buf: &'a [u8],
}

impl<'a> Cursor<'a> {
    /// Start reading at the front of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    fn take(&mut self, n: usize, what: &str) -> DsResult<&'a [u8]> {
        if self.buf.len() < n {
            return Err(DsError::Storage(format!("truncated {what}")));
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> DsResult<u8> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Read a `u16` little-endian.
    pub fn u16(&mut self) -> DsResult<u16> {
        Ok(u16_le(self.take(2, "u16")?))
    }

    /// Read a `u32` little-endian.
    pub fn u32(&mut self) -> DsResult<u32> {
        Ok(u32_le(self.take(4, "u32")?))
    }

    /// Read a `u64` little-endian.
    pub fn u64(&mut self) -> DsResult<u64> {
        Ok(u64_le(self.take(8, "u64")?))
    }

    /// Read `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> DsResult<&'a [u8]> {
        self.take(n, "bytes")
    }

    /// Read a length-prefixed (`u32`) UTF-8 string.
    pub fn str(&mut self) -> DsResult<String> {
        let len = self.u32()? as usize;
        let raw = self.take(len, "string body")?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| DsError::Storage("invalid utf8 in string".into()))
    }

    /// Read one tagged [`Value`] (the [`decode_value`] encoding).
    pub fn value(&mut self) -> DsResult<Value> {
        decode_value(&mut self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(vals: Vec<Value>) {
        let bytes = encode_fragment(&vals);
        let back = decode_fragment(&bytes).unwrap();
        assert_eq!(back, vals);
        assert_eq!(bytes.len(), fragment_size_hint(&vals), "size hint exact");
    }

    #[test]
    fn all_variants_round_trip() {
        round_trip(vec![
            Value::Empty,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(-42),
            Value::Int(i64::MAX),
            Value::Float(3.25),
            Value::Float(f64::MIN_POSITIVE),
            Value::text(""),
            Value::text("héllo wörld"),
            Value::Error(CellError::Div0),
            Value::Error(CellError::Db),
        ]);
    }

    #[test]
    fn empty_fragment() {
        round_trip(vec![]);
    }

    #[test]
    fn truncation_detected() {
        let bytes = encode_fragment(&[Value::Int(5), Value::text("abc")]);
        for cut in 0..bytes.len() {
            assert!(
                decode_fragment(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn trailing_garbage_detected() {
        let mut bytes = encode_fragment(&[Value::Int(5)]);
        bytes.push(0);
        assert!(decode_fragment(&bytes).is_err());
    }

    #[test]
    fn bad_tag_detected() {
        let bytes = vec![1, 0, 99];
        assert!(decode_fragment(&bytes).is_err());
    }

    #[test]
    fn value_size_matches_encoding() {
        for v in [
            Value::Empty,
            Value::Bool(true),
            Value::Int(7),
            Value::Float(1.5),
            Value::text("abcd"),
            Value::Error(CellError::Na),
        ] {
            let mut buf = Vec::new();
            encode_value(&mut buf, &v);
            assert_eq!(buf.len(), value_size(&v), "{v:?}");
        }
    }
}
