//! CRC-32 (IEEE 802.3) — the checksum framing every durable byte.
//!
//! The page-file header, each page frame, and each WAL record carry a CRC-32
//! over their payload (see `docs/STORAGE.md`). The workspace builds with no
//! external crates, so the polynomial table is generated at first use from
//! the reflected polynomial `0xEDB88320`.

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    })
}

/// CRC-32 of `bytes` (IEEE: init `!0`, reflected, final xor `!0`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = table();
    let mut c = !0u32;
    for &b in bytes {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn sensitive_to_every_byte() {
        let base = crc32(b"hello world");
        for i in 0..11 {
            let mut flipped = b"hello world".to_vec();
            flipped[i] ^= 0x01;
            assert_ne!(crc32(&flipped), base, "flip at {i} must change crc");
        }
    }
}
