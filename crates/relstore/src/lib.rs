//! The *relational storage manager* (paper §3).
//!
//! An embedded storage engine standing in for the PostgreSQL back-end of the
//! DataSpread demo (substitution #2 in `DESIGN.md`), built so that the
//! paper's storage arguments are *measurable*:
//!
//! * [`table::Table`] stores rows along **attribute groups** — the paper's
//!   hybrid of row- and column-store. The [`table::GroupPolicy`] selects
//!   between the stock row-store baseline, a pure column-store, and the
//!   bounded-width hybrid; experiment `C2` benchmarks `ALTER TABLE` across
//!   them.
//! * Fragments live in slotted 4 KiB [`page::Page`]s; every logical page
//!   touch is counted ([`table::TableStats`]) and routed through a bounded
//!   LRU [`bufferpool::BufferPool`], restoring the memory/disk cost boundary
//!   the paper reasons about.
//! * Each table maintains its presentation order in a positional index
//!   (`dataspread-posindex`), so windowed scans and positional inserts — the
//!   operations a spreadsheet interface issues — are O(log n).
//! * [`catalog::Catalog`] is the named-table entry point used by the SQL
//!   layer.

pub mod bufferpool;
pub mod catalog;
pub mod codec;
pub mod page;
pub mod schema;
pub mod table;

pub use bufferpool::{BufferPool, PoolStats};
pub use catalog::{Catalog, DEFAULT_POLICY};
pub use page::{Page, PAGE_SIZE};
pub use schema::{ColumnDef, KeyTuple, Schema};
pub use table::{GroupPolicy, RowIter, Table, TableStats};

pub use dataspread_posindex::RowKey;
