//! The *relational storage manager* (paper §3) — now durable.
//!
//! An embedded storage engine standing in for the PostgreSQL back-end of the
//! DataSpread demo (substitution #2 in `DESIGN.md`), built so that the
//! paper's storage arguments are *measurable*:
//!
//! * [`table::Table`] stores rows along **attribute groups** — the paper's
//!   hybrid of row- and column-store. The [`table::GroupPolicy`] selects
//!   between the stock row-store baseline, a pure column-store, and the
//!   bounded-width hybrid; experiment `C2` benchmarks `ALTER TABLE` across
//!   them.
//! * Fragments live in slotted 4 KiB [`page::Page`]s; every logical page
//!   touch is counted ([`table::TableStats`]) and routed through a bounded
//!   LRU [`bufferpool::BufferPool`], restoring the memory/disk cost boundary
//!   the paper reasons about.
//! * A table attached to a **durable store** writes real bytes: the
//!   [`pager::PageFile`] maps pages to frames of a checksummed on-disk file,
//!   the [`wal::WalWriter`] appends CRC-framed redo records fsynced on
//!   commit, and [`snapshot`] implements checkpointing plus ARIES-lite
//!   recovery (replay committed records, truncate the torn tail). The
//!   buffer-pool counters thereby graduate from simulation to measurements
//!   of actual I/O. Formats and protocol: `docs/STORAGE.md`.
//! * Each table maintains its presentation order in a positional index
//!   (`dataspread-posindex`), so windowed scans and positional inserts — the
//!   operations a spreadsheet interface issues — are O(log n).
//! * [`catalog::Catalog`] is the named-table entry point used by the SQL
//!   layer.

#![warn(missing_docs)]

pub mod binding;
pub mod bufferpool;
pub mod catalog;
pub mod codec;
pub mod crc;
pub mod metered;
pub mod page;
pub mod pager;
pub mod schema;
pub mod snapshot;
pub mod stats;
pub mod table;
pub mod vfs;
pub mod wal;

pub use binding::{BindModel, BindingMeta};
pub use bufferpool::{BufferPool, PageRef, PoolSnapshot, PoolStats};
pub use catalog::{Catalog, TableRef, TableRefMut, TableShard, DEFAULT_POLICY};
pub use metered::{MeteredVfs, VfsMeter};
pub use page::{Page, PAGE_SIZE};
pub use pager::{PageFile, PageFileSnapshot, PageFileStats};
pub use schema::{ColumnDef, KeyTuple, Schema};
pub use snapshot::{
    load_catalog, load_catalog_with, save_catalog, save_catalog_with, LoadedCatalog, StoreHandle,
};
pub use stats::{ColumnSketch, ColumnSummary, TableStatistics, KMV_K};
pub use table::{GroupPolicy, RowIter, SnapRowIter, Table, TableSnapshot, TableStats};
pub use vfs::{
    os_vfs, FaultKind, FaultPlan, FaultStats, FaultVfs, OsVfs, RecoveryImage, Vfs, VfsFile,
};
pub use wal::{
    GridEditKind, GroupCommitStats, SheetCellContent, WalCounters, WalOp, WalRecord, WalWriter,
};

pub use dataspread_posindex::RowKey;
