//! A metering [`Vfs`] wrapper: counts file reads/writes/syncs and their
//! byte volumes, and times sync latency into a histogram, while delegating
//! every operation unchanged to the wrapped implementation.
//!
//! The wrapper is transparent by construction — it never opens files or
//! touches `std::fs` itself (the `xcheck` vfs-boundary rule still holds),
//! it only forwards through the inner `Vfs`/`VfsFile`. `duplicate()`d file
//! handles keep the same meter, so the WAL's second sync handle stays
//! counted.

use std::io;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use dataspread_obs::{Counter, Histogram};

use crate::vfs::{Vfs, VfsFile};

/// Clonable counter handles shared by a [`MeteredVfs`] and every file it
/// opens. Attach these to a metrics registry to make the I/O scrape-visible.
#[derive(Clone, Debug, Default)]
pub struct VfsMeter {
    /// Positioned reads issued.
    pub reads: Counter,
    /// Bytes read.
    pub read_bytes: Counter,
    /// Positioned writes issued.
    pub writes: Counter,
    /// Bytes written.
    pub write_bytes: Counter,
    /// File and directory syncs issued.
    pub fsyncs: Counter,
    /// Latency of each sync call, nanoseconds.
    pub fsync_ns: Histogram,
}

/// A [`Vfs`] that meters all I/O through a shared [`VfsMeter`].
#[derive(Debug)]
pub struct MeteredVfs {
    inner: Arc<dyn Vfs>,
    meter: VfsMeter,
}

impl MeteredVfs {
    /// Wrap `inner`, counting into `meter`.
    pub fn new(inner: Arc<dyn Vfs>, meter: VfsMeter) -> MeteredVfs {
        MeteredVfs { inner, meter }
    }

    /// Wrap `inner` as an `Arc<dyn Vfs>` handle.
    pub fn wrap(inner: Arc<dyn Vfs>, meter: VfsMeter) -> Arc<dyn Vfs> {
        Arc::new(MeteredVfs::new(inner, meter))
    }

    /// The meter this wrapper counts into.
    pub fn meter(&self) -> &VfsMeter {
        &self.meter
    }

    fn file(&self, f: Box<dyn VfsFile>) -> Box<dyn VfsFile> {
        Box::new(MeteredFile {
            inner: f,
            meter: self.meter.clone(),
        })
    }
}

impl Vfs for MeteredVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.inner.create(path).map(|f| self.file(f))
    }

    fn open(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.inner.open(path).map(|f| self.file(f))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let bytes = self.inner.read(path)?;
        self.meter.reads.bump();
        self.meter.read_bytes.add(bytes.len() as u64);
        Ok(bytes)
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        // Delegate to the inner default (create + write + sync); the
        // wrapped file handle returned by `create` does the counting.
        self.inner.write_file(path, bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.create_dir_all(path)
    }

    fn sync_dir(&self, path: &Path) {
        let start = Instant::now();
        self.inner.sync_dir(path);
        self.meter.fsyncs.bump();
        self.meter.fsync_ns.observe_duration(start.elapsed());
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
}

struct MeteredFile {
    inner: Box<dyn VfsFile>,
    meter: VfsMeter,
}

impl VfsFile for MeteredFile {
    fn read_exact_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        self.inner.read_exact_at(offset, buf)?;
        self.meter.reads.bump();
        self.meter.read_bytes.add(buf.len() as u64);
        Ok(())
    }

    fn write_all_at(&self, offset: u64, buf: &[u8]) -> io::Result<()> {
        self.inner.write_all_at(offset, buf)?;
        self.meter.writes.bump();
        self.meter.write_bytes.add(buf.len() as u64);
        Ok(())
    }

    fn sync(&self) -> io::Result<()> {
        let start = Instant::now();
        let res = self.inner.sync();
        // Failed syncs count too: a stall that errors out is exactly the
        // latency you want visible.
        self.meter.fsyncs.bump();
        self.meter.fsync_ns.observe_duration(start.elapsed());
        res
    }

    fn len(&self) -> io::Result<u64> {
        self.inner.len()
    }

    fn truncate(&self, len: u64) -> io::Result<()> {
        self.inner.truncate(len)
    }

    fn duplicate(&self) -> io::Result<Box<dyn VfsFile>> {
        let dup = self.inner.duplicate()?;
        Ok(Box::new(MeteredFile {
            inner: dup,
            meter: self.meter.clone(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::os_vfs;

    #[test]
    fn metered_vfs_counts_reads_writes_and_syncs() {
        let dir = std::env::temp_dir().join(format!("ds_metered_{}", std::process::id()));
        let meter = VfsMeter::default();
        let vfs = MeteredVfs::wrap(os_vfs(), meter.clone());
        vfs.create_dir_all(&dir).unwrap();
        let path = dir.join("m.bin");

        let f = vfs.create(&path).unwrap();
        f.write_all_at(0, b"hello world").unwrap();
        f.sync().unwrap();
        let mut buf = [0u8; 5];
        f.read_exact_at(6, &mut buf).unwrap();
        assert_eq!(&buf, b"world");

        // duplicate() keeps metering.
        let dup = f.duplicate().unwrap();
        dup.read_exact_at(0, &mut buf).unwrap();

        assert_eq!(meter.writes.get(), 1);
        assert_eq!(meter.write_bytes.get(), 11);
        assert_eq!(meter.reads.get(), 2);
        assert_eq!(meter.read_bytes.get(), 10);
        assert_eq!(meter.fsyncs.get(), 1);
        assert_eq!(meter.fsync_ns.snapshot().count, 1);

        // Whole-file read counts once with the byte total.
        let all = vfs.read(&path).unwrap();
        assert_eq!(all.len(), 11);
        assert_eq!(meter.reads.get(), 3);
        assert_eq!(meter.read_bytes.get(), 21);

        vfs.remove_file(&path).unwrap();
        let _ = std::fs::remove_dir(&dir);
    }
}
