//! Slotted pages: the unit of "disk blocks touched".
//!
//! Each page is a fixed-budget byte arena with a slot directory. Fragments
//! are inserted at the free pointer; updates rewrite in place when the new
//! bytes fit the old slot, otherwise they re-append (compacting the page when
//! fragmentation would otherwise force an overflow). Deletes tombstone the
//! slot. This mirrors the classic heap-page design closely enough that page
//! counts are an honest proxy for the paper's disk-block accounting
//! (substitution #3 in `DESIGN.md`).

use dataspread_types::{DsError, DsResult};

/// Fixed page budget in bytes (a classic 4 KiB block).
pub const PAGE_SIZE: usize = 4096;

/// Slot index within a page.
pub type SlotId = u16;

#[derive(Clone, Copy, Debug, PartialEq)]
enum Slot {
    Live { off: u32, len: u32 },
    Dead,
}

/// A slotted heap page.
#[derive(Clone, Debug)]
pub struct Page {
    data: Vec<u8>,
    slots: Vec<Slot>,
    /// Bytes occupied by live fragments (excludes directory bookkeeping).
    live_bytes: usize,
}

impl Default for Page {
    fn default() -> Self {
        Page::new()
    }
}

/// Per-slot directory overhead charged against the page budget.
const SLOT_OVERHEAD: usize = 8;

impl Page {
    /// An empty page.
    pub fn new() -> Self {
        Page {
            data: Vec::new(),
            slots: Vec::new(),
            live_bytes: 0,
        }
    }

    /// Bytes a new fragment of `len` bytes would consume (payload + slot).
    fn cost(len: usize) -> usize {
        len + SLOT_OVERHEAD
    }

    /// Can a fragment of `len` bytes fit, possibly after compaction?
    pub fn has_room(&self, len: usize) -> bool {
        self.live_bytes + self.slots.len() * SLOT_OVERHEAD + Self::cost(len) <= PAGE_SIZE
    }

    /// Free bytes available without compaction.
    fn append_room(&self) -> usize {
        PAGE_SIZE.saturating_sub(self.data.len() + self.slots.len() * SLOT_OVERHEAD)
    }

    /// Insert a fragment; returns its slot. Errors if the page is full even
    /// after compaction.
    pub fn insert(&mut self, bytes: &[u8]) -> DsResult<SlotId> {
        if !self.has_room(bytes.len()) {
            return Err(DsError::Storage("page full".into()));
        }
        if Self::cost(bytes.len()) > self.append_room() {
            self.compact();
        }
        let off = self.data.len() as u32;
        self.data.extend_from_slice(bytes);
        self.live_bytes += bytes.len();
        // Reuse a dead slot if available (keeps the directory bounded).
        if let Some(i) = self.slots.iter().position(|s| *s == Slot::Dead) {
            self.slots[i] = Slot::Live {
                off,
                len: bytes.len() as u32,
            };
            Ok(i as SlotId)
        } else {
            self.slots.push(Slot::Live {
                off,
                len: bytes.len() as u32,
            });
            Ok((self.slots.len() - 1) as SlotId)
        }
    }

    /// Read a live fragment.
    pub fn read(&self, slot: SlotId) -> DsResult<&[u8]> {
        match self.slots.get(slot as usize) {
            Some(Slot::Live { off, len }) => Ok(&self.data[*off as usize..(*off + *len) as usize]),
            _ => Err(DsError::Storage(format!(
                "read of dead/missing slot {slot}"
            ))),
        }
    }

    /// Replace a fragment in place. Returns `false` (leaving the slot
    /// unchanged) if the new bytes cannot fit this page even after
    /// compaction — the caller must then relocate the fragment.
    pub fn update(&mut self, slot: SlotId, bytes: &[u8]) -> DsResult<bool> {
        let (off, len) = match self.slots.get(slot as usize) {
            Some(Slot::Live { off, len }) => (*off as usize, *len as usize),
            _ => {
                return Err(DsError::Storage(format!(
                    "update of dead/missing slot {slot}"
                )))
            }
        };
        if bytes.len() <= len {
            // Shrinking or same-size rewrite in place.
            self.data[off..off + bytes.len()].copy_from_slice(bytes);
            self.slots[slot as usize] = Slot::Live {
                off: off as u32,
                len: bytes.len() as u32,
            };
            self.live_bytes -= len - bytes.len();
            return Ok(true);
        }
        // Growing: does the page have room for the new copy at all?
        if self.live_bytes - len + self.slots.len() * SLOT_OVERHEAD + bytes.len() > PAGE_SIZE {
            return Ok(false);
        }
        // Tombstone the old copy, re-append (compact first if needed).
        self.slots[slot as usize] = Slot::Dead;
        self.live_bytes -= len;
        if bytes.len() > self.append_room() {
            self.compact();
        }
        let off = self.data.len() as u32;
        self.data.extend_from_slice(bytes);
        self.live_bytes += bytes.len();
        self.slots[slot as usize] = Slot::Live {
            off,
            len: bytes.len() as u32,
        };
        Ok(true)
    }

    /// Tombstone a fragment.
    pub fn delete(&mut self, slot: SlotId) -> DsResult<()> {
        match self.slots.get(slot as usize) {
            Some(Slot::Live { len, .. }) => {
                self.live_bytes -= *len as usize;
                self.slots[slot as usize] = Slot::Dead;
                Ok(())
            }
            _ => Err(DsError::Storage(format!(
                "delete of dead/missing slot {slot}"
            ))),
        }
    }

    /// Rewrite the byte arena dropping dead space. Slot ids are stable.
    pub fn compact(&mut self) {
        let mut new_data = Vec::with_capacity(self.live_bytes);
        for s in &mut self.slots {
            if let Slot::Live { off, len } = s {
                let start = *off as usize;
                let end = start + *len as usize;
                let new_off = new_data.len() as u32;
                new_data.extend_from_slice(&self.data[start..end]);
                *off = new_off;
            }
        }
        self.data = new_data;
    }

    /// Number of live (non-tombstoned) fragments.
    pub fn live_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s, Slot::Live { .. }))
            .count()
    }

    /// Bytes occupied by live fragments.
    pub fn live_bytes(&self) -> usize {
        self.live_bytes
    }

    /// True when no live fragment remains.
    pub fn is_empty(&self) -> bool {
        self.live_bytes == 0
    }

    /// Serialize the page into its on-disk image (see `docs/STORAGE.md`):
    /// slot directory (dead slots kept — slot ids are stable identity) then
    /// the byte arena. The page budget guarantees the image fits a pager
    /// frame: `data.len() + 8·slots ≤ PAGE_SIZE` always holds, so the image
    /// is at most `PAGE_SIZE + 6` bytes.
    pub fn to_image(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(6 + self.slots.len() * 8 + self.data.len());
        buf.extend_from_slice(&(self.slots.len() as u16).to_le_bytes());
        for s in &self.slots {
            let (off, len) = match s {
                Slot::Live { off, len } => (*off, *len),
                Slot::Dead => (u32::MAX, 0),
            };
            buf.extend_from_slice(&off.to_le_bytes());
            buf.extend_from_slice(&len.to_le_bytes());
        }
        buf.extend_from_slice(&(self.data.len() as u32).to_le_bytes());
        buf.extend_from_slice(&self.data);
        buf
    }

    /// Rebuild a page from an on-disk image, validating the directory
    /// against the arena bounds.
    pub fn from_image(image: &[u8]) -> DsResult<Page> {
        let mut cur = crate::codec::Cursor::new(image);
        let nslots = cur.u16()? as usize;
        let mut slots = Vec::with_capacity(nslots);
        for _ in 0..nslots {
            let off = cur.u32()?;
            let len = cur.u32()?;
            slots.push(if off == u32::MAX {
                Slot::Dead
            } else {
                Slot::Live { off, len }
            });
        }
        let data_len = cur.u32()? as usize;
        let data = cur.bytes(data_len)?.to_vec();
        if !cur.is_empty() {
            return Err(DsError::Storage("trailing bytes after page image".into()));
        }
        let mut live_bytes = 0usize;
        for s in &slots {
            if let Slot::Live { off, len } = s {
                let end = *off as usize + *len as usize;
                if end > data.len() {
                    return Err(DsError::Storage("page image: slot out of bounds".into()));
                }
                live_bytes += *len as usize;
            }
        }
        if data.len() + slots.len() * SLOT_OVERHEAD > PAGE_SIZE {
            return Err(DsError::Storage("page image exceeds page budget".into()));
        }
        Ok(Page {
            data,
            slots,
            live_bytes,
        })
    }

    /// Iterate live slots.
    pub fn iter_live(&self) -> impl Iterator<Item = (SlotId, &[u8])> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(move |(i, s)| match s {
                Slot::Live { off, len } => Some((
                    i as SlotId,
                    &self.data[*off as usize..(*off + *len) as usize],
                )),
                Slot::Dead => None,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_read_round_trip() {
        let mut p = Page::new();
        let a = p.insert(b"hello").unwrap();
        let b = p.insert(b"world!").unwrap();
        assert_eq!(p.read(a).unwrap(), b"hello");
        assert_eq!(p.read(b).unwrap(), b"world!");
        assert_eq!(p.live_count(), 2);
    }

    #[test]
    fn fill_page_to_capacity() {
        let mut p = Page::new();
        let frag = [7u8; 100];
        let mut n = 0;
        while p.has_room(frag.len()) {
            p.insert(&frag).unwrap();
            n += 1;
        }
        assert!(
            n >= PAGE_SIZE / (100 + 16),
            "fit at least a conservative bound, got {n}"
        );
        assert!(p.insert(&frag).is_err(), "full page rejects");
    }

    #[test]
    fn delete_frees_room_for_reuse() {
        let mut p = Page::new();
        let frag = [1u8; 400];
        let mut slots = Vec::new();
        while p.has_room(frag.len()) {
            slots.push(p.insert(&frag).unwrap());
        }
        let first = slots[0];
        p.delete(first).unwrap();
        assert!(p.has_room(frag.len()));
        let again = p.insert(&frag).unwrap();
        assert_eq!(again, first, "dead slot id reused");
    }

    #[test]
    fn update_in_place_and_grow() {
        let mut p = Page::new();
        let s = p.insert(&[9u8; 50]).unwrap();
        assert!(p.update(s, &[1u8; 50]).unwrap());
        assert_eq!(p.read(s).unwrap(), &[1u8; 50][..]);
        assert!(p.update(s, &[2u8; 20]).unwrap(), "shrink ok");
        assert_eq!(p.read(s).unwrap(), &[2u8; 20][..]);
        assert!(p.update(s, &[3u8; 200]).unwrap(), "grow ok");
        assert_eq!(p.read(s).unwrap(), &[3u8; 200][..]);
    }

    #[test]
    fn update_grow_compacts_when_fragmented() {
        let mut p = Page::new();
        // Fill with 8 × ~480-byte fragments.
        let mut slots = Vec::new();
        for _ in 0..8 {
            slots.push(p.insert(&[5u8; 480]).unwrap());
        }
        // Delete every other one: plenty of live room but fragmented.
        for &s in slots.iter().step_by(2) {
            p.delete(s).unwrap();
        }
        // Growing the survivor needs compaction to succeed.
        assert!(p.update(slots[1], &[6u8; 900]).unwrap());
        assert_eq!(p.read(slots[1]).unwrap(), &[6u8; 900][..]);
        // Other survivors intact after compaction.
        assert_eq!(p.read(slots[3]).unwrap(), &[5u8; 480][..]);
    }

    #[test]
    fn update_too_big_reports_no_fit() {
        let mut p = Page::new();
        let s = p.insert(&[0u8; 100]).unwrap();
        assert!(!p.update(s, &vec![0u8; PAGE_SIZE]).unwrap());
        // Slot unchanged on refusal.
        assert_eq!(p.read(s).unwrap(), &[0u8; 100][..]);
    }

    #[test]
    fn iter_live_skips_tombstones() {
        let mut p = Page::new();
        let a = p.insert(b"a").unwrap();
        let _b = p.insert(b"b").unwrap();
        p.delete(a).unwrap();
        let live: Vec<&[u8]> = p.iter_live().map(|(_, b)| b).collect();
        assert_eq!(live, vec![b"b" as &[u8]]);
    }

    #[test]
    fn image_round_trips_with_tombstones() {
        let mut p = Page::new();
        let a = p.insert(b"alpha").unwrap();
        let b = p.insert(b"beta").unwrap();
        let c = p.insert(b"gamma").unwrap();
        p.delete(b).unwrap();
        let back = Page::from_image(&p.to_image()).unwrap();
        assert_eq!(back.read(a).unwrap(), b"alpha");
        assert!(back.read(b).is_err(), "tombstone survives the image");
        assert_eq!(back.read(c).unwrap(), b"gamma");
        assert_eq!(back.live_bytes(), p.live_bytes());
        assert_eq!(back.live_count(), 2);
    }

    #[test]
    fn image_fits_frame_even_when_full() {
        let mut p = Page::new();
        while p.has_room(100) {
            p.insert(&[1u8; 100]).unwrap();
        }
        assert!(p.to_image().len() <= PAGE_SIZE + 6);
    }

    #[test]
    fn corrupt_image_rejected() {
        let mut p = Page::new();
        p.insert(b"x").unwrap();
        let img = p.to_image();
        assert!(
            Page::from_image(&img[..img.len() - 1]).is_err(),
            "truncated"
        );
        let mut grown = img.clone();
        grown.push(0);
        assert!(Page::from_image(&grown).is_err(), "trailing bytes");
        // A live slot pointing past the arena must be rejected.
        let mut oob = img;
        oob[2..6].copy_from_slice(&1000u32.to_le_bytes());
        assert!(Page::from_image(&oob).is_err(), "slot out of bounds");
    }

    #[test]
    fn dead_slot_access_errors() {
        let mut p = Page::new();
        let a = p.insert(b"x").unwrap();
        p.delete(a).unwrap();
        assert!(p.read(a).is_err());
        assert!(p.delete(a).is_err());
        assert!(p.update(a, b"y").is_err());
        assert!(p.read(99).is_err());
    }
}
