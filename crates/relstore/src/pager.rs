//! The on-disk page file: where "blocks touched" becomes real I/O.
//!
//! A [`PageFile`] is a single file holding a checksummed 64-byte header
//! followed by fixed-size *frames*. Each frame stores one serialized
//! [`crate::page::Page`] image (or one chunk of the snapshot metadata
//! stream) behind a CRC-32, so a torn or bit-flipped frame is detected at
//! read time rather than decoded into garbage. The exact byte layout is
//! specified in `docs/STORAGE.md`.
//!
//! Frames are append-allocated. A checkpoint (see [`crate::snapshot`])
//! writes every table page into frames `0..n` and the metadata stream after
//! them; between checkpoints, dirty buffer-pool evictions append
//! copy-on-write *scratch* frames past the checkpointed region — real bytes
//! hitting the disk for every modeled write-back, reclaimed when the next
//! checkpoint rewrites the file. Recovery reads only the frames the header
//! references, so scratch frames never need to be replay-consistent.
//!
//! All methods take `&self`: the file handle and header state live behind a
//! mutex so the buffer pool's write-back hook can fire from shared contexts.
//!
//! All physical I/O goes through a [`Vfs`] (see [`crate::vfs`]); the
//! convenience constructors [`PageFile::create`]/[`PageFile::open`] use the
//! real filesystem, while `create_with`/`open_with` accept any
//! implementation (fault injection in tests).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use dataspread_types::{DsError, DsResult};

use crate::crc::crc32;
use crate::page::PAGE_SIZE;
use crate::vfs::{os_vfs, Vfs, VfsFile};

/// Magic bytes opening a page file: `"DSPF"`.
pub const PAGE_FILE_MAGIC: [u8; 4] = *b"DSPF";
/// On-disk format version this build reads and writes.
pub const PAGE_FILE_VERSION: u16 = 1;
/// Size of the page-file header in bytes.
pub const HEADER_SIZE: u64 = 64;
/// Maximum payload bytes per frame. A compacted page image needs at most
/// `PAGE_SIZE + 6` bytes (see [`crate::page::Page::to_image`]); the slack
/// rounds the frame to a stable size.
pub const FRAME_PAYLOAD: usize = PAGE_SIZE + 64;
/// Per-frame on-disk header: payload length, CRC-32, reserved.
pub const FRAME_HEADER: usize = 16;
/// Total on-disk bytes per frame.
pub const FRAME_SIZE: u64 = (FRAME_HEADER + FRAME_PAYLOAD) as u64;
/// Sentinel for "no metadata stream" in the header.
const META_NONE: u64 = u64::MAX;

/// Identity of a frame within a page file.
pub type FrameId = u64;

/// Physical I/O counters for a [`PageFile`].
#[derive(Debug, Default)]
pub struct PageFileStats {
    /// Frames written (checkpoint, metadata, and scratch write-backs).
    pub frames_written: AtomicU64,
    /// Frames read back (recovery and snapshot load).
    pub frames_read: AtomicU64,
    /// Payload bytes written (excludes frame padding).
    pub bytes_written: AtomicU64,
    /// `fsync` calls issued.
    pub syncs: AtomicU64,
}

/// Point-in-time copy of [`PageFileStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PageFileSnapshot {
    /// Frames written since the file was opened.
    pub frames_written: u64,
    /// Frames read since the file was opened.
    pub frames_read: u64,
    /// Payload bytes written since the file was opened.
    pub bytes_written: u64,
    /// `fsync` calls since the file was opened.
    pub syncs: u64,
}

impl PageFileStats {
    /// One-pass copy of the counters.
    pub fn snapshot(&self) -> PageFileSnapshot {
        PageFileSnapshot {
            frames_written: self.frames_written.load(Ordering::Relaxed),
            frames_read: self.frames_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            syncs: self.syncs.load(Ordering::Relaxed),
        }
    }
}

struct Inner {
    file: Box<dyn VfsFile>,
    frame_count: u64,
    meta_first: u64,
    meta_len: u64,
    generation: u64,
}

/// A frame-addressed page file with a checksummed header.
pub struct PageFile {
    path: PathBuf,
    inner: Mutex<Inner>,
    stats: PageFileStats,
}

impl std::fmt::Debug for PageFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageFile")
            .field("path", &self.path)
            .field("frames_written", &self.stats.frames_written)
            .finish()
    }
}

impl Inner {
    fn encode_header(&self) -> [u8; HEADER_SIZE as usize] {
        let mut h = [0u8; HEADER_SIZE as usize];
        h[0..4].copy_from_slice(&PAGE_FILE_MAGIC);
        h[4..6].copy_from_slice(&PAGE_FILE_VERSION.to_le_bytes());
        // h[6..8] flags, zero.
        h[8..16].copy_from_slice(&self.frame_count.to_le_bytes());
        h[16..24].copy_from_slice(&self.meta_first.to_le_bytes());
        h[24..32].copy_from_slice(&self.meta_len.to_le_bytes());
        h[32..40].copy_from_slice(&self.generation.to_le_bytes());
        // h[40..60] reserved, zero.
        let crc = crc32(&h[0..60]);
        h[60..64].copy_from_slice(&crc.to_le_bytes());
        h
    }

    fn write_header(&mut self, path: &Path) -> DsResult<()> {
        let h = self.encode_header();
        self.file
            .write_all_at(0, &h)
            .map_err(|e| DsError::io("page file header write", path, Some(0), &e))
    }
}

impl PageFile {
    /// Create (or truncate) a page file at `path` with an empty frame region.
    pub fn create(path: impl AsRef<Path>, generation: u64) -> DsResult<PageFile> {
        Self::create_with(&os_vfs(), path, generation)
    }

    /// [`PageFile::create`] against an explicit [`Vfs`].
    pub fn create_with(
        vfs: &Arc<dyn Vfs>,
        path: impl AsRef<Path>,
        generation: u64,
    ) -> DsResult<PageFile> {
        let path = path.as_ref().to_path_buf();
        let file = vfs
            .create(&path)
            .map_err(|e| DsError::io("page file create", &path, None, &e))?;
        let mut inner = Inner {
            file,
            frame_count: 0,
            meta_first: META_NONE,
            meta_len: 0,
            generation,
        };
        inner.write_header(&path)?;
        Ok(PageFile {
            path,
            inner: Mutex::new(inner),
            stats: PageFileStats::default(),
        })
    }

    /// Open an existing page file, validating magic, version, and header CRC.
    pub fn open(path: impl AsRef<Path>) -> DsResult<PageFile> {
        Self::open_with(&os_vfs(), path)
    }

    /// [`PageFile::open`] against an explicit [`Vfs`].
    pub fn open_with(vfs: &Arc<dyn Vfs>, path: impl AsRef<Path>) -> DsResult<PageFile> {
        let path = path.as_ref().to_path_buf();
        let file = vfs
            .open(&path)
            .map_err(|e| DsError::io("page file open", &path, None, &e))?;
        let mut h = [0u8; HEADER_SIZE as usize];
        file.read_exact_at(0, &mut h)
            .map_err(|e| DsError::io("page file header read", &path, Some(0), &e))?;
        if h[0..4] != PAGE_FILE_MAGIC {
            return Err(DsError::Storage("page file: bad magic".into()));
        }
        let version = crate::codec::u16_le(&h[4..6]);
        if version != PAGE_FILE_VERSION {
            return Err(DsError::Storage(format!(
                "page file: unsupported version {version}"
            )));
        }
        let stored_crc = crate::codec::u32_le(&h[60..64]);
        if crc32(&h[0..60]) != stored_crc {
            return Err(DsError::Storage(
                "page file: header checksum mismatch".into(),
            ));
        }
        let inner = Inner {
            file,
            frame_count: crate::codec::u64_le(&h[8..16]),
            meta_first: crate::codec::u64_le(&h[16..24]),
            meta_len: crate::codec::u64_le(&h[24..32]),
            generation: crate::codec::u64_le(&h[32..40]),
        };
        Ok(PageFile {
            path,
            inner: Mutex::new(inner),
            stats: PageFileStats::default(),
        })
    }

    fn inner(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The file this pager writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Checkpoint generation stamped in the header (matched against the WAL).
    pub fn generation(&self) -> u64 {
        self.inner().generation
    }

    /// Frames currently allocated (checkpoint + scratch).
    pub fn frame_count(&self) -> u64 {
        self.inner().frame_count
    }

    /// Physical I/O counters.
    pub fn stats(&self) -> &PageFileStats {
        &self.stats
    }

    fn write_frame_locked(
        inner: &mut Inner,
        path: &Path,
        id: FrameId,
        payload: &[u8],
    ) -> DsResult<()> {
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(&0u64.to_le_bytes());
        frame.extend_from_slice(payload);
        let offset = HEADER_SIZE + id * FRAME_SIZE;
        inner
            .file
            .write_all_at(offset, &frame)
            .map_err(|e| DsError::io("frame write", path, Some(offset), &e))
    }

    /// Allocate a fresh frame, write `payload` into it, and return its id.
    /// The header is persisted on the next [`PageFile::sync`].
    pub fn append_frame(&self, payload: &[u8]) -> DsResult<FrameId> {
        if payload.len() > FRAME_PAYLOAD {
            return Err(DsError::Storage(format!(
                "frame payload of {} bytes exceeds {FRAME_PAYLOAD}",
                payload.len()
            )));
        }
        let mut inner = self.inner();
        let id = inner.frame_count;
        Self::write_frame_locked(&mut inner, &self.path, id, payload)?;
        inner.frame_count += 1;
        self.stats.frames_written.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_written
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        Ok(id)
    }

    /// Read a frame's payload, validating its length and CRC.
    pub fn read_frame(&self, id: FrameId) -> DsResult<Vec<u8>> {
        let inner = self.inner();
        if id >= inner.frame_count {
            return Err(DsError::Storage(format!(
                "frame {id} out of range ({} frames)",
                inner.frame_count
            )));
        }
        let offset = HEADER_SIZE + id * FRAME_SIZE;
        let mut head = [0u8; FRAME_HEADER];
        inner
            .file
            .read_exact_at(offset, &mut head)
            .map_err(|e| DsError::io("frame header read", &self.path, Some(offset), &e))?;
        let len = crate::codec::u32_le(&head[0..4]) as usize;
        let stored_crc = crate::codec::u32_le(&head[4..8]);
        if len > FRAME_PAYLOAD {
            return Err(DsError::Storage(format!(
                "frame {id}: corrupt length {len}"
            )));
        }
        let mut payload = vec![0u8; len];
        inner
            .file
            .read_exact_at(offset + FRAME_HEADER as u64, &mut payload)
            .map_err(|e| DsError::io("frame payload read", &self.path, Some(offset), &e))?;
        if crc32(&payload) != stored_crc {
            return Err(DsError::Storage(format!("frame {id}: checksum mismatch")));
        }
        self.stats.frames_read.fetch_add(1, Ordering::Relaxed);
        Ok(payload)
    }

    /// Write the snapshot metadata stream, chunked into frames appended after
    /// the data frames. Call once per checkpoint, after all page frames.
    pub fn write_meta(&self, meta: &[u8]) -> DsResult<()> {
        let first = {
            let inner = self.inner();
            inner.frame_count
        };
        if meta.is_empty() {
            let mut inner = self.inner();
            inner.meta_first = META_NONE;
            inner.meta_len = 0;
            return Ok(());
        }
        for chunk in meta.chunks(FRAME_PAYLOAD) {
            self.append_frame(chunk)?;
        }
        let mut inner = self.inner();
        inner.meta_first = first;
        inner.meta_len = meta.len() as u64;
        Ok(())
    }

    /// Read back the metadata stream written by [`PageFile::write_meta`].
    pub fn read_meta(&self) -> DsResult<Vec<u8>> {
        let (first, len) = {
            let inner = self.inner();
            (inner.meta_first, inner.meta_len)
        };
        if first == META_NONE {
            return Ok(Vec::new());
        }
        let mut out = Vec::with_capacity(len as usize);
        let mut id = first;
        while (out.len() as u64) < len {
            let chunk = self.read_frame(id)?;
            out.extend_from_slice(&chunk);
            id += 1;
        }
        if out.len() as u64 != len {
            return Err(DsError::Storage(
                "page file: metadata stream length mismatch".into(),
            ));
        }
        Ok(out)
    }

    /// Persist the header and `fsync` the file.
    pub fn sync(&self) -> DsResult<()> {
        let mut inner = self.inner();
        inner.write_header(&self.path)?;
        inner
            .file
            .sync()
            .map_err(|e| DsError::io("page file sync", &self.path, None, &e))?;
        self.stats.syncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("dsp-pager-{}-{name}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn frames_round_trip_across_reopen() {
        let path = tmp("roundtrip");
        let pf = PageFile::create(&path, 7).unwrap();
        let a = pf.append_frame(b"alpha").unwrap();
        let b = pf.append_frame(&vec![9u8; FRAME_PAYLOAD]).unwrap();
        pf.write_meta(b"meta-bytes").unwrap();
        pf.sync().unwrap();
        drop(pf);

        let pf = PageFile::open(&path).unwrap();
        assert_eq!(pf.generation(), 7);
        assert_eq!(pf.read_frame(a).unwrap(), b"alpha");
        assert_eq!(pf.read_frame(b).unwrap(), vec![9u8; FRAME_PAYLOAD]);
        assert_eq!(pf.read_meta().unwrap(), b"meta-bytes");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn oversized_payload_rejected() {
        let path = tmp("oversize");
        let pf = PageFile::create(&path, 1).unwrap();
        assert!(pf.append_frame(&vec![0u8; FRAME_PAYLOAD + 1]).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_frame_detected() {
        let path = tmp("corrupt");
        let pf = PageFile::create(&path, 1).unwrap();
        let id = pf.append_frame(b"precious bytes").unwrap();
        pf.sync().unwrap();
        drop(pf);
        // Flip one payload byte on disk.
        let mut raw = std::fs::read(&path).unwrap();
        let off = (HEADER_SIZE + FRAME_HEADER as u64 + 3) as usize;
        raw[off] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();
        let pf = PageFile::open(&path).unwrap();
        assert!(pf.read_frame(id).is_err(), "checksum must catch the flip");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_header_detected() {
        let path = tmp("badheader");
        let pf = PageFile::create(&path, 1).unwrap();
        pf.sync().unwrap();
        drop(pf);
        let mut raw = std::fs::read(&path).unwrap();
        raw[10] ^= 0x01; // inside frame_count
        std::fs::write(&path, &raw).unwrap();
        assert!(PageFile::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn large_meta_spans_frames() {
        let path = tmp("bigmeta");
        let pf = PageFile::create(&path, 1).unwrap();
        let meta: Vec<u8> = (0..3 * FRAME_PAYLOAD + 17)
            .map(|i| (i % 251) as u8)
            .collect();
        pf.write_meta(&meta).unwrap();
        pf.sync().unwrap();
        drop(pf);
        let pf = PageFile::open(&path).unwrap();
        assert_eq!(pf.read_meta().unwrap(), meta);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stats_count_physical_io() {
        let path = tmp("stats");
        let pf = PageFile::create(&path, 1).unwrap();
        pf.append_frame(b"x").unwrap();
        pf.append_frame(b"yy").unwrap();
        pf.read_frame(0).unwrap();
        pf.sync().unwrap();
        let s = pf.stats().snapshot();
        assert_eq!(s.frames_written, 2);
        assert_eq!(s.frames_read, 1);
        assert_eq!(s.bytes_written, 3);
        assert_eq!(s.syncs, 1);
        std::fs::remove_file(&path).unwrap();
    }
}
