//! Table schemas and key tuples.
//!
//! The paper's "dynamic schema" requirement (§2.2) means schemas here are
//! *mutable values*, not compile-time structures: columns can be added,
//! dropped, and renamed after creation, and the storage layer (see
//! [`crate::table`]) makes those operations cheap.

use std::cmp::Ordering;
use std::fmt;

use dataspread_types::{DataType, DsError, DsResult, Value};

/// One column: a name, a type, and nullability. Primary-key membership is
/// tracked on the [`Schema`], not the column.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnDef {
    /// Column name (SQL identifiers compare case-insensitively).
    pub name: String,
    /// Declared type; stored values are coerced to it.
    pub dtype: DataType,
    /// Whether NULL (`Value::Empty`) is accepted.
    pub nullable: bool,
}

impl ColumnDef {
    /// A nullable column of the given name and type.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        ColumnDef {
            name: name.into(),
            dtype,
            nullable: true,
        }
    }

    /// Builder: mark the column NOT NULL.
    pub fn not_null(mut self) -> Self {
        self.nullable = false;
        self
    }
}

/// An ordered list of columns plus an optional primary key (column indices).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Schema {
    columns: Vec<ColumnDef>,
    pkey: Vec<usize>,
}

impl Schema {
    /// A schema over `columns` (validated: non-empty, distinct names).
    pub fn new(columns: Vec<ColumnDef>) -> DsResult<Self> {
        let s = Schema {
            columns,
            pkey: Vec::new(),
        };
        s.validate()?;
        Ok(s)
    }

    /// Builder: set the primary key by column names. Pk columns become
    /// NOT NULL.
    pub fn with_pkey(mut self, names: &[&str]) -> DsResult<Self> {
        let mut idxs = Vec::with_capacity(names.len());
        for n in names {
            let i = self
                .index_of(n)
                .ok_or_else(|| DsError::ColumnNotFound((*n).to_string()))?;
            if idxs.contains(&i) {
                return Err(DsError::Schema(format!("duplicate pkey column `{n}`")));
            }
            idxs.push(i);
        }
        for &i in &idxs {
            self.columns[i].nullable = false;
        }
        self.pkey = idxs;
        Ok(self)
    }

    fn validate(&self) -> DsResult<()> {
        if self.columns.is_empty() {
            return Err(DsError::Schema("a table needs at least one column".into()));
        }
        for (i, c) in self.columns.iter().enumerate() {
            if c.name.is_empty() {
                return Err(DsError::Schema("empty column name".into()));
            }
            if self.columns[..i]
                .iter()
                .any(|o| o.name.eq_ignore_ascii_case(&c.name))
            {
                return Err(DsError::Schema(format!(
                    "duplicate column name `{}`",
                    c.name
                )));
            }
        }
        Ok(())
    }

    /// The column definitions, in order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Case-insensitive column lookup (SQL identifier semantics).
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// The column at index `i`.
    pub fn column(&self, i: usize) -> &ColumnDef {
        &self.columns[i]
    }

    /// Primary-key column indices (empty when no key is declared).
    pub fn pkey(&self) -> &[usize] {
        &self.pkey
    }

    /// Does the schema declare a primary key?
    pub fn has_pkey(&self) -> bool {
        !self.pkey.is_empty()
    }

    /// Validate a full row against the schema, coercing values to the
    /// declared types (widening Int→Float, text parsing for typed columns).
    pub fn conform_row(&self, row: Vec<Value>) -> DsResult<Vec<Value>> {
        if row.len() != self.columns.len() {
            return Err(DsError::Schema(format!(
                "row has {} values, table has {} columns",
                row.len(),
                self.columns.len()
            )));
        }
        let mut out = Vec::with_capacity(row.len());
        for (v, c) in row.into_iter().zip(&self.columns) {
            out.push(self.conform_value(v, c)?);
        }
        Ok(out)
    }

    /// Validate/coerce one value for one column.
    pub fn conform_value_at(&self, col: usize, v: Value) -> DsResult<Value> {
        let c = self
            .columns
            .get(col)
            .ok_or_else(|| DsError::Schema(format!("column index {col} out of range")))?;
        self.conform_value(v, c)
    }

    fn conform_value(&self, v: Value, c: &ColumnDef) -> DsResult<Value> {
        if v.is_empty() {
            if !c.nullable {
                return Err(DsError::Schema(format!("column `{}` is NOT NULL", c.name)));
            }
            return Ok(Value::Empty);
        }
        c.dtype.coerce_for_storage(v.clone()).ok_or_else(|| {
            DsError::Schema(format!(
                "value {v:?} does not fit column `{}` of type {}",
                c.name, c.dtype
            ))
        })
    }

    /// Serialize the schema (columns then pkey indices) — the layout shared
    /// by the table checkpoint section and the `CREATE TABLE` WAL record.
    pub(crate) fn encode(&self, buf: &mut Vec<u8>) {
        use crate::codec::{put_str, put_u16};
        put_u16(buf, self.width() as u16);
        for c in &self.columns {
            put_str(buf, &c.name);
            buf.push(dtype_code(c.dtype));
            buf.push(c.nullable as u8);
        }
        put_u16(buf, self.pkey.len() as u16);
        for &i in &self.pkey {
            put_u16(buf, i as u16);
        }
    }

    /// Decode a schema serialized by [`Schema::encode`].
    pub(crate) fn decode(cur: &mut crate::codec::Cursor<'_>) -> DsResult<Schema> {
        let ncols = cur.u16()? as usize;
        let mut defs = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let cname = cur.str()?;
            let dtype = dtype_from_code(cur.u8()?)?;
            let nullable = cur.u8()? != 0;
            let mut def = ColumnDef::new(cname, dtype);
            def.nullable = nullable;
            defs.push(def);
        }
        let npk = cur.u16()? as usize;
        let mut pk_names = Vec::with_capacity(npk);
        for _ in 0..npk {
            let i = cur.u16()? as usize;
            if i >= defs.len() {
                return Err(DsError::Storage("schema: pkey index out of range".into()));
            }
            pk_names.push(defs[i].name.clone());
        }
        let mut schema = Schema::new(defs)?;
        if !pk_names.is_empty() {
            let names: Vec<&str> = pk_names.iter().map(String::as_str).collect();
            schema = schema.with_pkey(&names)?;
        }
        Ok(schema)
    }

    /// Extract the primary-key tuple from a conforming row.
    pub fn key_of(&self, row: &[Value]) -> Option<KeyTuple> {
        if self.pkey.is_empty() {
            return None;
        }
        Some(KeyTuple(
            self.pkey.iter().map(|&i| row[i].clone()).collect(),
        ))
    }

    // ---- dynamic schema operations (metadata side) ----------------------

    /// Append a column (the metadata half of `ADD COLUMN`); returns its
    /// index.
    pub fn push_column(&mut self, def: ColumnDef) -> DsResult<usize> {
        if self.index_of(&def.name).is_some() {
            return Err(DsError::Schema(format!(
                "duplicate column name `{}`",
                def.name
            )));
        }
        if def.name.is_empty() {
            return Err(DsError::Schema("empty column name".into()));
        }
        self.columns.push(def);
        Ok(self.columns.len() - 1)
    }

    /// Remove a column; returns its old index. Pk columns cannot be dropped.
    pub fn remove_column(&mut self, name: &str) -> DsResult<usize> {
        let i = self
            .index_of(name)
            .ok_or_else(|| DsError::ColumnNotFound(name.to_string()))?;
        if self.pkey.contains(&i) {
            return Err(DsError::Schema(format!(
                "cannot drop primary key column `{name}`"
            )));
        }
        if self.columns.len() == 1 {
            return Err(DsError::Schema("cannot drop the last column".into()));
        }
        self.columns.remove(i);
        for k in &mut self.pkey {
            if *k > i {
                *k -= 1;
            }
        }
        Ok(i)
    }

    /// Rename a column; returns its index.
    pub fn rename_column(&mut self, from: &str, to: &str) -> DsResult<usize> {
        if to.is_empty() {
            return Err(DsError::Schema("empty column name".into()));
        }
        let i = self
            .index_of(from)
            .ok_or_else(|| DsError::ColumnNotFound(from.to_string()))?;
        if let Some(j) = self.index_of(to) {
            if j != i {
                return Err(DsError::Schema(format!("duplicate column name `{to}`")));
            }
        }
        self.columns[i].name = to.to_string();
        Ok(i)
    }
}

/// On-disk code of a [`DataType`] (shared by snapshots and WAL records).
pub(crate) fn dtype_code(d: DataType) -> u8 {
    match d {
        DataType::Bool => 0,
        DataType::Int => 1,
        DataType::Float => 2,
        DataType::Text => 3,
        DataType::Any => 4,
    }
}

/// Inverse of [`dtype_code`].
pub(crate) fn dtype_from_code(c: u8) -> DsResult<DataType> {
    Ok(match c {
        0 => DataType::Bool,
        1 => DataType::Int,
        2 => DataType::Float,
        3 => DataType::Text,
        4 => DataType::Any,
        other => return Err(DsError::Storage(format!("snapshot: bad dtype {other}"))),
    })
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.dtype)?;
            if !c.nullable {
                write!(f, " NOT NULL")?;
            }
        }
        if !self.pkey.is_empty() {
            write!(
                f,
                ", PRIMARY KEY ({})",
                self.pkey
                    .iter()
                    .map(|&i| self.columns[i].name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            )?;
        }
        write!(f, ")")
    }
}

/// A primary-key tuple with a total order, usable as a `BTreeMap` key.
#[derive(Clone, Debug, PartialEq)]
pub struct KeyTuple(pub Vec<Value>);

impl Eq for KeyTuple {}

impl PartialOrd for KeyTuple {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for KeyTuple {
    fn cmp(&self, other: &Self) -> Ordering {
        let n = self.0.len().min(other.0.len());
        for i in 0..n {
            let o = self.0[i].total_cmp(&other.0[i]);
            if o != Ordering::Equal {
                return o;
            }
        }
        self.0.len().cmp(&other.0.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("name", DataType::Text),
            ColumnDef::new("score", DataType::Float),
        ])
        .unwrap()
        .with_pkey(&["id"])
        .unwrap()
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let s = sample();
        assert_eq!(s.index_of("ID"), Some(0));
        assert_eq!(s.index_of("Name"), Some(1));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn pkey_columns_become_not_null() {
        let s = sample();
        assert!(!s.column(0).nullable);
        assert!(s.column(1).nullable);
        assert_eq!(s.pkey(), &[0]);
    }

    #[test]
    fn duplicate_columns_rejected() {
        assert!(Schema::new(vec![
            ColumnDef::new("a", DataType::Int),
            ColumnDef::new("A", DataType::Int),
        ])
        .is_err());
    }

    #[test]
    fn conform_row_coerces() {
        let s = sample();
        let row = s
            .conform_row(vec![Value::Int(1), Value::text("bob"), Value::Int(90)])
            .unwrap();
        assert_eq!(row[2], Value::Float(90.0), "Int widened to Float column");
        assert!(
            s.conform_row(vec![Value::Int(1), Value::text("b")])
                .is_err(),
            "arity"
        );
        assert!(
            s.conform_row(vec![Value::Empty, Value::text("b"), Value::Empty])
                .is_err(),
            "NOT NULL pk"
        );
        assert!(
            s.conform_row(vec![Value::text("xyz"), Value::text("b"), Value::Empty])
                .is_err(),
            "bad int"
        );
    }

    #[test]
    fn conform_parses_numeric_text() {
        let s = sample();
        let row = s
            .conform_row(vec![Value::text("17"), Value::Empty, Value::text("2.5")])
            .unwrap();
        assert_eq!(row[0], Value::Int(17));
        assert_eq!(row[2], Value::Float(2.5));
    }

    #[test]
    fn dynamic_schema_ops() {
        let mut s = sample();
        let i = s
            .push_column(ColumnDef::new("grade", DataType::Text))
            .unwrap();
        assert_eq!(i, 3);
        assert!(s
            .push_column(ColumnDef::new("GRADE", DataType::Int))
            .is_err());
        s.rename_column("grade", "letter").unwrap();
        assert!(s.index_of("letter").is_some());
        let old = s.remove_column("name").unwrap();
        assert_eq!(old, 1);
        assert_eq!(s.width(), 3);
        assert!(s.remove_column("id").is_err(), "pk protected");
        // pkey indices survive removal before them.
        assert_eq!(s.pkey(), &[0]);
    }

    #[test]
    fn pkey_index_shifts_on_remove() {
        let mut s = Schema::new(vec![
            ColumnDef::new("a", DataType::Int),
            ColumnDef::new("b", DataType::Int),
            ColumnDef::new("c", DataType::Int),
        ])
        .unwrap()
        .with_pkey(&["c"])
        .unwrap();
        s.remove_column("a").unwrap();
        assert_eq!(s.pkey(), &[1]);
        assert_eq!(s.column(1).name, "c");
    }

    #[test]
    fn key_tuple_ordering() {
        let a = KeyTuple(vec![Value::Int(1), Value::text("a")]);
        let b = KeyTuple(vec![Value::Int(1), Value::text("b")]);
        let c = KeyTuple(vec![Value::Int(2)]);
        assert!(a < b);
        assert!(b < c);
        let mut m = std::collections::BTreeMap::new();
        m.insert(a.clone(), 1);
        m.insert(b, 2);
        assert_eq!(m.get(&a), Some(&1));
    }

    #[test]
    fn display_round_trips_visually() {
        let s = sample();
        let d = s.to_string();
        assert!(d.contains("id INTEGER NOT NULL"));
        assert!(d.contains("PRIMARY KEY (id)"));
    }
}
