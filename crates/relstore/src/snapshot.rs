//! Checkpointing and recovery: the durable store's control plane.
//!
//! A durable store is a directory holding two files — the page file
//! (`data.dsp`, see [`crate::pager`]) and the write-ahead log (`wal.dsp`,
//! see [`crate::wal`]). This module owns the protocol that keeps the pair
//! consistent (full layouts and the step-by-step recovery procedure are in
//! `docs/STORAGE.md`):
//!
//! **Checkpoint** ([`save_catalog`]): serialize every table's pages and
//! metadata into a *fresh* page file written beside the old one
//! (`data.dsp.tmp`), fsync it, atomically rename it over `data.dsp`, then
//! reset the WAL stamped with the new checkpoint *generation*. A crash at
//! any point leaves either the old pair or the new pair readable — the
//! rename is the commit point, and a WAL whose generation is older than the
//! page file's is recognized as already folded in and discarded.
//!
//! **Recovery** ([`load_catalog`]): open the page file (header and frame
//! CRCs validate every byte read), decode the catalog as of the checkpoint,
//! scan the WAL — stopping at the first torn or corrupt record — and replay,
//! in commit order, the operations of transactions whose `COMMIT` made it to
//! disk. The caller then re-checkpoints, folding the replayed tail into a
//! fresh snapshot.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use dataspread_types::{DsError, DsResult};

use crate::catalog::Catalog;
use crate::codec::{put_u32, Cursor};
use crate::pager::PageFile;
use crate::table::Table;
use crate::vfs::{os_vfs, Vfs};
use crate::wal::{apply_committed, committed_ops, scan_wal_with, WalWriter};

/// File name of the page file inside a store directory.
pub const DATA_FILE: &str = "data.dsp";
/// File name of the write-ahead log inside a store directory.
pub const WAL_FILE: &str = "wal.dsp";

/// An attached durable store: shared handles to the page file and WAL plus
/// the checkpoint generation they agree on.
#[derive(Debug, Clone)]
pub struct StoreHandle {
    /// Directory holding `data.dsp` and `wal.dsp`.
    pub dir: PathBuf,
    /// The page file (shared with tables for eviction write-backs).
    pub pager: Arc<PageFile>,
    /// The redo log (shared with tables for DML logging).
    pub wal: Arc<WalWriter>,
    /// Checkpoint generation of this pair.
    pub generation: u64,
    /// The filesystem this store lives on (threaded into re-checkpoints).
    pub vfs: Arc<dyn Vfs>,
}

impl StoreHandle {
    /// Attach every table in `catalog` to this store's WAL and pager.
    pub fn attach_all(&self, catalog: &Catalog) {
        for shard in catalog.shards() {
            shard
                .write()
                .unwrap_or_else(|e| e.into_inner())
                .attach_durability(Arc::clone(&self.wal), Arc::clone(&self.pager));
        }
    }
}

/// A catalog restored from disk by [`load_catalog`].
#[derive(Debug)]
pub struct LoadedCatalog {
    /// The recovered catalog (tables detached — call
    /// [`StoreHandle::attach_all`] after re-checkpointing).
    pub catalog: Catalog,
    /// Engine-level metadata stored alongside the catalog (sheets etc.).
    pub extra_meta: Vec<u8>,
    /// Generation of the checkpoint the catalog was decoded from.
    pub generation: u64,
    /// Committed *table* WAL operations replayed on top of the checkpoint.
    pub replayed: usize,
    /// Committed engine-layer operations (sheet edits, binding
    /// create/drop), in commit order. The relational layer cannot apply
    /// these; the engine replays them against its decoded sheets and
    /// binding registry.
    pub engine_ops: Vec<crate::wal::WalOp>,
}

/// Checkpoint `catalog` (plus opaque `extra_meta` from the engine layer)
/// into `dir` as generation `generation`, resetting the WAL. Returns the
/// fresh store handles; the caller should attach them to the catalog's
/// tables via [`StoreHandle::attach_all`].
///
/// `generation` must strictly exceed every generation previously written
/// to `dir` (the [`StoreHandle::generation`] of the store being
/// checkpointed, or the on-disk header's when adopting an existing
/// directory): a regressed generation would let a crash between the
/// snapshot rename and the WAL reset leave a stale WAL that recovery
/// mistakes for current. `Workbook::save` derives it accordingly.
pub fn save_catalog(
    dir: &Path,
    catalog: &Catalog,
    extra_meta: &[u8],
    generation: u64,
) -> DsResult<StoreHandle> {
    save_catalog_with(&os_vfs(), dir, catalog, extra_meta, generation, None)
}

/// [`save_catalog`] against an explicit [`Vfs`], with explicit failure
/// semantics.
///
/// A failure *before* the rename commit point is a clean rollback: the
/// temporary file is removed (best effort), the previous pair is untouched,
/// and the checkpoint may simply be retried. A failure *after* the rename
/// is the dangerous window — the new snapshot is already in place, so the
/// old-generation WAL (which `prev_wal` still appends to) would be
/// **discarded** by the next recovery. Acking any further commit into it
/// would silently lose data; `prev_wal` is therefore poisoned, flipping
/// the engine read-only until reopen.
pub fn save_catalog_with(
    vfs: &Arc<dyn Vfs>,
    dir: &Path,
    catalog: &Catalog,
    extra_meta: &[u8],
    generation: u64,
    prev_wal: Option<&WalWriter>,
) -> DsResult<StoreHandle> {
    vfs.create_dir_all(dir)
        .map_err(|e| DsError::io("store dir create", dir, None, &e))?;
    let data_path = dir.join(DATA_FILE);
    let tmp_path = dir.join(format!("{DATA_FILE}.tmp"));

    // 1. Write the complete snapshot into a temporary page file. Any error
    //    here rolls back cleanly: remove the tmp file and report.
    let write_tmp = || -> DsResult<()> {
        let pager = PageFile::create_with(vfs, &tmp_path, generation)?;
        let mut meta = Vec::new();
        let names = catalog.table_names();
        put_u32(&mut meta, names.len() as u32);
        for name in &names {
            catalog.get(name)?.encode_snapshot(&pager, &mut meta)?;
        }
        put_u32(&mut meta, extra_meta.len() as u32);
        meta.extend_from_slice(extra_meta);
        pager.write_meta(&meta)?;
        pager.sync()?;
        Ok(())
    };
    if let Err(e) = write_tmp() {
        let _ = vfs.remove_file(&tmp_path);
        return Err(e);
    }

    // 2. The commit point: atomically replace the old snapshot. A failed
    //    rename is still pre-commit — roll back and report.
    if let Err(e) = vfs.rename(&tmp_path, &data_path) {
        let _ = vfs.remove_file(&tmp_path);
        return Err(DsError::io("snapshot rename", &data_path, None, &e));
    }
    vfs.sync_dir(dir);

    // 3. Reset the WAL under the new generation. A crash between 2 and 3
    //    leaves a WAL with an older generation, which recovery discards —
    //    which is exactly why a *live* engine failing here must stop
    //    acking commits into the old WAL (see `prev_wal` above).
    let post_rename = || -> DsResult<StoreHandle> {
        let wal = WalWriter::create_with(vfs, dir.join(WAL_FILE), generation)?;
        let pager = PageFile::open_with(vfs, &data_path)?;
        Ok(StoreHandle {
            dir: dir.to_path_buf(),
            pager: Arc::new(pager),
            wal: Arc::new(wal),
            generation,
            vfs: Arc::clone(vfs),
        })
    };
    match post_rename() {
        Ok(handle) => Ok(handle),
        Err(e) => {
            if let Some(wal) = prev_wal {
                wal.poison(format!(
                    "checkpoint generation {generation} renamed but WAL reset failed: {e}"
                ));
            }
            Err(e)
        }
    }
}

/// Restore a catalog from the store at `dir`: load the checkpoint, then
/// replay the committed WAL tail (ARIES-lite redo). The returned tables are
/// detached; re-checkpoint with [`save_catalog`] and attach the fresh
/// handles.
pub fn load_catalog(dir: &Path) -> DsResult<LoadedCatalog> {
    load_catalog_with(&os_vfs(), dir)
}

/// [`load_catalog`] against an explicit [`Vfs`].
pub fn load_catalog_with(vfs: &Arc<dyn Vfs>, dir: &Path) -> DsResult<LoadedCatalog> {
    // A stale `data.dsp.tmp` means a crash hit between the tmp write and
    // the rename: the snapshot in it never committed. Remove it so it can
    // never be confused for (or block) a future checkpoint.
    let tmp_path = dir.join(format!("{DATA_FILE}.tmp"));
    if vfs.exists(&tmp_path) {
        let _ = vfs.remove_file(&tmp_path);
    }
    let pager = PageFile::open_with(vfs, dir.join(DATA_FILE))?;
    let generation = pager.generation();
    let meta = pager.read_meta()?;
    let mut cur = Cursor::new(&meta);
    let ntables = cur.u32()? as usize;
    let mut catalog = Catalog::new();
    for _ in 0..ntables {
        let table = Table::decode_snapshot(&mut cur, &pager)?;
        catalog.insert_table(table)?;
    }
    let extra_len = cur.u32()? as usize;
    let extra_meta = cur.bytes(extra_len)?.to_vec();
    if !cur.is_empty() {
        return Err(DsError::Storage(
            "snapshot: trailing bytes after metadata".into(),
        ));
    }

    // Replay the log, but only if it belongs to this checkpoint. An older
    // generation means its effects are already folded into the snapshot; a
    // missing or unreadable header means there is nothing to replay.
    let mut replayed = 0;
    let mut engine_ops = Vec::new();
    if let Some(scan) = scan_wal_with(vfs, dir.join(WAL_FILE))? {
        if scan.generation == generation {
            let ops = committed_ops(&scan);
            replayed = apply_committed(&mut catalog, &ops)?;
            engine_ops = ops.into_iter().filter(|op| op.is_engine_op()).collect();
        } else if scan.generation > generation {
            return Err(DsError::Storage(format!(
                "wal generation {} is newer than snapshot generation {generation}",
                scan.generation
            )));
        }
    }
    Ok(LoadedCatalog {
        catalog,
        extra_meta,
        generation,
        replayed,
        engine_ops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, Schema};
    use dataspread_types::{DataType, Value};

    fn tmp_dir(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("dsp-snap-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    fn build_catalog() -> Catalog {
        let mut c = Catalog::new();
        let schema = Schema::new(vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("name", DataType::Text),
            ColumnDef::new("score", DataType::Float),
        ])
        .unwrap()
        .with_pkey(&["id"])
        .unwrap();
        c.create_table("people", schema).unwrap();
        let mut t = c.get_mut("people").unwrap();
        for i in 0..50 {
            t.insert(vec![
                Value::Int(i),
                Value::text(format!("person-{i}")),
                Value::Float(i as f64 / 2.0),
            ])
            .unwrap();
        }
        drop(t);
        c
    }

    #[test]
    fn checkpoint_and_reload_identical() {
        let dir = tmp_dir("roundtrip");
        let cat = build_catalog();
        let reference = cat.get("people").unwrap().scan().unwrap();
        save_catalog(&dir, &cat, b"engine-meta", 1).unwrap();
        drop(cat);

        let loaded = load_catalog(&dir).unwrap();
        assert_eq!(loaded.generation, 1);
        assert_eq!(loaded.extra_meta, b"engine-meta");
        assert_eq!(loaded.replayed, 0);
        let t = loaded.catalog.get("people").unwrap();
        assert_eq!(t.scan().unwrap(), reference);
        assert_eq!(t.policy(), crate::catalog::DEFAULT_POLICY);
        assert!(t.schema().has_pkey());
        // pk index rebuilt: lookups and uniqueness still enforced.
        assert!(t
            .key_lookup(&crate::schema::KeyTuple(vec![Value::Int(7)]))
            .is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_tail_replays_on_load() {
        let dir = tmp_dir("replay");
        let cat = build_catalog();
        let handle = save_catalog(&dir, &cat, b"", 1).unwrap();
        handle.attach_all(&cat);

        // Post-checkpoint DML, each auto-committed through the WAL.
        let mut t = cat.get_mut("people").unwrap();
        let k = t
            .insert(vec![Value::Int(100), Value::text("late"), Value::Empty])
            .unwrap();
        t.update_cell(k, 2, Value::Float(9.5)).unwrap();
        let victim = t.key_at(0).unwrap();
        t.delete_row(victim).unwrap();
        let reference = t.scan().unwrap();
        drop(t);
        drop(cat);

        let loaded = load_catalog(&dir).unwrap();
        assert_eq!(loaded.replayed, 3);
        assert_eq!(
            loaded.catalog.get("people").unwrap().scan().unwrap(),
            reference
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_wal_generation_is_ignored() {
        let dir = tmp_dir("stalewal");
        let cat = build_catalog();
        let handle = save_catalog(&dir, &cat, b"", 1).unwrap();
        drop(handle);
        // Re-checkpoint as generation 2, then put back a generation-1 WAL
        // with records — simulating a crash between rename and WAL reset.
        let handle = save_catalog(&dir, &cat, b"", 2).unwrap();
        drop(handle);
        let stale = WalWriter::create(dir.join(WAL_FILE), 1).unwrap();
        stale
            .log(crate::wal::WalOp::Delete {
                table: "people".into(),
                key: 1,
            })
            .unwrap();
        drop(stale);

        let loaded = load_catalog(&dir).unwrap();
        assert_eq!(loaded.replayed, 0, "stale generation must not replay");
        assert_eq!(loaded.catalog.get("people").unwrap().row_count(), 50);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn eviction_writeback_hits_the_page_file() {
        let dir = tmp_dir("writeback");
        // A two-frame pool so the insert stream thrashes across pages.
        let mut cat = Catalog::new();
        let schema = Schema::new(vec![ColumnDef::new("x", DataType::Int)]).unwrap();
        cat.insert_table(Table::with_pool_capacity(
            "t",
            schema,
            crate::catalog::DEFAULT_POLICY,
            2,
        ))
        .unwrap();
        let handle = save_catalog(&dir, &cat, b"", 1).unwrap();
        handle.attach_all(&cat);
        // One transaction around the batch: one fsync at commit.
        handle.wal.begin().unwrap();
        let mut t = cat.get_mut("t").unwrap();
        for i in 0..2000 {
            t.insert(vec![Value::Int(i)]).unwrap();
        }
        let modeled = t.pool().stats().snapshot();
        let physical = handle.pager.stats().snapshot();
        handle.wal.commit().unwrap();
        assert!(modeled.dirty_writebacks > 0, "small pool must evict dirty");
        assert!(
            physical.frames_written >= modeled.dirty_writebacks,
            "every modeled write-back must be real bytes: {physical:?} vs {modeled:?}"
        );
        // Scratch frames never confuse recovery: the committed WAL replays.
        drop(t);
        drop(cat);
        let loaded = load_catalog(&dir).unwrap();
        assert_eq!(loaded.replayed, 2000);
        let t = loaded.catalog.get("t").unwrap();
        assert_eq!(t.row_count(), 2000);
        // The bounded pool survives the round trip — the blocks-touched
        // metric stays comparable across a save/open.
        assert_eq!(t.pool().capacity(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
