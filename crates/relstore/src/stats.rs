//! Optimizer statistics: per-column NDV and min/max sketches.
//!
//! Every table maintains one [`ColumnSketch`] per column, updated inline by
//! the DML paths (so WAL replay keeps them maintained too) and rebuilt
//! exactly by `ANALYZE` ([`crate::Table::analyze`]). The executor's
//! cost-based planner consumes them as [`ColumnSummary`] values attached to
//! table snapshots.
//!
//! The sketches are **conservative over-approximations** of the live data:
//!
//! * NDV uses a KMV (k-minimum-values) sketch over the hashes of every value
//!   *ever observed* since the last rebuild. Deletes are not retracted, so
//!   the estimate can only overcount distinct values — never undercount.
//!   Below [`KMV_K`] distinct hashes the estimate is exact (for the observed
//!   multiset); past that it is the classical `(k-1)/R` estimator.
//! * Numeric and text min/max only widen. A delete may leave the bounds
//!   looser than the live extremes, but never tighter.
//! * The null count is an upper bound for the same reason.
//!
//! `ANALYZE` restores exactness by rescanning the table.

use std::collections::BTreeSet;

use dataspread_types::{DsError, DsResult, Value};

use crate::codec::{put_u32, put_u64, Cursor};

/// KMV sketch capacity: how many of the smallest value hashes each column
/// retains. Below this many distinct values the NDV estimate is exact.
pub const KMV_K: usize = 256;

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit avalanche.
fn mix(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    h
}

/// Hash a value for distinct counting, mirroring [`Value::sql_eq`]
/// semantics: `Int` and integral `Float` hash identically, NULL (`Empty`)
/// is excluded (`None`) — NDV counts non-null values, as in SQL.
fn value_hash(v: &Value) -> Option<u64> {
    const INT_SEED: u64 = 0x7a11_0000_0000_0001;
    const FLOAT_SEED: u64 = 0x7a11_0000_0000_0002;
    const TEXT_SEED: u64 = 0x7a11_0000_0000_0003;
    const BOOL_SEED: u64 = 0x7a11_0000_0000_0004;
    const ERR_SEED: u64 = 0x7a11_0000_0000_0005;
    Some(match v {
        Value::Empty => return None,
        Value::Bool(b) => mix(BOOL_SEED ^ *b as u64),
        Value::Int(i) => mix(INT_SEED ^ *i as u64),
        Value::Float(f) => {
            // Unify with Int where sql_eq does: integral floats in i64 range.
            if f.fract() == 0.0 && f.is_finite() && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 {
                mix(INT_SEED ^ (*f as i64) as u64)
            } else {
                mix(FLOAT_SEED ^ f.to_bits())
            }
        }
        Value::Text(s) => {
            // FNV-1a over the bytes, then finalized.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in s.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            mix(TEXT_SEED ^ h)
        }
        Value::Error(e) => {
            // FNV-1a over the full code bytes: no length/shape assumptions.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in e.code().as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            mix(ERR_SEED ^ h)
        }
    })
}

/// One column's statistics sketch: KMV distinct-count sketch, widening
/// min/max bounds for numeric and text domains, and a null upper bound.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ColumnSketch {
    num_min: Option<f64>,
    num_max: Option<f64>,
    text_min: Option<String>,
    text_max: Option<String>,
    nulls: u64,
    kmv: BTreeSet<u64>,
}

impl ColumnSketch {
    /// Fold one observed value into the sketch.
    pub fn observe(&mut self, v: &Value) {
        match v {
            Value::Empty => {
                self.nulls += 1;
                return;
            }
            Value::Int(i) => self.widen_num(*i as f64),
            Value::Float(f) if f.is_finite() => self.widen_num(*f),
            Value::Text(s) => {
                match &self.text_min {
                    Some(m) if m.as_str() <= s.as_str() => {}
                    _ => self.text_min = Some(s.clone()),
                }
                match &self.text_max {
                    Some(m) if m.as_str() >= s.as_str() => {}
                    _ => self.text_max = Some(s.clone()),
                }
            }
            _ => {}
        }
        if let Some(h) = value_hash(v) {
            self.kmv.insert(h);
            while self.kmv.len() > KMV_K {
                self.kmv.pop_last();
            }
        }
    }

    fn widen_num(&mut self, x: f64) {
        self.num_min = Some(match self.num_min {
            Some(m) => m.min(x),
            None => x,
        });
        self.num_max = Some(match self.num_max {
            Some(m) => m.max(x),
            None => x,
        });
    }

    /// Estimated number of distinct non-null values observed. Exact while
    /// fewer than [`KMV_K`] distinct hashes have been seen.
    pub fn ndv(&self) -> f64 {
        match self.kmv.last() {
            Some(&kth) if self.kmv.len() >= KMV_K => {
                // (k-1) / R with R = kth smallest hash normalized to (0, 1].
                (KMV_K as f64 - 1.0) * (u64::MAX as f64 / (kth as f64).max(1.0))
            }
            _ => self.kmv.len() as f64,
        }
    }

    /// Upper bound on the number of NULLs currently in the column.
    pub fn null_count(&self) -> u64 {
        self.nulls
    }

    /// Conservative lower bound on the numeric minimum (if any numeric value
    /// was ever observed).
    pub fn num_min(&self) -> Option<f64> {
        self.num_min
    }

    /// Conservative upper bound on the numeric maximum.
    pub fn num_max(&self) -> Option<f64> {
        self.num_max
    }

    /// Conservative lower bound on the text minimum (byte-wise ordering).
    pub fn text_min(&self) -> Option<&str> {
        self.text_min.as_deref()
    }

    /// Conservative upper bound on the text maximum.
    pub fn text_max(&self) -> Option<&str> {
        self.text_max.as_deref()
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        fn put_opt_f64(buf: &mut Vec<u8>, v: Option<f64>) {
            match v {
                Some(x) => {
                    buf.push(1);
                    buf.extend_from_slice(&x.to_le_bytes());
                }
                None => buf.push(0),
            }
        }
        fn put_opt_str(buf: &mut Vec<u8>, v: Option<&String>) {
            match v {
                Some(s) => {
                    buf.push(1);
                    crate::codec::put_str(buf, s);
                }
                None => buf.push(0),
            }
        }
        put_opt_f64(buf, self.num_min);
        put_opt_f64(buf, self.num_max);
        put_opt_str(buf, self.text_min.as_ref());
        put_opt_str(buf, self.text_max.as_ref());
        put_u64(buf, self.nulls);
        put_u32(buf, self.kmv.len() as u32);
        for h in &self.kmv {
            put_u64(buf, *h);
        }
    }

    fn decode(cur: &mut Cursor<'_>) -> DsResult<ColumnSketch> {
        fn get_opt_f64(cur: &mut Cursor<'_>) -> DsResult<Option<f64>> {
            Ok(match cur.u8()? {
                0 => None,
                _ => Some(f64::from_bits(cur.u64()?)),
            })
        }
        fn get_opt_str(cur: &mut Cursor<'_>) -> DsResult<Option<String>> {
            Ok(match cur.u8()? {
                0 => None,
                _ => Some(cur.str()?),
            })
        }
        let num_min = get_opt_f64(cur)?;
        let num_max = get_opt_f64(cur)?;
        let text_min = get_opt_str(cur)?;
        let text_max = get_opt_str(cur)?;
        let nulls = cur.u64()?;
        let n = cur.u32()? as usize;
        if n > KMV_K {
            return Err(DsError::Storage(format!("stats: sketch of {n} > k")));
        }
        let mut kmv = BTreeSet::new();
        for _ in 0..n {
            kmv.insert(cur.u64()?);
        }
        Ok(ColumnSketch {
            num_min,
            num_max,
            text_min,
            text_max,
            nulls,
            kmv,
        })
    }

    /// Summarize for the planner.
    fn summary(&self) -> ColumnSummary {
        ColumnSummary {
            ndv: self.ndv(),
            nulls: self.nulls,
            num_min: self.num_min,
            num_max: self.num_max,
        }
    }
}

/// The per-table statistics block: one sketch per schema column.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TableStatistics {
    cols: Vec<ColumnSketch>,
}

impl TableStatistics {
    /// Fresh (empty) statistics for a table of `width` columns.
    pub fn new(width: usize) -> TableStatistics {
        TableStatistics {
            cols: vec![ColumnSketch::default(); width],
        }
    }

    /// Number of column sketches.
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// The sketch for column `i`.
    pub fn column(&self, i: usize) -> Option<&ColumnSketch> {
        self.cols.get(i)
    }

    /// Fold a full row into the sketches.
    pub fn observe_row(&mut self, row: &[Value]) {
        for (c, v) in row.iter().enumerate() {
            if let Some(s) = self.cols.get_mut(c) {
                s.observe(v);
            }
        }
    }

    /// Fold a single-cell write into the sketches.
    pub fn observe_cell(&mut self, col: usize, v: &Value) {
        if let Some(s) = self.cols.get_mut(col) {
            s.observe(v);
        }
    }

    /// `ALTER TABLE ADD COLUMN`: append a sketch seeded with the lazy
    /// default when existing rows will surface it.
    pub fn push_column(&mut self, default: Option<&Value>) {
        let mut s = ColumnSketch::default();
        if let Some(d) = default {
            s.observe(d);
        }
        self.cols.push(s);
    }

    /// `ALTER TABLE DROP COLUMN`: drop the sketch at schema index `idx`.
    pub fn remove_column(&mut self, idx: usize) {
        if idx < self.cols.len() {
            self.cols.remove(idx);
        }
    }

    /// Planner-facing summaries, one per column.
    pub fn summaries(&self) -> Vec<ColumnSummary> {
        self.cols.iter().map(ColumnSketch::summary).collect()
    }

    /// Serialize into `buf` (the workbook-meta persistence hook).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        put_u32(buf, self.cols.len() as u32);
        for c in &self.cols {
            c.encode(buf);
        }
    }

    /// Decode a block previously written by [`TableStatistics::encode`].
    pub fn decode(cur: &mut Cursor<'_>) -> DsResult<TableStatistics> {
        let n = cur.u32()? as usize;
        let mut cols = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            cols.push(ColumnSketch::decode(cur)?);
        }
        Ok(TableStatistics { cols })
    }
}

/// The planner's view of one column: plain numbers, no sketch state.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ColumnSummary {
    /// Estimated distinct non-null values (conservative overcount).
    pub ndv: f64,
    /// Upper bound on NULLs.
    pub nulls: u64,
    /// Lower bound on the numeric minimum, if numeric values were seen.
    pub num_min: Option<f64>,
    /// Upper bound on the numeric maximum.
    pub num_max: Option<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ndv_exact_below_k() {
        let mut s = ColumnSketch::default();
        for i in 0..100 {
            s.observe(&Value::Int(i % 10));
        }
        assert_eq!(s.ndv(), 10.0);
    }

    #[test]
    fn ndv_estimates_above_k() {
        let mut s = ColumnSketch::default();
        let n = 10_000;
        for i in 0..n {
            s.observe(&Value::Int(i));
        }
        let est = s.ndv();
        let err = (est - n as f64).abs() / n as f64;
        assert!(err < 0.25, "NDV estimate {est} too far from {n}");
    }

    #[test]
    fn int_float_unified_like_sql_eq() {
        let mut s = ColumnSketch::default();
        s.observe(&Value::Int(5));
        s.observe(&Value::Float(5.0));
        assert_eq!(s.ndv(), 1.0);
        s.observe(&Value::Float(5.5));
        assert_eq!(s.ndv(), 2.0);
    }

    #[test]
    fn nulls_excluded_from_ndv() {
        let mut s = ColumnSketch::default();
        s.observe(&Value::Empty);
        s.observe(&Value::Empty);
        assert_eq!(s.ndv(), 0.0);
        assert_eq!(s.null_count(), 2);
    }

    #[test]
    fn minmax_widen_over_numeric_and_text() {
        let mut s = ColumnSketch::default();
        s.observe(&Value::Int(3));
        s.observe(&Value::Float(-1.5));
        s.observe(&Value::text("mango"));
        s.observe(&Value::text("apple"));
        assert_eq!(s.num_min(), Some(-1.5));
        assert_eq!(s.num_max(), Some(3.0));
        assert_eq!(s.text_min(), Some("apple"));
        assert_eq!(s.text_max(), Some("mango"));
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut t = TableStatistics::new(3);
        for i in 0..500 {
            t.observe_row(&[
                Value::Int(i),
                Value::text(format!("s{}", i % 7)),
                if i % 3 == 0 {
                    Value::Empty
                } else {
                    Value::Float(i as f64 / 2.0)
                },
            ]);
        }
        let mut buf = Vec::new();
        t.encode(&mut buf);
        let mut cur = Cursor::new(&buf);
        let back = TableStatistics::decode(&mut cur).unwrap();
        assert!(cur.is_empty());
        assert_eq!(back, t);
    }

    #[test]
    fn sketch_bounded_by_k() {
        let mut s = ColumnSketch::default();
        for i in 0..100_000 {
            s.observe(&Value::Int(i));
        }
        assert!(s.kmv.len() <= KMV_K);
    }
}
