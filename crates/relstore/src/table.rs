//! Attribute-group tables: the relational storage manager.
//!
//! Paper §3 (Relational Storage Manager):
//!
//! > "the relational storage manager uses a hybrid of column-store and
//! > row-store to physically store the table. Here, data is structured along
//! > a collection of attribute groups, thereby radically reducing the disk
//! > blocks that need an update during a schema change."
//!
//! A [`Table`] partitions its columns into *groups*; each group stores its
//! slice of every row (a *fragment*) row-wise in its own page chain. The
//! three classical layouts are all grouping policies:
//!
//! * [`GroupPolicy::RowStore`] — one group holding every column (stock
//!   baseline: `ADD COLUMN` rewrites every page).
//! * [`GroupPolicy::ColumnStore`] — one group per column.
//! * [`GroupPolicy::Hybrid`] — groups of bounded width; **`ADD COLUMN`
//!   creates a fresh group whose values are lazily defaulted**, touching
//!   zero data pages — the paper's "schema change almost as efficient as a
//!   tuple update".
//!
//! Rows are identified by stable [`RowKey`]s; display order is maintained by
//! the positional index ([`CountedBtree`]), so positional window reads and
//! positional inserts are O(log n).

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dataspread_posindex::{CountedBtree, PositionalIndex, RowKey};
use dataspread_types::{DsError, DsResult, Value};

use crate::bufferpool::BufferPool;
use crate::codec::{decode_fragment, encode_fragment};
use crate::page::{Page, SlotId, PAGE_SIZE};
use crate::pager::PageFile;
use crate::schema::{ColumnDef, KeyTuple, Schema};
use crate::stats::{ColumnSummary, TableStatistics};
use crate::wal::{WalOp, WalWriter};

/// How columns are partitioned into attribute groups.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GroupPolicy {
    /// All columns in one group — the stock row-store baseline.
    RowStore,
    /// Each column in its own group.
    ColumnStore,
    /// Groups of at most `max_group_width` columns (the DataSpread layout).
    Hybrid {
        /// Upper bound on columns per attribute group.
        max_group_width: usize,
    },
}

impl GroupPolicy {
    fn partition(&self, width: usize) -> Vec<Vec<usize>> {
        match *self {
            GroupPolicy::RowStore => vec![(0..width).collect()],
            GroupPolicy::ColumnStore => (0..width).map(|i| vec![i]).collect(),
            GroupPolicy::Hybrid { max_group_width } => {
                let w = max_group_width.max(1);
                (0..width)
                    .collect::<Vec<_>>()
                    .chunks(w)
                    .map(|c| c.to_vec())
                    .collect()
            }
        }
    }
}

/// Logical page-touch counters ("disk blocks that need an update").
#[derive(Debug, Default)]
pub struct TableStats {
    /// Pages read (a logical disk-block read).
    pub page_reads: AtomicU64,
    /// Pages written (a logical disk-block write).
    pub page_writes: AtomicU64,
    /// Fresh pages allocated.
    pub pages_allocated: AtomicU64,
}

impl TableStats {
    /// Pages read so far.
    pub fn page_reads(&self) -> u64 {
        self.page_reads.load(Ordering::Relaxed)
    }
    /// Pages written so far.
    pub fn page_writes(&self) -> u64 {
        self.page_writes.load(Ordering::Relaxed)
    }
    /// Pages allocated so far.
    pub fn pages_allocated(&self) -> u64 {
        self.pages_allocated.load(Ordering::Relaxed)
    }
    /// Zero every counter (bench phase boundaries).
    pub fn reset(&self) {
        self.page_reads.store(0, Ordering::Relaxed);
        self.page_writes.store(0, Ordering::Relaxed);
        self.pages_allocated.store(0, Ordering::Relaxed);
    }
}

/// One attribute group's storage. Pages and the row directory sit behind
/// `Arc`s so a [`TableSnapshot`] is a cheap pointer-clone of the whole group;
/// writers go through [`std::sync::Arc::make_mut`], copying a page only when
/// a live snapshot still references it (copy-on-write versioning).
#[derive(Clone, Debug)]
struct Group {
    /// Schema column indices stored in this group, in fragment order.
    cols: Vec<usize>,
    pages: Vec<Arc<Page>>,
    /// Where each row's fragment lives. Rows absent here take `defaults`.
    rowdir: Arc<HashMap<RowKey, (u32, SlotId)>>,
    /// Lazily-materialized values for rows without a fragment (the zero-cost
    /// `ADD COLUMN` mechanism).
    defaults: Vec<Value>,
}

impl Group {
    fn new(cols: Vec<usize>) -> Self {
        let defaults = vec![Value::Empty; cols.len()];
        Group {
            cols,
            pages: Vec::new(),
            rowdir: Arc::new(HashMap::new()),
            defaults,
        }
    }
}

/// Default buffer-pool capacity per table, in page frames.
pub const DEFAULT_POOL_PAGES: usize = 1024;

/// A stored relation.
#[derive(Debug)]
pub struct Table {
    name: String,
    schema: Schema,
    policy: GroupPolicy,
    groups: Vec<Group>,
    /// For each schema column: (group index, offset within the fragment).
    col_group: Vec<(usize, usize)>,
    next_key: RowKey,
    pk_index: BTreeMap<KeyTuple, RowKey>,
    /// Presentation order of rows — the positional index. Behind an `Arc`
    /// so snapshots share it copy-on-write with writers.
    order: Arc<CountedBtree>,
    stats: TableStats,
    pool: BufferPool,
    /// Redo log for DML when the table is attached to a durable store.
    wal: Option<Arc<WalWriter>>,
    /// Page file receiving dirty-eviction write-backs when attached.
    pager: Option<Arc<PageFile>>,
    /// In-memory mutation counter: bumped by every DML and schema change, so
    /// observers (the engine's binding layer) can skip work when a table has
    /// not changed. Not persisted — restarts reset it to zero.
    version: u64,
    /// Optimizer statistics: per-column NDV/min-max sketches, maintained
    /// inline by DML and rebuilt exactly by [`Table::analyze`].
    statistics: TableStatistics,
}

impl Table {
    /// A table with the default buffer-pool capacity.
    pub fn new(name: impl Into<String>, schema: Schema, policy: GroupPolicy) -> Self {
        Table::with_pool_capacity(name, schema, policy, DEFAULT_POOL_PAGES)
    }

    /// A table whose buffer pool holds `pool_pages` frames.
    pub fn with_pool_capacity(
        name: impl Into<String>,
        schema: Schema,
        policy: GroupPolicy,
        pool_pages: usize,
    ) -> Self {
        let groups: Vec<Group> = policy
            .partition(schema.width())
            .into_iter()
            .map(Group::new)
            .collect();
        let statistics = TableStatistics::new(schema.width());
        let mut t = Table {
            name: name.into(),
            schema,
            policy,
            groups,
            col_group: Vec::new(),
            next_key: 1,
            pk_index: BTreeMap::new(),
            order: Arc::new(CountedBtree::new()),
            stats: TableStats::default(),
            pool: BufferPool::new(pool_pages),
            wal: None,
            pager: None,
            version: 0,
            statistics,
        };
        t.rebuild_col_group();
        t
    }

    fn rebuild_col_group(&mut self) {
        let mut map = vec![(usize::MAX, usize::MAX); self.schema.width()];
        for (g, group) in self.groups.iter().enumerate() {
            for (off, &c) in group.cols.iter().enumerate() {
                map[c] = (g, off);
            }
        }
        debug_assert!(map.iter().all(|&(g, _)| g != usize::MAX), "unmapped column");
        self.col_group = map;
    }

    // ---- accessors --------------------------------------------------------

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The grouping policy the table was created (or last compacted)
    /// under.
    pub fn policy(&self) -> GroupPolicy {
        self.policy
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.order.len()
    }

    /// Mutation counter: bumped by every successful DML and schema change.
    /// Observers compare versions to skip refreshing from an unchanged
    /// table. In-memory only; reopening a store resets it.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Logical page-touch counters.
    pub fn stats(&self) -> &TableStats {
        &self.stats
    }

    /// The table's buffer pool.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Number of attribute groups (for tests/benches).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Total allocated pages across all groups.
    pub fn total_pages(&self) -> usize {
        self.groups.iter().map(|g| g.pages.len()).sum()
    }

    /// Pages per group (for the schema-change experiment's reporting).
    pub fn pages_per_group(&self) -> Vec<usize> {
        self.groups.iter().map(|g| g.pages.len()).collect()
    }

    fn touch_read(&self, g: usize, page: u32) -> DsResult<()> {
        self.stats.page_reads.fetch_add(1, Ordering::Relaxed);
        let evicted = self.pool.access((g as u32, page), false);
        self.writeback(evicted)
    }

    fn touch_write(&self, g: usize, page: u32) -> DsResult<()> {
        self.stats.page_writes.fetch_add(1, Ordering::Relaxed);
        let evicted = self.pool.access((g as u32, page), true);
        self.writeback(evicted)
    }

    /// The buffer pool's write-back hook: when a dirty frame is evicted and
    /// a durable store is attached, flush the page's real bytes as a
    /// copy-on-write scratch frame (recovery never reads scratch frames —
    /// the authoritative chain is checkpoint + WAL; see `docs/STORAGE.md`).
    ///
    /// Scratch frames being advisory, a failed physical write is *counted*
    /// ([`PoolStats::write_back_errors`]) instead of propagated: evictions
    /// fire inside read paths too, and a full disk must degrade the store
    /// to read-only (the WAL's job), not kill reads.
    fn writeback(&self, evicted: Option<(u32, u32)>) -> DsResult<()> {
        let Some((g, p)) = evicted else { return Ok(()) };
        let Some(pager) = &self.pager else {
            return Ok(());
        };
        // Stale refs (a group dropped or rewritten since the frame was
        // cached) have nothing left to flush.
        if let Some(page) = self
            .groups
            .get(g as usize)
            .and_then(|group| group.pages.get(p as usize))
        {
            if pager.append_frame(&page.to_image()).is_err() {
                self.pool.stats().write_back_errors.bump();
            }
        }
        Ok(())
    }

    // ---- durability --------------------------------------------------------

    /// Attach this table to a durable store: DML appends redo records to
    /// `wal`, and dirty buffer-pool evictions write real page bytes through
    /// `pager`. Called by the snapshot layer after a checkpoint or open.
    pub fn attach_durability(&mut self, wal: Arc<WalWriter>, pager: Arc<PageFile>) {
        self.wal = Some(wal);
        self.pager = Some(pager);
    }

    /// Detach from the durable store; the table reverts to pure in-memory
    /// operation with modeled I/O counters.
    pub fn detach_durability(&mut self) {
        self.wal = None;
        self.pager = None;
    }

    /// Is this table writing through to a durable store?
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    fn log(&self, op: WalOp) -> DsResult<()> {
        match &self.wal {
            Some(wal) => wal.log(op),
            None => Ok(()),
        }
    }

    /// Refuse DML up front when the attached WAL is poisoned. The check
    /// runs *before* any in-memory mutation so a degraded (read-only)
    /// store never accumulates state that was refused durability.
    fn ensure_writable(&self) -> DsResult<()> {
        match &self.wal {
            Some(wal) => wal.ensure_writable(),
            None => Ok(()),
        }
    }

    /// Extract a row's primary-key tuple, as a typed error instead of a
    /// panic: callers only reach this under `has_pkey()`, so a `None`
    /// means the row is narrower than the schema's key columns — a
    /// corrupt fragment, not a caller bug worth crashing the engine for.
    fn key_of_row(&self, row: &[Value]) -> DsResult<KeyTuple> {
        self.schema.key_of(row).ok_or_else(|| {
            DsError::Storage(format!(
                "table {}: row narrower than its primary-key columns",
                self.name
            ))
        })
    }

    // ---- fragment plumbing -------------------------------------------------

    /// Append a fragment to group `g`, allocating a page if needed. Returns
    /// the location.
    fn append_fragment(&mut self, g: usize, key: RowKey, values: &[Value]) -> DsResult<()> {
        let bytes = encode_fragment(values);
        if bytes.len() + 64 > PAGE_SIZE {
            return Err(DsError::Storage(format!(
                "fragment of {} bytes exceeds page budget",
                bytes.len()
            )));
        }
        let group = &mut self.groups[g];
        let need_new = match group.pages.last() {
            Some(p) => !p.has_room(bytes.len()),
            None => true,
        };
        if need_new {
            group.pages.push(Arc::new(Page::new()));
            self.stats.pages_allocated.fetch_add(1, Ordering::Relaxed);
        }
        let pidx = (group.pages.len() - 1) as u32;
        let slot = Arc::make_mut(&mut group.pages[pidx as usize]).insert(&bytes)?;
        Arc::make_mut(&mut group.rowdir).insert(key, (pidx, slot));
        self.touch_write(g, pidx)?;
        Ok(())
    }

    /// Read the fragment of `key` in group `g`, falling back to the group's
    /// lazy defaults.
    fn read_fragment(&self, g: usize, key: RowKey) -> DsResult<Vec<Value>> {
        let group = &self.groups[g];
        match group.rowdir.get(&key) {
            Some(&(pidx, slot)) => {
                self.touch_read(g, pidx)?;
                let bytes = group.pages[pidx as usize].read(slot)?;
                decode_fragment(bytes)
            }
            None => Ok(group.defaults.clone()),
        }
    }

    /// Rewrite the fragment of `key` in group `g` with new values,
    /// materializing or relocating as needed.
    fn write_fragment(&mut self, g: usize, key: RowKey, values: &[Value]) -> DsResult<()> {
        let loc = self.groups[g].rowdir.get(&key).copied();
        match loc {
            Some((pidx, slot)) => {
                let bytes = encode_fragment(values);
                let fits =
                    Arc::make_mut(&mut self.groups[g].pages[pidx as usize]).update(slot, &bytes)?;
                self.touch_write(g, pidx)?;
                if !fits {
                    // Relocate: tombstone the old copy, append elsewhere.
                    Arc::make_mut(&mut self.groups[g].pages[pidx as usize]).delete(slot)?;
                    Arc::make_mut(&mut self.groups[g].rowdir).remove(&key);
                    self.append_fragment(g, key, values)?;
                }
                Ok(())
            }
            None => self.append_fragment(g, key, values),
        }
    }

    // ---- row CRUD ----------------------------------------------------------

    /// Insert at the end of the presentation order.
    pub fn insert(&mut self, row: Vec<Value>) -> DsResult<RowKey> {
        let pos = self.row_count();
        self.insert_at(pos, row)
    }

    /// Insert so the new row is displayed at position `pos` — the positional
    /// insert a spreadsheet "insert row" needs.
    pub fn insert_at(&mut self, pos: usize, row: Vec<Value>) -> DsResult<RowKey> {
        self.insert_at_keyed(pos, None, row)
    }

    /// Insert at position `pos` under a caller-chosen row key — the WAL
    /// replay hook (see [`crate::wal::apply_committed`]): recovery must
    /// reproduce the exact keys the original execution assigned, so later
    /// redo records keep resolving. Errors if `key` is already present.
    pub fn insert_at_with_key(
        &mut self,
        pos: usize,
        key: RowKey,
        row: Vec<Value>,
    ) -> DsResult<RowKey> {
        self.insert_at_keyed(pos, Some(key), row)
    }

    fn insert_at_keyed(
        &mut self,
        pos: usize,
        forced: Option<RowKey>,
        row: Vec<Value>,
    ) -> DsResult<RowKey> {
        self.ensure_writable()?;
        let row = self.schema.conform_row(row)?;
        if let Some(kt) = self.schema.key_of(&row) {
            if self.pk_index.contains_key(&kt) {
                return Err(DsError::KeyViolation(format!(
                    "duplicate key {:?} in table {}",
                    kt.0, self.name
                )));
            }
        }
        let key = match forced {
            Some(k) => {
                if self.order.position_of(k).is_some() {
                    return Err(DsError::Storage(format!(
                        "row key {k} already present in table {}",
                        self.name
                    )));
                }
                self.next_key = self.next_key.max(k + 1);
                k
            }
            None => {
                let k = self.next_key;
                self.next_key += 1;
                k
            }
        };
        for g in 0..self.groups.len() {
            let frag: Vec<Value> = self.groups[g]
                .cols
                .iter()
                .map(|&c| row[c].clone())
                .collect();
            self.append_fragment(g, key, &frag)?;
        }
        Arc::make_mut(&mut self.order).insert_at(pos, key)?;
        if let Some(kt) = self.schema.key_of(&row) {
            self.pk_index.insert(kt, key);
        }
        self.statistics.observe_row(&row);
        self.log(WalOp::Insert {
            table: self.name.clone(),
            key,
            pos: pos as u64,
            row,
        })?;
        self.version += 1;
        Ok(key)
    }

    /// Bulk append; returns the keys in order.
    pub fn insert_many(&mut self, rows: Vec<Vec<Value>>) -> DsResult<Vec<RowKey>> {
        let mut keys = Vec::with_capacity(rows.len());
        for r in rows {
            keys.push(self.insert(r)?);
        }
        Ok(keys)
    }

    /// Fetch a full row by key.
    pub fn get_row(&self, key: RowKey) -> DsResult<Vec<Value>> {
        if self.order.position_of(key).is_none() {
            return Err(DsError::Storage(format!(
                "row key {key} not in table {}",
                self.name
            )));
        }
        let mut out = vec![Value::Empty; self.schema.width()];
        for g in 0..self.groups.len() {
            let frag = self.read_fragment(g, key)?;
            for (off, &c) in self.groups[g].cols.iter().enumerate() {
                out[c] = frag[off].clone();
            }
        }
        Ok(out)
    }

    /// Fetch a projection of a row, reading only the groups that cover the
    /// requested columns (the hybrid-layout read advantage).
    pub fn get_row_project(&self, key: RowKey, cols: &[usize]) -> DsResult<Vec<Value>> {
        if self.order.position_of(key).is_none() {
            return Err(DsError::Storage(format!(
                "row key {key} not in table {}",
                self.name
            )));
        }
        let mut needed_groups: Vec<usize> = cols.iter().map(|&c| self.col_group[c].0).collect();
        needed_groups.sort_unstable();
        needed_groups.dedup();
        let mut scatter: HashMap<usize, Value> = HashMap::with_capacity(cols.len());
        for g in needed_groups {
            let frag = self.read_fragment(g, key)?;
            for (off, &c) in self.groups[g].cols.iter().enumerate() {
                scatter.insert(c, frag[off].clone());
            }
        }
        Ok(cols
            .iter()
            .map(|c| scatter.remove(c).unwrap_or(Value::Empty))
            .collect())
    }

    /// Update one attribute of one row. Touches only the pages of the group
    /// containing the column.
    pub fn update_cell(&mut self, key: RowKey, col: usize, value: Value) -> DsResult<Value> {
        self.ensure_writable()?;
        if self.order.position_of(key).is_none() {
            return Err(DsError::Storage(format!(
                "row key {key} not in table {}",
                self.name
            )));
        }
        let value = self.schema.conform_value_at(col, value)?;
        // Primary-key maintenance requires the old full key.
        let in_pk = self.schema.pkey().contains(&col);
        let old_row = if in_pk {
            Some(self.get_row(key)?)
        } else {
            None
        };
        let (g, off) = self.col_group[col];
        let mut frag = self.read_fragment(g, key)?;
        let old = std::mem::replace(&mut frag[off], value.clone());
        if let Some(old_row) = old_row {
            let old_kt = self.key_of_row(&old_row)?;
            let mut new_row = old_row;
            new_row[col] = value;
            let new_kt = self.key_of_row(&new_row)?;
            if new_kt != old_kt {
                if self.pk_index.contains_key(&new_kt) {
                    return Err(DsError::KeyViolation(format!(
                        "duplicate key {:?} in table {}",
                        new_kt.0, self.name
                    )));
                }
                self.pk_index.remove(&old_kt);
                self.pk_index.insert(new_kt, key);
            }
        }
        self.write_fragment(g, key, &frag)?;
        self.statistics.observe_cell(col, &frag[off]);
        self.log(WalOp::UpdateCell {
            table: self.name.clone(),
            key,
            col: col as u32,
            value: frag[off].clone(),
        })?;
        self.version += 1;
        Ok(old)
    }

    /// Replace a full row.
    pub fn update_row(&mut self, key: RowKey, row: Vec<Value>) -> DsResult<()> {
        self.ensure_writable()?;
        if self.order.position_of(key).is_none() {
            return Err(DsError::Storage(format!(
                "row key {key} not in table {}",
                self.name
            )));
        }
        let row = self.schema.conform_row(row)?;
        if self.schema.has_pkey() {
            let old_row = self.get_row(key)?;
            let old_kt = self.key_of_row(&old_row)?;
            let new_kt = self.key_of_row(&row)?;
            if new_kt != old_kt {
                if self.pk_index.contains_key(&new_kt) {
                    return Err(DsError::KeyViolation(format!(
                        "duplicate key {:?} in table {}",
                        new_kt.0, self.name
                    )));
                }
                self.pk_index.remove(&old_kt);
                self.pk_index.insert(new_kt, key);
            }
        }
        for g in 0..self.groups.len() {
            let frag: Vec<Value> = self.groups[g]
                .cols
                .iter()
                .map(|&c| row[c].clone())
                .collect();
            self.write_fragment(g, key, &frag)?;
        }
        self.statistics.observe_row(&row);
        self.log(WalOp::UpdateRow {
            table: self.name.clone(),
            key,
            row,
        })?;
        self.version += 1;
        Ok(())
    }

    /// Delete a row by key; returns the position it occupied.
    pub fn delete_row(&mut self, key: RowKey) -> DsResult<usize> {
        self.ensure_writable()?;
        if self.order.position_of(key).is_none() {
            return Err(DsError::Storage(format!(
                "row key {key} not in table {}",
                self.name
            )));
        }
        if self.schema.has_pkey() {
            let row = self.get_row(key)?;
            let kt = self.key_of_row(&row)?;
            self.pk_index.remove(&kt);
        }
        for g in 0..self.groups.len() {
            if let Some((pidx, slot)) = Arc::make_mut(&mut self.groups[g].rowdir).remove(&key) {
                Arc::make_mut(&mut self.groups[g].pages[pidx as usize]).delete(slot)?;
                self.touch_write(g, pidx)?;
            }
        }
        let pos = Arc::make_mut(&mut self.order).remove_key(key)?;
        self.log(WalOp::Delete {
            table: self.name.clone(),
            key,
        })?;
        self.version += 1;
        Ok(pos)
    }

    // ---- positional access ---------------------------------------------------

    /// Key of the row displayed at `pos`.
    pub fn key_at(&self, pos: usize) -> Option<RowKey> {
        self.order.key_at(pos)
    }

    /// Display position of a row.
    pub fn position_of(&self, key: RowKey) -> Option<usize> {
        self.order.position_of(key)
    }

    /// Keys of the rows in the window `[pos, pos+count)`.
    pub fn keys_in_window(&self, pos: usize, count: usize) -> Vec<RowKey> {
        self.order.range(pos, count)
    }

    /// Windowed scan: the rows displayed at `[pos, pos+count)` — the query
    /// the front-end issues as the user pans.
    pub fn scan_window(&self, pos: usize, count: usize) -> DsResult<Vec<(RowKey, Vec<Value>)>> {
        let keys = self.order.range(pos, count);
        let mut out = Vec::with_capacity(keys.len());
        for k in keys {
            out.push((k, self.get_row(k)?));
        }
        Ok(out)
    }

    /// Lookup by primary key.
    pub fn key_lookup(&self, kt: &KeyTuple) -> Option<RowKey> {
        self.pk_index.get(kt).copied()
    }

    /// Visit every row in presentation order.
    pub fn for_each_row(
        &self,
        f: &mut dyn FnMut(RowKey, Vec<Value>) -> DsResult<()>,
    ) -> DsResult<()> {
        for k in self.order.to_vec() {
            f(k, self.get_row(k)?)?;
        }
        Ok(())
    }

    /// Full scan, materialized.
    pub fn scan(&self) -> DsResult<Vec<(RowKey, Vec<Value>)>> {
        let mut out = Vec::with_capacity(self.row_count());
        self.for_each_row(&mut |k, r| {
            out.push((k, r));
            Ok(())
        })?;
        Ok(out)
    }

    /// Streaming scan in presentation order: yields one row at a time
    /// without materializing the table — the executor's scan operator.
    pub fn iter_rows(&self) -> RowIter<'_> {
        self.iter_rows_sparse(None)
    }

    /// Streaming scan that reads only the attribute groups covering `cols`,
    /// yielding **full-width** rows whose other slots are left
    /// [`Value::Empty`] — the projection-pushdown hook: column indices stay
    /// valid upstream while untouched groups cost zero page reads.
    /// `cols: None` reads every group (same as [`Table::iter_rows`]).
    pub fn iter_rows_sparse(&self, cols: Option<&[usize]>) -> RowIter<'_> {
        let groups = match cols {
            None => (0..self.groups.len()).collect(),
            Some(cols) => {
                let mut gs: Vec<usize> = cols.iter().map(|&c| self.col_group[c].0).collect();
                gs.sort_unstable();
                gs.dedup();
                gs
            }
        };
        RowIter {
            table: self,
            keys: self.order.to_vec().into_iter(),
            groups,
        }
    }

    /// Projected full scan: reads only the groups covering `cols`.
    pub fn scan_project(&self, cols: &[usize]) -> DsResult<Vec<(RowKey, Vec<Value>)>> {
        let mut out = Vec::with_capacity(self.row_count());
        for k in self.order.to_vec() {
            out.push((k, self.get_row_project(k, cols)?));
        }
        Ok(out)
    }

    // ---- dynamic schema ---------------------------------------------------------

    /// `ALTER TABLE ADD COLUMN`. Under the hybrid/column layouts this is a
    /// metadata operation: a fresh attribute group with a lazy default,
    /// touching **zero** data pages. Under the row-store baseline every page
    /// is rewritten.
    pub fn add_column(&mut self, def: ColumnDef, default: Value) -> DsResult<()> {
        let default = if default.is_empty() {
            if !def.nullable {
                return Err(DsError::Schema(format!(
                    "NOT NULL column `{}` needs a default",
                    def.name
                )));
            }
            Value::Empty
        } else {
            def.dtype.coerce_for_storage(default).ok_or_else(|| {
                DsError::Schema(format!("default does not fit column type {}", def.dtype))
            })?
        };
        let idx = self.schema.push_column(def)?;
        // Existing rows surface the lazy default, so seed the new column's
        // sketch with it (an empty table starts from a clean sketch).
        let seed = (self.row_count() > 0).then(|| default.clone());
        match self.policy {
            GroupPolicy::RowStore => {
                // Stock behaviour: widen every tuple in the single group.
                self.groups[0].cols.push(idx);
                self.groups[0].defaults.push(default.clone());
                self.rewrite_group(0, |frag| frag.push(default.clone()))?;
            }
            GroupPolicy::ColumnStore | GroupPolicy::Hybrid { .. } => {
                let mut g = Group::new(vec![idx]);
                g.defaults = vec![default];
                self.groups.push(g);
            }
        }
        self.rebuild_col_group();
        self.statistics.push_column(seed.as_ref());
        self.version += 1;
        Ok(())
    }

    /// `ALTER TABLE DROP COLUMN`. If the column is alone in its group the
    /// whole group is dropped (no page touched); otherwise only that group is
    /// rewritten.
    pub fn drop_column(&mut self, name: &str) -> DsResult<()> {
        let idx = self
            .schema
            .index_of(name)
            .ok_or_else(|| DsError::ColumnNotFound(name.into()))?;
        let (g, off) = self.col_group[idx];
        // Validate via the schema first (pk/last-column protection).
        self.schema.remove_column(name)?;
        if self.groups[g].cols.len() == 1 {
            self.groups.remove(g);
        } else {
            self.groups[g].cols.remove(off);
            self.groups[g].defaults.remove(off);
            self.rewrite_group(g, move |frag| {
                frag.remove(off);
            })?;
        }
        // Shift schema column indices above the removed one.
        for group in &mut self.groups {
            for c in &mut group.cols {
                if *c > idx {
                    *c -= 1;
                }
            }
        }
        self.rebuild_col_group();
        self.statistics.remove_column(idx);
        self.version += 1;
        Ok(())
    }

    /// `ALTER TABLE RENAME COLUMN` — metadata only under every layout.
    pub fn rename_column(&mut self, from: &str, to: &str) -> DsResult<()> {
        self.schema.rename_column(from, to)?;
        self.version += 1;
        Ok(())
    }

    /// Rewrite every fragment of a group through `transform`, rebuilding its
    /// page chain. Counts a read of every old page and a write of every new
    /// page — this is exactly the cost the hybrid layout avoids.
    fn rewrite_group(&mut self, g: usize, transform: impl Fn(&mut Vec<Value>)) -> DsResult<()> {
        let old_pages = std::mem::take(&mut self.groups[g].pages);
        let old_rowdir = std::mem::take(&mut self.groups[g].rowdir);
        for pidx in 0..old_pages.len() {
            self.touch_read(g, pidx as u32)?;
        }
        // Preserve a deterministic order: iterate rows in page order.
        let mut frags: Vec<(RowKey, Vec<Value>)> = Vec::with_capacity(old_rowdir.len());
        let mut by_loc: Vec<(&RowKey, &(u32, SlotId))> = old_rowdir.iter().collect();
        by_loc.sort_by_key(|(_, loc)| **loc);
        for (key, &(pidx, slot)) in by_loc {
            let bytes = old_pages[pidx as usize].read(slot)?;
            let mut frag = decode_fragment(bytes)?;
            transform(&mut frag);
            frags.push((*key, frag));
        }
        for (key, frag) in frags {
            self.append_fragment(g, key, &frag)?;
        }
        Ok(())
    }

    /// Re-partition all groups according to `policy` (maintenance /
    /// ablation): a full read + rewrite of the table.
    pub fn compact(&mut self, policy: GroupPolicy) -> DsResult<()> {
        let keys = self.order.to_vec();
        let mut rows = Vec::with_capacity(keys.len());
        for &k in &keys {
            rows.push(self.get_row(k)?);
        }
        self.policy = policy;
        self.groups = policy
            .partition(self.schema.width())
            .into_iter()
            .map(Group::new)
            .collect();
        self.rebuild_col_group();
        for (k, row) in keys.into_iter().zip(rows) {
            for g in 0..self.groups.len() {
                let frag: Vec<Value> = self.groups[g]
                    .cols
                    .iter()
                    .map(|&c| row[c].clone())
                    .collect();
                self.append_fragment(g, k, &frag)?;
            }
        }
        Ok(())
    }

    // ---- snapshot encode/decode (the checkpoint format) --------------------

    /// Write every page into fresh pager frames and encode the table's
    /// snapshot metadata (schema, policy, row order, per-group directories,
    /// frame ids) into `buf`. Also empties the buffer pool — a checkpoint
    /// *forces* all pages, so nothing stays dirty. Byte layout in
    /// `docs/STORAGE.md`.
    pub(crate) fn encode_snapshot(&self, pager: &PageFile, buf: &mut Vec<u8>) -> DsResult<()> {
        use crate::codec::{encode_value, put_str, put_u16, put_u32, put_u64};
        self.pool.flush();
        put_str(buf, &self.name);
        match self.policy {
            GroupPolicy::RowStore => buf.push(0),
            GroupPolicy::ColumnStore => buf.push(1),
            GroupPolicy::Hybrid { max_group_width } => {
                buf.push(2);
                put_u32(buf, max_group_width as u32);
            }
        }
        put_u64(buf, self.next_key);
        put_u64(buf, self.pool.capacity() as u64);
        // Schema: columns then pkey indices (layout shared with the WAL's
        // CREATE TABLE record).
        self.schema.encode(buf);
        // Presentation order.
        let order = self.order.to_vec();
        put_u64(buf, order.len() as u64);
        for k in &order {
            put_u64(buf, *k);
        }
        // Groups: layout, defaults, page frames, row directory.
        put_u16(buf, self.groups.len() as u16);
        for group in &self.groups {
            put_u16(buf, group.cols.len() as u16);
            for &c in &group.cols {
                put_u32(buf, c as u32);
            }
            for d in &group.defaults {
                encode_value(buf, d);
            }
            put_u32(buf, group.pages.len() as u32);
            for page in &group.pages {
                let frame = pager.append_frame(&page.to_image())?;
                put_u64(buf, frame);
            }
            put_u32(buf, group.rowdir.len() as u32);
            // Deterministic order for byte-stable snapshots.
            let mut entries: Vec<(&RowKey, &(u32, SlotId))> = group.rowdir.iter().collect();
            entries.sort();
            for (key, (pidx, slot)) in entries {
                put_u64(buf, *key);
                put_u32(buf, *pidx);
                put_u16(buf, *slot);
            }
        }
        Ok(())
    }

    /// Rebuild a table from snapshot metadata, reading its pages back from
    /// the pager. The result is detached (no WAL/pager); the snapshot layer
    /// attaches it after recovery so replay does not re-log itself.
    pub(crate) fn decode_snapshot(
        cur: &mut crate::codec::Cursor<'_>,
        pager: &PageFile,
    ) -> DsResult<Table> {
        let name = cur.str()?;
        let policy = match cur.u8()? {
            0 => GroupPolicy::RowStore,
            1 => GroupPolicy::ColumnStore,
            2 => GroupPolicy::Hybrid {
                max_group_width: cur.u32()? as usize,
            },
            other => {
                return Err(DsError::Storage(format!(
                    "snapshot: bad group policy {other}"
                )))
            }
        };
        let next_key = cur.u64()?;
        let pool_pages = (cur.u64()? as usize).max(1);
        let schema = Schema::decode(cur)?;
        let norder = cur.u64()? as usize;
        let mut order_keys = Vec::with_capacity(norder);
        for _ in 0..norder {
            order_keys.push(cur.u64()?);
        }
        let ngroups = cur.u16()? as usize;
        let mut groups = Vec::with_capacity(ngroups);
        for _ in 0..ngroups {
            let width = cur.u16()? as usize;
            let mut cols = Vec::with_capacity(width);
            for _ in 0..width {
                cols.push(cur.u32()? as usize);
            }
            let mut defaults = Vec::with_capacity(width);
            for _ in 0..width {
                defaults.push(cur.value()?);
            }
            let npages = cur.u32()? as usize;
            let mut pages = Vec::with_capacity(npages);
            for _ in 0..npages {
                let frame = cur.u64()?;
                pages.push(Arc::new(Page::from_image(&pager.read_frame(frame)?)?));
            }
            let ndir = cur.u32()? as usize;
            let mut rowdir = HashMap::with_capacity(ndir);
            for _ in 0..ndir {
                let key = cur.u64()?;
                let pidx = cur.u32()?;
                let slot = cur.u16()?;
                rowdir.insert(key, (pidx, slot));
            }
            groups.push(Group {
                cols,
                pages,
                rowdir: Arc::new(rowdir),
                defaults,
            });
        }
        let statistics = TableStatistics::new(schema.width());
        let mut t = Table {
            name,
            schema,
            policy,
            groups,
            col_group: Vec::new(),
            next_key,
            pk_index: BTreeMap::new(),
            order: Arc::new(CountedBtree::from_keys(order_keys)?),
            stats: TableStats::default(),
            pool: BufferPool::new(pool_pages),
            wal: None,
            pager: None,
            version: 0,
            statistics,
        };
        t.rebuild_col_group();
        // Rebuild the primary-key index from the restored rows.
        if t.schema.has_pkey() {
            for key in t.order.to_vec() {
                let row = t.get_row(key)?;
                let kt = t.key_of_row(&row)?;
                if t.pk_index.insert(kt, key).is_some() {
                    return Err(DsError::Storage(format!(
                        "snapshot: duplicate primary key in table {}",
                        t.name
                    )));
                }
            }
        }
        Ok(t)
    }

    // ---- optimizer statistics ---------------------------------------------

    /// The live optimizer statistics (conservative sketches; see
    /// [`crate::stats`]).
    pub fn statistics(&self) -> &TableStatistics {
        &self.statistics
    }

    /// Install a statistics block, e.g. one restored from persisted
    /// workbook metadata. Rejects a block whose width does not match the
    /// current schema — the caller should fall back to [`Table::analyze`].
    pub fn set_statistics(&mut self, stats: TableStatistics) -> DsResult<()> {
        if stats.width() != self.schema.width() {
            return Err(DsError::Storage(format!(
                "statistics width {} does not match schema width {} of table {}",
                stats.width(),
                self.schema.width(),
                self.name
            )));
        }
        self.statistics = stats;
        Ok(())
    }

    /// `ANALYZE`: rebuild the statistics exactly by rescanning the table,
    /// discarding the conservative drift deletes and updates accumulate.
    pub fn analyze(&mut self) -> DsResult<()> {
        let mut stats = TableStatistics::new(self.schema.width());
        for r in self.iter_rows() {
            let (_, row) = r?;
            stats.observe_row(&row);
        }
        self.statistics = stats;
        Ok(())
    }

    // ---- consistent read snapshots ----------------------------------------

    /// Open a consistent, immutable snapshot of this table's current state.
    ///
    /// O(#pages) pointer clones: pages, row directories, and the positional
    /// index are all shared `Arc`s, so no row data is copied. Writers that
    /// mutate the table afterwards copy the touched page first
    /// ([`std::sync::Arc::make_mut`]), leaving the snapshot's view intact —
    /// readers scan a committed-as-of-now state without blocking writers and
    /// without ever observing a torn row.
    pub fn snapshot(&self) -> TableSnapshot {
        TableSnapshot {
            name: self.name.clone(),
            schema: self.schema.clone(),
            col_group: self.col_group.clone(),
            groups: self.groups.clone(),
            order: Arc::clone(&self.order),
            version: self.version,
            col_stats: Arc::new(self.statistics.summaries()),
        }
    }
}

/// Streaming row iterator over a [`Table`] in presentation order; reads only
/// the attribute groups selected at construction (see
/// [`Table::iter_rows_sparse`]). Holds the key order as plain `u64`s — O(n)
/// in keys, not in row payloads.
pub struct RowIter<'a> {
    table: &'a Table,
    keys: std::vec::IntoIter<RowKey>,
    /// Attribute groups to materialize, ascending.
    groups: Vec<usize>,
}

impl Iterator for RowIter<'_> {
    type Item = DsResult<(RowKey, Vec<Value>)>;

    fn next(&mut self) -> Option<Self::Item> {
        let key = self.keys.next()?;
        let mut out = vec![Value::Empty; self.table.schema.width()];
        for &g in &self.groups {
            match self.table.read_fragment(g, key) {
                Ok(frag) => {
                    for (off, &c) in self.table.groups[g].cols.iter().enumerate() {
                        out[c] = frag[off].clone();
                    }
                }
                Err(e) => return Some(Err(e)),
            }
        }
        Some(Ok((key, out)))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.keys.size_hint()
    }
}

/// An immutable, `'static`, cheaply-cloneable view of a table at a moment in
/// time — the read side of the engine's snapshot isolation (see
/// [`Table::snapshot`]).
///
/// Snapshot reads deliberately bypass the buffer pool and the logical I/O
/// counters: the pool's LRU mutex is the writer-side contention point, and a
/// snapshot is already fully resident (it pins its pages via `Arc`), so
/// parallel readers touch no shared mutable state at all.
#[derive(Clone, Debug)]
pub struct TableSnapshot {
    name: String,
    schema: Schema,
    col_group: Vec<(usize, usize)>,
    groups: Vec<Group>,
    order: Arc<CountedBtree>,
    version: u64,
    /// Optimizer column summaries captured with the snapshot.
    col_stats: Arc<Vec<ColumnSummary>>,
}

impl TableSnapshot {
    /// Table name at snapshot time.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Schema at snapshot time.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows visible in this snapshot.
    pub fn row_count(&self) -> usize {
        self.order.len()
    }

    /// The table's mutation counter when the snapshot was taken.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Optimizer summary for column `i`, captured at snapshot time.
    pub fn col_summary(&self, i: usize) -> Option<&ColumnSummary> {
        self.col_stats.get(i)
    }

    /// Key of the row displayed at `pos` in this snapshot.
    pub fn key_at(&self, pos: usize) -> Option<RowKey> {
        self.order.key_at(pos)
    }

    /// Display position of a row in this snapshot.
    pub fn position_of(&self, key: RowKey) -> Option<usize> {
        self.order.position_of(key)
    }

    /// Keys of the rows in the window `[pos, pos+count)`.
    pub fn keys_in_window(&self, pos: usize, count: usize) -> Vec<RowKey> {
        self.order.range(pos, count)
    }

    fn read_fragment(&self, g: usize, key: RowKey) -> DsResult<Vec<Value>> {
        let group = &self.groups[g];
        match group.rowdir.get(&key) {
            Some(&(pidx, slot)) => decode_fragment(group.pages[pidx as usize].read(slot)?),
            None => Ok(group.defaults.clone()),
        }
    }

    /// Fetch a full row by key.
    pub fn get_row(&self, key: RowKey) -> DsResult<Vec<Value>> {
        if self.order.position_of(key).is_none() {
            return Err(DsError::Storage(format!(
                "row key {key} not in snapshot of {}",
                self.name
            )));
        }
        let mut out = vec![Value::Empty; self.schema.width()];
        for g in 0..self.groups.len() {
            let frag = self.read_fragment(g, key)?;
            for (off, &c) in self.groups[g].cols.iter().enumerate() {
                out[c] = frag[off].clone();
            }
        }
        Ok(out)
    }

    /// Windowed scan over the snapshot (viewport reads off the write path).
    pub fn scan_window(&self, pos: usize, count: usize) -> DsResult<Vec<(RowKey, Vec<Value>)>> {
        let keys = self.order.range(pos, count);
        let mut out = Vec::with_capacity(keys.len());
        for k in keys {
            out.push((k, self.get_row(k)?));
        }
        Ok(out)
    }

    /// Full scan, materialized.
    pub fn scan(&self) -> DsResult<Vec<(RowKey, Vec<Value>)>> {
        let mut out = Vec::with_capacity(self.row_count());
        for r in self.clone().into_iter_sparse(None) {
            out.push(r?);
        }
        Ok(out)
    }

    /// Streaming scan in presentation order, reading only the attribute
    /// groups covering `cols` (full-width rows, untouched slots
    /// [`Value::Empty`] — same contract as [`Table::iter_rows_sparse`]).
    /// Consumes the snapshot (clone first if it is still needed; a clone is
    /// O(#pages) pointer bumps), which is what makes the iterator `'static` —
    /// the executor can hold it across an entire query without borrowing the
    /// catalog.
    pub fn into_iter_sparse(self, cols: Option<&[usize]>) -> SnapRowIter {
        let groups = match cols {
            None => (0..self.groups.len()).collect(),
            Some(cols) => {
                let mut gs: Vec<usize> = cols.iter().map(|&c| self.col_group[c].0).collect();
                gs.sort_unstable();
                gs.dedup();
                gs
            }
        };
        SnapRowIter {
            keys: self.order.to_vec().into_iter(),
            snap: self,
            groups,
        }
    }
}

/// Owning streaming iterator over a [`TableSnapshot`] in presentation order.
/// `'static`: holds the snapshot itself, so it outlives any catalog borrow.
pub struct SnapRowIter {
    snap: TableSnapshot,
    keys: std::vec::IntoIter<RowKey>,
    /// Attribute groups to materialize, ascending.
    groups: Vec<usize>,
}

impl Iterator for SnapRowIter {
    type Item = DsResult<(RowKey, Vec<Value>)>;

    fn next(&mut self) -> Option<Self::Item> {
        let key = self.keys.next()?;
        let mut out = vec![Value::Empty; self.snap.schema.width()];
        for &g in &self.groups {
            match self.snap.read_fragment(g, key) {
                Ok(frag) => {
                    for (off, &c) in self.snap.groups[g].cols.iter().enumerate() {
                        out[c] = frag[off].clone();
                    }
                }
                Err(e) => return Some(Err(e)),
            }
        }
        Some(Ok((key, out)))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.keys.size_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataspread_types::DataType;

    fn sample_schema() -> Schema {
        Schema::new(vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("name", DataType::Text),
            ColumnDef::new("score", DataType::Float),
        ])
        .unwrap()
        .with_pkey(&["id"])
        .unwrap()
    }

    fn sample_table(policy: GroupPolicy) -> Table {
        let mut t = Table::new("students", sample_schema(), policy);
        for i in 0..10 {
            t.insert(vec![
                Value::Int(i),
                Value::text(format!("student{i}")),
                Value::Float(80.0 + i as f64),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn insert_and_get_all_policies() {
        for policy in [
            GroupPolicy::RowStore,
            GroupPolicy::ColumnStore,
            GroupPolicy::Hybrid { max_group_width: 2 },
        ] {
            let t = sample_table(policy);
            assert_eq!(t.row_count(), 10);
            let key = t.key_at(3).unwrap();
            let row = t.get_row(key).unwrap();
            assert_eq!(row[0], Value::Int(3));
            assert_eq!(row[1], Value::text("student3"));
            assert_eq!(row[2], Value::Float(83.0));
        }
    }

    #[test]
    fn group_counts_match_policy() {
        assert_eq!(sample_table(GroupPolicy::RowStore).group_count(), 1);
        assert_eq!(sample_table(GroupPolicy::ColumnStore).group_count(), 3);
        assert_eq!(
            sample_table(GroupPolicy::Hybrid { max_group_width: 2 }).group_count(),
            2
        );
    }

    #[test]
    fn pk_uniqueness_enforced() {
        let mut t = sample_table(GroupPolicy::RowStore);
        let err = t.insert(vec![Value::Int(3), Value::text("dup"), Value::Empty]);
        assert!(matches!(err, Err(DsError::KeyViolation(_))));
        assert_eq!(t.row_count(), 10);
    }

    #[test]
    fn key_lookup_by_pk() {
        let t = sample_table(GroupPolicy::Hybrid { max_group_width: 2 });
        let k = t.key_lookup(&KeyTuple(vec![Value::Int(7)])).unwrap();
        assert_eq!(t.get_row(k).unwrap()[1], Value::text("student7"));
        assert!(t.key_lookup(&KeyTuple(vec![Value::Int(99)])).is_none());
    }

    #[test]
    fn update_cell_changes_one_group() {
        let mut t = sample_table(GroupPolicy::ColumnStore);
        let key = t.key_at(0).unwrap();
        t.stats().reset();
        let old = t.update_cell(key, 2, Value::Float(55.5)).unwrap();
        assert_eq!(old, Value::Float(80.0));
        assert_eq!(t.get_row(key).unwrap()[2], Value::Float(55.5));
        // Only the score group's page was written.
        assert_eq!(t.stats().page_writes(), 1);
    }

    #[test]
    fn update_pk_cell_maintains_index() {
        let mut t = sample_table(GroupPolicy::RowStore);
        let key = t.key_at(0).unwrap();
        t.update_cell(key, 0, Value::Int(100)).unwrap();
        assert!(t.key_lookup(&KeyTuple(vec![Value::Int(0)])).is_none());
        assert_eq!(t.key_lookup(&KeyTuple(vec![Value::Int(100)])), Some(key));
        // Collision rejected.
        let err = t.update_cell(key, 0, Value::Int(5));
        assert!(matches!(err, Err(DsError::KeyViolation(_))));
    }

    #[test]
    fn delete_row_shifts_positions() {
        let mut t = sample_table(GroupPolicy::Hybrid { max_group_width: 2 });
        let key = t.key_at(4).unwrap();
        let pos = t.delete_row(key).unwrap();
        assert_eq!(pos, 4);
        assert_eq!(t.row_count(), 9);
        let next = t.key_at(4).unwrap();
        assert_eq!(t.get_row(next).unwrap()[0], Value::Int(5));
        assert!(t.get_row(key).is_err());
        assert!(t.key_lookup(&KeyTuple(vec![Value::Int(4)])).is_none());
    }

    #[test]
    fn positional_insert_between_rows() {
        let mut t = sample_table(GroupPolicy::RowStore);
        t.insert_at(5, vec![Value::Int(50), Value::text("middle"), Value::Empty])
            .unwrap();
        let k = t.key_at(5).unwrap();
        assert_eq!(t.get_row(k).unwrap()[1], Value::text("middle"));
        assert_eq!(t.row_count(), 11);
        // The previously-5th row moved to 6.
        let k6 = t.key_at(6).unwrap();
        assert_eq!(t.get_row(k6).unwrap()[0], Value::Int(5));
    }

    #[test]
    fn scan_window_matches_positions() {
        let t = sample_table(GroupPolicy::Hybrid { max_group_width: 2 });
        let rows = t.scan_window(3, 4).unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].1[0], Value::Int(3));
        assert_eq!(rows[3].1[0], Value::Int(6));
    }

    #[test]
    fn add_column_lazy_under_hybrid() {
        let mut t = sample_table(GroupPolicy::Hybrid { max_group_width: 2 });
        t.stats().reset();
        t.add_column(ColumnDef::new("grade", DataType::Text), Value::text("?"))
            .unwrap();
        // Zero data pages touched: the lazy-default group is empty.
        assert_eq!(
            t.stats().page_writes(),
            0,
            "hybrid ADD COLUMN touches no pages"
        );
        assert_eq!(t.schema().width(), 4);
        let key = t.key_at(2).unwrap();
        assert_eq!(t.get_row(key).unwrap()[3], Value::text("?"));
        // Writing one cell materializes one fragment.
        t.update_cell(key, 3, Value::text("A+")).unwrap();
        assert_eq!(t.get_row(key).unwrap()[3], Value::text("A+"));
        // Other rows still see the default.
        let other = t.key_at(0).unwrap();
        assert_eq!(t.get_row(other).unwrap()[3], Value::text("?"));
    }

    #[test]
    fn add_column_rewrites_under_rowstore() {
        let mut t = sample_table(GroupPolicy::RowStore);
        t.stats().reset();
        t.add_column(ColumnDef::new("grade", DataType::Text), Value::text("?"))
            .unwrap();
        assert!(t.stats().page_writes() > 0, "row store must rewrite");
        let key = t.key_at(2).unwrap();
        assert_eq!(t.get_row(key).unwrap()[3], Value::text("?"));
    }

    #[test]
    fn drop_column_sole_group_is_free() {
        let mut t = sample_table(GroupPolicy::ColumnStore);
        t.stats().reset();
        t.drop_column("score").unwrap();
        assert_eq!(
            t.stats().page_writes(),
            0,
            "dropping a whole group is metadata-only"
        );
        assert_eq!(t.schema().width(), 2);
        let key = t.key_at(0).unwrap();
        let row = t.get_row(key).unwrap();
        assert_eq!(row, vec![Value::Int(0), Value::text("student0")]);
    }

    #[test]
    fn drop_column_inside_group_rewrites_one_group() {
        let mut t = sample_table(GroupPolicy::RowStore);
        t.stats().reset();
        t.drop_column("name").unwrap();
        assert!(t.stats().page_writes() > 0);
        let key = t.key_at(1).unwrap();
        assert_eq!(
            t.get_row(key).unwrap(),
            vec![Value::Int(1), Value::Float(81.0)]
        );
        // pk still works after index shifts.
        assert_eq!(t.key_lookup(&KeyTuple(vec![Value::Int(1)])), Some(key));
        t.update_cell(key, 1, Value::Float(12.0)).unwrap();
        assert_eq!(t.get_row(key).unwrap()[1], Value::Float(12.0));
    }

    #[test]
    fn rename_column_metadata_only() {
        let mut t = sample_table(GroupPolicy::Hybrid { max_group_width: 2 });
        t.stats().reset();
        t.rename_column("score", "points").unwrap();
        assert_eq!(t.stats().page_writes(), 0);
        assert!(t.schema().index_of("points").is_some());
    }

    #[test]
    fn add_then_drop_column_round_trip() {
        let mut t = sample_table(GroupPolicy::Hybrid { max_group_width: 2 });
        t.add_column(ColumnDef::new("extra", DataType::Int), Value::Int(0))
            .unwrap();
        let key = t.key_at(0).unwrap();
        t.update_cell(key, 3, Value::Int(42)).unwrap();
        t.drop_column("extra").unwrap();
        assert_eq!(t.schema().width(), 3);
        assert_eq!(t.get_row(key).unwrap().len(), 3);
        // Surviving columns unaffected.
        assert_eq!(t.get_row(key).unwrap()[1], Value::text("student0"));
    }

    #[test]
    fn projection_reads_fewer_groups() {
        let mut t = Table::new(
            "wide",
            {
                let cols: Vec<ColumnDef> = (0..8)
                    .map(|i| ColumnDef::new(format!("c{i}"), DataType::Int))
                    .collect();
                Schema::new(cols).unwrap()
            },
            GroupPolicy::Hybrid { max_group_width: 2 },
        );
        for r in 0..20 {
            t.insert((0..8).map(|c| Value::Int(r * 8 + c)).collect())
                .unwrap();
        }
        t.stats().reset();
        let full = t.scan().unwrap();
        let full_reads = t.stats().page_reads();
        t.stats().reset();
        let proj = t.scan_project(&[0]).unwrap();
        let proj_reads = t.stats().page_reads();
        assert_eq!(full.len(), proj.len());
        assert_eq!(proj[3].1, vec![Value::Int(24)]);
        assert!(
            proj_reads * 2 <= full_reads,
            "projection must read fewer pages: {proj_reads} vs {full_reads}"
        );
    }

    #[test]
    fn compact_repartitions() {
        let mut t = sample_table(GroupPolicy::RowStore);
        t.compact(GroupPolicy::ColumnStore).unwrap();
        assert_eq!(t.group_count(), 3);
        let key = t.key_at(9).unwrap();
        assert_eq!(t.get_row(key).unwrap()[1], Value::text("student9"));
        t.update_cell(key, 1, Value::text("renamed")).unwrap();
        assert_eq!(t.get_row(key).unwrap()[1], Value::text("renamed"));
    }

    #[test]
    fn update_row_replaces_everything() {
        let mut t = sample_table(GroupPolicy::Hybrid { max_group_width: 2 });
        let key = t.key_at(0).unwrap();
        t.update_row(
            key,
            vec![Value::Int(0), Value::text("zed"), Value::Float(1.0)],
        )
        .unwrap();
        assert_eq!(
            t.get_row(key).unwrap(),
            vec![Value::Int(0), Value::text("zed"), Value::Float(1.0)]
        );
    }

    #[test]
    fn many_rows_span_pages() {
        let mut t = Table::new("big", sample_schema(), GroupPolicy::RowStore);
        for i in 0..5000 {
            t.insert(vec![
                Value::Int(i),
                Value::text(format!("row-with-a-longish-name-{i}")),
                Value::Float(i as f64),
            ])
            .unwrap();
        }
        assert!(
            t.total_pages() > 10,
            "5000 rows must span many pages: {}",
            t.total_pages()
        );
        // Spot-check random access.
        let k = t.key_at(4321).unwrap();
        assert_eq!(t.get_row(k).unwrap()[0], Value::Int(4321));
        // Windowed scan near the end.
        let w = t.scan_window(4990, 20).unwrap();
        assert_eq!(w.len(), 10);
        assert_eq!(w[9].1[0], Value::Int(4999));
    }

    #[test]
    fn iter_rows_streams_in_presentation_order() {
        for policy in [
            GroupPolicy::RowStore,
            GroupPolicy::ColumnStore,
            GroupPolicy::Hybrid { max_group_width: 2 },
        ] {
            let t = sample_table(policy);
            let streamed: Vec<_> = t.iter_rows().map(|r| r.unwrap()).collect();
            assert_eq!(streamed, t.scan().unwrap(), "{policy:?}");
        }
    }

    #[test]
    fn iter_rows_sparse_reads_fewer_pages_full_width() {
        let mut t = Table::new(
            "wide",
            {
                let cols: Vec<ColumnDef> = (0..8)
                    .map(|i| ColumnDef::new(format!("c{i}"), DataType::Int))
                    .collect();
                Schema::new(cols).unwrap()
            },
            GroupPolicy::Hybrid { max_group_width: 2 },
        );
        for r in 0..50 {
            t.insert((0..8).map(|c| Value::Int(r * 8 + c)).collect())
                .unwrap();
        }
        t.stats().reset();
        let full: Vec<_> = t.iter_rows().map(|r| r.unwrap()).collect();
        let full_reads = t.stats().page_reads();
        t.stats().reset();
        let sparse: Vec<_> = t.iter_rows_sparse(Some(&[1])).map(|r| r.unwrap()).collect();
        let sparse_reads = t.stats().page_reads();
        assert!(
            sparse_reads * 2 <= full_reads,
            "sparse scan must read fewer pages: {sparse_reads} vs {full_reads}"
        );
        // Full width; the requested column's whole group (cols 0–1) is
        // populated, groups that were never read stay Empty.
        assert_eq!(sparse[3].1.len(), 8);
        assert_eq!(sparse[3].1[1], full[3].1[1]);
        assert_eq!(sparse[3].1[0], full[3].1[0]);
        assert_eq!(sparse[3].1[2], Value::Empty);
        assert_eq!(sparse[3].1[7], Value::Empty);
    }

    #[test]
    fn fragment_too_large_rejected() {
        let mut t = Table::new(
            "blob",
            Schema::new(vec![ColumnDef::new("t", DataType::Text)]).unwrap(),
            GroupPolicy::RowStore,
        );
        let huge = "x".repeat(PAGE_SIZE);
        assert!(t.insert(vec![Value::text(huge)]).is_err());
    }

    #[test]
    fn snapshot_matches_table_state() {
        for policy in [
            GroupPolicy::RowStore,
            GroupPolicy::ColumnStore,
            GroupPolicy::Hybrid { max_group_width: 2 },
        ] {
            let t = sample_table(policy);
            let s = t.snapshot();
            assert_eq!(s.row_count(), 10);
            assert_eq!(s.name(), "students");
            assert_eq!(s.scan().unwrap(), t.scan().unwrap(), "{policy:?}");
            let k = s.key_at(3).unwrap();
            assert_eq!(s.get_row(k).unwrap(), t.get_row(k).unwrap());
            assert_eq!(s.scan_window(2, 4).unwrap(), t.scan_window(2, 4).unwrap());
        }
    }

    #[test]
    fn snapshot_is_isolated_from_later_writes() {
        let mut t = sample_table(GroupPolicy::Hybrid { max_group_width: 2 });
        let s = t.snapshot();
        let before = s.scan().unwrap();
        // Mutate every page-touching path: update, delete, insert, DDL.
        let k0 = t.key_at(0).unwrap();
        t.update_cell(k0, 1, Value::text("changed")).unwrap();
        t.delete_row(t.key_at(5).unwrap()).unwrap();
        t.insert(vec![Value::Int(77), Value::text("new"), Value::Empty])
            .unwrap();
        t.add_column(ColumnDef::new("extra", DataType::Int), Value::Int(9))
            .unwrap();
        // The snapshot still sees the exact pre-write state.
        assert_eq!(s.scan().unwrap(), before);
        assert_eq!(s.row_count(), 10);
        assert_eq!(s.get_row(k0).unwrap()[1], Value::text("student0"));
        assert_eq!(s.schema().width(), 3);
        // The table sees the new state.
        assert_eq!(t.row_count(), 10);
        assert_eq!(t.get_row(k0).unwrap()[1], Value::text("changed"));
        assert!(t.version() > s.version());
    }

    #[test]
    fn snapshot_sparse_iter_matches_table_sparse_iter() {
        let t = sample_table(GroupPolicy::Hybrid { max_group_width: 2 });
        let s = t.snapshot();
        let snap_rows: Vec<_> = s.into_iter_sparse(Some(&[2])).map(|r| r.unwrap()).collect();
        let table_rows: Vec<_> = t.iter_rows_sparse(Some(&[2])).map(|r| r.unwrap()).collect();
        assert_eq!(snap_rows, table_rows);
    }
}
