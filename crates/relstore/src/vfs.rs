//! Virtual filesystem: every byte the store persists goes through here.
//!
//! The persistence stack ([`crate::pager`], [`crate::wal`],
//! [`crate::snapshot`]) never touches `std::fs` directly; it speaks to a
//! [`Vfs`] (namespace operations: create/open/rename/remove) handing out
//! [`VfsFile`] handles (positioned reads/writes, truncate, fsync). Two
//! implementations ship:
//!
//! * [`OsVfs`] — the real filesystem. Positioned I/O, no hidden buffering;
//!   `sync` maps to `fsync(2)`.
//! * [`FaultVfs`] — a deterministic in-memory filesystem that injects
//!   failures by schedule (`fail the Nth write`) or seeded RNG
//!   (probabilistic write/sync errors, short writes, ENOSPC, crash-at-op).
//!   Each file keeps **two** byte images: `live` (what a running process
//!   observes) and `durable` (only what a successful `sync` promoted).
//!   After a simulated crash, [`FaultVfs::reset_to_recovery`] with
//!   [`RecoveryImage::Synced`] discards everything that never survived an
//!   fsync — the adversarial image a real power cut would leave. This is
//!   what makes *fsync-failure* testing honest: on a real filesystem a
//!   failed fsync usually still leaves the bytes in the page cache, so the
//!   loss window is invisible.
//!
//! The fault machinery is deliberately self-contained (its SplitMix64
//! generator is inlined) so `FaultVfs` is usable from integration tests and
//! benches without pulling the dev-only testkit into the library.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// A single open file: positioned I/O plus durability control.
///
/// All methods take `&self`; implementations are internally synchronized so
/// a handle can be shared across the pager's and WAL's locking schemes.
pub trait VfsFile: Send + Sync {
    /// Read exactly `buf.len()` bytes starting at `offset`.
    fn read_exact_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()>;
    /// Write all of `buf` starting at `offset`, extending the file if needed.
    fn write_all_at(&self, offset: u64, buf: &[u8]) -> io::Result<()>;
    /// Force written bytes to durable storage (`fsync`).
    fn sync(&self) -> io::Result<()>;
    /// Current file length in bytes.
    fn len(&self) -> io::Result<u64>;
    /// True when the file holds no bytes.
    fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }
    /// Cut the file back to `len` bytes.
    fn truncate(&self, len: u64) -> io::Result<()>;
    /// A second independent handle to the same file. Used by the WAL so the
    /// group-commit leader can fsync without holding the append lock.
    fn duplicate(&self) -> io::Result<Box<dyn VfsFile>>;
}

/// A filesystem namespace: create/open files, atomic rename, removal.
pub trait Vfs: Send + Sync + std::fmt::Debug {
    /// Create (truncating if present) a file at `path`.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Open an existing file read/write.
    fn open(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Read a whole file into memory.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Create `path` (truncating any previous contents), write `bytes`, and
    /// sync the handle — the whole-file convenience for tools and harnesses
    /// that persist through the VFS boundary instead of `std::fs`. Routed
    /// through [`Vfs::create`], so fault injection covers it.
    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let f = self.create(path)?;
        f.write_all_at(0, bytes)?;
        f.sync()
    }
    /// Atomically rename `from` onto `to` (replacing it).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Delete a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Ensure a directory (and parents) exists.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Best-effort fsync of a directory, making renames within it durable.
    fn sync_dir(&self, path: &Path);
    /// True when `path` names an existing file.
    fn exists(&self, path: &Path) -> bool;
}

/// The default production [`Vfs`]: a thin shim over `std::fs`.
pub fn os_vfs() -> Arc<dyn Vfs> {
    Arc::new(OsVfs)
}

// ---------------------------------------------------------------- OS-backed

/// [`Vfs`] implementation backed by the real OS filesystem.
#[derive(Clone, Copy, Debug, Default)]
pub struct OsVfs;

struct OsFile {
    // On unix, positioned I/O (pread/pwrite) needs no lock; the mutex exists
    // for the portable seek-based fallback and costs one uncontended lock
    // per op elsewhere.
    file: Mutex<std::fs::File>,
}

impl OsFile {
    fn new(file: std::fs::File) -> OsFile {
        OsFile {
            file: Mutex::new(file),
        }
    }

    fn guard(&self) -> MutexGuard<'_, std::fs::File> {
        self.file.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl VfsFile for OsFile {
    #[cfg(unix)]
    fn read_exact_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        use std::os::unix::fs::FileExt;
        self.guard().read_exact_at(buf, offset)
    }

    #[cfg(not(unix))]
    fn read_exact_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        use std::io::{Read, Seek, SeekFrom};
        let mut f = self.guard();
        f.seek(SeekFrom::Start(offset))?;
        f.read_exact(buf)
    }

    #[cfg(unix)]
    fn write_all_at(&self, offset: u64, buf: &[u8]) -> io::Result<()> {
        use std::os::unix::fs::FileExt;
        self.guard().write_all_at(buf, offset)
    }

    #[cfg(not(unix))]
    fn write_all_at(&self, offset: u64, buf: &[u8]) -> io::Result<()> {
        use std::io::{Seek, SeekFrom, Write};
        let mut f = self.guard();
        f.seek(SeekFrom::Start(offset))?;
        f.write_all(buf)
    }

    fn sync(&self) -> io::Result<()> {
        self.guard().sync_data()
    }

    fn len(&self) -> io::Result<u64> {
        Ok(self.guard().metadata()?.len())
    }

    fn truncate(&self, len: u64) -> io::Result<()> {
        self.guard().set_len(len)
    }

    fn duplicate(&self) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(OsFile::new(self.guard().try_clone()?)))
    }
}

impl Vfs for OsVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let f = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Box::new(OsFile::new(f)))
    }

    fn open(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let f = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)?;
        Ok(Box::new(OsFile::new(f)))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn sync_dir(&self, path: &Path) {
        if let Ok(d) = std::fs::File::open(path) {
            let _ = d.sync_all();
        }
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

// ------------------------------------------------------------- fault model

/// Which failure a scheduled fault injects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The write fails outright; no bytes reach the file (EIO).
    WriteErr,
    /// Only a prefix of the buffer lands before the write fails (ENOSPC):
    /// the torn-write case.
    ShortWrite,
    /// The fsync fails; nothing new is promoted to the durable image.
    SyncErr,
    /// The process "dies" at this operation: the fault VFS stops accepting
    /// I/O and keeps both byte images for recovery inspection.
    Crash,
}

/// Deterministic fault schedule for a [`FaultVfs`].
///
/// Probabilities are expressed per 10 000 operations so a plan is plain
/// integers; `fail_nth_*` fire exactly once at the given 0-based global
/// operation index. The default plan injects nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the internal SplitMix64 stream driving probabilistic faults.
    pub seed: u64,
    /// Chance (per 10 000 writes) of a full write failure.
    pub p_write_err: u32,
    /// Chance (per 10 000 writes) of a short (torn) write.
    pub p_short_write: u32,
    /// Chance (per 10 000 syncs) of an fsync failure.
    pub p_sync_err: u32,
    /// Chance (per 10 000 ops, writes and syncs) of a crash.
    pub p_crash: u32,
    /// Fail exactly the Nth write (0-based) with the given kind.
    pub fail_nth_write: Option<(u64, FaultKind)>,
    /// Fail exactly the Nth sync (0-based).
    pub fail_nth_sync: Option<u64>,
    /// Crash at the Nth operation (writes + syncs, 0-based).
    pub crash_at_op: Option<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing — the baseline for overhead benches.
    pub fn quiet() -> FaultPlan {
        FaultPlan::default()
    }
}

/// Which byte image [`FaultVfs::reset_to_recovery`] restores.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryImage {
    /// Keep only bytes promoted by a successful sync — what survives a
    /// power cut. The adversarial (and default) choice.
    Synced,
    /// Keep everything the process wrote — models a process crash where the
    /// OS page cache still flushes.
    Live,
}

/// Counters describing what a [`FaultVfs`] has done and injected.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Total write calls observed.
    pub writes: u64,
    /// Total sync calls observed.
    pub syncs: u64,
    /// Faults injected (all kinds).
    pub injected: u64,
}

struct MemFile {
    live: Vec<u8>,
    durable: Vec<u8>,
}

struct FaultInner {
    files: Mutex<HashMap<PathBuf, Arc<Mutex<MemFile>>>>,
    plan: Mutex<FaultPlan>,
    rng: Mutex<u64>,
    writes: AtomicU64,
    syncs: AtomicU64,
    ops: AtomicU64,
    injected: AtomicU64,
    crashed: AtomicBool,
}

/// A deterministic, fully in-memory fault-injecting [`Vfs`].
///
/// Clones share state, so tests keep a handle while the store owns an
/// `Arc<dyn Vfs>` pointing at the same filesystem.
#[derive(Clone)]
pub struct FaultVfs {
    inner: Arc<FaultInner>,
}

impl std::fmt::Debug for FaultVfs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultVfs")
            .field("stats", &self.stats())
            .field("crashed", &self.crashed())
            .finish()
    }
}

fn injected_err(kind: FaultKind) -> io::Error {
    match kind {
        FaultKind::WriteErr => io::Error::other("injected write error"),
        FaultKind::ShortWrite => {
            io::Error::new(io::ErrorKind::WriteZero, "injected ENOSPC (short write)")
        }
        FaultKind::SyncErr => io::Error::other("injected fsync failure"),
        FaultKind::Crash => io::Error::other("injected crash"),
    }
}

fn crashed_err() -> io::Error {
    io::Error::other("fault vfs: process has crashed")
}

impl FaultInner {
    /// SplitMix64 step — inlined so the library has no testkit dependency.
    fn next_u64(&self) -> u64 {
        let mut s = self.rng.lock().unwrap_or_else(|e| e.into_inner());
        *s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn roll(&self, per_10k: u32) -> bool {
        per_10k > 0 && (self.next_u64() % 10_000) < per_10k as u64
    }

    fn plan(&self) -> FaultPlan {
        *self.plan.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Decide what happens to the next write. Returns `None` for a clean
    /// write or the fault to inject.
    fn next_write_fault(&self) -> Option<FaultKind> {
        let plan = self.plan();
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        let w = self.writes.fetch_add(1, Ordering::Relaxed);
        if plan.crash_at_op == Some(op) || self.roll(plan.p_crash) {
            return Some(FaultKind::Crash);
        }
        if let Some((n, kind)) = plan.fail_nth_write {
            if n == w {
                return Some(kind);
            }
        }
        if self.roll(plan.p_write_err) {
            return Some(FaultKind::WriteErr);
        }
        if self.roll(plan.p_short_write) {
            return Some(FaultKind::ShortWrite);
        }
        None
    }

    fn next_sync_fault(&self) -> Option<FaultKind> {
        let plan = self.plan();
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        let s = self.syncs.fetch_add(1, Ordering::Relaxed);
        if plan.crash_at_op == Some(op) || self.roll(plan.p_crash) {
            return Some(FaultKind::Crash);
        }
        if plan.fail_nth_sync == Some(s) {
            return Some(FaultKind::SyncErr);
        }
        if self.roll(plan.p_sync_err) {
            return Some(FaultKind::SyncErr);
        }
        None
    }

    fn record_injection(&self) {
        self.injected.fetch_add(1, Ordering::Relaxed);
    }
}

impl Default for FaultVfs {
    fn default() -> Self {
        FaultVfs::new(FaultPlan::default())
    }
}

impl FaultVfs {
    /// Build an empty in-memory filesystem governed by `plan`.
    pub fn new(plan: FaultPlan) -> FaultVfs {
        FaultVfs {
            inner: Arc::new(FaultInner {
                files: Mutex::new(HashMap::new()),
                rng: Mutex::new(plan.seed),
                plan: Mutex::new(plan),
                writes: AtomicU64::new(0),
                syncs: AtomicU64::new(0),
                ops: AtomicU64::new(0),
                injected: AtomicU64::new(0),
                crashed: AtomicBool::new(false),
            }),
        }
    }

    /// Replace the fault schedule (counters and RNG state are kept).
    pub fn set_plan(&self, plan: FaultPlan) {
        *self.inner.plan.lock().unwrap_or_else(|e| e.into_inner()) = plan;
    }

    /// Stop injecting anything from this point on.
    pub fn quiesce(&self) {
        self.set_plan(FaultPlan::quiet());
    }

    /// True once a crash fault fired (or [`FaultVfs::trip_crash`] was
    /// called): every subsequent I/O fails until recovery.
    pub fn crashed(&self) -> bool {
        self.inner.crashed.load(Ordering::SeqCst)
    }

    /// Simulate an immediate process death.
    pub fn trip_crash(&self) {
        self.inner.crashed.store(true, Ordering::SeqCst);
    }

    /// Operation counters.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            writes: self.inner.writes.load(Ordering::Relaxed),
            syncs: self.inner.syncs.load(Ordering::Relaxed),
            injected: self.inner.injected.load(Ordering::Relaxed),
        }
    }

    /// Prepare the filesystem for a recovery pass after a (simulated)
    /// crash: clears the crashed flag, stops injecting faults, and rewrites
    /// every file to the chosen [`RecoveryImage`].
    pub fn reset_to_recovery(&self, image: RecoveryImage) {
        self.inner.crashed.store(false, Ordering::SeqCst);
        self.quiesce();
        let files = self.inner.files.lock().unwrap_or_else(|e| e.into_inner());
        for f in files.values() {
            let mut f = f.lock().unwrap_or_else(|e| e.into_inner());
            match image {
                RecoveryImage::Synced => f.live = f.durable.clone(),
                RecoveryImage::Live => f.durable = f.live.clone(),
            }
        }
    }

    /// Names of every file currently present (sorted, for assertions).
    pub fn file_names(&self) -> Vec<PathBuf> {
        let files = self.inner.files.lock().unwrap_or_else(|e| e.into_inner());
        let mut v: Vec<PathBuf> = files.keys().cloned().collect();
        v.sort();
        v
    }
}

struct FaultFile {
    inner: Arc<FaultInner>,
    file: Arc<Mutex<MemFile>>,
}

impl FaultFile {
    fn guard(&self) -> MutexGuard<'_, MemFile> {
        self.file.lock().unwrap_or_else(|e| e.into_inner())
    }
}

fn apply_write(img: &mut Vec<u8>, offset: u64, buf: &[u8]) {
    let off = offset as usize;
    let end = off + buf.len();
    if img.len() < end {
        img.resize(end, 0);
    }
    img[off..end].copy_from_slice(buf);
}

impl VfsFile for FaultFile {
    fn read_exact_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        if self.inner.crashed.load(Ordering::SeqCst) {
            return Err(crashed_err());
        }
        let f = self.guard();
        let off = offset as usize;
        let end = off
            .checked_add(buf.len())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "read offset overflow"))?;
        if end > f.live.len() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "read past end of file",
            ));
        }
        buf.copy_from_slice(&f.live[off..end]);
        Ok(())
    }

    fn write_all_at(&self, offset: u64, buf: &[u8]) -> io::Result<()> {
        if self.inner.crashed.load(Ordering::SeqCst) {
            return Err(crashed_err());
        }
        match self.inner.next_write_fault() {
            None => {
                apply_write(&mut self.guard().live, offset, buf);
                Ok(())
            }
            Some(FaultKind::Crash) => {
                self.inner.record_injection();
                // A crash mid-write tears it: half the buffer lands in the
                // live image before the "process" dies.
                apply_write(&mut self.guard().live, offset, &buf[..buf.len() / 2]);
                self.inner.crashed.store(true, Ordering::SeqCst);
                Err(injected_err(FaultKind::Crash))
            }
            Some(FaultKind::ShortWrite) => {
                self.inner.record_injection();
                apply_write(&mut self.guard().live, offset, &buf[..buf.len() / 2]);
                Err(injected_err(FaultKind::ShortWrite))
            }
            Some(kind) => {
                self.inner.record_injection();
                Err(injected_err(kind))
            }
        }
    }

    fn sync(&self) -> io::Result<()> {
        if self.inner.crashed.load(Ordering::SeqCst) {
            return Err(crashed_err());
        }
        match self.inner.next_sync_fault() {
            None => {
                let mut f = self.guard();
                f.durable = f.live.clone();
                Ok(())
            }
            Some(FaultKind::Crash) => {
                self.inner.record_injection();
                self.inner.crashed.store(true, Ordering::SeqCst);
                Err(injected_err(FaultKind::Crash))
            }
            Some(kind) => {
                self.inner.record_injection();
                Err(injected_err(kind))
            }
        }
    }

    fn len(&self) -> io::Result<u64> {
        Ok(self.guard().live.len() as u64)
    }

    fn truncate(&self, len: u64) -> io::Result<()> {
        if self.inner.crashed.load(Ordering::SeqCst) {
            return Err(crashed_err());
        }
        self.guard().live.truncate(len as usize);
        Ok(())
    }

    fn duplicate(&self) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(FaultFile {
            inner: Arc::clone(&self.inner),
            file: Arc::clone(&self.file),
        }))
    }
}

impl Vfs for FaultVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        if self.crashed() {
            return Err(crashed_err());
        }
        let mut files = self.inner.files.lock().unwrap_or_else(|e| e.into_inner());
        let entry = files.entry(path.to_path_buf()).or_insert_with(|| {
            Arc::new(Mutex::new(MemFile {
                live: Vec::new(),
                durable: Vec::new(),
            }))
        });
        // create truncates the live image; the durable image only changes
        // on a successful sync, mirroring a real filesystem's loss window.
        entry.lock().unwrap_or_else(|e| e.into_inner()).live.clear();
        Ok(Box::new(FaultFile {
            inner: Arc::clone(&self.inner),
            file: Arc::clone(entry),
        }))
    }

    fn open(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        if self.crashed() {
            return Err(crashed_err());
        }
        let files = self.inner.files.lock().unwrap_or_else(|e| e.into_inner());
        let entry = files
            .get(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))?;
        Ok(Box::new(FaultFile {
            inner: Arc::clone(&self.inner),
            file: Arc::clone(entry),
        }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        if self.crashed() {
            return Err(crashed_err());
        }
        let files = self.inner.files.lock().unwrap_or_else(|e| e.into_inner());
        let entry = files
            .get(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))?;
        let bytes = entry.lock().unwrap_or_else(|e| e.into_inner()).live.clone();
        Ok(bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if self.crashed() {
            return Err(crashed_err());
        }
        let mut files = self.inner.files.lock().unwrap_or_else(|e| e.into_inner());
        let entry = files
            .remove(from)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))?;
        files.insert(to.to_path_buf(), entry);
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        if self.crashed() {
            return Err(crashed_err());
        }
        let mut files = self.inner.files.lock().unwrap_or_else(|e| e.into_inner());
        files
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))
    }

    fn create_dir_all(&self, _path: &Path) -> io::Result<()> {
        Ok(())
    }

    fn sync_dir(&self, _path: &Path) {
        // Renames in the in-memory namespace are atomic and durable.
    }

    fn exists(&self, path: &Path) -> bool {
        let files = self.inner.files.lock().unwrap_or_else(|e| e.into_inner());
        files.contains_key(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn os_vfs_round_trip() {
        let dir = std::env::temp_dir().join(format!("dsp-vfs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("f.bin");
        let vfs = os_vfs();
        let f = vfs.create(&path).unwrap();
        f.write_all_at(0, b"hello").unwrap();
        f.write_all_at(5, b" world").unwrap();
        f.sync().unwrap();
        assert_eq!(f.len().unwrap(), 11);
        let mut buf = [0u8; 5];
        f.read_exact_at(6, &mut buf).unwrap();
        assert_eq!(&buf, b"world");
        f.truncate(5).unwrap();
        assert_eq!(vfs.read(&path).unwrap(), b"hello");
        vfs.remove_file(&path).unwrap();
        assert!(!vfs.exists(&path));
    }

    #[test]
    fn fault_vfs_unsynced_bytes_die_in_crash() {
        let vfs = FaultVfs::default();
        let p = Path::new("/wb/wal.bin");
        let f = vfs.create(p).unwrap();
        f.write_all_at(0, b"durable").unwrap();
        f.sync().unwrap();
        f.write_all_at(7, b"-volatile").unwrap();
        vfs.trip_crash();
        assert!(f.write_all_at(0, b"x").is_err());
        vfs.reset_to_recovery(RecoveryImage::Synced);
        assert_eq!(vfs.read(p).unwrap(), b"durable");
    }

    #[test]
    fn fault_vfs_nth_write_fails_once() {
        let plan = FaultPlan {
            fail_nth_write: Some((1, FaultKind::WriteErr)),
            ..FaultPlan::default()
        };
        let vfs = FaultVfs::new(plan);
        let f = vfs.create(Path::new("/f")).unwrap();
        assert!(f.write_all_at(0, b"a").is_ok());
        assert!(f.write_all_at(1, b"b").is_err());
        assert!(f.write_all_at(1, b"b").is_ok());
        assert_eq!(vfs.stats().injected, 1);
    }

    #[test]
    fn fault_vfs_short_write_tears() {
        let plan = FaultPlan {
            fail_nth_write: Some((0, FaultKind::ShortWrite)),
            ..FaultPlan::default()
        };
        let vfs = FaultVfs::new(plan);
        let f = vfs.create(Path::new("/f")).unwrap();
        assert!(f.write_all_at(0, b"abcdef").is_err());
        assert_eq!(vfs.read(Path::new("/f")).unwrap(), b"abc");
    }

    #[test]
    fn fault_vfs_failed_sync_promotes_nothing() {
        let plan = FaultPlan {
            fail_nth_sync: Some(0),
            ..FaultPlan::default()
        };
        let vfs = FaultVfs::new(plan);
        let f = vfs.create(Path::new("/f")).unwrap();
        f.write_all_at(0, b"abc").unwrap();
        assert!(f.sync().is_err());
        vfs.reset_to_recovery(RecoveryImage::Synced);
        assert_eq!(vfs.read(Path::new("/f")).unwrap(), b"");
    }

    #[test]
    fn fault_vfs_seeded_rolls_are_deterministic() {
        let run = |seed: u64| {
            let plan = FaultPlan {
                seed,
                p_write_err: 2_000,
                ..FaultPlan::default()
            };
            let vfs = FaultVfs::new(plan);
            let f = vfs.create(Path::new("/f")).unwrap();
            (0..64)
                .map(|i| f.write_all_at(i, b"x").is_ok())
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should differ");
    }

    #[test]
    fn rename_is_atomic_in_namespace() {
        let vfs = FaultVfs::default();
        let f = vfs.create(Path::new("/a.tmp")).unwrap();
        f.write_all_at(0, b"payload").unwrap();
        f.sync().unwrap();
        vfs.rename(Path::new("/a.tmp"), Path::new("/a")).unwrap();
        assert!(!vfs.exists(Path::new("/a.tmp")));
        assert_eq!(vfs.read(Path::new("/a")).unwrap(), b"payload");
    }
}
